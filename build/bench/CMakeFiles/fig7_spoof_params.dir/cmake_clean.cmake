file(REMOVE_RECURSE
  "CMakeFiles/fig7_spoof_params.dir/fig7_spoof_params.cpp.o"
  "CMakeFiles/fig7_spoof_params.dir/fig7_spoof_params.cpp.o.d"
  "fig7_spoof_params"
  "fig7_spoof_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_spoof_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
