# Empty compiler generated dependencies file for fig7_spoof_params.
# This may be replaced when dependencies are built.
