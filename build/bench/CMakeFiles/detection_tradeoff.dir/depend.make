# Empty dependencies file for detection_tradeoff.
# This may be replaced when dependencies are built.
