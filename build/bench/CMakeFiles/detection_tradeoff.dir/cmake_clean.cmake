file(REMOVE_RECURSE
  "CMakeFiles/detection_tradeoff.dir/detection_tradeoff.cpp.o"
  "CMakeFiles/detection_tradeoff.dir/detection_tradeoff.cpp.o.d"
  "detection_tradeoff"
  "detection_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
