# Empty compiler generated dependencies file for table1_success_rates.
# This may be replaced when dependencies are built.
