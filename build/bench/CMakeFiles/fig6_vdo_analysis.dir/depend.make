# Empty dependencies file for fig6_vdo_analysis.
# This may be replaced when dependencies are built.
