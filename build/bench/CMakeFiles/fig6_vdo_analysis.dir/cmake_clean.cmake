file(REMOVE_RECURSE
  "CMakeFiles/fig6_vdo_analysis.dir/fig6_vdo_analysis.cpp.o"
  "CMakeFiles/fig6_vdo_analysis.dir/fig6_vdo_analysis.cpp.o.d"
  "fig6_vdo_analysis"
  "fig6_vdo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vdo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
