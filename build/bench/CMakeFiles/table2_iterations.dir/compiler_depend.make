# Empty compiler generated dependencies file for table2_iterations.
# This may be replaced when dependencies are built.
