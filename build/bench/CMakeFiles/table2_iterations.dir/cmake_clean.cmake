file(REMOVE_RECURSE
  "CMakeFiles/table2_iterations.dir/table2_iterations.cpp.o"
  "CMakeFiles/table2_iterations.dir/table2_iterations.cpp.o.d"
  "table2_iterations"
  "table2_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
