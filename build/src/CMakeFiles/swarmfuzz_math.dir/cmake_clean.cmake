file(REMOVE_RECURSE
  "CMakeFiles/swarmfuzz_math.dir/math/geometry.cpp.o"
  "CMakeFiles/swarmfuzz_math.dir/math/geometry.cpp.o.d"
  "CMakeFiles/swarmfuzz_math.dir/math/rng.cpp.o"
  "CMakeFiles/swarmfuzz_math.dir/math/rng.cpp.o.d"
  "CMakeFiles/swarmfuzz_math.dir/math/stats.cpp.o"
  "CMakeFiles/swarmfuzz_math.dir/math/stats.cpp.o.d"
  "libswarmfuzz_math.a"
  "libswarmfuzz_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmfuzz_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
