# Empty compiler generated dependencies file for swarmfuzz_math.
# This may be replaced when dependencies are built.
