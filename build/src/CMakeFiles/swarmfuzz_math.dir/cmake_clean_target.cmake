file(REMOVE_RECURSE
  "libswarmfuzz_math.a"
)
