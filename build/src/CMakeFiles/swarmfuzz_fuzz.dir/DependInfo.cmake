
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzz/campaign.cpp" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/campaign.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/campaign.cpp.o.d"
  "/root/repo/src/fuzz/fuzzer.cpp" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/fuzzer.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/fuzzer.cpp.o.d"
  "/root/repo/src/fuzz/objective.cpp" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/objective.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/objective.cpp.o.d"
  "/root/repo/src/fuzz/optimizer.cpp" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/optimizer.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/optimizer.cpp.o.d"
  "/root/repo/src/fuzz/report.cpp" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/report.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/report.cpp.o.d"
  "/root/repo/src/fuzz/seeds.cpp" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/seeds.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/seeds.cpp.o.d"
  "/root/repo/src/fuzz/serialize.cpp" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/serialize.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/serialize.cpp.o.d"
  "/root/repo/src/fuzz/svg.cpp" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/svg.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_fuzz.dir/fuzz/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swarmfuzz_swarm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
