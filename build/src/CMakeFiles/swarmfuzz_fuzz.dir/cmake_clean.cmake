file(REMOVE_RECURSE
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/campaign.cpp.o"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/campaign.cpp.o.d"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/fuzzer.cpp.o"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/fuzzer.cpp.o.d"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/objective.cpp.o"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/objective.cpp.o.d"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/optimizer.cpp.o"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/optimizer.cpp.o.d"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/report.cpp.o"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/report.cpp.o.d"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/seeds.cpp.o"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/seeds.cpp.o.d"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/serialize.cpp.o"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/serialize.cpp.o.d"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/svg.cpp.o"
  "CMakeFiles/swarmfuzz_fuzz.dir/fuzz/svg.cpp.o.d"
  "libswarmfuzz_fuzz.a"
  "libswarmfuzz_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmfuzz_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
