# Empty dependencies file for swarmfuzz_fuzz.
# This may be replaced when dependencies are built.
