file(REMOVE_RECURSE
  "libswarmfuzz_fuzz.a"
)
