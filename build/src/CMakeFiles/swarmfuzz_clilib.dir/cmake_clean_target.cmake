file(REMOVE_RECURSE
  "libswarmfuzz_clilib.a"
)
