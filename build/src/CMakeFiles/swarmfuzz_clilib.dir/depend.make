# Empty dependencies file for swarmfuzz_clilib.
# This may be replaced when dependencies are built.
