file(REMOVE_RECURSE
  "CMakeFiles/swarmfuzz_clilib.dir/cli/commands.cpp.o"
  "CMakeFiles/swarmfuzz_clilib.dir/cli/commands.cpp.o.d"
  "libswarmfuzz_clilib.a"
  "libswarmfuzz_clilib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmfuzz_clilib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
