file(REMOVE_RECURSE
  "CMakeFiles/swarmfuzz_swarm.dir/swarm/comm.cpp.o"
  "CMakeFiles/swarmfuzz_swarm.dir/swarm/comm.cpp.o.d"
  "CMakeFiles/swarmfuzz_swarm.dir/swarm/flocking_system.cpp.o"
  "CMakeFiles/swarmfuzz_swarm.dir/swarm/flocking_system.cpp.o.d"
  "CMakeFiles/swarmfuzz_swarm.dir/swarm/metrics.cpp.o"
  "CMakeFiles/swarmfuzz_swarm.dir/swarm/metrics.cpp.o.d"
  "CMakeFiles/swarmfuzz_swarm.dir/swarm/olfati_saber.cpp.o"
  "CMakeFiles/swarmfuzz_swarm.dir/swarm/olfati_saber.cpp.o.d"
  "CMakeFiles/swarmfuzz_swarm.dir/swarm/reynolds.cpp.o"
  "CMakeFiles/swarmfuzz_swarm.dir/swarm/reynolds.cpp.o.d"
  "CMakeFiles/swarmfuzz_swarm.dir/swarm/vasarhelyi.cpp.o"
  "CMakeFiles/swarmfuzz_swarm.dir/swarm/vasarhelyi.cpp.o.d"
  "libswarmfuzz_swarm.a"
  "libswarmfuzz_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmfuzz_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
