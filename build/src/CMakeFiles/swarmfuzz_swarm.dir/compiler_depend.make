# Empty compiler generated dependencies file for swarmfuzz_swarm.
# This may be replaced when dependencies are built.
