
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swarm/comm.cpp" "src/CMakeFiles/swarmfuzz_swarm.dir/swarm/comm.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_swarm.dir/swarm/comm.cpp.o.d"
  "/root/repo/src/swarm/flocking_system.cpp" "src/CMakeFiles/swarmfuzz_swarm.dir/swarm/flocking_system.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_swarm.dir/swarm/flocking_system.cpp.o.d"
  "/root/repo/src/swarm/metrics.cpp" "src/CMakeFiles/swarmfuzz_swarm.dir/swarm/metrics.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_swarm.dir/swarm/metrics.cpp.o.d"
  "/root/repo/src/swarm/olfati_saber.cpp" "src/CMakeFiles/swarmfuzz_swarm.dir/swarm/olfati_saber.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_swarm.dir/swarm/olfati_saber.cpp.o.d"
  "/root/repo/src/swarm/reynolds.cpp" "src/CMakeFiles/swarmfuzz_swarm.dir/swarm/reynolds.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_swarm.dir/swarm/reynolds.cpp.o.d"
  "/root/repo/src/swarm/vasarhelyi.cpp" "src/CMakeFiles/swarmfuzz_swarm.dir/swarm/vasarhelyi.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_swarm.dir/swarm/vasarhelyi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swarmfuzz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
