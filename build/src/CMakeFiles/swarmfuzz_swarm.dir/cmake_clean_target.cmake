file(REMOVE_RECURSE
  "libswarmfuzz_swarm.a"
)
