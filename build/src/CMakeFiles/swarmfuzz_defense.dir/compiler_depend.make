# Empty compiler generated dependencies file for swarmfuzz_defense.
# This may be replaced when dependencies are built.
