file(REMOVE_RECURSE
  "CMakeFiles/swarmfuzz_defense.dir/defense/detector.cpp.o"
  "CMakeFiles/swarmfuzz_defense.dir/defense/detector.cpp.o.d"
  "libswarmfuzz_defense.a"
  "libswarmfuzz_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmfuzz_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
