file(REMOVE_RECURSE
  "libswarmfuzz_defense.a"
)
