# Empty compiler generated dependencies file for swarmfuzz_sim.
# This may be replaced when dependencies are built.
