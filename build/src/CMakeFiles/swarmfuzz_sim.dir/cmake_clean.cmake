file(REMOVE_RECURSE
  "CMakeFiles/swarmfuzz_sim.dir/sim/collision.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/collision.cpp.o.d"
  "CMakeFiles/swarmfuzz_sim.dir/sim/dynamics.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/dynamics.cpp.o.d"
  "CMakeFiles/swarmfuzz_sim.dir/sim/gps.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/gps.cpp.o.d"
  "CMakeFiles/swarmfuzz_sim.dir/sim/imu.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/imu.cpp.o.d"
  "CMakeFiles/swarmfuzz_sim.dir/sim/mission.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/mission.cpp.o.d"
  "CMakeFiles/swarmfuzz_sim.dir/sim/nav_filter.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/nav_filter.cpp.o.d"
  "CMakeFiles/swarmfuzz_sim.dir/sim/obstacle.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/obstacle.cpp.o.d"
  "CMakeFiles/swarmfuzz_sim.dir/sim/pid.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/pid.cpp.o.d"
  "CMakeFiles/swarmfuzz_sim.dir/sim/point_mass.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/point_mass.cpp.o.d"
  "CMakeFiles/swarmfuzz_sim.dir/sim/quadrotor.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/quadrotor.cpp.o.d"
  "CMakeFiles/swarmfuzz_sim.dir/sim/recorder.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/recorder.cpp.o.d"
  "CMakeFiles/swarmfuzz_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/swarmfuzz_sim.dir/sim/world.cpp.o"
  "CMakeFiles/swarmfuzz_sim.dir/sim/world.cpp.o.d"
  "libswarmfuzz_sim.a"
  "libswarmfuzz_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmfuzz_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
