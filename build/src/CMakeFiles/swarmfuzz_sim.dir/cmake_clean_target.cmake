file(REMOVE_RECURSE
  "libswarmfuzz_sim.a"
)
