
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/collision.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/collision.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/collision.cpp.o.d"
  "/root/repo/src/sim/dynamics.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/dynamics.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/dynamics.cpp.o.d"
  "/root/repo/src/sim/gps.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/gps.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/gps.cpp.o.d"
  "/root/repo/src/sim/imu.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/imu.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/imu.cpp.o.d"
  "/root/repo/src/sim/mission.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/mission.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/mission.cpp.o.d"
  "/root/repo/src/sim/nav_filter.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/nav_filter.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/nav_filter.cpp.o.d"
  "/root/repo/src/sim/obstacle.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/obstacle.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/obstacle.cpp.o.d"
  "/root/repo/src/sim/pid.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/pid.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/pid.cpp.o.d"
  "/root/repo/src/sim/point_mass.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/point_mass.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/point_mass.cpp.o.d"
  "/root/repo/src/sim/quadrotor.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/quadrotor.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/quadrotor.cpp.o.d"
  "/root/repo/src/sim/recorder.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/recorder.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/recorder.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/CMakeFiles/swarmfuzz_sim.dir/sim/world.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_sim.dir/sim/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swarmfuzz_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
