file(REMOVE_RECURSE
  "CMakeFiles/swarmfuzz_cli.dir/cli/main.cpp.o"
  "CMakeFiles/swarmfuzz_cli.dir/cli/main.cpp.o.d"
  "swarmfuzz"
  "swarmfuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmfuzz_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
