# Empty compiler generated dependencies file for swarmfuzz_cli.
# This may be replaced when dependencies are built.
