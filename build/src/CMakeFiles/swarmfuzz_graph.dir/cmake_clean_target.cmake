file(REMOVE_RECURSE
  "libswarmfuzz_graph.a"
)
