file(REMOVE_RECURSE
  "CMakeFiles/swarmfuzz_graph.dir/graph/centrality.cpp.o"
  "CMakeFiles/swarmfuzz_graph.dir/graph/centrality.cpp.o.d"
  "CMakeFiles/swarmfuzz_graph.dir/graph/digraph.cpp.o"
  "CMakeFiles/swarmfuzz_graph.dir/graph/digraph.cpp.o.d"
  "CMakeFiles/swarmfuzz_graph.dir/graph/dot.cpp.o"
  "CMakeFiles/swarmfuzz_graph.dir/graph/dot.cpp.o.d"
  "CMakeFiles/swarmfuzz_graph.dir/graph/pagerank.cpp.o"
  "CMakeFiles/swarmfuzz_graph.dir/graph/pagerank.cpp.o.d"
  "libswarmfuzz_graph.a"
  "libswarmfuzz_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmfuzz_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
