
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/centrality.cpp" "src/CMakeFiles/swarmfuzz_graph.dir/graph/centrality.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_graph.dir/graph/centrality.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/CMakeFiles/swarmfuzz_graph.dir/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_graph.dir/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/CMakeFiles/swarmfuzz_graph.dir/graph/dot.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_graph.dir/graph/dot.cpp.o.d"
  "/root/repo/src/graph/pagerank.cpp" "src/CMakeFiles/swarmfuzz_graph.dir/graph/pagerank.cpp.o" "gcc" "src/CMakeFiles/swarmfuzz_graph.dir/graph/pagerank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swarmfuzz_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
