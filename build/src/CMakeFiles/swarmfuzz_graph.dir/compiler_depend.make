# Empty compiler generated dependencies file for swarmfuzz_graph.
# This may be replaced when dependencies are built.
