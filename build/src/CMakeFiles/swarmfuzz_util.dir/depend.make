# Empty dependencies file for swarmfuzz_util.
# This may be replaced when dependencies are built.
