file(REMOVE_RECURSE
  "libswarmfuzz_util.a"
)
