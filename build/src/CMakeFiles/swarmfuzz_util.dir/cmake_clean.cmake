file(REMOVE_RECURSE
  "CMakeFiles/swarmfuzz_util.dir/util/csv.cpp.o"
  "CMakeFiles/swarmfuzz_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/swarmfuzz_util.dir/util/json.cpp.o"
  "CMakeFiles/swarmfuzz_util.dir/util/json.cpp.o.d"
  "CMakeFiles/swarmfuzz_util.dir/util/logging.cpp.o"
  "CMakeFiles/swarmfuzz_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/swarmfuzz_util.dir/util/options.cpp.o"
  "CMakeFiles/swarmfuzz_util.dir/util/options.cpp.o.d"
  "CMakeFiles/swarmfuzz_util.dir/util/table.cpp.o"
  "CMakeFiles/swarmfuzz_util.dir/util/table.cpp.o.d"
  "libswarmfuzz_util.a"
  "libswarmfuzz_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmfuzz_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
