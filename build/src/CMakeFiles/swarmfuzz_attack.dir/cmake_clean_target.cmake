file(REMOVE_RECURSE
  "libswarmfuzz_attack.a"
)
