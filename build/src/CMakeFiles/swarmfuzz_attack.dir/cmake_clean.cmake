file(REMOVE_RECURSE
  "CMakeFiles/swarmfuzz_attack.dir/attack/spoofing.cpp.o"
  "CMakeFiles/swarmfuzz_attack.dir/attack/spoofing.cpp.o.d"
  "libswarmfuzz_attack.a"
  "libswarmfuzz_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarmfuzz_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
