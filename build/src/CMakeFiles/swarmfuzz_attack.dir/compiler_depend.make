# Empty compiler generated dependencies file for swarmfuzz_attack.
# This may be replaced when dependencies are built.
