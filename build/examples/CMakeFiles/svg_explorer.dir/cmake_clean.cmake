file(REMOVE_RECURSE
  "CMakeFiles/svg_explorer.dir/svg_explorer.cpp.o"
  "CMakeFiles/svg_explorer.dir/svg_explorer.cpp.o.d"
  "svg_explorer"
  "svg_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svg_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
