# Empty dependencies file for svg_explorer.
# This may be replaced when dependencies are built.
