# Empty compiler generated dependencies file for spoofing_attack_demo.
# This may be replaced when dependencies are built.
