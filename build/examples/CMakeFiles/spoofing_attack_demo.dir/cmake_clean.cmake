file(REMOVE_RECURSE
  "CMakeFiles/spoofing_attack_demo.dir/spoofing_attack_demo.cpp.o"
  "CMakeFiles/spoofing_attack_demo.dir/spoofing_attack_demo.cpp.o.d"
  "spoofing_attack_demo"
  "spoofing_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoofing_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
