# Empty dependencies file for spoofing_attack_demo.
# This may be replaced when dependencies are built.
