file(REMOVE_RECURSE
  "CMakeFiles/test_swarm.dir/test_comm.cpp.o"
  "CMakeFiles/test_swarm.dir/test_comm.cpp.o.d"
  "CMakeFiles/test_swarm.dir/test_flocking_system.cpp.o"
  "CMakeFiles/test_swarm.dir/test_flocking_system.cpp.o.d"
  "CMakeFiles/test_swarm.dir/test_metrics.cpp.o"
  "CMakeFiles/test_swarm.dir/test_metrics.cpp.o.d"
  "CMakeFiles/test_swarm.dir/test_olfati_saber.cpp.o"
  "CMakeFiles/test_swarm.dir/test_olfati_saber.cpp.o.d"
  "CMakeFiles/test_swarm.dir/test_reynolds.cpp.o"
  "CMakeFiles/test_swarm.dir/test_reynolds.cpp.o.d"
  "CMakeFiles/test_swarm.dir/test_vasarhelyi.cpp.o"
  "CMakeFiles/test_swarm.dir/test_vasarhelyi.cpp.o.d"
  "test_swarm"
  "test_swarm.pdb"
  "test_swarm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
