
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_comm.cpp" "tests/CMakeFiles/test_swarm.dir/test_comm.cpp.o" "gcc" "tests/CMakeFiles/test_swarm.dir/test_comm.cpp.o.d"
  "/root/repo/tests/test_flocking_system.cpp" "tests/CMakeFiles/test_swarm.dir/test_flocking_system.cpp.o" "gcc" "tests/CMakeFiles/test_swarm.dir/test_flocking_system.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/test_swarm.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_swarm.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_olfati_saber.cpp" "tests/CMakeFiles/test_swarm.dir/test_olfati_saber.cpp.o" "gcc" "tests/CMakeFiles/test_swarm.dir/test_olfati_saber.cpp.o.d"
  "/root/repo/tests/test_reynolds.cpp" "tests/CMakeFiles/test_swarm.dir/test_reynolds.cpp.o" "gcc" "tests/CMakeFiles/test_swarm.dir/test_reynolds.cpp.o.d"
  "/root/repo/tests/test_vasarhelyi.cpp" "tests/CMakeFiles/test_swarm.dir/test_vasarhelyi.cpp.o" "gcc" "tests/CMakeFiles/test_swarm.dir/test_vasarhelyi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swarmfuzz_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_swarm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
