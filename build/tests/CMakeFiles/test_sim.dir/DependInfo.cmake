
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_collision.cpp" "tests/CMakeFiles/test_sim.dir/test_collision.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_collision.cpp.o.d"
  "/root/repo/tests/test_gps.cpp" "tests/CMakeFiles/test_sim.dir/test_gps.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_gps.cpp.o.d"
  "/root/repo/tests/test_mission.cpp" "tests/CMakeFiles/test_sim.dir/test_mission.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_mission.cpp.o.d"
  "/root/repo/tests/test_nav.cpp" "tests/CMakeFiles/test_sim.dir/test_nav.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_nav.cpp.o.d"
  "/root/repo/tests/test_obstacle.cpp" "tests/CMakeFiles/test_sim.dir/test_obstacle.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_obstacle.cpp.o.d"
  "/root/repo/tests/test_pid.cpp" "tests/CMakeFiles/test_sim.dir/test_pid.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_pid.cpp.o.d"
  "/root/repo/tests/test_point_mass.cpp" "tests/CMakeFiles/test_sim.dir/test_point_mass.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_point_mass.cpp.o.d"
  "/root/repo/tests/test_quadrotor.cpp" "tests/CMakeFiles/test_sim.dir/test_quadrotor.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_quadrotor.cpp.o.d"
  "/root/repo/tests/test_recorder.cpp" "tests/CMakeFiles/test_sim.dir/test_recorder.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_recorder.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/test_sim.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_world.cpp" "tests/CMakeFiles/test_sim.dir/test_world.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swarmfuzz_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_swarm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swarmfuzz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
