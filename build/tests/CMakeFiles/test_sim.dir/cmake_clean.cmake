file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_collision.cpp.o"
  "CMakeFiles/test_sim.dir/test_collision.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_gps.cpp.o"
  "CMakeFiles/test_sim.dir/test_gps.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_mission.cpp.o"
  "CMakeFiles/test_sim.dir/test_mission.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_nav.cpp.o"
  "CMakeFiles/test_sim.dir/test_nav.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_obstacle.cpp.o"
  "CMakeFiles/test_sim.dir/test_obstacle.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_pid.cpp.o"
  "CMakeFiles/test_sim.dir/test_pid.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_point_mass.cpp.o"
  "CMakeFiles/test_sim.dir/test_point_mass.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_quadrotor.cpp.o"
  "CMakeFiles/test_sim.dir/test_quadrotor.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_recorder.cpp.o"
  "CMakeFiles/test_sim.dir/test_recorder.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_simulator.cpp.o"
  "CMakeFiles/test_sim.dir/test_simulator.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_world.cpp.o"
  "CMakeFiles/test_sim.dir/test_world.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
