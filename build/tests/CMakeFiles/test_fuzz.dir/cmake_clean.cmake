file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz.dir/test_campaign.cpp.o"
  "CMakeFiles/test_fuzz.dir/test_campaign.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/test_fuzzer.cpp.o"
  "CMakeFiles/test_fuzz.dir/test_fuzzer.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/test_objective.cpp.o"
  "CMakeFiles/test_fuzz.dir/test_objective.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/test_optimizer.cpp.o"
  "CMakeFiles/test_fuzz.dir/test_optimizer.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/test_seeds.cpp.o"
  "CMakeFiles/test_fuzz.dir/test_seeds.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/test_serialize.cpp.o"
  "CMakeFiles/test_fuzz.dir/test_serialize.cpp.o.d"
  "CMakeFiles/test_fuzz.dir/test_svg.cpp.o"
  "CMakeFiles/test_fuzz.dir/test_svg.cpp.o.d"
  "test_fuzz"
  "test_fuzz.pdb"
  "test_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
