file(REMOVE_RECURSE
  "CMakeFiles/test_cli_commands.dir/test_cli.cpp.o"
  "CMakeFiles/test_cli_commands.dir/test_cli.cpp.o.d"
  "test_cli_commands"
  "test_cli_commands.pdb"
  "test_cli_commands[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cli_commands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
