# Empty dependencies file for test_cli_commands.
# This may be replaced when dependencies are built.
