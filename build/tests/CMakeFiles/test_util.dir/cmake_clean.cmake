file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/test_csv.cpp.o"
  "CMakeFiles/test_util.dir/test_csv.cpp.o.d"
  "CMakeFiles/test_util.dir/test_format.cpp.o"
  "CMakeFiles/test_util.dir/test_format.cpp.o.d"
  "CMakeFiles/test_util.dir/test_json.cpp.o"
  "CMakeFiles/test_util.dir/test_json.cpp.o.d"
  "CMakeFiles/test_util.dir/test_logging.cpp.o"
  "CMakeFiles/test_util.dir/test_logging.cpp.o.d"
  "CMakeFiles/test_util.dir/test_options.cpp.o"
  "CMakeFiles/test_util.dir/test_options.cpp.o.d"
  "CMakeFiles/test_util.dir/test_table.cpp.o"
  "CMakeFiles/test_util.dir/test_table.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
