// Defender's workflow (paper sections I and VI): evaluate how resilient a
// swarm configuration is to Swarm Propagation Vulnerabilities before flying
// it, and print actionable guidance.
//
//   ./resilience_report [--drones=5] [--distance=10] [--missions=15]
#include <cstdio>

#include "fuzz/campaign.h"
#include "math/stats.h"
#include "util/options.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace swarmfuzz;
  const util::Options options = util::Options::parse(argc, argv);

  fuzz::CampaignConfig config;
  config.mission.num_drones = options.get_int("drones", 5);
  config.fuzzer.spoof_distance = options.get_double("distance", 10.0);
  config.num_missions = options.get_int("missions", 15);
  config.fuzzer.sim.dt = 0.05;
  config.fuzzer.sim.gps.rate_hz = 20.0;
  config.num_threads = options.get_int("threads", 0);

  std::printf("Assessing resilience: %d-drone swarm, %.0f m spoofing, %d missions\n\n",
              config.mission.num_drones, config.fuzzer.spoof_distance,
              config.num_missions);
  const fuzz::CampaignResult result = fuzz::run_campaign(config);

  util::TextTable table({"Mission seed", "VDO (m)", "Verdict", "Attack found"});
  for (const fuzz::MissionOutcome& outcome : result.outcomes) {
    table.add_row({std::to_string(outcome.mission_seed),
                   util::format_double(outcome.result.mission_vdo),
                   outcome.result.found ? "VULNERABLE" : "resilient",
                   outcome.result.found ? outcome.result.plan.to_string() : "-"});
  }
  std::printf("%s\n", table.render("Per-mission results").c_str());

  const double rate = result.success_rate();
  std::printf("Vulnerable missions: %d/%d (%.0f%%)\n", result.num_found(),
              result.num_fuzzable(), rate * 100.0);

  const std::vector<double> vdos = result.mission_vdos();
  const double median_vdo = math::median(vdos);
  std::printf("Median mission VDO: %.2f m\n\n", median_vdo);

  // Guidance per the paper's implications (section VI).
  if (rate > 0.3) {
    std::printf("ASSESSMENT: configuration is highly susceptible to SPVs.\n");
  } else if (rate > 0.0) {
    std::printf("ASSESSMENT: configuration is conditionally susceptible to SPVs.\n");
  } else {
    std::printf("ASSESSMENT: no SPVs found at this spoofing distance.\n");
  }
  if (median_vdo < 3.0) {
    std::printf("- Missions pass close to the obstacle (low VDO): deploy stricter\n"
                "  GPS-spoofing protection or re-plan paths with more clearance.\n");
  }
  if (config.mission.num_drones >= 10) {
    std::printf("- Large swarms fly denser and are more vulnerable: consider\n"
                "  splitting the swarm or widening the formation.\n");
  }
  if (rate > 0.0) {
    std::printf("- Re-tune the controller's obstacle-avoidance gains and re-run\n"
                "  this assessment until no SPVs are found.\n");
  }
  return 0;
}
