// Inspect SwarmFuzz's Swarm Vulnerability Graph for one mission: print the
// edges, PageRank scores (targets and victims), the resulting seed schedule,
// and export the graph as GraphViz DOT.
//
//   ./svg_explorer [--seed=1005] [--distance=10] [--dot=svg.dot]
#include <cstdio>
#include <fstream>

#include "fuzz/seeds.h"
#include "graph/dot.h"
#include "graph/pagerank.h"
#include "util/options.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace swarmfuzz;
  const util::Options options = util::Options::parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1005));
  const double distance = options.get_double("distance", 10.0);

  sim::MissionConfig mission_config;
  mission_config.num_drones = options.get_int("drones", 5);
  const sim::MissionSpec mission = sim::generate_mission(mission_config, seed);

  // Clean run (SwarmFuzz step 1).
  sim::SimulationConfig sim_config;
  sim_config.dt = 0.05;
  sim_config.gps.rate_hz = 20.0;
  const sim::Simulator simulator(sim_config);
  auto system = swarm::make_vasarhelyi_system();
  const sim::RunResult clean = simulator.run(mission, *system);
  if (clean.collided) {
    std::printf("Clean run collided; nothing to analyse.\n");
    return 1;
  }
  std::printf("Clean run: %.1f s, t_clo = %.1f s\n\n", clean.end_time, clean.t_clo());

  // SVG per spoofing direction (SwarmFuzz step 2).
  const int sample = clean.recorder.sample_index_at(clean.t_clo());
  sim::WorldSnapshot snapshot;
  snapshot.time = clean.t_clo();
  const auto states = clean.recorder.sample(sample);
  for (int i = 0; i < mission.num_drones(); ++i) {
    snapshot.push_back({i, states[static_cast<size_t>(i)].position,
                        states[static_cast<size_t>(i)].velocity});
  }

  for (const auto dir : {attack::SpoofDirection::kRight, attack::SpoofDirection::kLeft}) {
    const graph::Digraph svg = fuzz::build_svg(snapshot, mission, *system, dir,
                                               distance);
    const auto target_rank = graph::pagerank(svg).scores;
    const auto victim_rank = graph::pagerank(svg.transposed()).scores;

    std::printf("--- SVG for %s spoofing: %d edges ---\n",
                attack::direction_name(dir).data(), svg.num_edges());
    util::TextTable table({"drone", "VDO (m)", "PR as target", "PR as victim",
                           "influences (i <- j edges)"});
    for (int j = 0; j < svg.num_nodes(); ++j) {
      std::string influenced;
      for (const graph::Edge& e : svg.edges()) {
        if (e.to == j) {
          if (!influenced.empty()) influenced += ", ";
          influenced += std::to_string(e.from);
        }
      }
      table.add_row({std::to_string(j),
                     util::format_double(clean.recorder.min_obstacle_distance(j)),
                     util::format_double(target_rank[static_cast<size_t>(j)], 3),
                     util::format_double(victim_rank[static_cast<size_t>(j)], 3),
                     influenced.empty() ? "-" : influenced});
    }
    std::printf("%s\n", table.render().c_str());

    if (dir == attack::SpoofDirection::kRight) {
      graph::DotOptions dot_options;
      dot_options.graph_name = "svg_right";
      dot_options.node_scores = target_rank;
      const std::string path = options.get("dot", "svg.dot");
      std::ofstream(path) << graph::to_dot(svg, dot_options);
      std::printf("DOT written to %s (render with: dot -Tpng %s -o svg.png)\n\n",
                  path.c_str(), path.c_str());
    }
  }

  // Seed schedule (SwarmFuzz step 2 output).
  const auto seeds = fuzz::schedule_seeds(clean, mission, *system, distance);
  util::TextTable table({"#", "target", "victim", "direction", "VDO (m)", "influence"});
  int index = 0;
  for (const fuzz::Seed& s : seeds) {
    table.add_row({std::to_string(index++), std::to_string(s.target),
                   std::to_string(s.victim),
                   std::string{attack::direction_name(s.direction)},
                   util::format_double(s.vdo), util::format_double(s.influence, 3)});
  }
  std::printf("%s\n", table.render("Scheduled seedpool (fuzzing order)").c_str());
  return 0;
}
