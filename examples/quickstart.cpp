// Quickstart: generate a randomized delivery mission, fly it with the
// Vasarhelyi ("Vicsek") swarm controller, and print what happened.
//
//   ./quickstart [--drones=5] [--seed=1005]
#include <cstdio>

#include "sim/simulator.h"
#include "swarm/flocking_system.h"
#include "swarm/metrics.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace swarmfuzz;
  const util::Options options = util::Options::parse(argc, argv);

  // 1. A mission per the paper's setup: random spawn in a 0-50 m box, a
  //    233.5 m flight to the destination, one obstacle at the half-way mark.
  sim::MissionConfig mission_config;
  mission_config.num_drones = options.get_int("drones", 5);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1005));
  const sim::MissionSpec mission = sim::generate_mission(mission_config, seed);

  std::printf("Mission %llu: %d drones -> (%.1f, %.1f), obstacle r=%.1f m at "
              "(%.1f, %.1f)\n",
              static_cast<unsigned long long>(seed), mission.num_drones(),
              mission.destination.x, mission.destination.y,
              mission.obstacles.at(0).radius, mission.obstacles.at(0).center.x,
              mission.obstacles.at(0).center.y);

  // 2. The swarm control system: Vasarhelyi flocking over perfect comms.
  auto control = swarm::make_vasarhelyi_system();

  // 3. Simulate.
  sim::SimulationConfig sim_config;
  sim_config.dt = 0.05;           // 20 Hz control/physics
  sim_config.gps.rate_hz = 20.0;  // GPS fix rate
  const sim::Simulator simulator(sim_config);
  const sim::RunResult result = simulator.run(mission, *control);

  // 4. Report.
  std::printf("\nMission %s in %.1f s%s\n",
              result.reached_destination ? "completed" : "ended", result.end_time,
              result.collided ? " with a COLLISION" : " without collisions");
  std::printf("Per-drone closest approach to the obstacle (VDO):\n");
  for (int i = 0; i < mission.num_drones(); ++i) {
    std::printf("  drone %2d: %6.2f m (at t=%.1f s)\n", i, result.vdo(i),
                result.recorder.time_of_min_obstacle_distance(i));
  }
  std::printf("Time of tightest formation t_clo = %.1f s\n", result.t_clo());

  // Flocking quality at cruise (mid-mission sample).
  const int sample = result.recorder.sample_index_at(result.end_time / 2.0);
  const swarm::FlockMetrics metrics =
      swarm::flock_metrics(result.recorder.sample(sample));
  std::printf("Flock at t=%.0f s: order %.2f, cohesion radius %.1f m, "
              "min separation %.1f m, mean speed %.1f m/s\n",
              result.recorder.times()[static_cast<size_t>(sample)], metrics.order,
              metrics.cohesion_radius, metrics.min_separation, metrics.mean_speed);
  return result.collided ? 1 : 0;
}
