// Large-swarm scaling report: wall-clock cost of full missions as the swarm
// grows from 100 to 1000 drones, with the spatial neighbor grid on versus
// the brute-force pair scans it replaces (results are bit-identical; only
// wall time differs). Prints Table I/II-style rows — per-size mission
// outcome and flock health next to time-per-step — ready to paste into the
// README scaling table.
//
//   ./large_swarm_scaling [--drones=100,250,500,1000] [--max-time=30]
//                         [--seed=1005] [--compare] [--dt=0.05]
//
// --compare additionally runs every mission with the grid disabled and
// reports the speedup; at N >= 500 the pair-scan arm takes minutes, which
// is the point, but budget for it.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "swarm/flocking_system.h"
#include "swarm/metrics.h"
#include "swarm/spatial_grid.h"
#include "swarm/vasarhelyi.h"
#include "util/options.h"
#include "util/table.h"

namespace {

using namespace swarmfuzz;

// The default 50 m spawn box holds ~30 drones at the default 8 m minimum
// separation; grow the box with sqrt(N) so spawn density stays comparable
// across sizes.
sim::MissionSpec scaled_mission(int drones, double max_time, std::uint64_t seed) {
  sim::MissionConfig config;
  config.num_drones = drones;
  config.max_time = max_time;
  if (drones > 30) {
    config.spawn_range = 2.2 * config.min_spawn_separation *
                         std::sqrt(static_cast<double>(drones));
  }
  return sim::generate_mission(config, seed);
}

struct TimedRun {
  sim::RunResult result;
  double wall_seconds = 0.0;
  int steps = 0;
};

TimedRun timed_run(const sim::Simulator& simulator, const sim::MissionSpec& mission,
                   sim::ControlSystem& system, double dt, bool grid_enabled) {
  const swarm::SpatialGridPolicy saved = swarm::spatial_grid_policy();
  swarm::spatial_grid_policy().enabled = grid_enabled;
  const auto t0 = std::chrono::steady_clock::now();
  TimedRun run{.result = simulator.run(mission, system)};
  const auto t1 = std::chrono::steady_clock::now();
  swarm::spatial_grid_policy() = saved;
  run.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  run.steps = static_cast<int>(std::lround(run.result.end_time / dt));
  return run;
}

std::vector<int> parse_sizes(const std::string& csv) {
  std::vector<int> sizes;
  size_t pos = 0;
  while (pos < csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(pos, comma == std::string::npos
                                                ? std::string::npos
                                                : comma - pos);
    if (!tok.empty()) sizes.push_back(std::stoi(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options = util::Options::parse(argc, argv);
  const auto sizes = parse_sizes(options.get("drones", "100,250,500,1000"));
  const double max_time = options.get_double("max-time", 30.0);
  const double dt = options.get_double("dt", 0.05);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1005));
  const bool compare = options.has("compare");

  sim::SimulationConfig sim_config;
  sim_config.dt = dt;
  sim_config.gps.rate_hz = 20.0;
  const sim::Simulator simulator(sim_config);

  std::vector<std::string> header = {"drones",   "sim time (s)", "steps",
                                     "collided", "order",        "min sep (m)",
                                     "wall (s)", "ms/step"};
  if (compare) {
    header.push_back("pair-scan ms/step");
    header.push_back("speedup");
  }
  util::TextTable table(header);

  for (const int n : sizes) {
    const sim::MissionSpec mission = scaled_mission(n, max_time, seed);
    swarm::FlockingControlSystem system(
        std::make_shared<swarm::VasarhelyiController>(), swarm::CommConfig{});

    const TimedRun grid = timed_run(simulator, mission, system, dt, true);
    const auto& recorder = grid.result.recorder;
    swarm::FlockMetrics metrics;
    if (recorder.num_samples() > 0) {
      metrics = swarm::flock_metrics(recorder.sample(recorder.num_samples() - 1));
    }
    const double ms_per_step =
        grid.steps > 0 ? 1e3 * grid.wall_seconds / grid.steps : 0.0;

    std::vector<std::string> row = {
        std::to_string(n),
        util::format_double(grid.result.end_time, 1),
        std::to_string(grid.steps),
        grid.result.collided ? "yes" : "no",
        util::format_double(metrics.order, 3),
        util::format_double(metrics.min_separation, 2),
        util::format_double(grid.wall_seconds, 2),
        util::format_double(ms_per_step, 2),
    };
    if (compare) {
      const TimedRun brute = timed_run(simulator, mission, system, dt, false);
      const double brute_ms =
          brute.steps > 0 ? 1e3 * brute.wall_seconds / brute.steps : 0.0;
      row.push_back(util::format_double(brute_ms, 2));
      row.push_back(ms_per_step > 0.0
                        ? util::format_double(brute_ms / ms_per_step, 1) + "x"
                        : "-");
    }
    table.add_row(row);
    std::fflush(stdout);
  }

  std::printf("%s\n", table.render("Large-swarm scaling (spatial grid on)").c_str());
  if (!compare) {
    std::printf("Re-run with --compare to time the brute-force pair-scan arm "
                "(bit-identical results, O(N^2) wall time).\n");
  }
  return 0;
}
