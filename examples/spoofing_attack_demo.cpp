// The paper's motivating example (section III), end to end: run SwarmFuzz on
// one mission, report the Swarm Propagation Vulnerability it finds, then
// replay the attack and dump both trajectories to CSV for plotting.
//
//   ./spoofing_attack_demo [--seed=1005] [--distance=10] [--out=trajectories.csv]
#include <cstdio>

#include "attack/spoofing.h"
#include "fuzz/fuzzer.h"
#include "util/csv.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace swarmfuzz;
  const util::Options options = util::Options::parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1005));
  const double distance = options.get_double("distance", 10.0);

  sim::MissionConfig mission_config;
  mission_config.num_drones = options.get_int("drones", 5);
  const sim::MissionSpec mission = sim::generate_mission(mission_config, seed);

  // Fuzz the mission for Swarm Propagation Vulnerabilities.
  fuzz::FuzzerConfig config;
  config.spoof_distance = distance;
  config.sim.dt = 0.05;
  config.sim.gps.rate_hz = 20.0;
  auto fuzzer = fuzz::make_fuzzer(fuzz::FuzzerKind::kSwarmFuzz, config);
  std::printf("Fuzzing mission %llu with %g m GPS spoofing...\n",
              static_cast<unsigned long long>(seed), distance);
  const fuzz::FuzzResult result = fuzzer->fuzz(mission);

  std::printf("Search used %d iterations (%d simulations) over %zu seeds.\n",
              result.iterations, result.simulations, result.attempts.size());
  if (!result.found) {
    std::printf("No SPV found: this mission is resilient at %g m spoofing "
                "(mission VDO %.2f m).\n",
                distance, result.mission_vdo);
    return 0;
  }

  std::printf("\nSPV FOUND: %s\n", result.plan.to_string().c_str());
  std::printf("  -> spoofing drone %d makes drone %d crash into the obstacle\n",
              result.plan.target, result.victim);
  std::printf("  -> victim's clean-run clearance was %.2f m\n", result.victim_vdo);

  // Replay clean and attacked missions, recording every sample.
  sim::SimulationConfig replay_config = config.sim;
  replay_config.record_period = 0.2;
  replay_config.stop_on_collision = true;
  const sim::Simulator simulator(replay_config);
  auto control = swarm::make_vasarhelyi_system();
  const sim::RunResult clean = simulator.run(mission, *control);
  const attack::GpsSpoofer spoofer(result.plan, mission);
  const sim::RunResult attacked = simulator.run(mission, *control, &spoofer);

  if (attacked.first_collision) {
    std::printf("Replay: drone %d hits the obstacle at t=%.1f s "
                "(clean run: no collision in %.1f s).\n",
                attacked.first_collision->drone, attacked.first_collision->time,
                clean.end_time);
  }

  // CSV dump: run,time,drone,x,y,z for both runs.
  const std::string out = options.get("out", "trajectories.csv");
  util::CsvWriter csv{std::filesystem::path{out}};
  csv.write_row({"run", "time", "drone", "x", "y", "z"});
  const auto dump = [&](const char* label, const sim::Recorder& recorder) {
    for (int s = 0; s < recorder.num_samples(); ++s) {
      const auto states = recorder.sample(s);
      for (int i = 0; i < static_cast<int>(states.size()); ++i) {
        csv.write_row({label, std::to_string(recorder.times()[static_cast<size_t>(s)]),
                       std::to_string(i),
                       std::to_string(states[static_cast<size_t>(i)].position.x),
                       std::to_string(states[static_cast<size_t>(i)].position.y),
                       std::to_string(states[static_cast<size_t>(i)].position.z)});
      }
    }
  };
  dump("clean", clean.recorder);
  dump("attacked", attacked.recorder);
  std::printf("Trajectories written to %s (%d rows).\n", out.c_str(),
              csv.rows_written());
  return 0;
}
