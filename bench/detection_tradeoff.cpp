// Extension experiment (not a paper table, but the paper's core motivating
// claim): deployed GPS-spoofing defenses ignore small deviations (0-10 m)
// because they are indistinguishable from standard GPS offset - which is
// exactly the window the SPV attack lives in (paper sections I, II, VII).
//
// For each spoofing distance d, this bench replays SwarmFuzz-found attacks
// under an innovation-based spoofing detector (threshold 10 m, the paper's
// defense band) and reports:
//   - attack success rate (from the fuzzing campaign),
//   - detection rate of the successful attacks,
//   - false-positive rate of the detector on clean missions.
// Expected shape: at d <= 10 m attacks succeed while detection stays ~0; the
// detector only fires once d clearly exceeds its threshold.
#include "bench_common.h"
#include "defense/detector.h"
#include "swarm/flocking_system.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace swarmfuzz;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv, 25);
  bench::print_header("Detection trade-off (5 drones, innovation defense)", options);

  // Paper: defenses ignore deviations of up to 10 m (indistinguishable from
  // standard GPS offset). A spoof of exactly d produces an onset innovation
  // of d plus a small motion-prediction error, so the tolerance band sits
  // just above the nominal 10 m.
  const double threshold = 10.5;
  util::TextTable table({"Spoof distance", "Attack success", "Detected attacks",
                         "Clean false positives"});

  for (const double distance : {5.0, 10.0, 15.0, 25.0}) {
    fuzz::CampaignConfig config = bench::paper_campaign(options);
    config.mission.num_drones = 5;
    config.fuzzer.spoof_distance = distance;
    bench::enable_checkpoint(config, options,
                             "tradeoff-" + util::format_double(distance, 0) + "m");
    const fuzz::CampaignResult campaign = fuzz::run_campaign(config);

    // Replay every found SPV under the detector; also run the clean mission
    // with the detector to count false positives.
    const sim::Simulator simulator(config.fuzzer.sim);
    int detected = 0, clean_alarms = 0;
    for (const fuzz::MissionOutcome& outcome : campaign.outcomes) {
      const sim::MissionSpec mission =
          sim::generate_mission(config.mission, outcome.mission_seed);
      auto system = swarm::make_vasarhelyi_system();
      {
        defense::SwarmDetectionMonitor monitor(mission.num_drones(),
                                               {.threshold = threshold});
        (void)simulator.run(mission, *system, nullptr, &monitor);
        if (monitor.report().detected) ++clean_alarms;
      }
      if (!outcome.result.found) continue;
      defense::SwarmDetectionMonitor monitor(mission.num_drones(),
                                             {.threshold = threshold});
      const attack::GpsSpoofer spoofer(outcome.result.plan, mission);
      (void)simulator.run(mission, *system, &spoofer, &monitor);
      if (monitor.report().detected) ++detected;
    }

    const int found = campaign.num_found();
    table.add_row({util::format_double(distance, 0) + " m",
                   util::format_percent(campaign.success_rate(), 0),
                   found > 0 ? util::format_percent(static_cast<double>(detected) / found, 0)
                             : "n/a",
                   util::format_percent(
                       static_cast<double>(clean_alarms) /
                           static_cast<double>(campaign.outcomes.size()), 0)});
  }

  std::printf("%s\n", table.render("Attack success vs. detectability "
                                   "(innovation threshold 10 m)").c_str());
  std::printf("Expected: 5-10 m attacks succeed and evade detection (the paper's\n"
              "stealthiness argument); only larger deviations trip the defense.\n");
  return 0;
}
