// Shared plumbing for the table/figure benchmark binaries.
//
// Every binary accepts:
//   --missions=N   missions per configuration (env SWARMFUZZ_MISSIONS)
//   --threads=N    worker threads             (env SWARMFUZZ_THREADS)
//   --budget=N     search-iteration budget per mission (env SWARMFUZZ_BUDGET)
//   --seed=N       campaign base seed         (env SWARMFUZZ_SEED)
// The paper runs 100 missions per configuration; the defaults here are
// smaller so the whole harness completes in minutes on one core.
#pragma once

#include <cstdio>
#include <string>

#include "fuzz/campaign.h"
#include "fuzz/report.h"
#include "util/options.h"

namespace swarmfuzz::bench {

struct BenchOptions {
  int missions = 40;
  int threads = 0;   // 0 = hardware concurrency
  int budget = 60;
  std::uint64_t seed = 1000;
};

inline BenchOptions parse_bench_options(int argc, const char* const* argv,
                                        int default_missions = 40) {
  const util::Options opts = util::Options::parse(argc, argv);
  BenchOptions bench;
  bench.missions = opts.get_int("missions", default_missions);
  bench.threads = opts.get_int("threads", 0);
  bench.budget = opts.get_int("budget", 60);
  bench.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1000));
  return bench;
}

// Campaign configuration matching the paper's experimental setup
// (section V-A) with the simulation resolution used throughout this repo.
inline fuzz::CampaignConfig paper_campaign(const BenchOptions& bench) {
  fuzz::CampaignConfig config;
  config.num_missions = bench.missions;
  config.base_seed = bench.seed;
  config.num_threads = bench.threads;
  config.fuzzer.sim.dt = 0.05;
  config.fuzzer.sim.gps.rate_hz = 20.0;
  config.fuzzer.mission_budget = bench.budget;
  return config;
}

// The paper's configuration grid: {5, 10, 15} drones x {5, 10} m spoofing.
inline fuzz::GridConfig paper_grid(const BenchOptions& bench) {
  fuzz::GridConfig grid;
  grid.base = paper_campaign(bench);
  return grid;
}

inline void print_header(const char* experiment, const BenchOptions& bench) {
  std::printf("=== SwarmFuzz reproduction: %s ===\n", experiment);
  std::printf("missions/config=%d budget=%d base_seed=%llu (paper: 100 missions)\n\n",
              bench.missions, bench.budget,
              static_cast<unsigned long long>(bench.seed));
}

}  // namespace swarmfuzz::bench
