// Shared plumbing for the table/figure benchmark binaries.
//
// Every binary accepts:
//   --missions=N        missions per configuration (env SWARMFUZZ_MISSIONS)
//   --threads=N         worker threads             (env SWARMFUZZ_THREADS)
//   --budget=N          search-iteration budget per mission (env SWARMFUZZ_BUDGET)
//   --seed=N            campaign base seed         (env SWARMFUZZ_SEED)
//   --checkpoint-dir=D  checkpoint campaigns to D/<label>.jsonl and resume
//                       interrupted runs            (env SWARMFUZZ_CHECKPOINT_DIR)
//   --fresh             ignore existing checkpoints, start over
//   --telemetry=FILE    stream per-mission JSONL telemetry to FILE
//   --report=FILE       save the rendered tables to FILE atomically
//                       (write-temp-then-rename; env SWARMFUZZ_REPORT)
// The paper runs 100 missions per configuration; the defaults here are
// smaller so the whole harness completes in minutes on one core.
#pragma once

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "fuzz/campaign.h"
#include "fuzz/report.h"
#include "fuzz/telemetry.h"
#include "util/fileio.h"
#include "util/options.h"

namespace swarmfuzz::bench {

struct BenchOptions {
  int missions = 40;
  int threads = 0;   // 0 = hardware concurrency
  int budget = 60;
  std::uint64_t seed = 1000;
  std::string checkpoint_dir;  // empty = no checkpointing
  bool fresh = false;          // true = discard existing checkpoints
  std::string telemetry_path;  // empty = no telemetry stream
  std::string report_path;     // empty = stdout only
};

inline BenchOptions parse_bench_options(int argc, const char* const* argv,
                                        int default_missions = 40) {
  const util::Options opts = util::Options::parse(argc, argv);
  BenchOptions bench;
  bench.missions = opts.get_int("missions", default_missions);
  bench.threads = opts.get_int("threads", 0);
  bench.budget = opts.get_int("budget", 60);
  bench.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1000));
  bench.checkpoint_dir = opts.get("checkpoint-dir", "");
  bench.fresh = opts.get_bool("fresh", false);
  bench.telemetry_path = opts.get("telemetry", "");
  bench.report_path = opts.get("report", "");
  return bench;
}

// Persists the rendered report text atomically (write-temp-then-rename), so
// an interrupted bench run never leaves a truncated report where a results
// pipeline expects a complete one. No-op when --report is unset.
inline void save_report(const BenchOptions& bench, const std::string& text) {
  if (bench.report_path.empty()) return;
  util::write_file_atomic(bench.report_path, text);
  std::printf("report saved to %s\n", bench.report_path.c_str());
}

// Optional shared telemetry sink; keep it alive for the whole run and pass
// its .get() as CampaignConfig::telemetry / GridConfig::base.telemetry.
inline std::unique_ptr<fuzz::JsonlTelemetrySink> make_telemetry(
    const BenchOptions& bench) {
  if (bench.telemetry_path.empty()) return nullptr;
  return std::make_unique<fuzz::JsonlTelemetrySink>(bench.telemetry_path,
                                                    /*append=*/true);
}

// Campaign configuration matching the paper's experimental setup
// (section V-A) with the simulation resolution used throughout this repo.
inline fuzz::CampaignConfig paper_campaign(const BenchOptions& bench) {
  fuzz::CampaignConfig config;
  config.num_missions = bench.missions;
  config.base_seed = bench.seed;
  config.num_threads = bench.threads;
  config.fuzzer.sim.dt = 0.05;
  config.fuzzer.sim.gps.rate_hz = 20.0;
  config.fuzzer.mission_budget = bench.budget;
  config.resume = !bench.fresh;
  return config;
}

// Checkpoints `config` at <checkpoint-dir>/<label>.jsonl (creating the
// directory) so the campaign resumes if the binary is re-run after an
// interruption. No-op when --checkpoint-dir is unset.
inline void enable_checkpoint(fuzz::CampaignConfig& config,
                              const BenchOptions& bench,
                              const std::string& label) {
  if (bench.checkpoint_dir.empty()) return;
  std::filesystem::create_directories(bench.checkpoint_dir);
  config.checkpoint_path =
      (std::filesystem::path{bench.checkpoint_dir} / (label + ".jsonl")).string();
}

// The paper's configuration grid: {5, 10, 15} drones x {5, 10} m spoofing.
inline fuzz::GridConfig paper_grid(const BenchOptions& bench) {
  fuzz::GridConfig grid;
  grid.base = paper_campaign(bench);
  grid.checkpoint_dir = bench.checkpoint_dir;
  return grid;
}

inline void print_header(const char* experiment, const BenchOptions& bench) {
  std::printf("=== SwarmFuzz reproduction: %s ===\n", experiment);
  std::printf("missions/config=%d budget=%d base_seed=%llu (paper: 100 missions)\n",
              bench.missions, bench.budget,
              static_cast<unsigned long long>(bench.seed));
  if (!bench.checkpoint_dir.empty()) {
    std::printf("checkpoints: %s (%s)\n", bench.checkpoint_dir.c_str(),
                bench.fresh ? "fresh start" : "resuming completed missions");
  }
  std::printf("\n");
}

}  // namespace swarmfuzz::bench
