#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against a saved baseline.

Usage: compare_bench.py BASELINE_JSON FRESH_JSON

Both inputs may be raw google-benchmark output or the repo's BENCH_micro.json
(whose top-level "benchmarks" holds the most recent run). Prints a comparison
table for every benchmark present in both files, then exits non-zero if any
*guarded* series slowed down by more than the threshold. Guarded series are
BM_FullMission, BM_FuzzMission and BM_FuzzMissionParallel (the whole-mission
and whole-fuzz wall times a campaign repeats hundreds of times, serial and
eval-pooled) plus the large-swarm scaling series — BM_ControllerEvaluation
and BM_NeighborQuery at N >= 100 — which pin the spatial-grid hot path.
Other series are reported but never gate: they are too small/noisy for
shared CI runners.

Repetitions of the same benchmark name are reduced to the median, which is
what google-benchmark itself recommends comparing.

The intra-tick threaded series (BM_FullMissionSimThreads,
BM_ControllerEvaluationThreaded) are guarded only when BOTH runs recorded
num_threads_available > 1 in their JSON context: on a single-core host those
arms measure pure chunk-handoff overhead, which is real but not the quantity
the guard protects, so they are printed with a "(1-cpu, not gated)"
annotation instead.
"""

import json
import statistics
import sys

GUARDED_PREFIXES = (
    "BM_FullMission",
    "BM_FuzzMission",
    "BM_FuzzMissionParallel",
    "BM_EvolutionaryFuzz",
    # Large-swarm scaling series (grid-on and pair-scan arms alike); the
    # small-N arms (5/10/15) run in microseconds and stay unguarded.
    "BM_ControllerEvaluation/100",
    "BM_ControllerEvaluation/250",
    "BM_ControllerEvaluation/500",
    "BM_ControllerEvaluation/1000",
    "BM_NeighborQuery/100",
    "BM_NeighborQuery/250",
    "BM_NeighborQuery/500",
    "BM_NeighborQuery/1000",
)
# Guarded too, but only on multi-core hosts (see module docstring). Listed
# separately so BM_FullMissionSimThreads is not swept up by the
# "BM_FullMission" prefix unconditionally.
THREADED_PREFIXES = (
    "BM_FullMissionSimThreads",
    "BM_ControllerEvaluationThreaded",
)
THRESHOLD = 0.25  # fail on >25% slowdown of a guarded benchmark

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """(name -> median real_time ns, num_threads_available) from raw or
    BENCH_micro.json layout. num_threads_available comes from the custom
    context the bench binary stamps; runs recorded before it existed count
    as single-threaded (their threaded arms, if any, were never parallel)."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for entry in doc.get("benchmarks", []):
        # Skip mean/median/stddev rows from --benchmark_repetitions runs;
        # we aggregate the raw iterations ourselves.
        if entry.get("run_type") == "aggregate":
            continue
        ns = entry["real_time"] * UNIT_TO_NS[entry.get("time_unit", "ns")]
        times.setdefault(entry["name"], []).append(ns)
    try:
        num_threads = int(doc.get("context", {}).get("num_threads_available", 1))
    except (TypeError, ValueError):
        num_threads = 1
    return ({name: statistics.median(vals) for name, vals in times.items()},
            num_threads)


def fmt(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 64
    baseline, baseline_threads = load_benchmarks(argv[1])
    fresh, fresh_threads = load_benchmarks(argv[2])
    common = [name for name in fresh if name in baseline]
    if not common:
        print("error: no common benchmarks between the two files", file=sys.stderr)
        return 1

    # Threaded arms only gate when both runs could actually run in parallel.
    gate_threaded = baseline_threads > 1 and fresh_threads > 1
    if not gate_threaded:
        print(f"note: num_threads_available baseline={baseline_threads} "
              f"fresh={fresh_threads}; threaded series "
              f"({', '.join(THREADED_PREFIXES)}) reported but not gated")

    regressions = []
    width = max(len(name) for name in common)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'fresh':>10}  {'ratio':>6}")
    for name in common:
        ratio = fresh[name] / baseline[name]
        threaded = name.startswith(THREADED_PREFIXES)
        guarded = (threaded and gate_threaded) or (
            not threaded and name.startswith(GUARDED_PREFIXES))
        flag = ""
        if guarded and ratio > 1.0 + THRESHOLD:
            flag = "  REGRESSION"
            regressions.append((name, ratio))
        elif guarded:
            flag = "  (guarded)"
        elif threaded:
            flag = "  (1-cpu, not gated)"
        print(f"{name:<{width}}  {fmt(baseline[name]):>10}  {fmt(fresh[name]):>10}"
              f"  {ratio:>5.2f}x{flag}")

    missing = sorted(set(baseline) - set(fresh))
    if missing:
        print(f"note: {len(missing)} baseline benchmark(s) absent from fresh run: "
              + ", ".join(missing))

    if regressions:
        print(f"\nFAIL: {len(regressions)} guarded benchmark(s) slowed by more "
              f"than {THRESHOLD:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline")
        return 1
    print(f"\nOK: no guarded benchmark slowed by more than {THRESHOLD:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
