// Reproduces Table II: average number of search iterations SwarmFuzz takes
// to find SPVs, per configuration.
//
// Paper values: 6.33/9.3/12.65 (5 m) and 6.93/9.91/13.47 (10 m). Expected
// shape: iterations grow with swarm size (more drone-pair interactions) and
// are nearly unaffected by the spoofing distance.
#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace swarmfuzz;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv, 30);
  bench::print_header("Table II (search iterations)", options);

  const auto telemetry = bench::make_telemetry(options);
  fuzz::GridConfig grid_config = bench::paper_grid(options);
  grid_config.base.telemetry = telemetry.get();
  const std::vector<fuzz::GridCell> grid = fuzz::run_grid(grid_config);
  const std::string successful_table = fuzz::format_iterations_table(grid);
  std::printf("%s\n", successful_table.c_str());

  // Also show the all-missions average (successes + abandoned searches),
  // the runtime-overhead view used in Table III.
  util::TextTable table({"", "5-drone", "10-drone", "15-drone"});
  for (const double d : {5.0, 10.0}) {
    std::vector<std::string> row{util::format_double(d, 0) + "m-spoofing"};
    for (const int size : {5, 10, 15}) {
      for (const fuzz::GridCell& cell : grid) {
        if (cell.swarm_size == size && cell.spoof_distance == d) {
          row.push_back(util::format_double(cell.result.avg_iterations_all()));
        }
      }
    }
    table.add_row(std::move(row));
  }
  const std::string all_table = table.render("Average iterations over all missions");
  std::printf("%s\n", all_table.c_str());
  bench::save_report(options, successful_table + "\n" + all_table);

  std::printf("Paper reference (successful missions):\n");
  std::printf("  5m-spoofing : 6.33 / 9.30 / 12.65\n");
  std::printf("  10m-spoofing: 6.93 / 9.91 / 13.47\n");
  return 0;
}
