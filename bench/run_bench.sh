#!/usr/bin/env sh
# Runs the micro-benchmark suite and writes machine-readable results to
# BENCH_micro.json at the repo root (or the first non-flag argument).
#
# The bench binary is taken from $BENCH_BUILD_DIR (default ./build-rel, the
# conventional Release tree: cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
# && cmake --build build-rel -j --target bench_micro).
#
# Baselines recorded from unoptimized binaries are worse than none: every
# later Release run looks like a massive improvement and real regressions
# hide inside the margin. The binary stamps its configure-time build type
# into the JSON context (swarmfuzz_build_type); this script probes it and
# refuses anything but Release unless --allow-debug is passed.
#
# Compare against a saved baseline with bench/compare_bench.py to catch
# hot-path regressions; the headline series are BM_FullMission, BM_FuzzMission,
# BM_FuzzMissionParallel (whole-mission wall time, serial and eval-pooled)
# and the large-swarm scaling series BM_ControllerEvaluation/BM_NeighborQuery.
# The intra-tick threaded series (BM_FullMissionSimThreads,
# BM_ControllerEvaluationThreaded) record num_threads_available in the JSON
# context; compare_bench.py gates them only when both runs had more than one
# hardware thread — on a 1-cpu host they measure handoff overhead, not
# scaling, and are annotated instead of gated.
set -eu

repo_root="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
build_dir="${BENCH_BUILD_DIR:-$repo_root/build-rel}"
bench_bin="$build_dir/bench/bench_micro"

allow_debug=0
out="$repo_root/BENCH_micro.json"
for arg in "$@"; do
  case "$arg" in
    --allow-debug) allow_debug=1 ;;
    --*) echo "error: unknown flag $arg" >&2; exit 64 ;;
    *) out="$arg" ;;
  esac
done

if [ ! -x "$bench_bin" ]; then
  echo "error: $bench_bin not found; build first:" >&2
  echo "  cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release" >&2
  echo "  cmake --build build-rel -j --target bench_micro" >&2
  exit 1
fi

# Probe the binary's stamped build type without running any benchmark.
build_type="$("$bench_bin" --swarmfuzz_print_build_type 2>/dev/null || true)"
if [ "$build_type" != "Release" ] && [ "$allow_debug" -ne 1 ]; then
  echo "error: $bench_bin was configured as '${build_type:-unknown}', not Release." >&2
  echo "Recording a baseline from an unoptimized build makes later comparisons" >&2
  echo "meaningless. Rebuild with -DCMAKE_BUILD_TYPE=Release, or pass" >&2
  echo "--allow-debug to record anyway (never commit such a baseline)." >&2
  exit 1
fi

"$bench_bin" \
  --benchmark_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}" \
  --benchmark_out="$out" \
  --benchmark_out_format=json

echo "wrote $out (swarmfuzz_build_type=${build_type:-unknown})"
