#!/usr/bin/env sh
# Runs the micro-benchmark suite and writes machine-readable results to
# BENCH_micro.json at the repo root (or $1 if given). Assumes the benchmarks
# were built into ./build (cmake -B build -S . && cmake --build build -j).
#
# Compare against a saved baseline with bench/compare_bench.py to catch
# hot-path regressions; the headline series are BM_FullMission, BM_FuzzMission
# and BM_FuzzMissionParallel (whole-mission wall time, serial and eval-pooled,
# the units a fuzzing campaign repeats hundreds of times).
set -eu

repo_root="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
bench_bin="$repo_root/build/bench/bench_micro"
out="${1:-$repo_root/BENCH_micro.json}"

if [ ! -x "$bench_bin" ]; then
  echo "error: $bench_bin not found; build first: cmake --build build -j" >&2
  exit 1
fi

"$bench_bin" \
  --benchmark_format=json \
  --benchmark_repetitions="${BENCH_REPETITIONS:-1}" \
  --benchmark_out="$out" \
  --benchmark_out_format=json

echo "wrote $out"
