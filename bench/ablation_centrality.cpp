// Extension ablation (not in the paper): is PageRank the right centrality
// for SVG seed scheduling? The paper argues for PageRank over degree and
// eigenvector centrality (section IV-B); this bench runs SwarmFuzz with each
// measure on the 5-drone / 10 m configuration and compares outcomes.
#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace swarmfuzz;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv, 30);
  bench::print_header("Ablation: SVG centrality measure (5 drones / 10 m)", options);

  struct Variant {
    const char* name;
    fuzz::CentralityKind kind;
  };
  const Variant variants[] = {
      {"PageRank", fuzz::CentralityKind::kPageRank},
      {"Eigenvector", fuzz::CentralityKind::kEigenvector},
      {"In-degree", fuzz::CentralityKind::kDegree},
  };

  util::TextTable table({"Centrality", "Success rate", "Avg. iterations (all)",
                         "Avg. iterations (successful)"});
  for (const Variant& variant : variants) {
    fuzz::CampaignConfig config = bench::paper_campaign(options);
    config.mission.num_drones = 5;
    config.fuzzer.spoof_distance = 10.0;
    config.fuzzer.seeds.centrality = variant.kind;
    bench::enable_checkpoint(config, options, std::string{"centrality-"} + variant.name);
    const fuzz::CampaignResult result = fuzz::run_campaign(config);
    table.add_row({variant.name, util::format_percent(result.success_rate(), 0),
                   util::format_double(result.avg_iterations_all()),
                   util::format_double(result.avg_iterations_successful())});
  }
  std::printf("%s\n", table.render("SVG centrality ablation").c_str());
  std::printf("Expected: PageRank matches or beats the simpler measures; the\n"
              "gap narrows on small swarms where the SVG has few nodes.\n");
  return 0;
}
