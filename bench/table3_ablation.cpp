// Reproduces Table III: ablation of SwarmFuzz's two heuristics on the
// 5-drone / 10 m-spoofing configuration.
//
//   SwarmFuzz : SVG seed scheduling + gradient-guided search
//   R_Fuzz    : random pairs, random parameters
//   G_Fuzz    : random pairs, gradient search (no SVG)
//   S_Fuzz    : SVG scheduling, random parameters (no gradient)
//   E_Fuzz    : SVG-seeded corpus, novelty-guided mutation (no gradient)
//
// Paper values: success 49/8/5/12 %, avg iterations 6.93/19.52/6.75/19.85.
// Expected shape: SwarmFuzz's success rate is several times higher than all
// ablations; gradient-based fuzzers consume ~3x fewer iterations because
// they abandon hopeless seeds early instead of burning the budget.
#include <algorithm>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace swarmfuzz;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv, 50);
  bench::print_header("Table III (fuzzer ablation, 5 drones / 10 m)", options);

  // The paper caps every fuzzer at 20 search iterations per seed; give all
  // variants the same mission-level budget so the comparison is fair.
  const auto telemetry = bench::make_telemetry(options);
  std::vector<fuzz::CampaignResult> results;
  for (const fuzz::FuzzerKind kind :
       {fuzz::FuzzerKind::kSwarmFuzz, fuzz::FuzzerKind::kRandom,
        fuzz::FuzzerKind::kGradientOnly, fuzz::FuzzerKind::kSvgOnly,
        // Appended last: the summary lines below index results[] positionally.
        fuzz::FuzzerKind::kEvolutionary}) {
    fuzz::CampaignConfig config = bench::paper_campaign(options);
    config.kind = kind;
    config.mission.num_drones = 5;
    config.fuzzer.spoof_distance = 10.0;
    config.telemetry = telemetry.get();
    bench::enable_checkpoint(config, options,
                             std::string{fuzz::fuzzer_kind_name(kind)});
    results.push_back(fuzz::run_campaign(config));
  }

  const std::string table = fuzz::format_ablation_table(results);
  std::printf("%s\n", table.c_str());
  bench::save_report(options, table);

  const double swarmfuzz_rate = results[0].success_rate();
  const double g_rate = results[2].success_rate();
  const double swarmfuzz_iters = results[0].avg_iterations_all();
  const double s_iters = results[3].avg_iterations_all();
  if (g_rate > 0.0) {
    std::printf("SVG heuristic boost (SwarmFuzz vs G_Fuzz): %.1fx success rate\n",
                swarmfuzz_rate / g_rate);
  }
  if (swarmfuzz_iters > 0.0) {
    std::printf("Gradient heuristic saving (S_Fuzz vs SwarmFuzz): %.1fx iterations\n",
                s_iters / swarmfuzz_iters);
  }
  const double r_attempts = results[1].avg_attempts_all();
  const double e_attempts = results[4].avg_attempts_all();
  if (e_attempts > 0.0) {
    std::printf("Novelty feedback boost (E_Fuzz vs R_Fuzz): %.2fx success rate, "
                "%.1fx attempts\n",
                results[4].success_rate() / std::max(results[1].success_rate(), 1e-9),
                r_attempts / e_attempts);
  }
  std::printf("\nPaper reference: success 49%%/8%%/5%%/12%%, iterations "
              "6.93/19.52/6.75/19.85\n");
  return 0;
}
