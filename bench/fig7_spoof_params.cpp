// Reproduces Fig. 7: the distribution (box statistics) of the GPS spoofing
// parameters - start time t_s and duration dt - that SwarmFuzz discovers,
// per swarm configuration ("5d-5m" = 5-drone swarm under 5 m spoofing).
//
// Paper reference: average start time 6.91 s and average duration 10.33 s
// across configurations (on ~120 s missions with the obstacle at half-way).
#include "bench_common.h"
#include "math/stats.h"
#include "util/table.h"

namespace {

void print_box_table(const char* title,
                     const std::vector<std::pair<std::string, swarmfuzz::math::BoxStats>>&
                         series) {
  swarmfuzz::util::TextTable table(
      {"config", "n", "min", "q1", "median", "q3", "max", "mean"});
  for (const auto& [label, box] : series) {
    table.add_row({label, std::to_string(box.count),
                   swarmfuzz::util::format_double(box.min),
                   swarmfuzz::util::format_double(box.q1),
                   swarmfuzz::util::format_double(box.median),
                   swarmfuzz::util::format_double(box.q3),
                   swarmfuzz::util::format_double(box.max),
                   swarmfuzz::util::format_double(box.mean)});
  }
  std::printf("%s\n", table.render(title).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmfuzz;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv, 30);
  bench::print_header("Fig. 7 (spoofing parameters found)", options);

  const std::vector<fuzz::GridCell> grid = fuzz::run_grid(bench::paper_grid(options));

  std::vector<std::pair<std::string, math::BoxStats>> start_times;
  std::vector<std::pair<std::string, math::BoxStats>> durations;
  double ts_sum = 0.0, dt_sum = 0.0;
  int found = 0;
  for (const fuzz::GridCell& cell : grid) {
    const std::vector<double> ts = cell.result.found_start_times();
    const std::vector<double> dt = cell.result.found_durations();
    start_times.emplace_back(fuzz::cell_label(cell), math::box_stats(ts));
    durations.emplace_back(fuzz::cell_label(cell), math::box_stats(dt));
    for (const double v : ts) ts_sum += v;
    for (const double v : dt) dt_sum += v;
    found += static_cast<int>(ts.size());
  }

  print_box_table("Fig. 7 (left): spoofing start time t_s (s)", start_times);
  print_box_table("Fig. 7 (right): spoofing duration dt (s)", durations);
  if (found > 0) {
    std::printf("Average across configurations: t_s = %.2f s, dt = %.2f s (%d SPVs)\n",
                ts_sum / found, dt_sum / found, found);
  }
  std::printf("Paper reference: average t_s = 6.91 s, average dt = 10.33 s.\n");
  return 0;
}
