// Reproduces Fig. 6: how the victim's distance to the obstacle (VDO) governs
// vulnerability.
//   Fig. 6a-6c: cumulative success rate vs VDO, one panel per swarm size,
//               one series per spoofing distance (5 m / 10 m).
//   Fig. 6d  : empirical CDF of mission VDOs per swarm size.
//
// Expected shape (paper): cumulative success decreases with VDO; the 10 m
// series dominates the 5 m series; larger swarms have stochastically smaller
// VDOs (their CDF lies above/left), which is why they are more vulnerable.
#include <algorithm>

#include "bench_common.h"
#include "math/stats.h"
#include "util/table.h"

namespace {

// Cumulative success rate evaluated at fixed VDO thresholds.
std::vector<std::pair<double, double>> curve_at_thresholds(
    const swarmfuzz::fuzz::CampaignResult& result) {
  const auto raw = result.cumulative_success_by_vdo();
  std::vector<std::pair<double, double>> sampled;
  for (const double threshold : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0}) {
    // Last curve point with vdo <= threshold.
    double rate = 0.0;
    bool any = false;
    for (const auto& [vdo, r] : raw) {
      if (vdo <= threshold) {
        rate = r;
        any = true;
      }
    }
    if (any) sampled.emplace_back(threshold, rate);
  }
  return sampled;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swarmfuzz;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv, 50);
  bench::print_header("Fig. 6 (VDO analysis)", options);

  const std::vector<fuzz::GridCell> grid = fuzz::run_grid(bench::paper_grid(options));

  // Fig. 6a-6c: one panel per swarm size.
  for (const int size : {5, 10, 15}) {
    std::printf("--- Fig. 6%c: cumulative success rate vs VDO, %d-drone swarm ---\n",
                size == 5 ? 'a' : (size == 10 ? 'b' : 'c'), size);
    for (const fuzz::GridCell& cell : grid) {
      if (cell.swarm_size != size) continue;
      const auto curve = curve_at_thresholds(cell.result);
      std::printf("%s\n",
                  util::render_xy_series(
                      util::format_double(cell.spoof_distance, 0) + "m spoofing",
                      "VDO<=x (m)", "cum. success", curve)
                      .c_str());
    }
  }

  // Fig. 6d: ECDF of mission VDOs per swarm size (series coincide across
  // spoofing distances, so use the 10 m campaigns).
  std::printf("--- Fig. 6d: empirical CDF of mission VDOs ---\n");
  for (const fuzz::GridCell& cell : grid) {
    if (cell.spoof_distance != 10.0) continue;
    const std::vector<double> vdos = cell.result.mission_vdos();
    std::vector<std::pair<double, double>> cdf;
    for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0}) {
      cdf.emplace_back(x, math::ecdf(vdos, x));
    }
    std::printf("%s\n",
                util::render_xy_series(
                    std::to_string(cell.swarm_size) + "-drone swarm", "VDO<=x (m)",
                    "F(x)", cdf)
                    .c_str());
  }

  std::printf(
      "Paper reference shapes: cumulative success decreases with VDO;\n"
      "10m series >= 5m series; F(4m) was ~0.20 (5 drones), ~0.65 (10), ~0.98 (15).\n");
  return 0;
}
