// Extension experiment (paper section VI, limitation 1): SwarmFuzz "should
// also work on other decentralized swarm control algorithms" because it only
// relies on the generic goal structure and the convexity of the objective.
// This bench runs the same SwarmFuzz campaign against all three controllers
// implemented in this repo (5 drones, 10 m spoofing).
//
// Expected: the pipeline runs unchanged for every controller; absolute
// success rates differ because each controller balances the goals (and thus
// exposes SPVs) differently.
#include "bench_common.h"
#include "cli/commands.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace swarmfuzz;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv, 20);
  bench::print_header("Ablation: controller-agnosticism (5 drones / 10 m)", options);

  util::TextTable table({"Controller", "Clean-safe missions", "Success rate",
                         "Avg. iterations (successful)"});
  for (const char* name : {"vasarhelyi", "olfati_saber", "reynolds"}) {
    fuzz::CampaignConfig config = bench::paper_campaign(options);
    config.mission.num_drones = 5;
    config.fuzzer.spoof_distance = 10.0;
    config.clean_failure_retries = 0;  // show each controller's raw safety
    const std::string controller = name;
    config.controller_factory = [controller] {
      return cli::make_controller(controller);
    };
    bench::enable_checkpoint(config, options, "controller-" + controller);
    const fuzz::CampaignResult result = fuzz::run_campaign(config);
    table.add_row({name,
                   std::to_string(result.num_fuzzable()) + "/" +
                       std::to_string(static_cast<int>(result.outcomes.size())),
                   util::format_percent(result.success_rate(), 0),
                   util::format_double(result.avg_iterations_successful())});
  }
  std::printf("%s\n", table.render("SwarmFuzz across swarm controllers").c_str());
  std::printf("The fuzzing pipeline (SVG + PageRank + gradient search) is reused\n"
              "verbatim for each controller; only the control law changes.\n");
  return 0;
}
