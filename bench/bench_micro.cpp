// Micro-benchmarks (google-benchmark) for the substrate primitives that
// dominate fuzzing campaigns: controller evaluation, full simulation steps,
// whole-mission runs, SVG construction and PageRank.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/fuzzer.h"
#include "fuzz/lease.h"
#include "fuzz/objective.h"
#include "fuzz/seeds.h"
#include "fuzz/svg.h"
#include "graph/pagerank.h"
#include "math/geometry.h"
#include "math/rng.h"
#include "sim/simulator.h"
#include "sim/tick_pool.h"
#include "swarm/comm.h"
#include "swarm/spatial_grid.h"
#include "swarm/tick_context.h"
#include "swarm/vasarhelyi.h"
#include "util/logging.h"

namespace {

using namespace swarmfuzz;

sim::MissionSpec mission_of(int drones) {
  sim::MissionConfig config;
  config.num_drones = drones;
  // The default 50 m spawn box only fits ~30 drones at the default 8 m
  // separation; large swarms get a box that grows with sqrt(N) so spawn
  // density (and thus neighbourhood structure) stays comparable. Their
  // missions are capped at 30 s (the examples/large_swarm_scaling workload)
  // so the whole-mission arms stay sub-second per iteration: the default
  // 180 s cap would put BM_FullMission/1000 at ~10 s per iteration, far too
  // slow for the CI smoke run and no more informative per step.
  if (drones > 30) {
    config.spawn_range = 2.2 * config.min_spawn_separation *
                         std::sqrt(static_cast<double>(drones));
    config.max_time = 30.0;
  }
  return sim::generate_mission(config, 1005);
}

sim::WorldSnapshot snapshot_of(const sim::MissionSpec& mission) {
  sim::WorldSnapshot snap;
  snap.reserve(mission.num_drones());
  for (int i = 0; i < mission.num_drones(); ++i) {
    snap.push_back(
        {i, mission.initial_positions[static_cast<size_t>(i)], {2.5, 0, 0}});
  }
  return snap;
}

// RAII toggle for the process-wide spatial-grid policy, so grid-on/off arms
// of a benchmark can coexist in one binary run.
class GridPolicyScope {
 public:
  explicit GridPolicyScope(bool enabled) : saved_(swarm::spatial_grid_policy()) {
    swarm::spatial_grid_policy().enabled = enabled;
  }
  ~GridPolicyScope() { swarm::spatial_grid_policy() = saved_; }

 private:
  swarm::SpatialGridPolicy saved_;
};

// Whole-swarm controller evaluation through the batch entry point. Arg0 =
// drones, arg1 = spatial grid enabled (0 forces the dense pair-scan path).
void BM_ControllerEvaluation(benchmark::State& state) {
  const int drones = static_cast<int>(state.range(0));
  const GridPolicyScope policy(state.range(1) != 0);
  const sim::MissionSpec mission = mission_of(drones);
  const sim::WorldSnapshot snap = snapshot_of(mission);
  const swarm::VasarhelyiController controller;
  std::vector<sim::Vec3> desired(static_cast<size_t>(drones));
  for (auto _ : state) {
    controller.desired_velocity_all(snap, mission, desired);
    benchmark::DoNotOptimize(desired.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * drones);
}
BENCHMARK(BM_ControllerEvaluation)
    ->Args({5, 1})
    ->Args({10, 1})
    ->Args({15, 1})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({250, 0})
    ->Args({250, 1})
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});

// Whole-swarm controller evaluation through the explicit TickExecutor: the
// same batch kernel as BM_ControllerEvaluation (grid on), chunked over a
// TickPool. Arg0 = drones, arg1 = threads; the /1 arm measures the executor
// plumbing against the serial baseline above, multi-thread arms measure
// intra-tick scaling. Bit-identical across arms (ParallelTick golden tests);
// speedups need spare hardware threads — on a single-core runner every arm
// degrades to roughly serial time plus handoff overhead (compare_bench.py
// only guards these arms when both runs saw num_threads_available > 1).
void BM_ControllerEvaluationThreaded(benchmark::State& state) {
  const int drones = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const GridPolicyScope policy(true);
  const sim::MissionSpec mission = mission_of(drones);
  const sim::WorldSnapshot snap = snapshot_of(mission);
  const swarm::VasarhelyiController controller;
  std::vector<sim::Vec3> desired(static_cast<size_t>(drones));
  sim::TickPool pool(threads);
  swarm::TickContext context(pool.threads());
  const swarm::TickExecutor exec{&pool, &context};
  for (auto _ : state) {
    controller.desired_velocity_all(snap, mission, desired, exec);
    benchmark::DoNotOptimize(desired.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * drones);
}
BENCHMARK(BM_ControllerEvaluationThreaded)
    ->Args({250, 1})
    ->Args({250, 2})
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4});

// Raw neighbour-query throughput: one grid rebuild plus a comm-range gather
// per drone, versus the brute-force O(N^2) scan the grid replaces. Arg0 =
// drones, arg1 = 1 grid / 0 brute.
void BM_NeighborQuery(benchmark::State& state) {
  const int drones = static_cast<int>(state.range(0));
  const bool use_grid = state.range(1) != 0;
  const sim::MissionSpec mission = mission_of(drones);
  const sim::WorldSnapshot snap = snapshot_of(mission);
  const double range = 40.0;
  swarm::SpatialGrid grid;
  std::vector<int> cand;
  for (auto _ : state) {
    if (use_grid) {
      grid.build(std::span<const math::Vec3>(snap.gps_position), range);
      for (int i = 0; i < drones; ++i) {
        cand.clear();
        grid.gather(snap.gps_position[static_cast<size_t>(i)], range, cand);
        benchmark::DoNotOptimize(cand.data());
      }
    } else {
      for (int i = 0; i < drones; ++i) {
        cand.clear();
        for (int j = 0; j < drones; ++j) {
          if (math::distance(snap.gps_position[static_cast<size_t>(i)],
                             snap.gps_position[static_cast<size_t>(j)]) <= range) {
            cand.push_back(j);
          }
        }
        benchmark::DoNotOptimize(cand.data());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * drones);
}
BENCHMARK(BM_NeighborQuery)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({250, 0})
    ->Args({250, 1})
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});

// One control tick's worth of communication filtering: every drone's view
// of the broadcast under range-limited, lossy comms (the non-trivial path
// that cannot take the batch shortcut).
void BM_CommFilter(benchmark::State& state) {
  const int drones = static_cast<int>(state.range(0));
  const sim::MissionSpec mission = mission_of(drones);
  const sim::WorldSnapshot snap = snapshot_of(mission);
  swarm::CommModel comm({.range = 40.0, .drop_probability = 0.1});
  comm.reset(42);
  std::vector<int> members;
  for (auto _ : state) {
    for (int i = 0; i < drones; ++i) {
      benchmark::DoNotOptimize(comm.filter_into(snap, i, members));
    }
  }
  state.SetItemsProcessed(state.iterations() * drones);
}
BENCHMARK(BM_CommFilter)->Arg(5)->Arg(15);

// End-to-end fuzzing of one mission — the unit a campaign repeats hundreds
// of times; tracks how hot-path changes compound at campaign scale.
void BM_CampaignMission(benchmark::State& state) {
  const sim::MissionSpec mission = mission_of(static_cast<int>(state.range(0)));
  fuzz::FuzzerConfig config;
  config.sim.dt = 0.05;
  config.sim.gps.rate_hz = 20.0;
  config.spoof_distance = 10.0;
  config.mission_budget = 12;
  const auto fuzzer = fuzz::make_fuzzer(fuzz::FuzzerKind::kSwarmFuzz, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzzer->fuzz(mission));
  }
}
BENCHMARK(BM_CampaignMission)->Arg(5)->Unit(benchmark::kMillisecond);

// Full default-budget fuzz of one mission, the headline unit of SwarmFuzz
// throughput. Arg is prefix reuse: 0 = every objective evaluation simulates
// from t=0 (--no-prefix-reuse), 1 = evaluations resume from clean-run
// checkpoints. Results are bit-identical between the two.
void BM_FuzzMission(benchmark::State& state) {
  const sim::MissionSpec mission = mission_of(5);
  fuzz::FuzzerConfig config;
  config.sim.dt = 0.05;
  config.sim.gps.rate_hz = 20.0;
  config.spoof_distance = 10.0;
  config.prefix_reuse = state.range(0) != 0;
  const auto fuzzer = fuzz::make_fuzzer(fuzz::FuzzerKind::kSwarmFuzz, config);
  std::int64_t executed = 0, reused = 0;
  for (auto _ : state) {
    const fuzz::FuzzResult result = fuzzer->fuzz(mission);
    benchmark::DoNotOptimize(result);
    executed += result.sim_steps_executed;
    reused += result.prefix_steps_reused;
  }
  state.counters["sim_steps"] =
      benchmark::Counter(static_cast<double>(executed), benchmark::Counter::kAvgIterations);
  state.counters["steps_reused"] =
      benchmark::Counter(static_cast<double>(reused), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FuzzMission)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// BM_FuzzMission with the search's batch evaluations (multi-start
// candidates, FD stencils) fanned out over an EvalPool. Arg = eval threads;
// 1 is the serial path. Results are bit-identical across arms (the
// ParallelSearch golden tests assert it) — only wall time may differ, and
// the speedup only materialises with spare hardware threads.
void BM_FuzzMissionParallel(benchmark::State& state) {
  const sim::MissionSpec mission = mission_of(5);
  fuzz::FuzzerConfig config;
  config.sim.dt = 0.05;
  config.sim.gps.rate_hz = 20.0;
  config.spoof_distance = 10.0;
  config.eval_threads = static_cast<int>(state.range(0));
  const auto fuzzer = fuzz::make_fuzzer(fuzz::FuzzerKind::kSwarmFuzz, config);
  int batches = 0;
  for (auto _ : state) {
    const fuzz::FuzzResult result = fuzzer->fuzz(mission);
    benchmark::DoNotOptimize(result);
    batches += result.eval_batches;
  }
  state.counters["eval_batches"] = benchmark::Counter(
      static_cast<double>(batches), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FuzzMissionParallel)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Full default-budget E_Fuzz of one mission: SVG-seeded corpus, mutation
// batches through the speculate-then-replay path, novelty admission and
// periodic minimization. Arg = eval threads (results are bit-identical
// across arms; the Evolutionary golden tests assert it).
void BM_EvolutionaryFuzz(benchmark::State& state) {
  const sim::MissionSpec mission = mission_of(5);
  fuzz::FuzzerConfig config;
  config.sim.dt = 0.05;
  config.sim.gps.rate_hz = 20.0;
  config.spoof_distance = 10.0;
  config.eval_threads = static_cast<int>(state.range(0));
  const auto fuzzer = fuzz::make_fuzzer(fuzz::FuzzerKind::kEvolutionary, config);
  int admissions = 0, bins = 0;
  for (auto _ : state) {
    const fuzz::FuzzResult result = fuzzer->fuzz(mission);
    benchmark::DoNotOptimize(result);
    admissions += result.corpus_admissions;
    bins += result.novelty_bins;
  }
  state.counters["corpus_admissions"] = benchmark::Counter(
      static_cast<double>(admissions), benchmark::Counter::kAvgIterations);
  state.counters["novelty_bins"] = benchmark::Counter(
      static_cast<double>(bins), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_EvolutionaryFuzz)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// One late-window objective evaluation — the inner loop of the gradient
// search, where prefix reuse pays the most (the spoofing window sits near
// the clean closest approach, so most of the mission is reusable prefix).
// Arg 0/1 as in BM_FuzzMission.
void BM_ObjectiveEval(benchmark::State& state) {
  const bool reuse = state.range(0) != 0;
  const sim::MissionSpec mission = mission_of(5);
  sim::SimulationConfig sim_config;
  sim_config.dt = 0.05;
  sim_config.gps.rate_hz = 20.0;
  const sim::Simulator simulator(sim_config);
  auto system = swarm::make_vasarhelyi_system();

  fuzz::PrefixCache prefix;
  sim::RunHooks hooks;
  if (reuse) hooks.checkpoints = &prefix;
  const sim::RunResult clean = simulator.run(mission, *system, hooks);
  if (reuse) prefix.set_source(clean.recorder);

  const fuzz::Seed seed{.target = 0,
                        .victim = 1,
                        .direction = attack::SpoofDirection::kRight,
                        .vdo = clean.recorder.min_obstacle_distance(1)};
  const double t_ca = clean.recorder.time_of_min_obstacle_distance(1);
  const double t_s = std::max(t_ca - 15.0, 0.0);
  for (auto _ : state) {
    // A fresh Objective per iteration keeps the memo from short-circuiting
    // the simulation; construction itself is trivial.
    fuzz::Objective objective(mission, simulator, *system, seed, 10.0,
                              clean.end_time, reuse ? &prefix : nullptr);
    benchmark::DoNotOptimize(objective.evaluate(t_s, 20.0));
  }
}
BENCHMARK(BM_ObjectiveEval)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_QuadrotorStep(benchmark::State& state) {
  const auto vehicle = sim::make_vehicle(sim::VehicleType::kQuadrotor);
  vehicle->reset({0, 0, 10}, {});
  for (auto _ : state) {
    vehicle->step({2, 0, 0}, 0.005);
  }
}
BENCHMARK(BM_QuadrotorStep);

void BM_PointMassStep(benchmark::State& state) {
  const auto vehicle = sim::make_vehicle(sim::VehicleType::kPointMass);
  vehicle->reset({0, 0, 10}, {});
  for (auto _ : state) {
    vehicle->step({2, 0, 0}, 0.05);
  }
}
BENCHMARK(BM_PointMassStep);

void BM_FullMission(benchmark::State& state) {
  const int drones = static_cast<int>(state.range(0));
  const sim::MissionSpec mission = mission_of(drones);
  sim::SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  const sim::Simulator simulator(config);
  auto system = swarm::make_vasarhelyi_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(mission, *system));
  }
}
BENCHMARK(BM_FullMission)
    ->Arg(5)
    ->Arg(15)
    ->Arg(100)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// BM_FullMission with intra-tick parallelism. Arg0 = drones, arg1 =
// sim_threads. The /N/1 arms double as an overhead check (sim_threads = 1
// never builds a pool, so they must match BM_FullMission); multi-thread arms
// are the headline intra-mission scaling series — the ≥3x target for
// BM_FullMission/1000 assumes ≥4 hardware threads, and on fewer cores the
// arms still run (bit-identical) but cannot speed up, so compare_bench.py
// gates them only when num_threads_available > 1 in both runs.
void BM_FullMissionSimThreads(benchmark::State& state) {
  const int drones = static_cast<int>(state.range(0));
  const sim::MissionSpec mission = mission_of(drones);
  sim::SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  config.sim_threads = static_cast<int>(state.range(1));
  const sim::Simulator simulator(config);
  auto system = swarm::make_vasarhelyi_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(mission, *system));
  }
}
BENCHMARK(BM_FullMissionSimThreads)
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_SvgConstruction(benchmark::State& state) {
  const int drones = static_cast<int>(state.range(0));
  const sim::MissionSpec mission = mission_of(drones);
  const sim::WorldSnapshot snap = snapshot_of(mission);
  auto system = swarm::make_vasarhelyi_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzz::build_svg(snap, mission, *system,
                                             attack::SpoofDirection::kRight, 10.0));
  }
}
BENCHMARK(BM_SvgConstruction)->Arg(5)->Arg(10)->Arg(15);

void BM_PageRank(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  math::Rng rng(7);
  graph::Digraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.4)) g.add_edge(i, j, rng.uniform(0.1, 1.0));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::pagerank(g));
  }
}
BENCHMARK(BM_PageRank)->Arg(5)->Arg(15)->Arg(100);

void BM_SeedScheduling(benchmark::State& state) {
  const sim::MissionSpec mission = mission_of(static_cast<int>(state.range(0)));
  sim::SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  const sim::Simulator simulator(config);
  auto system = swarm::make_vasarhelyi_system();
  const sim::RunResult clean = simulator.run(mission, *system);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzz::schedule_seeds(clean, mission, *system, 10.0));
  }
}
BENCHMARK(BM_SeedScheduling)->Arg(5)->Arg(15);

void BM_MissionGeneration(benchmark::State& state) {
  sim::MissionConfig config;
  config.num_drones = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::generate_mission(config, ++seed));
  }
}
BENCHMARK(BM_MissionGeneration)->Arg(5)->Arg(15);

// Shard workers contend for campaign leases through append-only claim files
// (fuzz/lease.h): a claim is an exclusive append + read-back and every
// handoff is an atomic rename. Threads here are workers racing over a small
// lease ring; each iteration attempts a claim and, on winning, performs one
// renewal (the heartbeat write) before fencing the lease back for the next
// round. The claims_won/claims_lost counters show the contention mix. This
// series is filesystem-bound, so it is reported for tracking rather than
// gated by compare_bench.py.
void BM_LeaseClaimContention(benchmark::State& state) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("swarmfuzz_bench_lease_t" + std::to_string(state.threads())))
          .string();
  // Only file I/O inside the iteration loop matters, and the loop start is a
  // barrier across threads, so thread 0 can reset the directory here without
  // racing the other threads' (I/O-free) LeaseStore construction.
  const util::LogLevel saved_level = util::log_level();
  if (state.thread_index() == 0) {
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir);
    // The tight claim loop makes torn-read reclaims (a claim observed
    // mid-append) common enough to spam WARN lines; they are the protocol
    // resolving the race correctly, not a failure, so mute them here.
    util::set_log_level(util::LogLevel::kError);
  }
  fuzz::LeaseStore store(dir, /*ttl_ms=*/60'000,
                         "bench-w" + std::to_string(state.thread_index()));
  constexpr int kLeases = 8;
  std::int64_t claims_won = 0;
  std::int64_t claims_lost = 0;
  int i = 0;
  for (auto _ : state) {
    const int lease_id = i++ % kLeases;
    if (store.try_claim(lease_id)) {
      ++claims_won;
      benchmark::DoNotOptimize(store.renew(lease_id));
      store.fence_claim(lease_id);
    } else {
      ++claims_lost;
    }
  }
  if (state.thread_index() == 0) util::set_log_level(saved_level);
  state.counters["claims_won"] = static_cast<double>(claims_won);
  state.counters["claims_lost"] = static_cast<double>(claims_lost);
}
BENCHMARK(BM_LeaseClaimContention)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Instant probe for run_bench.sh: print the configure-time build type and
  // exit without touching the benchmark machinery (a never-matching
  // --benchmark_filter produces no JSON at all, so the context block cannot
  // be probed without actually running a benchmark).
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--swarmfuzz_print_build_type") {
      std::printf("%s\n", SWARMFUZZ_BUILD_TYPE);
      return 0;
    }
  }
  // The configure-time build type of THIS code (the packaged benchmark
  // library's own build type is reported separately and is typically
  // "debug" regardless). run_bench.sh reads this to refuse recording
  // baselines from unoptimized binaries.
  benchmark::AddCustomContext("swarmfuzz_build_type", SWARMFUZZ_BUILD_TYPE);
  // compare_bench.py reads this to decide whether the threaded series
  // (BM_FullMissionSimThreads, BM_ControllerEvaluationThreaded) are
  // meaningful on this host: with one hardware thread they measure pure
  // handoff overhead and are annotated rather than gated.
  benchmark::AddCustomContext("num_threads_available",
                              std::to_string(sim::hardware_threads()));
#ifdef NDEBUG
  benchmark::AddCustomContext("swarmfuzz_assertions", "off");
#else
  benchmark::AddCustomContext("swarmfuzz_assertions", "on");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
