// Micro-benchmarks (google-benchmark) for the substrate primitives that
// dominate fuzzing campaigns: controller evaluation, full simulation steps,
// whole-mission runs, SVG construction and PageRank.
#include <benchmark/benchmark.h>

#include <vector>

#include "fuzz/fuzzer.h"
#include "fuzz/seeds.h"
#include "fuzz/svg.h"
#include "graph/pagerank.h"
#include "math/rng.h"
#include "sim/simulator.h"
#include "swarm/comm.h"
#include "swarm/vasarhelyi.h"

namespace {

using namespace swarmfuzz;

sim::MissionSpec mission_of(int drones) {
  sim::MissionConfig config;
  config.num_drones = drones;
  return sim::generate_mission(config, 1005);
}

sim::WorldSnapshot snapshot_of(const sim::MissionSpec& mission) {
  sim::WorldSnapshot snap;
  for (int i = 0; i < mission.num_drones(); ++i) {
    snap.drones.push_back(
        {i, mission.initial_positions[static_cast<size_t>(i)], {2.5, 0, 0}});
  }
  return snap;
}

void BM_ControllerEvaluation(benchmark::State& state) {
  const int drones = static_cast<int>(state.range(0));
  const sim::MissionSpec mission = mission_of(drones);
  const sim::WorldSnapshot snap = snapshot_of(mission);
  const swarm::VasarhelyiController controller;
  for (auto _ : state) {
    for (int i = 0; i < drones; ++i) {
      benchmark::DoNotOptimize(controller.desired_velocity(i, snap, mission));
    }
  }
  state.SetItemsProcessed(state.iterations() * drones);
}
BENCHMARK(BM_ControllerEvaluation)->Arg(5)->Arg(10)->Arg(15);

// One control tick's worth of communication filtering: every drone's view
// of the broadcast under range-limited, lossy comms (the non-trivial path
// that cannot take the batch shortcut).
void BM_CommFilter(benchmark::State& state) {
  const int drones = static_cast<int>(state.range(0));
  const sim::MissionSpec mission = mission_of(drones);
  const sim::WorldSnapshot snap = snapshot_of(mission);
  swarm::CommModel comm({.range = 40.0, .drop_probability = 0.1});
  comm.reset(42);
  std::vector<int> members;
  for (auto _ : state) {
    for (int i = 0; i < drones; ++i) {
      benchmark::DoNotOptimize(comm.filter_into(snap, i, members));
    }
  }
  state.SetItemsProcessed(state.iterations() * drones);
}
BENCHMARK(BM_CommFilter)->Arg(5)->Arg(15);

// End-to-end fuzzing of one mission — the unit a campaign repeats hundreds
// of times; tracks how hot-path changes compound at campaign scale.
void BM_CampaignMission(benchmark::State& state) {
  const sim::MissionSpec mission = mission_of(static_cast<int>(state.range(0)));
  fuzz::FuzzerConfig config;
  config.sim.dt = 0.05;
  config.sim.gps.rate_hz = 20.0;
  config.spoof_distance = 10.0;
  config.mission_budget = 12;
  const auto fuzzer = fuzz::make_fuzzer(fuzz::FuzzerKind::kSwarmFuzz, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzzer->fuzz(mission));
  }
}
BENCHMARK(BM_CampaignMission)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_QuadrotorStep(benchmark::State& state) {
  const auto vehicle = sim::make_vehicle(sim::VehicleType::kQuadrotor);
  vehicle->reset({0, 0, 10}, {});
  for (auto _ : state) {
    vehicle->step({2, 0, 0}, 0.005);
  }
}
BENCHMARK(BM_QuadrotorStep);

void BM_PointMassStep(benchmark::State& state) {
  const auto vehicle = sim::make_vehicle(sim::VehicleType::kPointMass);
  vehicle->reset({0, 0, 10}, {});
  for (auto _ : state) {
    vehicle->step({2, 0, 0}, 0.05);
  }
}
BENCHMARK(BM_PointMassStep);

void BM_FullMission(benchmark::State& state) {
  const int drones = static_cast<int>(state.range(0));
  const sim::MissionSpec mission = mission_of(drones);
  sim::SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  const sim::Simulator simulator(config);
  auto system = swarm::make_vasarhelyi_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(mission, *system));
  }
}
BENCHMARK(BM_FullMission)->Arg(5)->Arg(15)->Unit(benchmark::kMillisecond);

void BM_SvgConstruction(benchmark::State& state) {
  const int drones = static_cast<int>(state.range(0));
  const sim::MissionSpec mission = mission_of(drones);
  const sim::WorldSnapshot snap = snapshot_of(mission);
  auto system = swarm::make_vasarhelyi_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzz::build_svg(snap, mission, *system,
                                             attack::SpoofDirection::kRight, 10.0));
  }
}
BENCHMARK(BM_SvgConstruction)->Arg(5)->Arg(10)->Arg(15);

void BM_PageRank(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  math::Rng rng(7);
  graph::Digraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.4)) g.add_edge(i, j, rng.uniform(0.1, 1.0));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::pagerank(g));
  }
}
BENCHMARK(BM_PageRank)->Arg(5)->Arg(15)->Arg(100);

void BM_SeedScheduling(benchmark::State& state) {
  const sim::MissionSpec mission = mission_of(static_cast<int>(state.range(0)));
  sim::SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  const sim::Simulator simulator(config);
  auto system = swarm::make_vasarhelyi_system();
  const sim::RunResult clean = simulator.run(mission, *system);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzz::schedule_seeds(clean, mission, *system, 10.0));
  }
}
BENCHMARK(BM_SeedScheduling)->Arg(5)->Arg(15);

void BM_MissionGeneration(benchmark::State& state) {
  sim::MissionConfig config;
  config.num_drones = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::generate_mission(config, ++seed));
  }
}
BENCHMARK(BM_MissionGeneration)->Arg(5)->Arg(15);

}  // namespace

BENCHMARK_MAIN();
