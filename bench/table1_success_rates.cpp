// Reproduces Table I: success rates of SwarmFuzz in finding SPVs across the
// six swarm configurations ({5,10,15} drones x {5,10} m spoofing).
//
// Paper values: 21/36/54 % at 5 m and 49/59/74 % at 10 m (average 48.8 %).
// Expected shape: success grows with swarm size and with spoofing distance.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace swarmfuzz;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv, 50);
  bench::print_header("Table I (success rates)", options);

  const auto telemetry = bench::make_telemetry(options);
  fuzz::GridConfig grid_config = bench::paper_grid(options);
  grid_config.base.telemetry = telemetry.get();
  const std::vector<fuzz::GridCell> grid = fuzz::run_grid(grid_config);
  const std::string table = fuzz::format_success_table(grid);
  std::printf("%s\n", table.c_str());
  bench::save_report(options, table);

  std::printf("Paper reference:\n");
  std::printf("  5m spoofing : 21%% / 36%% / 54%%\n");
  std::printf("  10m spoofing: 49%% / 59%% / 74%%  (average 48.8%%)\n");
  return 0;
}
