// Seed scheduling (paper section IV-B).
//
// A seed is <T-V, theta>: a target-victim drone pair plus a spoofing
// direction. The seedpool is ordered so the most promising seeds are fuzzed
// first:
//   (1) victims are sorted by ascending VDO (closest to the obstacle first),
//   (2) for each victim v and direction theta, the target is the drone T
//       maximising the summative influence I(theta)_Tv = PR_SVG(T) +
//       PR_SVG_transposed(v), where PR is PageRank on the direction's SVG,
//   (3) for the same victim, directions are ordered by influence.
#pragma once

#include <vector>

#include "attack/spoofing.h"
#include "fuzz/svg.h"
#include "graph/pagerank.h"
#include "sim/simulator.h"

namespace swarmfuzz::fuzz {

struct Seed {
  int target = -1;
  int victim = -1;
  attack::SpoofDirection direction = attack::SpoofDirection::kRight;
  double vdo = 0.0;        // victim's clean-run distance to the obstacle
  double influence = 0.0;  // summative influence I(theta)_Tv
};

// Centrality measure used to score SVG nodes. The paper motivates PageRank
// (section IV-B); the alternatives exist to ablate that choice
// (bench/ablation_centrality).
enum class CentralityKind {
  kPageRank,
  kEigenvector,
  kDegree,  // weighted in/out-degree
};

struct SeedScheduleConfig {
  int max_seeds = 16;            // cap on the seedpool size
  int targets_per_victim = 2;    // top-k targets kept per (victim, direction)
  CentralityKind centrality = CentralityKind::kPageRank;
  SvgConfig svg{};
  graph::PageRankOptions pagerank{};
};

// NaN-last total order used to rank victims by clean-run VDO. Finite VDOs
// sort ascending; non-finite values (a drone that never approaches an
// obstacle reports +inf, a degenerate trajectory can surface NaN) sort after
// every finite one; remaining ties — including every non-finite pair —
// break on drone id. Unlike raw `<` (which violates strict weak ordering on
// NaN, UB in std::sort), this is a valid total order.
[[nodiscard]] bool victim_vdo_before(double vdo_a, double vdo_b, int a,
                                     int b) noexcept;

// Builds the ordered seedpool from the clean run. `clean` must be the
// attack-free RunResult of `mission`; `system` is the control system under
// test (used for SVG probes); `spoof_distance` is the deviation d.
// Seeds whose direction's SVG gives the pair no influence are dropped.
[[nodiscard]] std::vector<Seed> schedule_seeds(
    const sim::RunResult& clean, const sim::MissionSpec& mission,
    const swarm::FlockingControlSystem& system, double spoof_distance,
    const SeedScheduleConfig& config = {});

}  // namespace swarmfuzz::fuzz
