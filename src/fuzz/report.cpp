#include "fuzz/report.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "util/table.h"

namespace swarmfuzz::fuzz {
namespace {

std::string distance_label(double metres) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%gm spoofing", metres);
  return buf;
}

}  // namespace

std::vector<GridCell> run_grid(const GridConfig& config) {
  if (!config.checkpoint_dir.empty()) {
    std::filesystem::create_directories(config.checkpoint_dir);
  }
  std::vector<GridCell> grid;
  for (const double distance : config.spoof_distances) {
    for (const int size : config.swarm_sizes) {
      CampaignConfig campaign = config.base;
      campaign.mission.num_drones = size;
      campaign.fuzzer.spoof_distance = distance;
      GridCell cell{.swarm_size = size, .spoof_distance = distance, .result = {}};
      if (!config.checkpoint_dir.empty()) {
        campaign.checkpoint_path =
            (std::filesystem::path{config.checkpoint_dir} /
             (cell_label(cell) + ".jsonl"))
                .string();
      }
      cell.result = run_campaign(campaign);
      grid.push_back(std::move(cell));
    }
  }
  return grid;
}

std::string format_success_table(const std::vector<GridCell>& grid) {
  std::vector<int> sizes;
  std::vector<double> distances;
  for (const GridCell& cell : grid) {
    if (std::find(sizes.begin(), sizes.end(), cell.swarm_size) == sizes.end()) {
      sizes.push_back(cell.swarm_size);
    }
    if (std::find(distances.begin(), distances.end(), cell.spoof_distance) ==
        distances.end()) {
      distances.push_back(cell.spoof_distance);
    }
  }

  std::vector<std::string> header{"Swarm size"};
  for (const int s : sizes) header.push_back(std::to_string(s) + " drones");
  util::TextTable table(header);
  double total = 0.0;
  int cells = 0;
  for (const double d : distances) {
    std::vector<std::string> row{distance_label(d)};
    for (const int s : sizes) {
      for (const GridCell& cell : grid) {
        if (cell.swarm_size == s && cell.spoof_distance == d) {
          row.push_back(util::format_percent(cell.result.success_rate(), 0));
          total += cell.result.success_rate();
          ++cells;
        }
      }
    }
    table.add_row(std::move(row));
  }
  std::string out = table.render("Table I: Success rates of SwarmFuzz in finding SPVs");
  if (cells > 0) {
    out += "Average success rate: " + util::format_percent(total / cells) + "\n";
  }
  return out;
}

std::string format_iterations_table(const std::vector<GridCell>& grid) {
  std::vector<int> sizes;
  std::vector<double> distances;
  for (const GridCell& cell : grid) {
    if (std::find(sizes.begin(), sizes.end(), cell.swarm_size) == sizes.end()) {
      sizes.push_back(cell.swarm_size);
    }
    if (std::find(distances.begin(), distances.end(), cell.spoof_distance) ==
        distances.end()) {
      distances.push_back(cell.spoof_distance);
    }
  }

  std::vector<std::string> header{""};
  for (const int s : sizes) header.push_back(std::to_string(s) + "-drone");
  util::TextTable table(header);
  for (const double d : distances) {
    char label[32];
    std::snprintf(label, sizeof label, "%gm-spoofing", d);
    std::vector<std::string> row{label};
    for (const int s : sizes) {
      for (const GridCell& cell : grid) {
        if (cell.swarm_size == s && cell.spoof_distance == d) {
          row.push_back(util::format_double(cell.result.avg_iterations_successful()));
        }
      }
    }
    table.add_row(std::move(row));
  }
  return table.render(
      "Table II: Average number of search iterations taken by SwarmFuzz to find "
      "SPVs");
}

std::string format_ablation_table(const std::vector<CampaignResult>& per_fuzzer) {
  std::vector<std::string> header{"Metric"};
  for (const CampaignResult& r : per_fuzzer) {
    header.emplace_back(fuzzer_kind_name(r.config.kind));
  }
  util::TextTable table(header);

  std::vector<std::string> success{"Success rate"};
  std::vector<std::string> iterations{"Avg. iterations"};
  std::vector<std::string> attempts{"Avg. attempts"};
  for (const CampaignResult& r : per_fuzzer) {
    success.push_back(util::format_percent(r.success_rate(), 0));
    iterations.push_back(util::format_double(r.avg_iterations_all()));
    // attempts_tried counts every seed searched / parameter draw, so the
    // random fuzzers compare on the same footing as the gradient ones
    // (their recorded attempts are capped, and historically only successes
    // were recorded at all).
    attempts.push_back(util::format_double(r.avg_attempts_all()));
  }
  table.add_row(std::move(success));
  table.add_row(std::move(iterations));
  table.add_row(std::move(attempts));
  return table.render("Table III: Comparison of fuzzers");
}

std::string cell_label(const GridCell& cell) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%dd-%gm", cell.swarm_size, cell.spoof_distance);
  return buf;
}

}  // namespace swarmfuzz::fuzz
