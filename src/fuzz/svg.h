// Swarm Vulnerability Graph (SVG) construction - paper section IV-B.
//
// SVG = (N, E, W): nodes are swarm members; a directed edge e_ij (i -> j)
// exists iff drone j has *malicious influence* on drone i for the given
// spoofing direction - i.e. spoofing j's GPS would push i closer to the
// obstacle. The edge weight w_ij = cos(alpha) captures the local influence
// (alpha is the angle between the drones' separation and the spoofing axis;
// Fig. 4 of the paper).
//
// The graph is built at t_clo, the time of minimum average inter-drone
// distance in the clean run, where influence between members is strongest.
// Malicious influence is probed counterfactually: evaluate drone i's
// controller with and without drone j's position spoofed, and compare the
// rate at which i approaches its nearest obstacle.
#pragma once

#include "attack/spoofing.h"
#include "graph/digraph.h"
#include "sim/mission.h"
#include "sim/types.h"
#include "swarm/flocking_system.h"

namespace swarmfuzz::fuzz {

struct SvgConfig {
  // Minimum decrease in radial speed toward the obstacle (m/s) for an edge;
  // guards against numerical noise in the controller probe.
  double influence_threshold = 1e-4;
};

// Builds the SVG for one spoofing direction.
//  snapshot : broadcast states at t_clo from the clean run
//  direction: the spoofing direction theta being analysed
//  distance : the spoofing deviation d (input to SwarmFuzz)
// The returned graph has mission.num_drones() nodes.
[[nodiscard]] graph::Digraph build_svg(const sim::WorldSnapshot& snapshot,
                                       const sim::MissionSpec& mission,
                                       const swarm::FlockingControlSystem& system,
                                       attack::SpoofDirection direction,
                                       double distance, const SvgConfig& config = {});

}  // namespace swarmfuzz::fuzz
