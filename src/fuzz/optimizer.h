// Gradient-guided search for the spoofing parameters (paper section IV-C).
//
// The objective f(t_s, dt) is convex in practice (Fig. 5): spoofing too
// briefly or too long makes the victim miss the obstacle on either side.
// Parameters are updated with the paper's Eq. (1a)/(1b):
//   t_s <- max(t_s - lr * df/dt_s, 0)
//   dt  <- max(dt  - lr * df/ddt, 0)
// with partial derivatives estimated by central finite differences of full
// mission simulations, and projection onto t_s + dt <= t_mission.
//
// One "search iteration" = one gradient update (the unit reported in the
// paper's Tables II/III); each update internally costs up to five
// simulations (f at the point plus the four stencil evaluations).
#pragma once

#include <span>

#include "fuzz/objective.h"

namespace swarmfuzz::fuzz {

struct OptimizerConfig {
  double learning_rate = 20.0;   // lr in Eq. (1), s^2/m
  double fd_step = 1.0;         // finite-difference h, s
  int max_iterations = 20;       // per-seed cap (paper: 20)
  double max_step = 8.0;         // clamp on per-iteration parameter change, s
  double stall_tolerance = 2e-3; // m; improvement below this counts as a stall
  int stall_patience = 3;        // consecutive stalls before abandoning
};

struct OptimizationResult {
  bool success = false;
  bool stalled = false;          // abandoned early on convergence-to-positive
  double t_start = 0.0;          // best parameters found
  double duration = 0.0;
  double best_f = 0.0;           // best (lowest) objective seen
  int crashed_drone = -1;        // on success
  int iterations = 0;            // gradient updates executed
};

// A candidate starting point for the descent.
struct StartPoint {
  double t_start = 0.0;
  double duration = 0.0;
};

// Multi-start gradient descent: every start point is evaluated once (each
// evaluation counts as one search iteration and can itself be a success);
// the descent then proceeds from the most promising one. `budget` caps the
// total iterations (min of config.max_iterations and the caller's remaining
// mission budget).
[[nodiscard]] OptimizationResult optimize(ObjectiveFunction& objective,
                                          std::span<const StartPoint> starts,
                                          int budget,
                                          const OptimizerConfig& config = {});

}  // namespace swarmfuzz::fuzz
