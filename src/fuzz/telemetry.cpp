#include "fuzz/telemetry.h"

#include <cstdio>
#include <stdexcept>

#include "util/json.h"

namespace swarmfuzz::fuzz {
namespace {

attack::SpoofDirection direction_from_name(std::string_view name) {
  if (name == attack::direction_name(attack::SpoofDirection::kRight)) {
    return attack::SpoofDirection::kRight;
  }
  if (name == attack::direction_name(attack::SpoofDirection::kLeft)) {
    return attack::SpoofDirection::kLeft;
  }
  throw std::invalid_argument("telemetry: unknown spoof direction: " +
                              std::string{name});
}

void write_plan(util::JsonWriter& json, const attack::SpoofingPlan& plan) {
  json.begin_object();
  json.key("target");
  json.value(plan.target);
  json.key("direction");
  json.value(attack::direction_name(plan.direction));
  json.key("start_time");
  json.value_exact(plan.start_time);
  json.key("duration");
  json.value_exact(plan.duration);
  json.key("distance");
  json.value_exact(plan.distance);
  json.end_object();
}

attack::SpoofingPlan plan_from(const util::JsonValue& node) {
  attack::SpoofingPlan plan;
  plan.target = node.at("target").as_int();
  plan.direction = direction_from_name(node.at("direction").as_string());
  plan.start_time = node.at("start_time").as_double();
  plan.duration = node.at("duration").as_double();
  plan.distance = node.at("distance").as_double();
  return plan;
}

void write_attempt(util::JsonWriter& json, const SeedAttempt& attempt) {
  json.begin_object();
  json.key("target");
  json.value(attempt.seed.target);
  json.key("victim");
  json.value(attempt.seed.victim);
  json.key("direction");
  json.value(attack::direction_name(attempt.seed.direction));
  json.key("vdo");
  json.value_exact(attempt.seed.vdo);
  json.key("influence");
  json.value_exact(attempt.seed.influence);
  json.key("success");
  json.value(attempt.outcome.success);
  json.key("stalled");
  json.value(attempt.outcome.stalled);
  json.key("t_start");
  json.value_exact(attempt.outcome.t_start);
  json.key("duration");
  json.value_exact(attempt.outcome.duration);
  json.key("best_f");
  json.value_exact(attempt.outcome.best_f);
  json.key("crashed_drone");
  json.value(attempt.outcome.crashed_drone);
  json.key("iterations");
  json.value(attempt.outcome.iterations);
  json.end_object();
}

SeedAttempt attempt_from(const util::JsonValue& node) {
  SeedAttempt attempt;
  attempt.seed.target = node.at("target").as_int();
  attempt.seed.victim = node.at("victim").as_int();
  attempt.seed.direction = direction_from_name(node.at("direction").as_string());
  attempt.seed.vdo = node.at("vdo").as_double();
  attempt.seed.influence = node.at("influence").as_double();
  attempt.outcome.success = node.at("success").as_bool();
  attempt.outcome.stalled = node.at("stalled").as_bool();
  attempt.outcome.t_start = node.at("t_start").as_double();
  attempt.outcome.duration = node.at("duration").as_double();
  attempt.outcome.best_f = node.at("best_f").as_double();
  attempt.outcome.crashed_drone = node.at("crashed_drone").as_int();
  attempt.outcome.iterations = node.at("iterations").as_int();
  return attempt;
}

void write_result(util::JsonWriter& json, const FuzzResult& result) {
  json.begin_object();
  json.key("clean_run_failed");
  json.value(result.clean_run_failed);
  json.key("found");
  json.value(result.found);
  json.key("victim");
  json.value(result.victim);
  json.key("victim_vdo");
  json.value_exact(result.victim_vdo);
  json.key("iterations");
  json.value(result.iterations);
  json.key("simulations");
  json.value(result.simulations);
  json.key("sim_steps_executed");
  json.value(result.sim_steps_executed);
  json.key("prefix_steps_reused");
  json.value(result.prefix_steps_reused);
  json.key("mission_vdo");
  json.value_exact(result.mission_vdo);
  json.key("clean_mission_time");
  json.value_exact(result.clean_mission_time);
  json.key("plan");
  write_plan(json, result.plan);
  json.key("attempts");
  json.begin_array();
  for (const SeedAttempt& attempt : result.attempts) write_attempt(json, attempt);
  json.end_array();
  json.end_object();
}

FuzzResult result_from(const util::JsonValue& node) {
  FuzzResult result;
  result.clean_run_failed = node.at("clean_run_failed").as_bool();
  result.found = node.at("found").as_bool();
  result.victim = node.at("victim").as_int();
  result.victim_vdo = node.at("victim_vdo").as_double();
  result.iterations = node.at("iterations").as_int();
  result.simulations = node.at("simulations").as_int();
  // Step counters arrived after schema v1 shipped; records written before
  // then simply lack them. Default to 0 instead of bumping the version —
  // they are performance accounting, not search state.
  const util::JsonValue* steps = node.find("sim_steps_executed");
  result.sim_steps_executed = steps != nullptr ? steps->as_int64() : 0;
  const util::JsonValue* reused = node.find("prefix_steps_reused");
  result.prefix_steps_reused = reused != nullptr ? reused->as_int64() : 0;
  result.mission_vdo = node.at("mission_vdo").as_double();
  result.clean_mission_time = node.at("clean_mission_time").as_double();
  result.plan = plan_from(node.at("plan"));
  const util::JsonValue& attempts = node.at("attempts");
  result.attempts.reserve(attempts.size());
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    result.attempts.push_back(attempt_from(attempts.at(i)));
  }
  return result;
}

}  // namespace

std::string to_jsonl(const TelemetryRecord& record) {
  util::JsonWriter json;
  json.begin_object();
  json.key("v");
  json.value(record.schema_version);
  json.key("index");
  json.value(record.mission_index);
  json.key("fuzzer");
  json.value(record.fuzzer);
  // Seeds are 64-bit; JSON numbers only guarantee 53 bits, so stringify.
  json.key("seed");
  json.value(std::to_string(record.mission_seed));
  json.key("wall_time_s");
  json.value_exact(record.wall_time_s);
  json.key("result");
  write_result(json, record.result);
  json.end_object();
  return json.str();
}

TelemetryRecord telemetry_record_from_json(std::string_view line) {
  const util::JsonValue root = util::parse_json(line);
  TelemetryRecord record;
  record.schema_version = root.at("v").as_int();
  if (record.schema_version != 1) {
    throw std::invalid_argument("telemetry: unsupported schema version " +
                                std::to_string(record.schema_version));
  }
  record.mission_index = root.at("index").as_int();
  record.fuzzer = root.at("fuzzer").as_string();
  const std::string& seed_text = root.at("seed").as_string();
  record.mission_seed = std::stoull(seed_text);
  record.wall_time_s = root.at("wall_time_s").as_double();
  record.result = result_from(root.at("result"));
  return record;
}

JsonlTelemetrySink::JsonlTelemetrySink(const std::string& path, bool append)
    : path_(path) {
  file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("telemetry: cannot open " + path + " for writing");
  }
}

JsonlTelemetrySink::~JsonlTelemetrySink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlTelemetrySink::record(const TelemetryRecord& record) {
  const std::string line = to_jsonl(record);
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

std::vector<TelemetryRecord> load_telemetry(const std::string& path) {
  std::vector<TelemetryRecord> records;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return records;

  std::string content;
  char buffer[1 << 14];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);

  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t end = content.find('\n', start);
    const bool complete_line = end != std::string::npos;
    if (!complete_line) end = content.size();
    const std::string_view line{content.data() + start, end - start};
    start = end + 1;
    if (line.empty()) continue;
    try {
      records.push_back(telemetry_record_from_json(line));
    } catch (const std::exception& e) {
      // Records never contain a raw newline, so a crash mid-write can only
      // tear the newline-terminated suffix of the file: a malformed final
      // line without '\n' is the expected crash signature and is skipped.
      // A malformed *complete* line means the file is corrupt, and resuming
      // from it would silently drop missions.
      if (complete_line) {
        throw std::runtime_error("telemetry: corrupt record in " + path + ": " +
                                 e.what());
      }
    }
  }
  return records;
}

}  // namespace swarmfuzz::fuzz
