#include "fuzz/telemetry.h"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "util/crc32.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/retry.h"

namespace swarmfuzz::fuzz {
namespace {

// --- CRC-32 record framing ------------------------------------------------
//
// The checksum is spliced in as the line's final member, so a framed line is
// `{...,"crc":"xxxxxxxx"}` and the checksummed payload is the same line with
// the crc member removed (i.e. what to_jsonl produced before framing). The
// suffix is matched positionally — exactly at the end of the line — so a
// `"crc"` substring inside a detail string can never be mistaken for it.

constexpr std::string_view kCrcPrefix = ",\"crc\":\"";
constexpr std::size_t kCrcHexLen = 8;
// ,"crc":" + 8 hex digits + "}
constexpr std::size_t kCrcSuffixLen = kCrcPrefix.size() + kCrcHexLen + 2;

}  // namespace

std::string frame_with_crc(std::string line) {
  char hex[kCrcHexLen + 1];
  std::snprintf(hex, sizeof hex, "%08x", util::crc32(line));
  std::string member{kCrcPrefix};
  member.append(hex, kCrcHexLen);
  member.push_back('"');
  line.insert(line.size() - 1, member);
  return line;
}

void verify_crc_frame(std::string_view line) {
  if (line.size() < kCrcSuffixLen ||
      line.compare(line.size() - kCrcSuffixLen, kCrcPrefix.size(), kCrcPrefix) != 0 ||
      line.compare(line.size() - 2, 2, "\"}") != 0) {
    return;  // unframed legacy line; structural validity is the parser's job
  }
  const std::string_view hex =
      line.substr(line.size() - kCrcHexLen - 2, kCrcHexLen);
  std::uint32_t expected = 0;
  for (const char ch : hex) {
    const int digit = ch >= '0' && ch <= '9'   ? ch - '0'
                      : ch >= 'a' && ch <= 'f' ? ch - 'a' + 10
                                               : -1;
    if (digit < 0) return;  // not a checksum after all (e.g. 8-char hash field)
    expected = expected << 4 | static_cast<std::uint32_t>(digit);
  }
  const std::string_view body = line.substr(0, line.size() - kCrcSuffixLen);
  const std::uint32_t actual =
      util::crc32_final(util::crc32_update(util::crc32_update(util::crc32_init(), body), "}"));
  if (actual != expected) {
    throw std::invalid_argument("telemetry: record checksum mismatch");
  }
}

namespace {

using attack::direction_from_name;

void write_plan(util::JsonWriter& json, const attack::SpoofingPlan& plan) {
  json.begin_object();
  json.key("target");
  json.value(plan.target);
  json.key("direction");
  json.value(attack::direction_name(plan.direction));
  json.key("start_time");
  json.value_exact(plan.start_time);
  json.key("duration");
  json.value_exact(plan.duration);
  json.key("distance");
  json.value_exact(plan.distance);
  json.end_object();
}

attack::SpoofingPlan plan_from(const util::JsonValue& node) {
  attack::SpoofingPlan plan;
  plan.target = node.at("target").as_int();
  plan.direction = direction_from_name(node.at("direction").as_string());
  plan.start_time = node.at("start_time").as_double();
  plan.duration = node.at("duration").as_double();
  plan.distance = node.at("distance").as_double();
  return plan;
}

void write_attempt(util::JsonWriter& json, const SeedAttempt& attempt) {
  json.begin_object();
  json.key("target");
  json.value(attempt.seed.target);
  json.key("victim");
  json.value(attempt.seed.victim);
  json.key("direction");
  json.value(attack::direction_name(attempt.seed.direction));
  json.key("vdo");
  json.value_exact(attempt.seed.vdo);
  json.key("influence");
  json.value_exact(attempt.seed.influence);
  json.key("success");
  json.value(attempt.outcome.success);
  json.key("stalled");
  json.value(attempt.outcome.stalled);
  json.key("t_start");
  json.value_exact(attempt.outcome.t_start);
  json.key("duration");
  json.value_exact(attempt.outcome.duration);
  json.key("best_f");
  json.value_exact(attempt.outcome.best_f);
  json.key("crashed_drone");
  json.value(attempt.outcome.crashed_drone);
  json.key("iterations");
  json.value(attempt.outcome.iterations);
  json.end_object();
}

SeedAttempt attempt_from(const util::JsonValue& node) {
  SeedAttempt attempt;
  attempt.seed.target = node.at("target").as_int();
  attempt.seed.victim = node.at("victim").as_int();
  attempt.seed.direction = direction_from_name(node.at("direction").as_string());
  attempt.seed.vdo = node.at("vdo").as_double();
  attempt.seed.influence = node.at("influence").as_double();
  attempt.outcome.success = node.at("success").as_bool();
  attempt.outcome.stalled = node.at("stalled").as_bool();
  attempt.outcome.t_start = node.at("t_start").as_double();
  attempt.outcome.duration = node.at("duration").as_double();
  attempt.outcome.best_f = node.at("best_f").as_double();
  attempt.outcome.crashed_drone = node.at("crashed_drone").as_int();
  attempt.outcome.iterations = node.at("iterations").as_int();
  return attempt;
}

void write_result(util::JsonWriter& json, const FuzzResult& result) {
  json.begin_object();
  json.key("clean_run_failed");
  json.value(result.clean_run_failed);
  json.key("found");
  json.value(result.found);
  json.key("victim");
  json.value(result.victim);
  json.key("victim_vdo");
  json.value_exact(result.victim_vdo);
  json.key("iterations");
  json.value(result.iterations);
  json.key("simulations");
  json.value(result.simulations);
  json.key("sim_steps_executed");
  json.value(result.sim_steps_executed);
  json.key("prefix_steps_reused");
  json.value(result.prefix_steps_reused);
  json.key("attempts_tried");
  json.value(result.attempts_tried);
  json.key("no_seeds");
  json.value(result.no_seeds);
  // E_Fuzz corpus accounting, written only when the search populated a
  // corpus so records from the other fuzzers stay byte-identical with files
  // written before the evolutionary schema existed.
  if (result.corpus_admissions > 0 || result.corpus_size > 0 ||
      result.novelty_bins > 0) {
    json.key("corpus_size");
    json.value(result.corpus_size);
    json.key("novelty_bins");
    json.value(result.novelty_bins);
    json.key("corpus_admissions");
    json.value(result.corpus_admissions);
  }
  json.key("eval_batches");
  json.value(result.eval_batches);
  json.key("eval_parallelism");
  json.value(result.eval_parallelism);
  json.key("mission_vdo");
  json.value_exact(result.mission_vdo);
  json.key("clean_mission_time");
  json.value_exact(result.clean_mission_time);
  json.key("plan");
  write_plan(json, result.plan);
  json.key("attempts");
  json.begin_array();
  for (const SeedAttempt& attempt : result.attempts) write_attempt(json, attempt);
  json.end_array();
  json.end_object();
}

FuzzResult result_from(const util::JsonValue& node) {
  FuzzResult result;
  result.clean_run_failed = node.at("clean_run_failed").as_bool();
  result.found = node.at("found").as_bool();
  result.victim = node.at("victim").as_int();
  result.victim_vdo = node.at("victim_vdo").as_double();
  result.iterations = node.at("iterations").as_int();
  result.simulations = node.at("simulations").as_int();
  // Step counters arrived after schema v1 shipped; records written before
  // then simply lack them. Default to 0 instead of bumping the version —
  // they are performance accounting, not search state.
  const util::JsonValue* steps = node.find("sim_steps_executed");
  result.sim_steps_executed = steps != nullptr ? steps->as_int64() : 0;
  const util::JsonValue* reused = node.find("prefix_steps_reused");
  result.prefix_steps_reused = reused != nullptr ? reused->as_int64() : 0;
  // Same treatment for the attempt/no-seeds accounting and the parallel-
  // evaluation counters (all post-v1 additions).
  const util::JsonValue* tried = node.find("attempts_tried");
  result.attempts_tried = tried != nullptr ? tried->as_int() : 0;
  const util::JsonValue* no_seeds = node.find("no_seeds");
  result.no_seeds = no_seeds != nullptr && no_seeds->as_bool();
  const util::JsonValue* corpus_size = node.find("corpus_size");
  result.corpus_size = corpus_size != nullptr ? corpus_size->as_int() : 0;
  const util::JsonValue* novelty_bins = node.find("novelty_bins");
  result.novelty_bins = novelty_bins != nullptr ? novelty_bins->as_int() : 0;
  const util::JsonValue* admissions = node.find("corpus_admissions");
  result.corpus_admissions = admissions != nullptr ? admissions->as_int() : 0;
  const util::JsonValue* batches = node.find("eval_batches");
  result.eval_batches = batches != nullptr ? batches->as_int() : 0;
  const util::JsonValue* parallelism = node.find("eval_parallelism");
  result.eval_parallelism = parallelism != nullptr ? parallelism->as_int() : 1;
  result.mission_vdo = node.at("mission_vdo").as_double();
  result.clean_mission_time = node.at("clean_mission_time").as_double();
  result.plan = plan_from(node.at("plan"));
  const util::JsonValue& attempts = node.at("attempts");
  result.attempts.reserve(attempts.size());
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    result.attempts.push_back(attempt_from(attempts.at(i)));
  }
  return result;
}

}  // namespace

std::string to_jsonl(const TelemetryRecord& record) {
  util::JsonWriter json;
  json.begin_object();
  json.key("v");
  json.value(record.schema_version);
  json.key("index");
  json.value(record.mission_index);
  json.key("fuzzer");
  json.value(record.fuzzer);
  // Seeds are 64-bit; JSON numbers only guarantee 53 bits, so stringify.
  json.key("seed");
  json.value(std::to_string(record.mission_seed));
  json.key("wall_time_s");
  json.value_exact(record.wall_time_s);
  // Written only for sharded campaigns, so single-process records stay
  // byte-identical with files written before the shard schema existed.
  if (record.shard >= 0) {
    json.key("shard");
    json.value(record.shard);
  }
  json.key("result");
  write_result(json, record.result);
  // Written only when faulted, so fault-free records stay byte-identical
  // with files written before the fault schema existed.
  if (record.fault != sim::FaultKind::kNone) {
    json.key("fault");
    json.value(sim::fault_kind_name(record.fault));
    json.key("fault_detail");
    json.value(record.fault_detail);
    json.key("fault_attempts");
    json.value(record.fault_attempts);
  }
  json.end_object();
  return frame_with_crc(json.str());
}

TelemetryRecord telemetry_record_from_json(std::string_view line) {
  verify_crc_frame(line);
  const util::JsonValue root = util::parse_json(line);
  TelemetryRecord record;
  record.schema_version = root.at("v").as_int();
  if (record.schema_version != 1) {
    throw std::invalid_argument("telemetry: unsupported schema version " +
                                std::to_string(record.schema_version));
  }
  record.mission_index = root.at("index").as_int();
  record.fuzzer = root.at("fuzzer").as_string();
  const std::string& seed_text = root.at("seed").as_string();
  record.mission_seed = std::stoull(seed_text);
  record.wall_time_s = root.at("wall_time_s").as_double();
  if (const util::JsonValue* shard = root.find("shard"); shard != nullptr) {
    record.shard = shard->as_int();
  }
  record.result = result_from(root.at("result"));
  if (const util::JsonValue* fault = root.find("fault"); fault != nullptr) {
    record.fault = sim::fault_kind_from_name(fault->as_string());
    if (const util::JsonValue* detail = root.find("fault_detail");
        detail != nullptr) {
      record.fault_detail = detail->as_string();
    }
    if (const util::JsonValue* attempts = root.find("fault_attempts");
        attempts != nullptr) {
      record.fault_attempts = attempts->as_int();
    }
  } else if (record.result.clean_run_failed) {
    // Pre-fault-schema records flagged clean failures inside the result
    // only; lift them into the taxonomy so resumed campaigns aggregate
    // identically whichever schema wrote the checkpoint.
    record.fault = sim::FaultKind::kCleanRunFailed;
  }
  return record;
}

std::string to_jsonl(const QuarantineRecord& record) {
  util::JsonWriter json;
  json.begin_object();
  json.key("index");
  json.value(record.mission_index);
  json.key("fuzzer");
  json.value(record.fuzzer);
  json.key("seed");
  json.value(std::to_string(record.mission_seed));
  json.key("config_hash");
  json.value(record.config_hash);
  json.key("fault");
  json.value(sim::fault_kind_name(record.fault));
  json.key("detail");
  json.value(record.detail);
  json.key("attempts");
  json.value(record.attempts);
  json.end_object();
  return frame_with_crc(json.str());
}

QuarantineRecord quarantine_record_from_json(std::string_view line) {
  verify_crc_frame(line);
  const util::JsonValue root = util::parse_json(line);
  QuarantineRecord record;
  record.mission_index = root.at("index").as_int();
  record.fuzzer = root.at("fuzzer").as_string();
  record.mission_seed = std::stoull(root.at("seed").as_string());
  record.config_hash = root.at("config_hash").as_string();
  record.fault = sim::fault_kind_from_name(root.at("fault").as_string());
  record.detail = root.at("detail").as_string();
  record.attempts = root.at("attempts").as_int();
  return record;
}

namespace {

void append_jsonl_line_once(const std::string& path, std::string_view line) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    throw util::IoError("telemetry: cannot open " + path + " for append",
                        errno);
  }
  std::string framed{line};
  framed.push_back('\n');
  const bool ok =
      std::fwrite(framed.data(), 1, framed.size(), file) == framed.size() &&
      std::fflush(file) == 0;
  const int write_errno = errno;
  const bool closed = std::fclose(file) == 0;
  if (!ok) {
    throw util::IoError("telemetry: short write to " + path, write_errno);
  }
  if (!closed) {
    throw util::IoError("telemetry: cannot close " + path, errno);
  }
}

}  // namespace

void append_jsonl_line(const std::string& path, std::string_view line) {
  // A failed attempt may have landed a prefix of the record (a torn,
  // unterminated tail). Re-appending on top of it would glue two fragments
  // into a corrupt *complete* line — unrecoverable — so every retry heals
  // the tail back to a line boundary first.
  bool retrying = false;
  util::io_retrier().run("append_jsonl", [&] {
    if (retrying) heal_torn_tail(path);
    retrying = true;
    append_jsonl_line_once(path, line);
  });
}

void heal_torn_tail(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return;  // nothing to heal
  std::string content;
  char buffer[1 << 14];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);
  if (content.empty() || content.back() == '\n') return;
  const std::size_t last_newline = content.rfind('\n');
  const std::size_t keep = last_newline == std::string::npos ? 0 : last_newline + 1;
  SWARMFUZZ_WARN("telemetry: {} ends mid-record; truncating {} torn bytes",
                 path, content.size() - keep);
  std::error_code ec;
  std::filesystem::resize_file(path, keep, ec);
  if (ec) {
    throw util::IoError("telemetry: cannot truncate torn tail of " + path +
                            ": " + ec.message(),
                        ec.value());
  }
}

JsonlTelemetrySink::JsonlTelemetrySink(const std::string& path, bool append)
    : path_(path) {
  if (append) heal_torn_tail(path);
  file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("telemetry: cannot open " + path + " for writing");
  }
}

JsonlTelemetrySink::~JsonlTelemetrySink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlTelemetrySink::record(const TelemetryRecord& record) {
  // Line + newline go out in one fwrite: a crash between two calls cannot
  // leave a record without its terminator (the torn-write signature the
  // loader heals) the way a separate fputc('\n') could.
  std::string line = to_jsonl(record);
  line.push_back('\n');
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

std::vector<JsonlLine> read_jsonl_lines(const std::string& path) {
  std::vector<JsonlLine> lines;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return lines;

  std::string content;
  char buffer[1 << 14];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);

  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t end = content.find('\n', start);
    const bool complete_line = end != std::string::npos;
    if (!complete_line) end = content.size();
    if (end > start) {
      lines.push_back(JsonlLine{content.substr(start, end - start), complete_line});
    }
    start = end + 1;
  }
  return lines;
}

namespace {

// Shared JSONL replay loop: parses each line with `parse`, pushing results
// into `records`. Torn final line → warn + skip; corrupt complete line →
// throw (resuming past it would silently drop missions).
template <typename Record, typename Parse>
std::vector<Record> load_jsonl(const std::string& path, Parse parse) {
  std::vector<Record> records;
  for (const JsonlLine& line : read_jsonl_lines(path)) {
    try {
      records.push_back(parse(std::string_view{line.text}));
    } catch (const std::exception& e) {
      // Records never contain a raw newline, so a crash mid-write can only
      // tear the newline-terminated suffix of the file: a malformed final
      // line without '\n' is the expected crash signature and is skipped.
      // A malformed *complete* line means the file is corrupt, and resuming
      // from it would silently drop missions.
      if (line.complete) {
        throw std::runtime_error("telemetry: corrupt record in " + path + ": " +
                                 e.what());
      }
      SWARMFUZZ_WARN(
          "telemetry: skipping torn final record in {} ({} bytes): {}", path,
          line.text.size(), e.what());
    }
  }
  return records;
}

}  // namespace

std::vector<TelemetryRecord> load_telemetry(const std::string& path) {
  return load_jsonl<TelemetryRecord>(
      path, [](std::string_view line) { return telemetry_record_from_json(line); });
}

std::vector<QuarantineRecord> load_quarantine(const std::string& path) {
  return load_jsonl<QuarantineRecord>(
      path, [](std::string_view line) { return quarantine_record_from_json(line); });
}

}  // namespace swarmfuzz::fuzz
