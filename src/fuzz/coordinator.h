// Adaptive campaign coordinator: straggler detection and lease re-carving.
//
// The sharded service (service.h) survives worker death passively — an
// orphaned lease waits out its TTL, then any worker reclaims it whole. The
// coordinator makes recovery *active* and handles the failure modes passive
// reclamation cannot:
//
//   dead worker      claim expired — re-carve immediately instead of letting
//                    one worker re-run the whole tail serially.
//   stalled worker   SIGSTOP / frozen host: heartbeats stop but the claim
//                    has not expired yet. Classified by heartbeat staleness
//                    (renewal age in units of the ttl/3 renewal period).
//   hung worker      heartbeat thread still renews while the mission loop
//                    is stuck — the claim never expires. Classified by
//                    progress stall against the lease's *own* observed
//                    per-mission pace (self-normalising: no absolute
//                    mission-duration assumptions).
//   slow worker      an overloaded host making real but anaemic progress.
//                    Classified by completion rate against the median of
//                    its peers (progress-rate percentile).
//
// Re-carve protocol (crash-safe in this order, see lease.h):
//   1. exclusive-create `lease-<k>.recarved` — the single-winner retirement
//      marker; from now on the lease can never be claimed again.
//   2. append a RecarveRecord to `recarve.jsonl` splitting the unfinished
//      tail [begin + recorded_prefix, end) into fresh sub-leases.
//   3. fence the straggler's claim (rename it aside) so its next renew()
//      fails and it drops any in-flight result.
// A crash between 1 and 2 leaves a marker without ledger entry: the lease
// is unclaimable but uncovered — any later coordinator pass heals it by
// re-running 2 and 3 (duplicate ledger entries are keep-first on load).
//
// Classification only affects *efficiency*. Whatever the coordinator does —
// including re-carving a perfectly healthy lease — merge results stay
// bit-identical: fencing stops the old owner, and any record it landed
// anyway is a keep-first duplicate of the sub-lease owner's identical
// outcome.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fuzz/lease.h"

namespace swarmfuzz::fuzz {

struct CoordinatorConfig {
  std::string dir;                 // service directory
  int num_missions = 0;
  int num_leases = 0;              // the manifest's base carve
  std::int64_t lease_ttl_ms = 30000;
  std::int64_t poll_ms = 1000;     // tick period for run()

  // Straggler classification knobs (details in the file header). None of
  // them affect correctness — only how eagerly tails are re-carved.
  double stale_heartbeat_periods = 2.5;  // renewal age > this many ttl/3
  double straggler_rate_fraction = 0.25; // rate < fraction * median peer rate
  int min_observations = 3;              // polls before rate/stall verdicts
  double stall_factor = 5.0;             // stall > factor * own ms/mission
  int min_recarve_missions = 1;          // smallest tail worth re-carving
  int recarve_pieces = 2;                // sub-leases per re-carve

  // Injectable time and waiting, for deterministic tests. Defaults: system
  // clock; real sleep.
  LeaseStore::Clock clock;
  std::function<void(std::int64_t)> sleep_ms;
};

// One active lease's observed state, as probed from the service directory.
struct LeaseHealth {
  LeaseRange range;
  bool done = false;
  bool retired = false;   // marker exists while still in the active table:
                          // a half-finished re-carve awaiting heal
  bool claimed = false;   // claim file has a valid record
  bool expired = false;
  std::string owner;
  std::int64_t last_renew_age_ms = -1;  // now - (expires_at - ttl)
  int recorded = 0;       // contiguous recorded prefix length
  double rate_per_s = -1.0;  // coordinator-observed; < 0 until observable
};

struct CoordinatorStats {
  int polls = 0;
  int recarves = 0;    // leases retired (incl. heals)
  int subleases = 0;   // sub-leases created
  int heals = 0;       // marker-without-entry repairs
};

struct CoordinatorTickResult {
  std::vector<LeaseHealth> health;  // active leases, probe order
  std::vector<int> recarved;        // lease ids retired this tick
  bool complete = false;            // every active lease done
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorConfig config);

  // One observe/classify/re-carve pass. Safe to call on any schedule.
  CoordinatorTickResult tick();

  // Ticks every poll_ms until the service completes (true) or timeout_ms
  // elapses (false; <= 0 waits forever).
  bool run(std::int64_t timeout_ms);

  [[nodiscard]] const CoordinatorStats& stats() const noexcept {
    return stats_;
  }

 private:
  // Per-lease progress history, reset when the owner changes or records
  // regress (a reclaim replayed the shard file).
  struct Observation {
    std::string owner;
    int first_recorded = 0;
    int recorded = 0;
    std::int64_t first_ms = 0;
    std::int64_t last_progress_ms = 0;
    int polls = 0;
    int slow_polls = 0;  // consecutive polls below the peer-rate floor
  };

  // Retires `lease` and sub-leases its unfinished tail; false when another
  // coordinator won the marker race. `reason` is for the log line.
  bool recarve(const LeaseRange& lease, const char* reason);

  CoordinatorConfig config_;
  LeaseStore store_;
  std::function<void(std::int64_t)> sleep_ms_;
  std::map<int, Observation> observations_;
  std::vector<double> finished_rates_;  // rates of leases observed completing
  CoordinatorStats stats_;
};

// Length of the contiguous recorded prefix of `lease`'s shard file (workers
// record in increasing index order, so this is the resume/re-carve point).
// A missing or unreadable shard file counts as zero.
[[nodiscard]] int recorded_prefix(const std::string& dir,
                                  const LeaseRange& lease);

// Probes every active lease's health at `now_ms` (rate_per_s stays -1: rates
// need history only the coordinator keeps). Shared by the coordinator and
// the `serve/merge --wait` timeout reports.
[[nodiscard]] std::vector<LeaseHealth> probe_lease_health(
    const std::string& dir, const LeaseTable& table, std::int64_t ttl_ms,
    std::int64_t now_ms);

// Human-readable report of every incomplete lease (id, range, progress,
// owner, heartbeat age) — what `--wait` prints on timeout instead of a bare
// exit code. Empty string when everything is done.
[[nodiscard]] std::string describe_incomplete_leases(
    const std::vector<LeaseHealth>& health);

}  // namespace swarmfuzz::fuzz
