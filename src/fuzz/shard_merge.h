// Merging per-shard telemetry streams back into one CampaignResult.
//
// Each lease's worker streams its completed missions to
// `shard-<lease_id>.jsonl` (see lease.h); the merge loads every shard file
// of the service directory, validates each record against the campaign
// configuration (same checks as run_campaign's resume path — foreign files
// are rejected, never silently absorbed), and places outcomes into the
// mission-index-ordered vector run_campaign itself produces. Because every
// aggregate in CampaignResult iterates that vector in index order, and every
// mission's outcome depends only on (config, base_seed, index) — see
// mission_seed() — the merged report is bit-identical (deterministic_equal)
// to a single-process run, no matter how leases were carved, which worker
// ran what, or how many times a lease was reclaimed mid-range.
//
// Duplicates (a mission that appears in two shard files, e.g. recorded by
// both a reclaimed worker's last gasp and its successor) are dropped
// keep-first after checking the copies agree on every deterministic field;
// disagreeing duplicates mean the streams cannot have come from the same
// campaign and the merge throws rather than pick a side.
#pragma once

#include <string>
#include <vector>

#include "fuzz/campaign.h"

namespace swarmfuzz::fuzz {

// A contiguous run of mission indices [begin, end) with no completed
// outcome — what a partial merge is missing.
struct MissionHole {
  int begin = 0;
  int end = 0;

  [[nodiscard]] int size() const noexcept { return end - begin; }
};

// The maximal contiguous runs of missions without a completed outcome, in
// ascending order. Empty when the campaign is complete.
[[nodiscard]] std::vector<MissionHole> missing_mission_ranges(
    const CampaignResult& result);

// Merge accounting, for operators and tests.
struct ShardMergeStats {
  int shard_files = 0;   // shard-*.jsonl files read
  int records = 0;       // valid records loaded across all of them
  int duplicates = 0;    // records dropped as keep-first duplicates
};

// Merges every `shard-*.jsonl` in `dir` into a CampaignResult for `config`.
// Throws std::runtime_error when a record fails validation, duplicates
// disagree, or (unless `allow_partial`) any mission index is missing — a
// partial merge would silently report a smaller campaign. The optional
// `stats` out-param receives merge accounting.
[[nodiscard]] CampaignResult merge_shards(const CampaignConfig& config,
                                          const std::string& dir,
                                          bool allow_partial = false,
                                          ShardMergeStats* stats = nullptr);

}  // namespace swarmfuzz::fuzz
