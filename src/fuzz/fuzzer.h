// The fuzzers (paper sections IV and V-C, plus the evolutionary extension).
//
//   SwarmFuzz : SVG/PageRank seed scheduling + gradient-guided search
//   R_Fuzz    : random pairs, random parameters   (neither heuristic)
//   G_Fuzz    : random pairs, gradient search     (no SVG)
//   S_Fuzz    : SVG seed scheduling, random params (no gradient)
//   E_Fuzz    : SVG-seeded corpus + mutation + behavioral-novelty feedback
//               (AFL-style anytime search; DESIGN.md section 17)
//
// All fuzzers share the same mission-level iteration budget; gradient-based
// fuzzers additionally stop early when a seed's search stalls, which is why
// their runtime is ~3x lower (Table III).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/mutation.h"
#include "fuzz/optimizer.h"
#include "fuzz/seeds.h"
#include "math/rng.h"
#include "sim/simulator.h"
#include "swarm/flocking_system.h"

namespace swarmfuzz::fuzz {

enum class FuzzerKind {
  kSwarmFuzz,
  kRandom,        // R_Fuzz
  kGradientOnly,  // G_Fuzz
  kSvgOnly,       // S_Fuzz
  kEvolutionary,  // E_Fuzz
};

[[nodiscard]] std::string_view fuzzer_kind_name(FuzzerKind kind) noexcept;

// E_Fuzz settings (kEvolutionary only). Everything except corpus_dir
// affects search outcomes and therefore enters campaign_config_hash.
struct EvolutionConfig {
  NoveltyConfig novelty{};
  MutationConfig mutation{};
  // Candidates per evaluation batch. A fixed constant — deliberately NOT
  // derived from eval_threads, or results would differ across thread counts
  // and break the bit-identical determinism contract.
  int batch_size = 8;
  int minimize_period = 32;  // admissions between corpus minimizations
  int max_corpus = 256;      // minimization triggers above this many entries
  // Anytime mode: when set, each mission loads `<dir>/corpus_<seed>.jsonl`
  // before searching and saves its minimized corpus back afterwards, so a
  // later campaign resumes the exploration where this one stopped. Off by
  // default — a pre-populated corpus intentionally changes results.
  std::string corpus_dir;
};

struct FuzzerConfig {
  double spoof_distance = 10.0;          // d, m
  sim::SimulationConfig sim{};           // simulator settings
  swarm::CommConfig comm{};              // communication model
  OptimizerConfig optimizer{};           // gradient-search settings
  SeedScheduleConfig seeds{};            // SVG scheduling settings
  int mission_budget = 60;               // total search iterations per mission
  int per_seed_budget = 20;              // paper: cap 20 per seed
  std::uint64_t rng_seed = 7;            // stream for the random fuzzers
  // Initial guess: spoofing starts `lead_time` before the victim's clean
  // closest approach, for `initial_duration` seconds.
  double lead_time = 15.0;
  double initial_duration = 20.0;
  // Prefix reuse: checkpoint the clean run every `checkpoint_period` seconds
  // of sim time and resume each objective evaluation from the latest
  // checkpoint preceding its spoofing window. Bit-identical results either
  // way (see sim/checkpoint.h); off only for benchmarking/debugging.
  bool prefix_reuse = true;
  double checkpoint_period = 1.0;
  // Eval-thread count for the gradient search's batch evaluations (the
  // multi-start candidates and each iteration's FD stencil): 1 (default)
  // evaluates serially, N > 1 fans batches out over an EvalPool of N worker
  // threads, 0 resolves to the hardware concurrency. Results are
  // bit-identical for any value (see Objective::evaluate_batch); campaigns
  // split the machine between mission workers, eval threads and intra-tick
  // sim threads (fuzz::split_thread_budget) so
  // workers x eval_threads x sim.sim_threads stays within the hardware.
  // sim.sim_threads composes with this: each eval thread's simulator may
  // additionally parallelize inside a tick (sim.sim_threads = 0 here means
  // auto = whatever the eval fan-out leaves of the machine).
  int eval_threads = 1;
  // Fault containment (see sim/fault.h and DESIGN.md section 11). The
  // wall-clock budget covers one whole fuzz() call — the clean run and every
  // objective evaluation share the same absolute deadline — so a mission
  // cannot stall a campaign worker indefinitely. The step budget bounds each
  // individual simulation. Zero disables a guard; a tripped guard raises
  // sim::RunFaultError{kTimeout} out of fuzz().
  double mission_timeout_s = 0.0;
  std::int64_t eval_max_steps = 0;
  // Deterministic fault injection for containment tests; kNone in production.
  sim::FaultInjection fault_injection{};
  // E_Fuzz settings; ignored by every other kind.
  EvolutionConfig evolution{};
};

// One fuzzed seed's outcome (for diagnostics and the ablation bench).
struct SeedAttempt {
  Seed seed;
  OptimizationResult outcome;
};

struct FuzzResult {
  bool clean_run_failed = false;  // mission collided without any attack
  bool found = false;             // an SPV was discovered
  attack::SpoofingPlan plan;      // the successful attack (when found)
  int victim = -1;                // the drone that crashed (when found)
  double victim_vdo = 0.0;        // that drone's clean-run VDO
  int iterations = 0;             // total search iterations consumed
  int simulations = 0;            // total mission simulations (incl. stencil)
  double mission_vdo = 0.0;       // min over drones of clean-run VDO
  double clean_mission_time = 0.0;
  // Search-state accounting (part of deterministic_equal, unlike the
  // performance counters below): attempts actually tried — seeds searched
  // by the gradient fuzzers, parameter draws by the random ones — which can
  // exceed attempts.size() once the recording cap kicks in, and whether
  // seed scheduling came up empty (a mission that *looks* like a zero-cost
  // success-free run but was never fuzzed at all).
  int attempts_tried = 0;
  bool no_seeds = false;
  // E_Fuzz search state (zero for every other kind), also part of
  // deterministic_equal: corpus size after the final minimization, distinct
  // novelty bins lit, and total admissions (including entries later
  // minimized away).
  int corpus_size = 0;
  int novelty_bins = 0;
  int corpus_admissions = 0;
  // Performance accounting (not part of the search outcome, and excluded
  // from deterministic_equal like wall time): control ticks simulated vs
  // skipped by resuming from clean-run prefix checkpoints, plus the batch
  // count submitted to the parallel evaluation engine and the eval-thread
  // count it ran with.
  std::int64_t sim_steps_executed = 0;
  std::int64_t prefix_steps_reused = 0;
  int eval_batches = 0;
  int eval_parallelism = 1;
  std::vector<SeedAttempt> attempts;
};

class Fuzzer {
 public:
  virtual ~Fuzzer() = default;
  [[nodiscard]] virtual FuzzResult fuzz(const sim::MissionSpec& mission) = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

// Builds a fuzzer of `kind`. The controller defaults to Vasarhelyi when
// `controller` is null.
[[nodiscard]] std::unique_ptr<Fuzzer> make_fuzzer(
    FuzzerKind kind, const FuzzerConfig& config,
    std::shared_ptr<const swarm::SwarmController> controller = nullptr);

}  // namespace swarmfuzz::fuzz
