#include "fuzz/mutation.h"

#include <algorithm>

namespace swarmfuzz::fuzz {
namespace {

// Uniform draw over [0, n) minus two excluded values (which may coincide).
// Requires at least one admissible value.
int draw_excluding(math::Rng& rng, int n, int exclude_a, int exclude_b) {
  const int lo = std::min(exclude_a, exclude_b);
  const int hi = std::max(exclude_a, exclude_b);
  const int excluded = lo == hi ? 1 : 2;
  int v = rng.uniform_int(0, n - 1 - excluded);
  if (v >= lo) ++v;
  if (excluded == 2 && v >= hi) ++v;
  return v;
}

}  // namespace

std::string_view mutation_op_name(MutationOp op) noexcept {
  switch (op) {
    case MutationOp::kWindowShift: return "window_shift";
    case MutationOp::kWindowStretch: return "window_stretch";
    case MutationOp::kWindowReset: return "window_reset";
    case MutationOp::kCrossover: return "crossover";
    case MutationOp::kTargetSwap: return "target_swap";
    case MutationOp::kVictimSwap: return "victim_swap";
    case MutationOp::kDirectionFlip: return "direction_flip";
  }
  return "?";
}

MutantCandidate mutate(const CorpusEntry& parent, const CorpusEntry& partner,
                       int num_drones, double t_mission, math::Rng& rng,
                       const MutationConfig& config) {
  // Weighted operator table: the window is the continuous search space where
  // gradient-free progress accumulates, so window edits dominate; pair edits
  // restart the behavioral context and stay rarer.
  static constexpr MutationOp kTable[10] = {
      MutationOp::kWindowShift,   MutationOp::kWindowShift,
      MutationOp::kWindowShift,   MutationOp::kWindowStretch,
      MutationOp::kWindowStretch, MutationOp::kWindowReset,
      MutationOp::kCrossover,     MutationOp::kTargetSwap,
      MutationOp::kVictimSwap,    MutationOp::kDirectionFlip,
  };
  MutationOp op = kTable[rng.uniform_int(0, 9)];
  // A pair swap needs a third drone (the counterpart of a 2-drone swarm is
  // already taken); degrade to the nearest always-valid discrete edit.
  if ((op == MutationOp::kTargetSwap || op == MutationOp::kVictimSwap) &&
      num_drones < 3) {
    op = MutationOp::kDirectionFlip;
  }

  MutantCandidate out{parent.seed, parent.t_start, parent.duration, op};
  switch (op) {
    case MutationOp::kWindowShift:
      out.t_start = std::max(
          parent.t_start + rng.uniform(-config.shift_max_s, config.shift_max_s),
          0.0);
      break;
    case MutationOp::kWindowStretch:
      out.duration =
          parent.duration * rng.uniform(config.stretch_min, config.stretch_max);
      break;
    case MutationOp::kWindowReset: {
      out.t_start = rng.uniform(0.0, t_mission);
      out.duration = rng.uniform(0.0, t_mission - out.t_start);
      break;
    }
    case MutationOp::kCrossover:
      out.t_start = partner.t_start;
      out.duration = partner.duration;
      break;
    case MutationOp::kTargetSwap:
      out.seed.target = draw_excluding(rng, num_drones, parent.seed.target,
                                       parent.seed.victim);
      break;
    case MutationOp::kVictimSwap:
      out.seed.victim = draw_excluding(rng, num_drones, parent.seed.target,
                                       parent.seed.victim);
      break;
    case MutationOp::kDirectionFlip:
      out.seed.direction = attack::opposite(parent.seed.direction);
      break;
  }
  return out;
}

}  // namespace swarmfuzz::fuzz
