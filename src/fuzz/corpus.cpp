#include "fuzz/corpus.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>
#include <stdexcept>

#include "fuzz/telemetry.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/retry.h"

namespace swarmfuzz::fuzz {
namespace {

// Bin-id layout: axis * kAxisStride + index. With up to 2^24 indices per
// axis (per-drone clearance uses drone * bins + bucket, so thousands of
// drones fit) and single-digit axes, every id stays well below 2^31 and
// survives a round trip through JSON integers.
constexpr std::uint32_t kAxisStride = 1u << 24;
enum NoveltyAxis : std::uint32_t {
  kAxisClearance = 0,  // per-drone obstacle clearance buckets
  kAxisTightestAt = 1, // mission-time fraction of the tightest approach
  kAxisNearMiss = 2,   // count of drones inside the near-miss radius
  kAxisPacking = 3,    // tightest average swarm packing
  kAxisObjective = 4,  // objective value f
  kAxisSuccess = 5,    // a collision was found
};

// Buckets a non-negative quantity at `width` resolution, saturating at the
// top bucket. Deterministic for every input: NaN and negatives take the
// bottom bucket, +inf the top (a drone that never met an obstacle is its own
// behavior, not an error).
int bucket_of(double value, double width, int bins) {
  if (!(value > 0.0)) return 0;
  if (!std::isfinite(value)) return bins - 1;
  const double scaled = value / width;
  if (scaled >= static_cast<double>(bins - 1)) return bins - 1;
  return static_cast<int>(scaled);
}

std::uint32_t bin_id(NoveltyAxis axis, int index) {
  return axis * kAxisStride + static_cast<std::uint32_t>(index);
}

}  // namespace

std::vector<std::uint32_t> novelty_signature(const ObjectiveEval& eval,
                                             double t_mission,
                                             const NoveltyConfig& config) {
  const int bins = std::max(config.bins, 2);
  std::vector<std::uint32_t> signature;
  signature.reserve(eval.drone_clearance.size() + 4);

  int near_misses = 0;
  for (std::size_t i = 0; i < eval.drone_clearance.size(); ++i) {
    const double clearance = eval.drone_clearance[i];
    signature.push_back(
        bin_id(kAxisClearance,
               static_cast<int>(i) * bins +
                   bucket_of(clearance, config.clearance_bin_m, bins)));
    if (clearance < config.near_miss_m) ++near_misses;
  }

  const double fraction =
      t_mission > 0.0
          ? std::clamp(eval.min_clearance_time / t_mission, 0.0, 1.0)
          : 0.0;
  signature.push_back(bin_id(
      kAxisTightestAt,
      std::min(static_cast<int>(fraction * bins), bins - 1)));
  signature.push_back(bin_id(kAxisNearMiss, std::min(near_misses, bins - 1)));
  signature.push_back(
      bin_id(kAxisPacking,
             bucket_of(eval.min_avg_separation, config.separation_bin_m, bins)));
  signature.push_back(
      bin_id(kAxisObjective, bucket_of(eval.f, config.clearance_bin_m, bins)));
  if (eval.success) signature.push_back(bin_id(kAxisSuccess, 0));

  std::sort(signature.begin(), signature.end());
  signature.erase(std::unique(signature.begin(), signature.end()),
                  signature.end());
  return signature;
}

bool Corpus::admit(CorpusEntry entry) {
  bool novel = false;
  for (const std::uint32_t bin : entry.signature) {
    if (!lit_.contains(bin)) {
      novel = true;
      break;
    }
  }
  if (!novel) return false;
  lit_.insert(entry.signature.begin(), entry.signature.end());
  entries_.push_back(std::move(entry));
  ++admissions_;
  if (max_entries_ > 0 && static_cast<int>(entries_.size()) > max_entries_) {
    minimize();
  }
  return true;
}

void Corpus::minimize() {
  if (entries_.empty()) return;
  // Greedy cheapest-cover: for every lit bin, the cheapest entry covering it
  // survives (cost ties broken by admission order — entries_ is in admission
  // order, so the first cheapest wins). The surviving set covers every lit
  // bin, so bins_lit() is invariant.
  std::map<std::uint32_t, std::size_t> cheapest;  // bin -> entry index
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    for (const std::uint32_t bin : entries_[i].signature) {
      const auto [it, inserted] = cheapest.try_emplace(bin, i);
      if (!inserted && entries_[i].cost < entries_[it->second].cost) {
        it->second = i;
      }
    }
  }
  std::vector<bool> keep(entries_.size(), false);
  for (const auto& [bin, index] : cheapest) keep[index] = true;
  std::vector<CorpusEntry> kept;
  kept.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (keep[i]) kept.push_back(std::move(entries_[i]));
  }
  entries_ = std::move(kept);
}

std::string to_jsonl(const CorpusEntry& entry) {
  util::JsonWriter json;
  json.begin_object();
  json.key("target");
  json.value(entry.seed.target);
  json.key("victim");
  json.value(entry.seed.victim);
  json.key("direction");
  json.value(attack::direction_name(entry.seed.direction));
  json.key("vdo");
  json.value_exact(entry.seed.vdo);
  json.key("influence");
  json.value_exact(entry.seed.influence);
  json.key("t_start");
  json.value_exact(entry.t_start);
  json.key("duration");
  json.value_exact(entry.duration);
  json.key("f");
  json.value_exact(entry.f);
  json.key("cost");
  json.value_exact(entry.cost);
  json.key("signature");
  json.begin_array();
  for (const std::uint32_t bin : entry.signature) {
    json.value(static_cast<std::int64_t>(bin));
  }
  json.end_array();
  json.end_object();
  return frame_with_crc(json.str());
}

CorpusEntry corpus_entry_from_json(std::string_view line) {
  verify_crc_frame(line);
  const util::JsonValue root = util::parse_json(line);
  CorpusEntry entry;
  entry.seed.target = root.at("target").as_int();
  entry.seed.victim = root.at("victim").as_int();
  entry.seed.direction = attack::direction_from_name(root.at("direction").as_string());
  entry.seed.vdo = root.at("vdo").as_double();
  entry.seed.influence = root.at("influence").as_double();
  entry.t_start = root.at("t_start").as_double();
  entry.duration = root.at("duration").as_double();
  entry.f = root.at("f").as_double();
  entry.cost = root.at("cost").as_double();
  const util::JsonValue& signature = root.at("signature");
  entry.signature.reserve(signature.size());
  for (std::size_t i = 0; i < signature.size(); ++i) {
    entry.signature.push_back(
        static_cast<std::uint32_t>(signature.at(i).as_int64()));
  }
  return entry;
}

void save_corpus(const Corpus& corpus, const std::string& path) {
  // Write-to-temp + atomic rename: a crash mid-save leaves the previous
  // corpus intact, and no reader ever observes a half-written file. Retries
  // route through the shared I/O retrier like every other durable write.
  const std::string tmp = path + ".tmp";
  util::io_retrier().run("save_corpus", [&] {
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) {
      throw util::IoError("corpus: cannot open " + tmp + " for writing", errno);
    }
    bool ok = true;
    for (const CorpusEntry& entry : corpus.entries()) {
      std::string line = to_jsonl(entry);
      line.push_back('\n');
      ok = ok && std::fwrite(line.data(), 1, line.size(), file) == line.size();
    }
    ok = ok && std::fflush(file) == 0;
    const int write_errno = errno;
    const bool closed = std::fclose(file) == 0;
    if (!ok) {
      throw util::IoError("corpus: short write to " + tmp, write_errno);
    }
    if (!closed) {
      throw util::IoError("corpus: cannot close " + tmp, errno);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      throw util::IoError("corpus: cannot rename " + tmp + " to " + path +
                              ": " + ec.message(),
                          ec.value());
    }
  });
}

std::vector<CorpusEntry> load_corpus(const std::string& path) {
  std::vector<CorpusEntry> entries;
  for (const JsonlLine& line : read_jsonl_lines(path)) {
    try {
      entries.push_back(corpus_entry_from_json(line.text));
    } catch (const std::exception& e) {
      // Same policy as every durable JSONL stream: a torn final line is the
      // crash signature and is skipped; a corrupt complete line means the
      // file cannot be trusted.
      if (line.complete) {
        throw std::runtime_error("corpus: corrupt entry in " + path + ": " +
                                 e.what());
      }
      SWARMFUZZ_WARN("corpus: skipping torn final entry in {} ({} bytes): {}",
                     path, line.text.size(), e.what());
    }
  }
  return entries;
}

}  // namespace swarmfuzz::fuzz
