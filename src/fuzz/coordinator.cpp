#include "fuzz/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <set>
#include <thread>

#include "fuzz/telemetry.h"
#include "util/logging.h"
#include "util/retry.h"

namespace swarmfuzz::fuzz {
namespace {

double median_of(std::vector<double> values) {
  if (values.empty()) return -1.0;
  const auto mid = values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2);
  std::nth_element(values.begin(), mid, values.end());
  if (values.size() % 2 == 1) return *mid;
  const double upper = *mid;
  const double lower = *std::max_element(values.begin(), mid);
  return 0.5 * (lower + upper);
}

}  // namespace

int recorded_prefix(const std::string& dir, const LeaseRange& lease) {
  std::set<int> indices;
  try {
    for (const TelemetryRecord& record :
         load_telemetry(shard_telemetry_path(dir, lease.lease_id))) {
      indices.insert(record.mission_index);
    }
  } catch (const std::exception&) {
    // A corrupt shard file is the worker's problem to surface; for health
    // probing it simply means no resumable prefix.
    return 0;
  }
  int n = 0;
  while (n < lease.size() && indices.count(lease.begin + n) != 0) ++n;
  return n;
}

std::vector<LeaseHealth> probe_lease_health(const std::string& dir,
                                            const LeaseTable& table,
                                            std::int64_t ttl_ms,
                                            std::int64_t now_ms) {
  LeaseStore store(dir, ttl_ms, "health-probe", [now_ms] { return now_ms; });
  std::vector<LeaseHealth> health;
  health.reserve(table.active.size());
  for (const LeaseRange& lease : table.active) {
    LeaseHealth h;
    h.range = lease;
    h.done = store.is_done(lease.lease_id);
    h.retired = store.is_retired(lease.lease_id);
    h.recorded = h.done ? lease.size() : recorded_prefix(dir, lease);
    const LeaseClaimRecord claim = store.peek_claim(lease.lease_id);
    if (claim.lease_id >= 0) {
      h.claimed = true;
      h.owner = claim.owner;
      h.expired = claim.expires_at_ms <= now_ms;
      h.last_renew_age_ms = now_ms - (claim.expires_at_ms - ttl_ms);
    }
    health.push_back(std::move(h));
  }
  return health;
}

std::string describe_incomplete_leases(const std::vector<LeaseHealth>& health) {
  std::string report;
  char line[256];
  for (const LeaseHealth& h : health) {
    if (h.done) continue;
    std::string state;
    if (h.retired) {
      state = "retired (awaiting sub-lease heal)";
    } else if (!h.claimed) {
      state = "unclaimed";
    } else {
      const double age_s =
          static_cast<double>(h.last_renew_age_ms) / 1000.0;
      std::snprintf(line, sizeof line, "%s claim of '%s' (last heartbeat %.1fs ago)",
                    h.expired ? "expired" : "live", h.owner.c_str(), age_s);
      state = line;
    }
    std::snprintf(line, sizeof line,
                  "  lease %-3d missions %d..%d: %d/%d recorded, %s\n",
                  h.range.lease_id, h.range.begin, h.range.end - 1, h.recorded,
                  h.range.size(), state.c_str());
    report += line;
  }
  return report;
}

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)),
      store_(config_.dir, config_.lease_ttl_ms, "coordinator", config_.clock),
      sleep_ms_(config_.sleep_ms) {
  if (!sleep_ms_) {
    sleep_ms_ = [](std::int64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
}

bool Coordinator::recarve(const LeaseRange& lease, const char* reason) {
  const int id = lease.lease_id;
  if (!store_.is_retired(id)) {
    // Marker first (exclusive create — single winner among coordinators):
    // once it exists the lease can never be claimed again, so a crash
    // before the ledger entry lands only delays coverage until heal.
    const std::string marker = recarved_marker_path(config_.dir, id);
    const bool won = util::io_retrier().run("recarve_marker", [&]() -> bool {
      std::FILE* file = std::fopen(marker.c_str(), "wbx");
      if (file != nullptr) {
        std::fclose(file);
        return true;
      }
      if (errno == EEXIST) return false;
      throw util::IoError("coordinator: cannot create " + marker, errno);
    });
    if (!won) return false;
  }
  // Probe the prefix *after* the marker: the straggler may still append
  // while unfenced, and any record past this point merely becomes a merge
  // duplicate of a sub-lease owner's identical outcome.
  const int recorded = recorded_prefix(config_.dir, lease);
  const int tail_begin = lease.begin + recorded;
  const int tail = lease.end - tail_begin;
  RecarveRecord record;
  record.parent = id;
  if (tail > 0) {
    LeaseTable table =
        load_lease_table(config_.dir, config_.num_missions, config_.num_leases);
    int next_id = table.next_lease_id;
    const int pieces = std::clamp(config_.recarve_pieces, 1, tail);
    const int base = tail / pieces;
    const int extra = tail % pieces;
    int begin = tail_begin;
    for (int p = 0; p < pieces; ++p) {
      const int size = base + (p < extra ? 1 : 0);
      record.subs.push_back(
          LeaseRange{.lease_id = next_id++, .begin = begin, .end = begin + size});
      begin += size;
    }
  }
  append_jsonl_line(recarve_ledger_path(config_.dir), to_jsonl(record));
  store_.fence_claim(id);
  ++stats_.recarves;
  stats_.subleases += static_cast<int>(record.subs.size());
  observations_.erase(id);
  SWARMFUZZ_WARN(
      "coordinator: re-carved lease {} ({}): missions {}..{} -> {} sub-leases",
      id, reason, tail_begin, lease.end - 1,
      static_cast<int>(record.subs.size()));
  return true;
}

CoordinatorTickResult Coordinator::tick() {
  ++stats_.polls;
  const std::int64_t now = store_.now_ms();
  const LeaseTable table =
      load_lease_table(config_.dir, config_.num_missions, config_.num_leases);
  CoordinatorTickResult result;
  result.health =
      probe_lease_health(config_.dir, table, config_.lease_ttl_ms, now);

  // Pass 1: observation upkeep and rate estimation.
  for (LeaseHealth& h : result.health) {
    const int id = h.range.lease_id;
    if (h.done) {
      const auto it = observations_.find(id);
      if (it != observations_.end()) {
        // Keep the finished lease's throughput as a peer baseline: the last
        // straggler standing must still be comparable to *something* after
        // every healthy lease has completed.
        const std::int64_t elapsed = now - it->second.first_ms;
        const int completed = h.range.size() - it->second.first_recorded;
        if (elapsed > 0 && completed > 0) {
          finished_rates_.push_back(1000.0 * completed /
                                    static_cast<double>(elapsed));
        }
        observations_.erase(it);
      }
      continue;
    }
    if (h.retired) continue;  // healed in pass 2
    Observation& obs = observations_[id];
    if (obs.polls == 0 || obs.owner != h.owner || h.recorded < obs.recorded) {
      obs = Observation{.owner = h.owner,
                        .first_recorded = h.recorded,
                        .recorded = h.recorded,
                        .first_ms = now,
                        .last_progress_ms = now};
    }
    if (h.recorded > obs.recorded) obs.last_progress_ms = now;
    obs.recorded = h.recorded;
    ++obs.polls;
    const std::int64_t elapsed = now - obs.first_ms;
    if (obs.polls >= 2 && elapsed > 0) {
      h.rate_per_s =
          1000.0 * (obs.recorded - obs.first_recorded) / static_cast<double>(elapsed);
    }
  }

  // Pass 2: classify and re-carve.
  const std::int64_t renew_period =
      std::max<std::int64_t>(config_.lease_ttl_ms / 3, 1);
  bool complete = true;
  for (const LeaseHealth& h : result.health) {
    if (h.done) continue;
    complete = false;
    const int id = h.range.lease_id;
    if (h.retired) {
      // Half-finished re-carve (marker landed, ledger entry did not):
      // finish it, otherwise the lease is unclaimable *and* uncovered.
      if (recarve(h.range, "healing interrupted re-carve")) {
        ++stats_.heals;
        result.recarved.push_back(id);
      }
      continue;
    }
    if (!h.claimed) continue;  // idle workers will claim it
    const int tail = h.range.size() - h.recorded;
    if (tail < std::max(config_.min_recarve_missions, 1) && tail > 0) continue;

    const char* reason = nullptr;
    if (h.expired) {
      reason = "expired claim";
    } else if (static_cast<double>(h.last_renew_age_ms) >
               config_.stale_heartbeat_periods *
                   static_cast<double>(renew_period)) {
      reason = "stale heartbeat";
    } else {
      const auto it = observations_.find(id);
      if (it != observations_.end()) {
        Observation& obs = it->second;
        // Hung worker: heartbeat is live but progress stalled well past the
        // lease's own observed per-mission pace.
        const int completed = obs.recorded - obs.first_recorded;
        if (completed > 0) {
          const double ms_per_mission =
              static_cast<double>(obs.last_progress_ms - obs.first_ms) /
              completed;
          const double floor_ms = std::max(
              ms_per_mission * config_.stall_factor,
              static_cast<double>(config_.min_observations * config_.poll_ms));
          if (static_cast<double>(now - obs.last_progress_ms) > floor_ms) {
            reason = "progress stall";
          }
        }
        // Slow worker: rate below the straggler fraction of the median peer
        // rate for min_observations consecutive polls.
        if (reason == nullptr && obs.polls >= config_.min_observations) {
          std::vector<double> peers = finished_rates_;
          for (const LeaseHealth& other : result.health) {
            if (other.range.lease_id != id && other.rate_per_s > 0.0) {
              peers.push_back(other.rate_per_s);
            }
          }
          const double peer_median = median_of(std::move(peers));
          const double rate = std::max(h.rate_per_s, 0.0);
          if (peer_median > 0.0 &&
              rate < config_.straggler_rate_fraction * peer_median) {
            ++obs.slow_polls;
          } else {
            obs.slow_polls = 0;
          }
          if (obs.slow_polls >= config_.min_observations) {
            reason = "rate below peer median";
          }
        }
      }
    }
    if (reason != nullptr && recarve(h.range, reason)) {
      result.recarved.push_back(id);
    }
  }
  result.complete = complete && result.recarved.empty();
  return result;
}

bool Coordinator::run(std::int64_t timeout_ms) {
  std::int64_t waited_ms = 0;
  while (true) {
    const CoordinatorTickResult result = tick();
    if (result.complete) return true;
    if (timeout_ms > 0 && waited_ms >= timeout_ms) return false;
    sleep_ms_(config_.poll_ms);
    waited_ms += config_.poll_ms;
  }
}

}  // namespace swarmfuzz::fuzz
