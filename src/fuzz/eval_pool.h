// Deterministic parallel evaluation engine for the fuzzing search.
//
// The gradient search submits its independent simulations — the multi-start
// candidates and each iteration's FD stencil — as batches; the pool fans a
// batch out over worker threads and hands every outcome back in job order.
// Each worker owns its own Simulator + FlockingControlSystem clone (the only
// mutable per-run state), and all workers resume from the same read-only
// PrefixCache, so a batch's simulations are bit-identical to the serial
// runs they replace. Determinism is then the *caller's* contract: Objective
// replays pool outcomes in submission order and commits (memo, counters)
// only the prefix a serial run would have consumed (see objective.h).
//
// This is the find-then-batch shape CGF engines use to saturate cores
// (AFL's fork-server/persistent modes); PR 3's prefix reuse made each
// evaluation cheap, the pool makes independent evaluations concurrent.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "fuzz/objective.h"

namespace swarmfuzz::fuzz {

// std::thread::hardware_concurrency() with the zero case handled: the
// standard allows it to return 0 when the core count is "not computable",
// and every worker/eval-thread split that divides by it must see >= 1 or
// it would compute zero workers. All thread-count sizing in the fuzzing
// layer goes through this helper instead of the raw call.
[[nodiscard]] int hardware_threads() noexcept;

// Per-worker eval-thread budget when `workers` campaign workers share
// `hardware` cores: `requested <= 0` is auto (hardware / workers, floored),
// explicit requests are clamped so workers * eval_threads <= hardware.
// Always returns >= 1, for any input (zero/negative workers or hardware —
// the unknown-concurrency degenerate cases — are clamped up to 1 first).
[[nodiscard]] int split_eval_threads(int workers, int requested,
                                     int hardware) noexcept;

// Three-way thread budget for one campaign worker: eval threads (parallel
// candidate evaluation, EvalPool) times sim threads (intra-tick parallelism,
// TickPool) per eval thread.
struct ThreadBudget {
  int eval_threads = 1;
  int sim_threads = 1;
};

// Splits `hardware` cores across `workers` campaign processes into an
// eval x sim budget per worker. `<= 0` requests are auto. Explicit requests
// are satisfied first (clamped so the worker's total stays within its
// hardware share); the remaining dimension takes what is left of the
// per-worker share. Both-auto keeps the historical behaviour: all eval
// threads, serial ticks — intra-simulation parallelism never silently
// steals cores from batch parallelism, which saturates the machine with
// less synchronization. Every field is >= 1 for any input, so the fully
// oversubscribed degenerate request (workers = eval = sim = hardware)
// clamps to {1, 1} instead of exploding the thread count.
[[nodiscard]] ThreadBudget split_thread_budget(int workers, int requested_eval,
                                               int requested_sim,
                                               int hardware) noexcept;

class EvalPool {
 public:
  // One (already projected) candidate of a batch.
  struct Job {
    double t_start = 0.0;
    double duration = 0.0;
  };

  // Outcome of one job: either an evaluation plus its step accounting, or
  // the exception the simulation raised (watchdog trip, sentinel, ...).
  struct JobResult {
    ObjectiveEval eval{};
    std::int64_t steps_executed = 0;
    std::int64_t steps_resumed = 0;
    std::exception_ptr error;
  };

  // Everything a batch's jobs share. All pointers are borrowed and must
  // outlive the evaluate() call; `prefix` is only ever read (concurrent
  // lookups are safe — see PrefixCache).
  struct BatchContext {
    const sim::MissionSpec* mission = nullptr;
    Seed seed{};
    double spoof_distance = 0.0;
    const PrefixCache* prefix = nullptr;
    const EvalGuards* guards = nullptr;
  };

  // Spawns `threads` persistent workers (clamped to >= 1); with one thread
  // no workers are spawned and evaluate() runs inline on the caller.
  EvalPool(const sim::SimulationConfig& sim,
           std::shared_ptr<const swarm::SwarmController> controller,
           const swarm::CommConfig& comm, int threads);
  ~EvalPool();

  EvalPool(const EvalPool&) = delete;
  EvalPool& operator=(const EvalPool&) = delete;

  [[nodiscard]] int threads() const noexcept { return threads_; }

  // Evaluates every job of the batch (concurrently when workers exist) and
  // returns the outcomes in job order. Blocking; one batch in flight at a
  // time per pool. Exceptions are captured per job, never thrown from here.
  [[nodiscard]] std::vector<JobResult> evaluate(const BatchContext& context,
                                                std::span<const Job> jobs);

 private:
  void worker_loop();
  static void run_job(const sim::Simulator& simulator,
                      swarm::FlockingControlSystem& system,
                      const BatchContext& context, const Job& job,
                      JobResult& out) noexcept;

  sim::SimulationConfig sim_config_;
  std::shared_ptr<const swarm::SwarmController> controller_;
  swarm::CommConfig comm_;
  int threads_ = 1;

  // Batch handoff: evaluate() publishes the batch under the mutex and bumps
  // `generation_`; workers claim job indices via the atomic cursor, write
  // disjoint results_ slots, and the last decrement of `remaining_` (under
  // the mutex) releases the waiting caller — so results_ reads are ordered
  // after every worker's writes.
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const BatchContext* context_ = nullptr;
  const Job* jobs_ = nullptr;
  std::size_t num_jobs_ = 0;
  std::vector<JobResult> results_;
  std::atomic<std::size_t> next_{0};
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace swarmfuzz::fuzz
