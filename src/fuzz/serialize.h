// JSON serialization of fuzzing results, for downstream tooling (plots,
// dashboards, regression tracking). Produced by `swarmfuzz fuzz --json` and
// `swarmfuzz campaign --json`.
#pragma once

#include <string>

#include "fuzz/campaign.h"

namespace swarmfuzz::fuzz {

// One mission's fuzzing outcome, including every seed attempt.
[[nodiscard]] std::string to_json(const FuzzResult& result);

// A whole campaign: configuration echo, aggregates and per-mission rows.
[[nodiscard]] std::string to_json(const CampaignResult& result);

}  // namespace swarmfuzz::fuzz
