#include "fuzz/serialize.h"

#include <string>

#include "math/stats.h"
#include "util/json.h"
#include "util/retry.h"

namespace swarmfuzz::fuzz {
namespace {

void write_plan(util::JsonWriter& json, const attack::SpoofingPlan& plan) {
  json.begin_object();
  json.key("target");
  json.value(plan.target);
  json.key("direction");
  json.value(attack::direction_name(plan.direction));
  json.key("start_time");
  json.value(plan.start_time);
  json.key("duration");
  json.value(plan.duration);
  json.key("distance");
  json.value(plan.distance);
  json.end_object();
}

void write_result_fields(util::JsonWriter& json, const FuzzResult& result) {
  json.key("clean_run_failed");
  json.value(result.clean_run_failed);
  json.key("found");
  json.value(result.found);
  json.key("iterations");
  json.value(result.iterations);
  json.key("simulations");
  json.value(result.simulations);
  json.key("attempts_tried");
  json.value(result.attempts_tried);
  if (result.no_seeds) {
    json.key("no_seeds");
    json.value(true);
  }
  // E_Fuzz corpus accounting; present only when a corpus was populated.
  if (result.corpus_admissions > 0 || result.corpus_size > 0 ||
      result.novelty_bins > 0) {
    json.key("corpus_size");
    json.value(result.corpus_size);
    json.key("novelty_bins");
    json.value(result.novelty_bins);
    json.key("corpus_admissions");
    json.value(result.corpus_admissions);
  }
  json.key("eval_batches");
  json.value(result.eval_batches);
  json.key("eval_parallelism");
  json.value(result.eval_parallelism);
  json.key("mission_vdo");
  json.value(result.mission_vdo);
  json.key("clean_mission_time");
  json.value(result.clean_mission_time);
  if (result.found) {
    json.key("victim");
    json.value(result.victim);
    json.key("victim_vdo");
    json.value(result.victim_vdo);
    json.key("plan");
    write_plan(json, result.plan);
  }
}

}  // namespace

std::string to_json(const FuzzResult& result) {
  util::JsonWriter json;
  json.begin_object();
  write_result_fields(json, result);
  json.key("attempts");
  json.begin_array();
  for (const SeedAttempt& attempt : result.attempts) {
    json.begin_object();
    json.key("target");
    json.value(attempt.seed.target);
    json.key("victim");
    json.value(attempt.seed.victim);
    json.key("direction");
    json.value(attack::direction_name(attempt.seed.direction));
    json.key("vdo");
    json.value(attempt.seed.vdo);
    json.key("influence");
    json.value(attempt.seed.influence);
    json.key("iterations");
    json.value(attempt.outcome.iterations);
    json.key("best_f");
    json.value(attempt.outcome.best_f);
    json.key("success");
    json.value(attempt.outcome.success);
    json.key("stalled");
    json.value(attempt.outcome.stalled);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::string to_json(const CampaignResult& result) {
  util::JsonWriter json;
  json.begin_object();
  json.key("fuzzer");
  json.value(fuzzer_kind_name(result.config.kind));
  json.key("num_drones");
  json.value(result.config.mission.num_drones);
  json.key("spoof_distance");
  json.value(result.config.fuzzer.spoof_distance);
  json.key("num_missions");
  json.value(static_cast<int>(result.outcomes.size()));

  json.key("success_rate");
  json.value(result.success_rate());
  const auto ci = math::wilson_interval(result.num_found(), result.num_fuzzable());
  json.key("success_rate_ci95");
  json.begin_array();
  json.value(ci.low);
  json.value(ci.high);
  json.end_array();
  json.key("avg_iterations_all");
  json.value(result.avg_iterations_all());
  json.key("avg_iterations_successful");
  json.value(result.avg_iterations_successful());

  json.key("avg_attempts_all");
  json.value(result.avg_attempts_all());
  json.key("num_no_seeds");
  json.value(result.num_no_seeds());

  json.key("num_faulted");
  json.value(result.num_faulted());
  json.key("faults");
  json.begin_object();
  for (const sim::FaultKind kind :
       {sim::FaultKind::kNumericalDivergence, sim::FaultKind::kTimeout,
        sim::FaultKind::kException, sim::FaultKind::kCleanRunFailed}) {
    json.key(sim::fault_kind_name(kind));
    json.value(result.fault_count(kind));
  }
  json.end_object();

  // Transport-layer accounting (util/retry.h): how hard the durable-I/O
  // path had to work. Process-wide, so a merged shard campaign's summary
  // reflects the merging process, and a shard's own summary its worker.
  const util::RetryCounters io = util::io_retrier().counters();
  json.key("io_retry");
  json.begin_object();
  json.key("attempts");
  json.value(std::to_string(io.attempts));
  json.key("retries");
  json.value(std::to_string(io.retries));
  json.key("exhausted");
  json.value(std::to_string(io.exhausted));
  json.key("permanent");
  json.value(std::to_string(io.permanent));
  json.key("quarantined_ops");
  json.value(io.quarantined_ops);
  json.end_object();

  json.key("missions");
  json.begin_array();
  for (const MissionOutcome& outcome : result.outcomes) {
    json.begin_object();
    json.key("index");
    json.value(outcome.mission_index);
    // Seeds are 64-bit; JSON numbers only guarantee 53 bits, so stringify.
    json.key("seed");
    json.value(std::to_string(outcome.mission_seed));
    json.key("completed");
    json.value(outcome.completed);
    json.key("wall_time_s");
    json.value(outcome.wall_time_s);
    if (outcome.fault != sim::FaultKind::kNone) {
      json.key("fault");
      json.value(sim::fault_kind_name(outcome.fault));
      json.key("fault_detail");
      json.value(outcome.fault_detail);
    }
    write_result_fields(json, outcome.result);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace swarmfuzz::fuzz
