// Campaign runner: evaluates a fuzzer over many randomized missions for one
// swarm configuration (paper section V-B runs 100 missions per
// configuration), and aggregates the metrics behind every table and figure.
//
// Missions are embarrassingly parallel; the runner shards them over a thread
// pool. Results are bit-for-bit deterministic in (config, base_seed)
// regardless of thread count, because every mission derives its own streams.
// The single exception is MissionOutcome::wall_time_s, which is measured.
//
// Durability: when `checkpoint_path` is set, every completed mission is
// appended to a JSONL checkpoint (write + flush per record). A restarted
// campaign replays the file, skips finished mission indices, and
// reconstructs a CampaignResult identical to an uninterrupted run's.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"
#include "fuzz/telemetry.h"
#include "sim/mission.h"

namespace swarmfuzz::fuzz {

// Point-in-time campaign progress, delivered to CampaignConfig::on_progress
// after each completed mission (serialized; callbacks never run
// concurrently).
struct CampaignProgress {
  int completed = 0;   // missions done, including those replayed on resume
  int resumed = 0;     // missions satisfied from the checkpoint
  int total = 0;       // config.num_missions
  int found = 0;       // SPVs discovered so far
  double elapsed_s = 0.0;  // wall-clock since this run_campaign() call
};

struct CampaignConfig {
  sim::MissionConfig mission{};
  FuzzerConfig fuzzer{};
  FuzzerKind kind = FuzzerKind::kSwarmFuzz;
  int num_missions = 60;
  std::uint64_t base_seed = 1000;  // mission i's seed is mission_seed(base, i, 0)
  int num_threads = 0;             // 0 = hardware concurrency
  // The paper's missions never collide without an attack (section V-A); a
  // small fraction of our randomly generated ones do. When > 0, such
  // missions are re-drawn (with a salted seed) up to this many times so the
  // campaign evaluates the configured number of attack-free missions.
  int clean_failure_retries = 5;
  // Optional custom controller factory (per worker); null = Vasarhelyi.
  std::function<std::shared_ptr<const swarm::SwarmController>()> controller_factory;

  // JSONL checkpoint file; empty disables checkpointing. With `resume` set,
  // records already in the file satisfy their mission indices (after
  // validation against this config) and only missing missions run;
  // otherwise the file is truncated and the campaign starts over.
  std::string checkpoint_path;
  bool resume = true;
  // Optional additional sink (live dashboards, tests). Not owned; must stay
  // alive for the duration of run_campaign(). Receives one record per
  // mission completed *in this run* (resumed missions are not re-emitted).
  TelemetrySink* telemetry = nullptr;
  // Optional progress observer; see CampaignProgress.
  std::function<void(const CampaignProgress&)> on_progress;
  // When > 0, at most this many *new* missions are executed in this call
  // (resumed missions don't count); the result is partial unless combined
  // with a checkpoint and re-run. Used for incremental/batched operation
  // and for exercising interruption in tests.
  int max_new_missions = 0;
};

struct MissionOutcome {
  int mission_index = -1;
  bool completed = false;         // false only in partial (interrupted) results
  std::uint64_t mission_seed = 0;
  double wall_time_s = 0.0;       // measured; the one non-deterministic field
  FuzzResult result;
};

struct CampaignResult {
  CampaignConfig config;
  std::vector<MissionOutcome> outcomes;

  // Missions actually executed or replayed (equals outcomes.size() except
  // in a max_new_missions-limited partial run).
  [[nodiscard]] int num_completed() const;

  // Success rate over fuzzable missions (clean-run failures excluded, as in
  // the paper where no mission collides without attack).
  [[nodiscard]] double success_rate() const;
  [[nodiscard]] int num_found() const;
  [[nodiscard]] int num_fuzzable() const;

  // Average search iterations: over successful missions only (Table II's
  // "iterations taken to find SPVs") and over all fuzzable missions.
  [[nodiscard]] double avg_iterations_successful() const;
  [[nodiscard]] double avg_iterations_all() const;

  // Spoofing parameters of the SPVs found (Fig. 7 series).
  [[nodiscard]] std::vector<double> found_start_times() const;
  [[nodiscard]] std::vector<double> found_durations() const;

  // Clean-run mission VDOs, one per fuzzable mission (Fig. 6d series).
  [[nodiscard]] std::vector<double> mission_vdos() const;

  // Prefix-reuse accounting, summed over all missions: control ticks
  // actually simulated vs skipped by resuming from clean-run checkpoints.
  // The reuse fraction is reused / (executed + reused).
  [[nodiscard]] std::int64_t total_sim_steps_executed() const;
  [[nodiscard]] std::int64_t total_prefix_steps_reused() const;

  // Cumulative success rate: for each x, the success rate over missions with
  // VDO <= x (Fig. 6a-6c). Returns (x, rate) points at each distinct VDO.
  [[nodiscard]] std::vector<std::pair<double, double>> cumulative_success_by_vdo()
      const;
};

// Derives mission `index`'s seed (attempt > 0 for clean-failure re-draws)
// from the campaign base seed via splitmix64-style mixing, so adjacent base
// seeds produce disjoint mission sets.
[[nodiscard]] std::uint64_t mission_seed(std::uint64_t base_seed, int index,
                                         int attempt) noexcept;

// Equality over every deterministic field (everything but wall_time_s and
// the step counters, which are performance accounting and legitimately
// differ between prefix-reuse configurations). This is the invariant behind
// thread-count independence, checkpoint/resume, and prefix reuse: an
// interrupted-and-resumed campaign — or one re-run with --no-prefix-reuse —
// must compare equal to an uninterrupted one.
[[nodiscard]] bool deterministic_equal(const MissionOutcome& a,
                                       const MissionOutcome& b) noexcept;
[[nodiscard]] bool deterministic_equal(const CampaignResult& a,
                                       const CampaignResult& b) noexcept;

// Runs the campaign. Progress (one line per 10% of missions when there are
// at least 10) is logged at info level; completion is always logged.
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace swarmfuzz::fuzz
