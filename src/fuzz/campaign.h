// Campaign runner: evaluates a fuzzer over many randomized missions for one
// swarm configuration (paper section V-B runs 100 missions per
// configuration), and aggregates the metrics behind every table and figure.
//
// Missions are embarrassingly parallel; the runner shards them over a thread
// pool. Results are bit-for-bit deterministic in (config, base_seed)
// regardless of thread count, because every mission derives its own streams.
#pragma once

#include <functional>
#include <vector>

#include "fuzz/fuzzer.h"
#include "sim/mission.h"

namespace swarmfuzz::fuzz {

struct CampaignConfig {
  sim::MissionConfig mission{};
  FuzzerConfig fuzzer{};
  FuzzerKind kind = FuzzerKind::kSwarmFuzz;
  int num_missions = 60;
  std::uint64_t base_seed = 1000;  // mission i uses seed base_seed + i
  int num_threads = 0;             // 0 = hardware concurrency
  // The paper's missions never collide without an attack (section V-A); a
  // small fraction of our randomly generated ones do. When > 0, such
  // missions are re-drawn (with a salted seed) up to this many times so the
  // campaign evaluates the configured number of attack-free missions.
  int clean_failure_retries = 5;
  // Optional custom controller factory (per worker); null = Vasarhelyi.
  std::function<std::shared_ptr<const swarm::SwarmController>()> controller_factory;
};

struct MissionOutcome {
  std::uint64_t mission_seed = 0;
  FuzzResult result;
};

struct CampaignResult {
  CampaignConfig config;
  std::vector<MissionOutcome> outcomes;

  // Success rate over fuzzable missions (clean-run failures excluded, as in
  // the paper where no mission collides without attack).
  [[nodiscard]] double success_rate() const;
  [[nodiscard]] int num_found() const;
  [[nodiscard]] int num_fuzzable() const;

  // Average search iterations: over successful missions only (Table II's
  // "iterations taken to find SPVs") and over all fuzzable missions.
  [[nodiscard]] double avg_iterations_successful() const;
  [[nodiscard]] double avg_iterations_all() const;

  // Spoofing parameters of the SPVs found (Fig. 7 series).
  [[nodiscard]] std::vector<double> found_start_times() const;
  [[nodiscard]] std::vector<double> found_durations() const;

  // Clean-run mission VDOs, one per fuzzable mission (Fig. 6d series).
  [[nodiscard]] std::vector<double> mission_vdos() const;

  // Cumulative success rate: for each x, the success rate over missions with
  // VDO <= x (Fig. 6a-6c). Returns (x, rate) points at each distinct VDO.
  [[nodiscard]] std::vector<std::pair<double, double>> cumulative_success_by_vdo()
      const;
};

// Runs the campaign. Progress (one line per 10% of missions) is logged at
// info level.
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace swarmfuzz::fuzz
