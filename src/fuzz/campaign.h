// Campaign runner: evaluates a fuzzer over many randomized missions for one
// swarm configuration (paper section V-B runs 100 missions per
// configuration), and aggregates the metrics behind every table and figure.
//
// Missions are embarrassingly parallel; the runner shards them over a thread
// pool. Results are bit-for-bit deterministic in (config, base_seed)
// regardless of thread count, because every mission derives its own streams.
// The single exception is MissionOutcome::wall_time_s, which is measured.
//
// Durability: when `checkpoint_path` is set, every completed mission is
// appended to a JSONL checkpoint (write + flush per record, CRC-framed). A
// restarted campaign replays the file, skips finished mission indices, and
// reconstructs a CampaignResult identical to an uninterrupted run's.
//
// Fault containment (DESIGN.md section 11): a mission whose fuzz() raises —
// sentinel divergence, watchdog timeout, or any other exception — is retried
// with a salted seed up to `max_fault_retries` times; a mission that faults
// on every attempt is recorded with its FaultKind, appended to the
// quarantine file with repro information, and the campaign moves on.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/fuzzer.h"
#include "fuzz/telemetry.h"
#include "sim/mission.h"

namespace swarmfuzz::fuzz {

// Point-in-time campaign progress, delivered to CampaignConfig::on_progress
// after each completed mission (serialized; callbacks never run
// concurrently).
struct CampaignProgress {
  int completed = 0;   // missions done, including those replayed on resume
  int resumed = 0;     // missions satisfied from the checkpoint
  int total = 0;       // config.num_missions
  int found = 0;       // SPVs discovered so far
  int faulted = 0;     // missions recorded with a terminal fault so far
  double elapsed_s = 0.0;  // wall-clock since this run_campaign() call

  // Missions actually executed since run_campaign() started — the resumed
  // ones were replayed from the checkpoint in (effectively) zero time and
  // must not enter any throughput math.
  [[nodiscard]] int completed_this_run() const noexcept {
    return completed - resumed;
  }
  // Throughput in missions/s over *this run only*. A rate based on
  // `completed / elapsed_s` would count checkpoint replays as work done this
  // session and, right after a resume, overstate throughput by orders of
  // magnitude (and make the ETA wildly optimistic). Returns 0 until the
  // first fresh mission lands.
  [[nodiscard]] double rate_per_s() const noexcept {
    const int fresh = completed_this_run();
    return fresh > 0 && elapsed_s > 0.0 ? fresh / elapsed_s : 0.0;
  }
  // Estimated seconds to finish the remaining missions at rate_per_s();
  // 0 until a rate exists.
  [[nodiscard]] double eta_s() const noexcept {
    const double rate = rate_per_s();
    return rate > 0.0 ? (total - completed) / rate : 0.0;
  }
};

// Deterministic fault injection for one mission of a campaign — test
// machinery for the containment paths (see sim::FaultInjection).
struct MissionFaultInjection {
  int mission_index = -1;
  sim::FaultInjection injection{};
  // The injection fires on the first `fail_attempts` fault attempts of the
  // mission, then stops — so tests can exercise a successful salted retry.
  // Default: every attempt faults and the mission is quarantined.
  int fail_attempts = std::numeric_limits<int>::max();
};

// Parses a fault plan of comma-separated `<mode>@<index>[:<time>][x<n>]`
// items, e.g. "nan@2:10,throw@3,hang@4x1": inject `mode` (nan|throw|hang)
// into mission `index` from sim time `time` (default 0) on its first `n`
// attempts (default: all). Throws std::invalid_argument on malformed specs.
[[nodiscard]] std::vector<MissionFaultInjection> parse_fault_plan(
    std::string_view spec);

struct CampaignConfig {
  sim::MissionConfig mission{};
  FuzzerConfig fuzzer{};
  FuzzerKind kind = FuzzerKind::kSwarmFuzz;
  int num_missions = 60;
  std::uint64_t base_seed = 1000;  // mission i's seed is mission_seed(base, i, 0)
  int num_threads = 0;             // 0 = hardware concurrency
  // The paper's missions never collide without an attack (section V-A); a
  // small fraction of our randomly generated ones do. When > 0, such
  // missions are re-drawn (with a salted seed) up to this many times so the
  // campaign evaluates the configured number of attack-free missions.
  int clean_failure_retries = 5;
  // Optional custom controller factory (per worker); null = Vasarhelyi.
  std::function<std::shared_ptr<const swarm::SwarmController>()> controller_factory;

  // JSONL checkpoint file; empty disables checkpointing. With `resume` set,
  // records already in the file satisfy their mission indices (after
  // validation against this config) and only missing missions run;
  // otherwise the file is truncated and the campaign starts over.
  std::string checkpoint_path;
  bool resume = true;
  // Optional additional sink (live dashboards, tests). Not owned; must stay
  // alive for the duration of run_campaign(). Receives one record per
  // mission completed *in this run* (resumed missions are not re-emitted).
  TelemetrySink* telemetry = nullptr;
  // Optional progress observer; see CampaignProgress.
  std::function<void(const CampaignProgress&)> on_progress;
  // When > 0, at most this many *new* missions are executed in this call
  // (resumed missions don't count); the result is partial unless combined
  // with a checkpoint and re-run. Used for incremental/batched operation
  // and for exercising interruption in tests.
  int max_new_missions = 0;

  // Fault containment. A faulted mission (sentinel divergence, watchdog
  // timeout, or any exception out of fuzz()) is re-run with a salted seed up
  // to this many times; attempt a of fault retry f uses
  // mission_seed(base, index, f * (clean_failure_retries + 1) + a), so fault
  // salts extend the clean-failure ladder without colliding with it.
  int max_fault_retries = 2;
  // Stop claiming new missions as soon as any mission records a terminal
  // fault (the default keeps going and quarantines).
  bool fail_fast = false;
  // JSONL file that receives one QuarantineRecord per terminally-faulted
  // mission (seed, fuzzer, config hash, fault — enough to reproduce it
  // offline). Empty disables quarantine output.
  std::string quarantine_path;
  // Deterministic per-mission fault injections (tests).
  std::vector<MissionFaultInjection> fault_injections;
};

// Short stable hash (16 hex chars, FNV-1a over the outcome-determining
// fields) identifying a campaign configuration in quarantine records, so a
// quarantined seed can be matched back to the exact campaign that shed it.
[[nodiscard]] std::string campaign_config_hash(const CampaignConfig& config);

struct MissionOutcome {
  int mission_index = -1;
  bool completed = false;         // false only in partial (interrupted) results
  std::uint64_t mission_seed = 0;
  double wall_time_s = 0.0;       // measured; the one non-deterministic field
  FuzzResult result;
  // Terminal fault classification. kNone: fuzzed normally. kCleanRunFailed:
  // every clean re-draw collided (result keeps the last clean run's
  // accounting). Anything else: every fault retry faulted; result is
  // default-constructed and the mission is excluded from num_fuzzable().
  sim::FaultKind fault = sim::FaultKind::kNone;
  std::string fault_detail;
  int fault_attempts = 0;         // fault retries consumed (0 when none)
};

struct CampaignResult {
  CampaignConfig config;
  std::vector<MissionOutcome> outcomes;

  // Missions actually executed or replayed (equals outcomes.size() except
  // in a max_new_missions-limited partial run).
  [[nodiscard]] int num_completed() const;

  // Success rate over fuzzable missions (clean-run failures excluded, as in
  // the paper where no mission collides without attack). Like every average
  // below, an empty denominator yields NaN — "undefined", which serializes
  // as JSON null — rather than a fabricated 0.
  [[nodiscard]] double success_rate() const;
  [[nodiscard]] int num_found() const;
  [[nodiscard]] int num_fuzzable() const;

  // Missions recorded with a terminal fault (any kind but kNone), and the
  // count for one specific kind.
  [[nodiscard]] int num_faulted() const;
  [[nodiscard]] int fault_count(sim::FaultKind kind) const;

  // Missions whose seed scheduling produced nothing to fuzz (FuzzResult::
  // no_seeds) — zero-iteration runs that would otherwise masquerade as
  // cheap failures in the success-rate denominator.
  [[nodiscard]] int num_no_seeds() const;

  // Average attempts actually tried (seeds searched / parameter draws) over
  // fuzzable missions; unlike attempts.size() this is unaffected by the
  // failed-attempt recording cap.
  [[nodiscard]] double avg_attempts_all() const;

  // Average search iterations: over successful missions only (Table II's
  // "iterations taken to find SPVs") and over all fuzzable missions.
  [[nodiscard]] double avg_iterations_successful() const;
  [[nodiscard]] double avg_iterations_all() const;

  // Spoofing parameters of the SPVs found (Fig. 7 series).
  [[nodiscard]] std::vector<double> found_start_times() const;
  [[nodiscard]] std::vector<double> found_durations() const;

  // Clean-run mission VDOs, one per fuzzable mission (Fig. 6d series).
  [[nodiscard]] std::vector<double> mission_vdos() const;

  // Prefix-reuse accounting, summed over all missions: control ticks
  // actually simulated vs skipped by resuming from clean-run checkpoints.
  // The reuse fraction is reused / (executed + reused).
  [[nodiscard]] std::int64_t total_sim_steps_executed() const;
  [[nodiscard]] std::int64_t total_prefix_steps_reused() const;

  // Cumulative success rate: for each x, the success rate over missions with
  // VDO <= x (Fig. 6a-6c). Returns (x, rate) points at each distinct VDO.
  [[nodiscard]] std::vector<std::pair<double, double>> cumulative_success_by_vdo()
      const;
};

// Derives mission `index`'s seed (attempt > 0 for clean-failure re-draws and
// fault retries; see CampaignConfig::max_fault_retries for the salt layout)
// from the campaign base seed via splitmix64-style mixing, so adjacent base
// seeds produce disjoint mission sets.
[[nodiscard]] std::uint64_t mission_seed(std::uint64_t base_seed, int index,
                                         int attempt) noexcept;

// Equality over every deterministic field (everything but wall_time_s, the
// step counters — performance accounting that legitimately differs between
// prefix-reuse configurations — and the fault detail/attempt fields, whose
// wording and count can vary for wall-clock timeouts; the fault *kind* is
// compared). This is the invariant behind
// thread-count independence, checkpoint/resume, and prefix reuse: an
// interrupted-and-resumed campaign — or one re-run with --no-prefix-reuse —
// must compare equal to an uninterrupted one.
// The FuzzResult overload is what the parallel-evaluation golden tests
// assert: a search run with --eval-threads N must compare equal to the
// serial run (eval_batches/eval_parallelism are performance accounting,
// excluded like the step counters; attempts_tried/no_seeds are search
// state, included).
[[nodiscard]] bool deterministic_equal(const FuzzResult& a,
                                       const FuzzResult& b) noexcept;
[[nodiscard]] bool deterministic_equal(const MissionOutcome& a,
                                       const MissionOutcome& b) noexcept;
[[nodiscard]] bool deterministic_equal(const CampaignResult& a,
                                       const CampaignResult& b) noexcept;

// Checks a checkpoint/telemetry record against the campaign it is being
// replayed into; throws std::runtime_error when the record cannot belong to
// this configuration (index out of range, wrong fuzzer, or a seed that does
// not derive from the campaign base seed). Shared by run_campaign's resume
// path and the shard merge (shard_merge.h), which must both refuse to
// fabricate results from a foreign file.
void validate_checkpoint_record(const TelemetryRecord& record,
                                const CampaignConfig& config);

// The eval-thread budget one campaign worker runs with when `workers`
// workers share the machine: splits the hardware via split_eval_threads and
// warns when an explicit over-budget request is clamped. Pure configuration;
// eval_threads never changes outcomes.
[[nodiscard]] FuzzerConfig worker_fuzzer_config(const CampaignConfig& config,
                                                int workers);

// Supervised execution of single campaign missions — the unit a worker
// (thread or shard process) runs. One runner per worker: it owns a fuzzer
// built from the worker's fuzzer configuration, and run(index) performs the
// full containment ladder — clean-failure re-draws nested inside salted
// fault retries, every exception out of fuzz() classified into the
// sim::FaultKind taxonomy, deterministic fault injections armed per
// config.fault_injections. Outcomes depend only on (config, base_seed,
// index), never on which worker executes them, which is what makes both
// thread sharding and multi-process sharding bit-identical to a serial run.
class MissionRunner {
 public:
  // `worker_fuzzer` is the per-worker fuzzer configuration (normally
  // worker_fuzzer_config(config, workers)); `config.fuzzer` itself is not
  // used so campaigns can pre-split eval threads.
  MissionRunner(const CampaignConfig& config, const FuzzerConfig& worker_fuzzer);

  // Runs mission `index` under supervision and returns its outcome with
  // completed=true and wall_time_s measured.
  [[nodiscard]] MissionOutcome run(int index);

 private:
  CampaignConfig config_;
  FuzzerConfig worker_fuzzer_;
  std::unique_ptr<Fuzzer> fuzzer_;
};

// Runs the campaign. Progress (one line per 10% of missions when there are
// at least 10) is logged at info level; completion is always logged.
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace swarmfuzz::fuzz
