#include "fuzz/seeds.h"

#include <algorithm>
#include <cmath>

#include "graph/centrality.h"
#include "util/logging.h"

namespace swarmfuzz::fuzz {

bool victim_vdo_before(double vdo_a, double vdo_b, int a, int b) noexcept {
  const bool finite_a = std::isfinite(vdo_a);
  const bool finite_b = std::isfinite(vdo_b);
  if (finite_a != finite_b) return finite_a;
  if (finite_a && vdo_a != vdo_b) return vdo_a < vdo_b;
  return a < b;
}

std::vector<Seed> schedule_seeds(const sim::RunResult& clean,
                                 const sim::MissionSpec& mission,
                                 const swarm::FlockingControlSystem& system,
                                 double spoof_distance,
                                 const SeedScheduleConfig& config) {
  std::vector<Seed> seeds;
  const int n = mission.num_drones();
  if (n < 2 || mission.obstacles.empty() || clean.recorder.num_samples() == 0) {
    return seeds;
  }

  // States at t_clo, where inter-drone influence is strongest. The search is
  // bounded to the pre-obstacle phase: after the obstacle is passed the
  // converging swarm gets ever tighter, but that geometry is useless for
  // planning an attack around the obstacle.
  double obstacle_phase_end = 0.0;
  for (int i = 0; i < n; ++i) {
    obstacle_phase_end = std::max(obstacle_phase_end,
                                  clean.recorder.time_of_min_obstacle_distance(i));
  }
  const double t_clo = clean.recorder.closest_time(obstacle_phase_end);
  const int sample = clean.recorder.sample_index_at(t_clo);
  sim::WorldSnapshot snapshot;
  snapshot.time = t_clo;
  const auto states = clean.recorder.sample(sample);
  snapshot.reserve(n);
  for (int i = 0; i < n; ++i) {
    snapshot.push_back(sim::DroneObservation{
        .id = i,
        .gps_position = states[static_cast<size_t>(i)].position,
        .velocity = states[static_cast<size_t>(i)].velocity,
    });
  }

  // Victims ordered by ascending VDO, via the NaN-last total order (see
  // seeds.h — raw `<` on a non-finite VDO is UB in std::sort).
  std::vector<int> victims(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) victims[static_cast<size_t>(i)] = i;
  std::sort(victims.begin(), victims.end(), [&](int a, int b) {
    return victim_vdo_before(clean.recorder.min_obstacle_distance(a),
                             clean.recorder.min_obstacle_distance(b), a, b);
  });

  // One SVG + PageRank pair per spoofing direction.
  constexpr attack::SpoofDirection kDirections[] = {attack::SpoofDirection::kRight,
                                                    attack::SpoofDirection::kLeft};
  struct DirectionScores {
    std::vector<double> target_rank;  // PR on SVG: influence as a target
    std::vector<double> victim_rank;  // PR on transposed SVG: susceptibility
    bool has_edges = false;
  };
  DirectionScores scores[2];
  const auto centrality = [&config](const graph::Digraph& g) {
    switch (config.centrality) {
      case CentralityKind::kPageRank:
        return graph::pagerank(g, config.pagerank).scores;
      case CentralityKind::kEigenvector:
        return graph::eigenvector_centrality(g);
      case CentralityKind::kDegree:
        // Influence flows along edge direction, so a node's score as an
        // influence sink is its weighted in-degree.
        return graph::in_degree_centrality(g);
    }
    return graph::pagerank(g, config.pagerank).scores;
  };
  for (int d = 0; d < 2; ++d) {
    const graph::Digraph svg = build_svg(snapshot, mission, system, kDirections[d],
                                         spoof_distance, config.svg);
    scores[d].has_edges = svg.num_edges() > 0;
    scores[d].target_rank = centrality(svg);
    scores[d].victim_rank = centrality(svg.transposed());
    SWARMFUZZ_DEBUG("SVG dir={} edges={}", attack::direction_name(kDirections[d]),
                    svg.num_edges());
  }

  for (const int victim : victims) {
    std::vector<Seed> candidates;
    for (int d = 0; d < 2; ++d) {
      if (!scores[d].has_edges) continue;
      // T = argmax over potential targets of summative influence
      // I(theta)_Tv = PR_SVG(T) + PR_SVG^T(v). The top `targets_per_victim`
      // targets are kept: the SVG is a heuristic abstraction, and its
      // second-best target is often the truly exploitable one.
      std::vector<std::pair<double, int>> ranked;  // (influence, target)
      for (int target = 0; target < n; ++target) {
        if (target == victim) continue;
        if (scores[d].target_rank[static_cast<size_t>(target)] <= 0.0) continue;
        ranked.emplace_back(scores[d].target_rank[static_cast<size_t>(target)] +
                                scores[d].victim_rank[static_cast<size_t>(victim)],
                            target);
      }
      std::sort(ranked.begin(), ranked.end(), std::greater<>());
      const int keep =
          std::min<int>(config.targets_per_victim, static_cast<int>(ranked.size()));
      for (int k = 0; k < keep; ++k) {
        candidates.push_back(Seed{
            .target = ranked[static_cast<size_t>(k)].second,
            .victim = victim,
            .direction = kDirections[d],
            .vdo = clean.recorder.min_obstacle_distance(victim),
            .influence = ranked[static_cast<size_t>(k)].first,
        });
      }
    }
    // Same victim: higher-influence candidates first.
    std::sort(candidates.begin(), candidates.end(),
              [](const Seed& a, const Seed& b) { return a.influence > b.influence; });
    for (const Seed& seed : candidates) {
      if (static_cast<int>(seeds.size()) >= config.max_seeds) return seeds;
      seeds.push_back(seed);
    }
  }
  return seeds;
}

}  // namespace swarmfuzz::fuzz
