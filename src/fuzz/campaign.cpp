#include "fuzz/campaign.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "util/logging.h"

namespace swarmfuzz::fuzz {

double CampaignResult::success_rate() const {
  const int fuzzable = num_fuzzable();
  return fuzzable > 0 ? static_cast<double>(num_found()) / fuzzable : 0.0;
}

int CampaignResult::num_found() const {
  int found = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.result.found) ++found;
  }
  return found;
}

int CampaignResult::num_fuzzable() const {
  int fuzzable = 0;
  for (const MissionOutcome& o : outcomes) {
    if (!o.result.clean_run_failed) ++fuzzable;
  }
  return fuzzable;
}

double CampaignResult::avg_iterations_successful() const {
  double sum = 0.0;
  int count = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.result.found) {
      sum += o.result.iterations;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

double CampaignResult::avg_iterations_all() const {
  double sum = 0.0;
  int count = 0;
  for (const MissionOutcome& o : outcomes) {
    if (!o.result.clean_run_failed) {
      sum += o.result.iterations;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

std::vector<double> CampaignResult::found_start_times() const {
  std::vector<double> values;
  for (const MissionOutcome& o : outcomes) {
    if (o.result.found) values.push_back(o.result.plan.start_time);
  }
  return values;
}

std::vector<double> CampaignResult::found_durations() const {
  std::vector<double> values;
  for (const MissionOutcome& o : outcomes) {
    if (o.result.found) values.push_back(o.result.plan.duration);
  }
  return values;
}

std::vector<double> CampaignResult::mission_vdos() const {
  std::vector<double> values;
  for (const MissionOutcome& o : outcomes) {
    if (!o.result.clean_run_failed) values.push_back(o.result.mission_vdo);
  }
  return values;
}

std::vector<std::pair<double, double>> CampaignResult::cumulative_success_by_vdo()
    const {
  // Sort fuzzable missions by VDO; sweep, accumulating successes.
  struct Point {
    double vdo;
    bool found;
  };
  std::vector<Point> points;
  for (const MissionOutcome& o : outcomes) {
    if (!o.result.clean_run_failed) {
      points.push_back({o.result.mission_vdo, o.result.found});
    }
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.vdo < b.vdo; });

  std::vector<std::pair<double, double>> curve;
  int found = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].found) ++found;
    // Emit one point per distinct VDO value (last of a run of equal VDOs).
    if (i + 1 < points.size() && points[i + 1].vdo - points[i].vdo < 1e-9) continue;
    curve.emplace_back(points[i].vdo,
                       static_cast<double>(found) / static_cast<double>(i + 1));
  }
  return curve;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  if (config.num_missions < 1) {
    throw std::invalid_argument("run_campaign: num_missions < 1");
  }
  CampaignResult result;
  result.config = config;
  result.outcomes.resize(static_cast<size_t>(config.num_missions));

  int threads = config.num_threads > 0
                    ? config.num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::clamp(threads, 1, config.num_missions);

  std::atomic<int> next{0};
  std::atomic<int> completed{0};
  const auto worker = [&] {
    // One fuzzer per worker: fuzzers are stateful but mission outcomes only
    // depend on per-mission seeds, so sharding is deterministic.
    auto controller =
        config.controller_factory ? config.controller_factory() : nullptr;
    const std::unique_ptr<Fuzzer> fuzzer =
        make_fuzzer(config.kind, config.fuzzer, std::move(controller));
    while (true) {
      const int index = next.fetch_add(1);
      if (index >= config.num_missions) break;
      MissionOutcome& outcome = result.outcomes[static_cast<size_t>(index)];
      for (int attempt = 0; attempt <= config.clean_failure_retries; ++attempt) {
        // Salted re-draws keep retried missions deterministic and distinct
        // from every base seed.
        const std::uint64_t seed =
            config.base_seed + static_cast<std::uint64_t>(index) +
            static_cast<std::uint64_t>(attempt) * 0x9e3779b9ull;
        const sim::MissionSpec mission = sim::generate_mission(config.mission, seed);
        outcome.mission_seed = seed;
        outcome.result = fuzzer->fuzz(mission);
        if (!outcome.result.clean_run_failed) break;
      }
      const int done = completed.fetch_add(1) + 1;
      if (config.num_missions >= 10 && done % (config.num_missions / 10) == 0) {
        SWARMFUZZ_INFO("campaign [{}]: {}/{} missions",
                       fuzzer_kind_name(config.kind), done, config.num_missions);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return result;
}

}  // namespace swarmfuzz::fuzz
