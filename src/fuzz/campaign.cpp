#include "fuzz/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "fuzz/eval_pool.h"
#include "util/logging.h"

namespace swarmfuzz::fuzz {

namespace {

// Averages over empty sets are undefined, not zero: reporting 0 for "no
// fuzzable missions" reads as "0% success over real runs". NaN serializes
// as JSON null (see util::JsonWriter), never as the invalid `nan` literal.
constexpr double kUndefined = std::numeric_limits<double>::quiet_NaN();

}  // namespace

int CampaignResult::num_completed() const {
  int completed = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed) ++completed;
  }
  return completed;
}

double CampaignResult::success_rate() const {
  const int fuzzable = num_fuzzable();
  return fuzzable > 0 ? static_cast<double>(num_found()) / fuzzable : kUndefined;
}

int CampaignResult::num_found() const {
  int found = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && o.result.found) ++found;
  }
  return found;
}

int CampaignResult::num_fuzzable() const {
  int fuzzable = 0;
  for (const MissionOutcome& o : outcomes) {
    // Terminally-faulted missions never produced a trustworthy search
    // outcome; counting them as fuzzable would deflate success rates with
    // infrastructure noise. Fault-free campaigns are unaffected (every
    // fault is kNone there).
    if (o.completed && !o.result.clean_run_failed &&
        o.fault == sim::FaultKind::kNone) {
      ++fuzzable;
    }
  }
  return fuzzable;
}

int CampaignResult::num_faulted() const {
  int faulted = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && o.fault != sim::FaultKind::kNone) ++faulted;
  }
  return faulted;
}

int CampaignResult::fault_count(sim::FaultKind kind) const {
  int count = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && o.fault == kind) ++count;
  }
  return count;
}

int CampaignResult::num_no_seeds() const {
  int count = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && o.result.no_seeds) ++count;
  }
  return count;
}

double CampaignResult::avg_attempts_all() const {
  double sum = 0.0;
  int count = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && !o.result.clean_run_failed &&
        o.fault == sim::FaultKind::kNone) {
      sum += o.result.attempts_tried;
      ++count;
    }
  }
  return count > 0 ? sum / count : kUndefined;
}

double CampaignResult::avg_iterations_successful() const {
  double sum = 0.0;
  int count = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && o.result.found) {
      sum += o.result.iterations;
      ++count;
    }
  }
  return count > 0 ? sum / count : kUndefined;
}

double CampaignResult::avg_iterations_all() const {
  double sum = 0.0;
  int count = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && !o.result.clean_run_failed &&
        o.fault == sim::FaultKind::kNone) {
      sum += o.result.iterations;
      ++count;
    }
  }
  return count > 0 ? sum / count : kUndefined;
}

std::vector<double> CampaignResult::found_start_times() const {
  std::vector<double> values;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && o.result.found) values.push_back(o.result.plan.start_time);
  }
  return values;
}

std::vector<double> CampaignResult::found_durations() const {
  std::vector<double> values;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && o.result.found) values.push_back(o.result.plan.duration);
  }
  return values;
}

std::vector<double> CampaignResult::mission_vdos() const {
  std::vector<double> values;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && !o.result.clean_run_failed &&
        o.fault == sim::FaultKind::kNone) {
      values.push_back(o.result.mission_vdo);
    }
  }
  return values;
}

std::int64_t CampaignResult::total_sim_steps_executed() const {
  std::int64_t total = 0;
  for (const MissionOutcome& o : outcomes) total += o.result.sim_steps_executed;
  return total;
}

std::int64_t CampaignResult::total_prefix_steps_reused() const {
  std::int64_t total = 0;
  for (const MissionOutcome& o : outcomes) total += o.result.prefix_steps_reused;
  return total;
}

std::vector<std::pair<double, double>> CampaignResult::cumulative_success_by_vdo()
    const {
  // Sort fuzzable missions by VDO; sweep, accumulating successes.
  struct Point {
    double vdo;
    bool found;
  };
  std::vector<Point> points;
  for (const MissionOutcome& o : outcomes) {
    // Non-finite VDOs (obstacle-free or otherwise degenerate clean runs)
    // have no place on a VDO axis; worse, a NaN poisons the adjacent-dedup
    // comparison below (NaN - x < 1e-9 is false either way, so the NaN
    // point itself would be emitted). Drop them up front.
    if (o.completed && !o.result.clean_run_failed &&
        o.fault == sim::FaultKind::kNone && std::isfinite(o.result.mission_vdo)) {
      points.push_back({o.result.mission_vdo, o.result.found});
    }
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.vdo < b.vdo; });

  std::vector<std::pair<double, double>> curve;
  int found = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].found) ++found;
    // Emit one point per distinct VDO value (last of a run of equal VDOs).
    if (i + 1 < points.size() && points[i + 1].vdo - points[i].vdo < 1e-9) continue;
    curve.emplace_back(points[i].vdo,
                       static_cast<double>(found) / static_cast<double>(i + 1));
  }
  return curve;
}

namespace {

std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t mission_seed(std::uint64_t base_seed, int index,
                           int attempt) noexcept {
  // Each input is fed through a full splitmix64 round before mixing in the
  // next, so neighbouring (base, index, attempt) tuples land in unrelated
  // parts of the seed space. With the naive `base + index` scheme two
  // campaigns at adjacent base seeds shared nearly all of their missions.
  std::uint64_t z = splitmix64(base_seed);
  z = splitmix64(z ^ (static_cast<std::uint64_t>(static_cast<unsigned>(index)) +
                      0x517cc1b727220a95ull));
  z = splitmix64(z ^ (static_cast<std::uint64_t>(static_cast<unsigned>(attempt)) +
                      0x2545f4914f6cdd1dull));
  return z;
}

std::vector<MissionFaultInjection> parse_fault_plan(std::string_view spec) {
  std::vector<MissionFaultInjection> plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string item{spec.substr(
        start, (comma == std::string_view::npos ? spec.size() : comma) - start)};
    start = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) continue;
    const auto fail = [&item](const std::string& why) {
      return std::invalid_argument("parse_fault_plan: " + why + " in '" + item +
                                   "'");
    };
    const std::size_t at = item.find('@');
    if (at == std::string::npos) throw fail("missing '@<mission-index>'");
    const std::string mode = item.substr(0, at);
    MissionFaultInjection injection;
    if (mode == "nan") {
      injection.injection.mode = sim::FaultInjection::Mode::kNan;
    } else if (mode == "throw") {
      injection.injection.mode = sim::FaultInjection::Mode::kThrow;
    } else if (mode == "hang") {
      injection.injection.mode = sim::FaultInjection::Mode::kHang;
    } else {
      throw fail("unknown fault mode '" + mode + "' (nan|throw|hang)");
    }
    try {
      std::string rest = item.substr(at + 1);
      if (const std::size_t x = rest.find('x'); x != std::string::npos) {
        injection.fail_attempts = std::stoi(rest.substr(x + 1));
        rest.resize(x);
      }
      if (const std::size_t colon = rest.find(':'); colon != std::string::npos) {
        injection.injection.at_time = std::stod(rest.substr(colon + 1));
        rest.resize(colon);
      }
      injection.mission_index = std::stoi(rest);
    } catch (const std::invalid_argument&) {
      throw fail("malformed number");
    } catch (const std::out_of_range&) {
      throw fail("number out of range");
    }
    if (injection.mission_index < 0 || injection.fail_attempts < 1 ||
        injection.injection.at_time < 0.0) {
      throw fail("negative index/time or non-positive attempt count");
    }
    plan.push_back(injection);
  }
  return plan;
}

std::string campaign_config_hash(const CampaignConfig& config) {
  // Canonical key=value rendering of the outcome-determining fields; doubles
  // with %.17g so the hash moves iff a mission-affecting bit moves.
  std::string canon;
  const auto add = [&canon](std::string_view key, const std::string& value) {
    canon.append(key);
    canon.push_back('=');
    canon.append(value);
    canon.push_back(';');
  };
  const auto exact = [](double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return std::string{buffer};
  };
  add("kind", std::string{fuzzer_kind_name(config.kind)});
  add("missions", std::to_string(config.num_missions));
  add("base_seed", std::to_string(config.base_seed));
  add("clean_retries", std::to_string(config.clean_failure_retries));
  add("fault_retries", std::to_string(config.max_fault_retries));
  const sim::MissionConfig& m = config.mission;
  add("drones", std::to_string(m.num_drones));
  add("spawn_range", exact(m.spawn_range));
  add("min_sep", exact(m.min_spawn_separation));
  add("length", exact(m.mission_length));
  add("altitude", exact(m.cruise_altitude));
  add("obstacles", std::to_string(m.num_obstacles));
  add("obs_r", exact(m.obstacle_radius_min) + ":" + exact(m.obstacle_radius_max));
  add("obs_jitter",
      exact(m.obstacle_lateral_jitter) + ":" + exact(m.obstacle_along_jitter));
  add("max_time", exact(m.max_time));
  add("arrival", exact(m.arrival_radius));
  add("drone_r", exact(m.drone_radius));
  const FuzzerConfig& f = config.fuzzer;
  add("distance", exact(f.spoof_distance));
  add("budget", std::to_string(f.mission_budget));
  add("seed_budget", std::to_string(f.per_seed_budget));
  add("rng", std::to_string(f.rng_seed));
  add("lead", exact(f.lead_time));
  add("init_dur", exact(f.initial_duration));
  add("dt", exact(f.sim.dt));
  add("noise_seed", std::to_string(f.sim.noise_seed));
  // E_Fuzz knobs: every field except corpus_dir changes search outcomes
  // (corpus_dir is a persistence location, like checkpoint_path — excluded).
  const EvolutionConfig& e = f.evolution;
  add("novelty_bins", std::to_string(e.novelty.bins));
  add("novelty_widths", exact(e.novelty.clearance_bin_m) + ":" +
                            exact(e.novelty.separation_bin_m) + ":" +
                            exact(e.novelty.near_miss_m));
  add("mutation", exact(e.mutation.shift_max_s) + ":" +
                      exact(e.mutation.stretch_min) + ":" +
                      exact(e.mutation.stretch_max));
  add("evo_batch", std::to_string(e.batch_size));
  add("evo_minimize", std::to_string(e.minimize_period));
  add("evo_corpus_max", std::to_string(e.max_corpus));

  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (const char ch : canon) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ull;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string{hex};
}

namespace {

// Double equality with NaN == NaN: a non-finite mission VDO (obstacle-free
// clean run) round-trips through telemetry as null -> NaN, and IEEE
// `NaN != NaN` would make a resumed campaign compare unequal to the run
// that produced the checkpoint.
bool same_double(double a, double b) noexcept {
  return a == b || (std::isnan(a) && std::isnan(b));
}

bool plans_equal(const attack::SpoofingPlan& a,
                 const attack::SpoofingPlan& b) noexcept {
  return a.target == b.target && a.direction == b.direction &&
         same_double(a.start_time, b.start_time) &&
         same_double(a.duration, b.duration) &&
         same_double(a.distance, b.distance);
}

bool attempts_equal(const SeedAttempt& a, const SeedAttempt& b) noexcept {
  return a.seed.target == b.seed.target && a.seed.victim == b.seed.victim &&
         a.seed.direction == b.seed.direction &&
         same_double(a.seed.vdo, b.seed.vdo) &&
         same_double(a.seed.influence, b.seed.influence) &&
         a.outcome.success == b.outcome.success &&
         a.outcome.stalled == b.outcome.stalled &&
         same_double(a.outcome.t_start, b.outcome.t_start) &&
         same_double(a.outcome.duration, b.outcome.duration) &&
         same_double(a.outcome.best_f, b.outcome.best_f) &&
         a.outcome.crashed_drone == b.outcome.crashed_drone &&
         a.outcome.iterations == b.outcome.iterations;
}

}  // namespace

bool deterministic_equal(const FuzzResult& a, const FuzzResult& b) noexcept {
  if (a.clean_run_failed != b.clean_run_failed || a.found != b.found ||
      a.victim != b.victim || !same_double(a.victim_vdo, b.victim_vdo) ||
      a.iterations != b.iterations || a.simulations != b.simulations ||
      !same_double(a.mission_vdo, b.mission_vdo) ||
      !same_double(a.clean_mission_time, b.clean_mission_time) ||
      a.attempts_tried != b.attempts_tried || a.no_seeds != b.no_seeds ||
      a.corpus_size != b.corpus_size || a.novelty_bins != b.novelty_bins ||
      a.corpus_admissions != b.corpus_admissions ||
      !plans_equal(a.plan, b.plan) || a.attempts.size() != b.attempts.size()) {
    return false;
  }
  for (size_t i = 0; i < a.attempts.size(); ++i) {
    if (!attempts_equal(a.attempts[i], b.attempts[i])) return false;
  }
  return true;
}

bool deterministic_equal(const MissionOutcome& a,
                         const MissionOutcome& b) noexcept {
  if (a.mission_index != b.mission_index || a.completed != b.completed ||
      a.mission_seed != b.mission_seed || a.fault != b.fault) {
    return false;
  }
  return deterministic_equal(a.result, b.result);
}

bool deterministic_equal(const CampaignResult& a,
                         const CampaignResult& b) noexcept {
  if (a.outcomes.size() != b.outcomes.size()) return false;
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    if (!deterministic_equal(a.outcomes[i], b.outcomes[i])) return false;
  }
  return true;
}

void validate_checkpoint_record(const TelemetryRecord& record,
                                const CampaignConfig& config) {
  if (record.mission_index < 0 || record.mission_index >= config.num_missions) {
    throw std::runtime_error(
        "checkpoint: mission index " + std::to_string(record.mission_index) +
        " outside campaign of " + std::to_string(config.num_missions));
  }
  if (record.fuzzer != fuzzer_kind_name(config.kind)) {
    throw std::runtime_error("checkpoint: fuzzer '" + record.fuzzer +
                             "' does not match campaign fuzzer '" +
                             std::string{fuzzer_kind_name(config.kind)} + "'");
  }
  // Accept any salt the supervisor can have used: clean re-draws nested
  // inside fault retries (see CampaignConfig::max_fault_retries).
  const int max_salt =
      (config.clean_failure_retries + 1) * (config.max_fault_retries + 1);
  for (int attempt = 0; attempt < max_salt; ++attempt) {
    if (record.mission_seed ==
        mission_seed(config.base_seed, record.mission_index, attempt)) {
      return;
    }
  }
  throw std::runtime_error(
      "checkpoint: mission " + std::to_string(record.mission_index) +
      " seed does not derive from base seed " + std::to_string(config.base_seed) +
      " (different campaign?)");
}

namespace {

TelemetryRecord make_record(const CampaignConfig& config,
                            const MissionOutcome& outcome) {
  TelemetryRecord record;
  record.mission_index = outcome.mission_index;
  record.fuzzer = std::string{fuzzer_kind_name(config.kind)};
  record.mission_seed = outcome.mission_seed;
  record.wall_time_s = outcome.wall_time_s;
  record.result = outcome.result;
  record.fault = outcome.fault;
  record.fault_detail = outcome.fault_detail;
  record.fault_attempts = outcome.fault_attempts;
  return record;
}

}  // namespace

FuzzerConfig worker_fuzzer_config(const CampaignConfig& config, int workers) {
  // Mission workers, per-worker eval threads and per-simulation tick threads
  // share one hardware budget: workers x eval x sim <= hardware concurrency.
  // Explicit over-budget requests are clamped (with one warning per
  // campaign — this runs once per campaign/shard, not per mission) rather
  // than oversubscribing; 0 = auto splits whatever the other dimensions
  // leave free. Neither knob affects outcomes (evaluation batching and the
  // tick pool are bit-identical for any width), so both are excluded from
  // campaign_config_hash and checkpoint validation.
  FuzzerConfig worker_fuzzer = config.fuzzer;
  const int hardware = hardware_threads();
  const ThreadBudget budget =
      split_thread_budget(workers, config.fuzzer.eval_threads,
                          config.fuzzer.sim.sim_threads, hardware);
  worker_fuzzer.eval_threads = budget.eval_threads;
  worker_fuzzer.sim.sim_threads = budget.sim_threads;
  if (config.fuzzer.eval_threads > budget.eval_threads) {
    SWARMFUZZ_WARN(
        "campaign: clamping eval threads {} -> {} ({} mission workers on {} "
        "hardware threads)",
        config.fuzzer.eval_threads, budget.eval_threads, workers, hardware);
  }
  if (config.fuzzer.sim.sim_threads > budget.sim_threads) {
    SWARMFUZZ_WARN(
        "campaign: clamping sim threads {} -> {} ({} mission workers x {} "
        "eval threads on {} hardware threads)",
        config.fuzzer.sim.sim_threads, budget.sim_threads, workers,
        budget.eval_threads, hardware);
  }
  return worker_fuzzer;
}

MissionRunner::MissionRunner(const CampaignConfig& config,
                             const FuzzerConfig& worker_fuzzer)
    : config_(config),
      worker_fuzzer_(worker_fuzzer),
      fuzzer_(make_fuzzer(
          config.kind, worker_fuzzer,
          config.controller_factory ? config.controller_factory() : nullptr)) {}

MissionOutcome MissionRunner::run(int index) {
  MissionOutcome outcome;
  outcome.mission_index = index;
  const auto mission_start = std::chrono::steady_clock::now();

  const MissionFaultInjection* injected = nullptr;
  for (const MissionFaultInjection& injection : config_.fault_injections) {
    if (injection.mission_index == index) injected = &injection;
  }

  const int clean_attempts = config_.clean_failure_retries + 1;
  for (int fault_attempt = 0;; ++fault_attempt) {
    Fuzzer* active = fuzzer_.get();
    std::unique_ptr<Fuzzer> armed;
    if (injected != nullptr && fault_attempt < injected->fail_attempts) {
      // One-off fuzzer with the injection armed, so the long-lived worker
      // fuzzer stays pristine for every other mission.
      FuzzerConfig armed_config = worker_fuzzer_;
      armed_config.fault_injection = injected->injection;
      armed = make_fuzzer(config_.kind, armed_config,
                          config_.controller_factory ? config_.controller_factory()
                                                     : nullptr);
      active = armed.get();
    }
    bool done = false;
    try {
      for (int attempt = 0; attempt < clean_attempts; ++attempt) {
        // Salted re-draws keep retried missions deterministic and distinct
        // from every base seed; fault retries extend the same ladder.
        const std::uint64_t seed = mission_seed(
            config_.base_seed, index, fault_attempt * clean_attempts + attempt);
        const sim::MissionSpec mission =
            sim::generate_mission(config_.mission, seed);
        outcome.mission_seed = seed;
        outcome.result = active->fuzz(mission);
        if (!outcome.result.clean_run_failed) {
          outcome.fault = sim::FaultKind::kNone;
          outcome.fault_detail.clear();
          done = true;
          break;
        }
      }
      if (!done) {
        // Every re-draw collided without an attack: a mission-generation
        // failure, not an infrastructure fault; keep the last clean run's
        // accounting (matches pre-taxonomy records, which derive this kind
        // from result.clean_run_failed on load).
        outcome.fault = sim::FaultKind::kCleanRunFailed;
        outcome.fault_detail = "mission collided without attack on all " +
                               std::to_string(clean_attempts) + " re-draws";
        done = true;
      }
    } catch (const sim::RunFaultError& e) {
      outcome.fault = e.fault().kind;
      outcome.fault_detail = e.what();
    } catch (const std::exception& e) {
      outcome.fault = sim::FaultKind::kException;
      outcome.fault_detail = e.what();
    }
    if (done) break;
    outcome.fault_attempts = fault_attempt + 1;
    if (fault_attempt >= config_.max_fault_retries) {
      // Terminal: no trustworthy search outcome exists; a partial result
      // must not masquerade as one.
      outcome.result = FuzzResult{};
      break;
    }
    SWARMFUZZ_WARN(
        "campaign [{}]: mission {} faulted ({}: {}); retrying with salted "
        "seed ({}/{})",
        fuzzer_kind_name(config_.kind), index,
        sim::fault_kind_name(outcome.fault), outcome.fault_detail,
        fault_attempt + 1, config_.max_fault_retries);
  }

  outcome.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    mission_start)
          .count();
  outcome.completed = true;
  return outcome;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  if (config.num_missions < 1) {
    throw std::invalid_argument("run_campaign: num_missions < 1");
  }
  CampaignResult result;
  result.config = config;
  result.outcomes.resize(static_cast<size_t>(config.num_missions));
  for (int i = 0; i < config.num_missions; ++i) {
    result.outcomes[static_cast<size_t>(i)].mission_index = i;
  }

  // Replay the checkpoint, then reopen it truncated and re-emit the records
  // we kept: this normalizes away torn trailing lines and duplicates while
  // preserving crash safety for the missions that follow.
  int resumed = 0;
  std::unique_ptr<JsonlTelemetrySink> checkpoint;
  if (!config.checkpoint_path.empty()) {
    std::vector<TelemetryRecord> records;
    if (config.resume) {
      records = load_telemetry(config.checkpoint_path);
    }
    // Validate every record before truncating the file: a checkpoint from a
    // different campaign must be rejected with its contents intact.
    for (const TelemetryRecord& record : records) {
      validate_checkpoint_record(record, config);
    }
    checkpoint = std::make_unique<JsonlTelemetrySink>(config.checkpoint_path,
                                                      /*append=*/false);
    for (const TelemetryRecord& record : records) {
      MissionOutcome& outcome =
          result.outcomes[static_cast<size_t>(record.mission_index)];
      if (outcome.completed) continue;  // duplicate line; keep the first
      outcome.completed = true;
      outcome.mission_seed = record.mission_seed;
      outcome.wall_time_s = record.wall_time_s;
      outcome.result = record.result;
      outcome.fault = record.fault;
      outcome.fault_detail = record.fault_detail;
      outcome.fault_attempts = record.fault_attempts;
      checkpoint->record(record);
      ++resumed;
    }
    if (resumed > 0) {
      SWARMFUZZ_INFO("campaign [{}]: resumed {}/{} missions from {}",
                     fuzzer_kind_name(config.kind), resumed, config.num_missions,
                     config.checkpoint_path);
    }
  }

  // hardware_threads() never reports 0 (unknown concurrency), so the worker
  // count and the eval-thread split below can never compute 0 workers.
  int threads =
      config.num_threads > 0 ? config.num_threads : hardware_threads();
  threads = std::clamp(threads, 1, config.num_missions);
  const FuzzerConfig worker_fuzzer = worker_fuzzer_config(config, threads);

  const auto campaign_start = std::chrono::steady_clock::now();
  std::atomic<int> next{0};
  std::atomic<int> completed{resumed};
  std::atomic<int> found{0};
  std::atomic<int> faulted{0};
  std::atomic<bool> aborted{false};  // fail-fast or a dead worker
  std::atomic<int> new_budget{config.max_new_missions > 0 ? config.max_new_missions
                                                          : config.num_missions};
  for (const MissionOutcome& o : result.outcomes) {
    if (o.completed && o.result.found) found.fetch_add(1);
    if (o.completed && o.fault != sim::FaultKind::kNone) faulted.fetch_add(1);
  }
  std::mutex observer_mutex;  // serializes checkpoint order + progress callbacks
  const std::string config_hash = campaign_config_hash(config);

  // Quarantine is append-only across resumes: a mission whose checkpoint
  // line was lost (torn tail, deleted file) re-runs and would re-quarantine.
  // Seeding the dedup set from the existing file keys every append on
  // (config hash, seed, index), so replayed faults never duplicate records.
  std::set<std::tuple<std::string, std::uint64_t, int>> quarantined;
  if (!config.quarantine_path.empty()) {
    for (const QuarantineRecord& record :
         load_quarantine(config.quarantine_path)) {
      quarantined.emplace(record.config_hash, record.mission_seed,
                          record.mission_index);
    }
  }

  const auto worker = [&] {
    // The whole body is supervised: an exception anywhere outside the
    // per-mission containment (fuzzer construction, checkpoint I/O) must
    // stop the campaign cleanly instead of std::terminate-ing the process.
    try {
      // One runner (and thus one fuzzer) per worker: fuzzers are stateful but
      // mission outcomes only depend on per-mission seeds, so sharding is
      // deterministic.
      MissionRunner runner(config, worker_fuzzer);
      while (true) {
        if (aborted.load()) break;  // fail-fast tripped elsewhere
        const int index = next.fetch_add(1);
        if (index >= config.num_missions) break;
        MissionOutcome& outcome = result.outcomes[static_cast<size_t>(index)];
        if (outcome.completed) continue;  // satisfied by the checkpoint
        if (new_budget.fetch_sub(1) <= 0) break;  // max_new_missions reached
        outcome = runner.run(index);
        if (outcome.result.found) found.fetch_add(1);
        if (outcome.fault != sim::FaultKind::kNone) {
          faulted.fetch_add(1);
          if (config.fail_fast) aborted.store(true);
        }
        const int done = completed.fetch_add(1) + 1;

        {
          const std::lock_guard<std::mutex> lock(observer_mutex);
          const TelemetryRecord record = make_record(config, outcome);
          if (checkpoint) checkpoint->record(record);
          if (config.telemetry) config.telemetry->record(record);
          if (outcome.fault != sim::FaultKind::kNone &&
              !config.quarantine_path.empty() &&
              quarantined
                  .emplace(config_hash, outcome.mission_seed, index)
                  .second) {
            QuarantineRecord quarantine;
            quarantine.mission_index = index;
            quarantine.fuzzer = std::string{fuzzer_kind_name(config.kind)};
            quarantine.mission_seed = outcome.mission_seed;
            quarantine.config_hash = config_hash;
            quarantine.fault = outcome.fault;
            quarantine.detail = outcome.fault_detail;
            quarantine.attempts = outcome.fault_attempts;
            try {
              append_jsonl_line(config.quarantine_path, to_jsonl(quarantine));
            } catch (const std::exception& e) {
              // Quarantine is observability; losing a record must not lose
              // the campaign.
              SWARMFUZZ_ERROR("campaign: cannot write quarantine record: {}",
                              e.what());
            }
          }
          if (config.on_progress) {
            CampaignProgress progress;
            progress.completed = done;
            progress.resumed = resumed;
            progress.total = config.num_missions;
            progress.found = found.load();
            progress.faulted = faulted.load();
            progress.elapsed_s =
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              campaign_start)
                    .count();
            config.on_progress(progress);
          }
        }
        if (config.num_missions >= 10 && done % (config.num_missions / 10) == 0) {
          SWARMFUZZ_INFO("campaign [{}]: {}/{} missions",
                         fuzzer_kind_name(config.kind), done, config.num_missions);
        }
      }
    } catch (const std::exception& e) {
      SWARMFUZZ_ERROR("campaign worker aborted: {}", e.what());
      aborted.store(true);
    } catch (...) {
      SWARMFUZZ_ERROR("campaign worker aborted: unknown exception");
      aborted.store(true);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    campaign_start)
          .count();
  SWARMFUZZ_INFO(
      "campaign [{}] {}: {}/{} missions, {} SPVs over {} fuzzable, {} faulted, "
      "{:.1f}s",
      fuzzer_kind_name(config.kind),
      result.num_completed() == config.num_missions ? "complete" : "interrupted",
      result.num_completed(), config.num_missions, result.num_found(),
      result.num_fuzzable(), result.num_faulted(), elapsed);
  if (result.num_faulted() > 0) {
    SWARMFUZZ_WARN(
        "campaign [{}]: faults — {} divergence, {} timeout, {} exception, {} "
        "clean-run failed{}",
        fuzzer_kind_name(config.kind),
        result.fault_count(sim::FaultKind::kNumericalDivergence),
        result.fault_count(sim::FaultKind::kTimeout),
        result.fault_count(sim::FaultKind::kException),
        result.fault_count(sim::FaultKind::kCleanRunFailed),
        config.quarantine_path.empty()
            ? ""
            : std::string{"; quarantined to "} + config.quarantine_path);
  }
  return result;
}

}  // namespace swarmfuzz::fuzz
