#include "fuzz/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/logging.h"

namespace swarmfuzz::fuzz {

int CampaignResult::num_completed() const {
  int completed = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed) ++completed;
  }
  return completed;
}

double CampaignResult::success_rate() const {
  const int fuzzable = num_fuzzable();
  return fuzzable > 0 ? static_cast<double>(num_found()) / fuzzable : 0.0;
}

int CampaignResult::num_found() const {
  int found = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && o.result.found) ++found;
  }
  return found;
}

int CampaignResult::num_fuzzable() const {
  int fuzzable = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && !o.result.clean_run_failed) ++fuzzable;
  }
  return fuzzable;
}

double CampaignResult::avg_iterations_successful() const {
  double sum = 0.0;
  int count = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && o.result.found) {
      sum += o.result.iterations;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

double CampaignResult::avg_iterations_all() const {
  double sum = 0.0;
  int count = 0;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && !o.result.clean_run_failed) {
      sum += o.result.iterations;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

std::vector<double> CampaignResult::found_start_times() const {
  std::vector<double> values;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && o.result.found) values.push_back(o.result.plan.start_time);
  }
  return values;
}

std::vector<double> CampaignResult::found_durations() const {
  std::vector<double> values;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && o.result.found) values.push_back(o.result.plan.duration);
  }
  return values;
}

std::vector<double> CampaignResult::mission_vdos() const {
  std::vector<double> values;
  for (const MissionOutcome& o : outcomes) {
    if (o.completed && !o.result.clean_run_failed) {
      values.push_back(o.result.mission_vdo);
    }
  }
  return values;
}

std::int64_t CampaignResult::total_sim_steps_executed() const {
  std::int64_t total = 0;
  for (const MissionOutcome& o : outcomes) total += o.result.sim_steps_executed;
  return total;
}

std::int64_t CampaignResult::total_prefix_steps_reused() const {
  std::int64_t total = 0;
  for (const MissionOutcome& o : outcomes) total += o.result.prefix_steps_reused;
  return total;
}

std::vector<std::pair<double, double>> CampaignResult::cumulative_success_by_vdo()
    const {
  // Sort fuzzable missions by VDO; sweep, accumulating successes.
  struct Point {
    double vdo;
    bool found;
  };
  std::vector<Point> points;
  for (const MissionOutcome& o : outcomes) {
    // Non-finite VDOs (obstacle-free or otherwise degenerate clean runs)
    // have no place on a VDO axis; worse, a NaN poisons the adjacent-dedup
    // comparison below (NaN - x < 1e-9 is false either way, so the NaN
    // point itself would be emitted). Drop them up front.
    if (o.completed && !o.result.clean_run_failed &&
        std::isfinite(o.result.mission_vdo)) {
      points.push_back({o.result.mission_vdo, o.result.found});
    }
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.vdo < b.vdo; });

  std::vector<std::pair<double, double>> curve;
  int found = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].found) ++found;
    // Emit one point per distinct VDO value (last of a run of equal VDOs).
    if (i + 1 < points.size() && points[i + 1].vdo - points[i].vdo < 1e-9) continue;
    curve.emplace_back(points[i].vdo,
                       static_cast<double>(found) / static_cast<double>(i + 1));
  }
  return curve;
}

namespace {

std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t mission_seed(std::uint64_t base_seed, int index,
                           int attempt) noexcept {
  // Each input is fed through a full splitmix64 round before mixing in the
  // next, so neighbouring (base, index, attempt) tuples land in unrelated
  // parts of the seed space. With the naive `base + index` scheme two
  // campaigns at adjacent base seeds shared nearly all of their missions.
  std::uint64_t z = splitmix64(base_seed);
  z = splitmix64(z ^ (static_cast<std::uint64_t>(static_cast<unsigned>(index)) +
                      0x517cc1b727220a95ull));
  z = splitmix64(z ^ (static_cast<std::uint64_t>(static_cast<unsigned>(attempt)) +
                      0x2545f4914f6cdd1dull));
  return z;
}

namespace {

bool plans_equal(const attack::SpoofingPlan& a,
                 const attack::SpoofingPlan& b) noexcept {
  return a.target == b.target && a.direction == b.direction &&
         a.start_time == b.start_time && a.duration == b.duration &&
         a.distance == b.distance;
}

bool attempts_equal(const SeedAttempt& a, const SeedAttempt& b) noexcept {
  return a.seed.target == b.seed.target && a.seed.victim == b.seed.victim &&
         a.seed.direction == b.seed.direction && a.seed.vdo == b.seed.vdo &&
         a.seed.influence == b.seed.influence &&
         a.outcome.success == b.outcome.success &&
         a.outcome.stalled == b.outcome.stalled &&
         a.outcome.t_start == b.outcome.t_start &&
         a.outcome.duration == b.outcome.duration &&
         a.outcome.best_f == b.outcome.best_f &&
         a.outcome.crashed_drone == b.outcome.crashed_drone &&
         a.outcome.iterations == b.outcome.iterations;
}

}  // namespace

bool deterministic_equal(const MissionOutcome& a,
                         const MissionOutcome& b) noexcept {
  if (a.mission_index != b.mission_index || a.completed != b.completed ||
      a.mission_seed != b.mission_seed) {
    return false;
  }
  const FuzzResult& ra = a.result;
  const FuzzResult& rb = b.result;
  if (ra.clean_run_failed != rb.clean_run_failed || ra.found != rb.found ||
      ra.victim != rb.victim || ra.victim_vdo != rb.victim_vdo ||
      ra.iterations != rb.iterations || ra.simulations != rb.simulations ||
      ra.mission_vdo != rb.mission_vdo ||
      ra.clean_mission_time != rb.clean_mission_time ||
      !plans_equal(ra.plan, rb.plan) ||
      ra.attempts.size() != rb.attempts.size()) {
    return false;
  }
  for (size_t i = 0; i < ra.attempts.size(); ++i) {
    if (!attempts_equal(ra.attempts[i], rb.attempts[i])) return false;
  }
  return true;
}

bool deterministic_equal(const CampaignResult& a,
                         const CampaignResult& b) noexcept {
  if (a.outcomes.size() != b.outcomes.size()) return false;
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    if (!deterministic_equal(a.outcomes[i], b.outcomes[i])) return false;
  }
  return true;
}

namespace {

// Checks a checkpoint record against the campaign it is being replayed
// into; a mismatch means the file belongs to a different configuration and
// resuming from it would fabricate results.
void validate_record(const TelemetryRecord& record, const CampaignConfig& config) {
  if (record.mission_index < 0 || record.mission_index >= config.num_missions) {
    throw std::runtime_error(
        "checkpoint: mission index " + std::to_string(record.mission_index) +
        " outside campaign of " + std::to_string(config.num_missions));
  }
  if (record.fuzzer != fuzzer_kind_name(config.kind)) {
    throw std::runtime_error("checkpoint: fuzzer '" + record.fuzzer +
                             "' does not match campaign fuzzer '" +
                             std::string{fuzzer_kind_name(config.kind)} + "'");
  }
  for (int attempt = 0; attempt <= config.clean_failure_retries; ++attempt) {
    if (record.mission_seed ==
        mission_seed(config.base_seed, record.mission_index, attempt)) {
      return;
    }
  }
  throw std::runtime_error(
      "checkpoint: mission " + std::to_string(record.mission_index) +
      " seed does not derive from base seed " + std::to_string(config.base_seed) +
      " (different campaign?)");
}

TelemetryRecord make_record(const CampaignConfig& config,
                            const MissionOutcome& outcome) {
  TelemetryRecord record;
  record.mission_index = outcome.mission_index;
  record.fuzzer = std::string{fuzzer_kind_name(config.kind)};
  record.mission_seed = outcome.mission_seed;
  record.wall_time_s = outcome.wall_time_s;
  record.result = outcome.result;
  return record;
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config) {
  if (config.num_missions < 1) {
    throw std::invalid_argument("run_campaign: num_missions < 1");
  }
  CampaignResult result;
  result.config = config;
  result.outcomes.resize(static_cast<size_t>(config.num_missions));
  for (int i = 0; i < config.num_missions; ++i) {
    result.outcomes[static_cast<size_t>(i)].mission_index = i;
  }

  // Replay the checkpoint, then reopen it truncated and re-emit the records
  // we kept: this normalizes away torn trailing lines and duplicates while
  // preserving crash safety for the missions that follow.
  int resumed = 0;
  std::unique_ptr<JsonlTelemetrySink> checkpoint;
  if (!config.checkpoint_path.empty()) {
    std::vector<TelemetryRecord> records;
    if (config.resume) {
      records = load_telemetry(config.checkpoint_path);
    }
    // Validate every record before truncating the file: a checkpoint from a
    // different campaign must be rejected with its contents intact.
    for (const TelemetryRecord& record : records) {
      validate_record(record, config);
    }
    checkpoint = std::make_unique<JsonlTelemetrySink>(config.checkpoint_path,
                                                      /*append=*/false);
    for (const TelemetryRecord& record : records) {
      MissionOutcome& outcome =
          result.outcomes[static_cast<size_t>(record.mission_index)];
      if (outcome.completed) continue;  // duplicate line; keep the first
      outcome.completed = true;
      outcome.mission_seed = record.mission_seed;
      outcome.wall_time_s = record.wall_time_s;
      outcome.result = record.result;
      checkpoint->record(record);
      ++resumed;
    }
    if (resumed > 0) {
      SWARMFUZZ_INFO("campaign [{}]: resumed {}/{} missions from {}",
                     fuzzer_kind_name(config.kind), resumed, config.num_missions,
                     config.checkpoint_path);
    }
  }

  int threads = config.num_threads > 0
                    ? config.num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::clamp(threads, 1, config.num_missions);

  const auto campaign_start = std::chrono::steady_clock::now();
  std::atomic<int> next{0};
  std::atomic<int> completed{resumed};
  std::atomic<int> found{0};
  std::atomic<int> new_budget{config.max_new_missions > 0 ? config.max_new_missions
                                                          : config.num_missions};
  for (const MissionOutcome& o : result.outcomes) {
    if (o.completed && o.result.found) found.fetch_add(1);
  }
  std::mutex observer_mutex;  // serializes checkpoint order + progress callbacks

  const auto worker = [&] {
    // One fuzzer per worker: fuzzers are stateful but mission outcomes only
    // depend on per-mission seeds, so sharding is deterministic.
    auto controller =
        config.controller_factory ? config.controller_factory() : nullptr;
    const std::unique_ptr<Fuzzer> fuzzer =
        make_fuzzer(config.kind, config.fuzzer, std::move(controller));
    while (true) {
      const int index = next.fetch_add(1);
      if (index >= config.num_missions) break;
      MissionOutcome& outcome = result.outcomes[static_cast<size_t>(index)];
      if (outcome.completed) continue;  // satisfied by the checkpoint
      if (new_budget.fetch_sub(1) <= 0) break;  // max_new_missions reached
      const auto mission_start = std::chrono::steady_clock::now();
      for (int attempt = 0; attempt <= config.clean_failure_retries; ++attempt) {
        // Salted re-draws keep retried missions deterministic and distinct
        // from every base seed.
        const std::uint64_t seed = mission_seed(config.base_seed, index, attempt);
        const sim::MissionSpec mission = sim::generate_mission(config.mission, seed);
        outcome.mission_seed = seed;
        outcome.result = fuzzer->fuzz(mission);
        if (!outcome.result.clean_run_failed) break;
      }
      outcome.wall_time_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        mission_start)
              .count();
      outcome.completed = true;
      if (outcome.result.found) found.fetch_add(1);
      const int done = completed.fetch_add(1) + 1;

      {
        const std::lock_guard<std::mutex> lock(observer_mutex);
        const TelemetryRecord record = make_record(config, outcome);
        if (checkpoint) checkpoint->record(record);
        if (config.telemetry) config.telemetry->record(record);
        if (config.on_progress) {
          CampaignProgress progress;
          progress.completed = done;
          progress.resumed = resumed;
          progress.total = config.num_missions;
          progress.found = found.load();
          progress.elapsed_s =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            campaign_start)
                  .count();
          config.on_progress(progress);
        }
      }
      if (config.num_missions >= 10 && done % (config.num_missions / 10) == 0) {
        SWARMFUZZ_INFO("campaign [{}]: {}/{} missions",
                       fuzzer_kind_name(config.kind), done, config.num_missions);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    campaign_start)
          .count();
  SWARMFUZZ_INFO(
      "campaign [{}] {}: {}/{} missions, {} SPVs over {} fuzzable, {:.1f}s",
      fuzzer_kind_name(config.kind),
      result.num_completed() == config.num_missions ? "complete" : "interrupted",
      result.num_completed(), config.num_missions, result.num_found(),
      result.num_fuzzable(), elapsed);
  return result;
}

}  // namespace swarmfuzz::fuzz
