// Sharded multi-process campaign service.
//
// Roles (one binary, three subcommands — see cli/commands.h):
//
//   serve   Coordinator. Builds the campaign configuration, carves its
//           missions into durable work leases (lease.h), and writes the
//           service manifest into a shared directory. Stateless afterwards:
//           the directory *is* the coordination medium, so the coordinator
//           can exit (or die) without affecting running workers.
//   shard   Worker process. Loads the manifest, rebuilds the configuration,
//           verifies its campaign_config_hash, then repeatedly claims
//           leases and runs their missions through the standard supervisor
//           (MissionRunner — the same clean-redraw/fault-retry/quarantine
//           ladder run_campaign uses), streaming one CRC-framed
//           TelemetryRecord per completed mission to the lease's shard
//           file. A heartbeat thread renews the lease at ttl/3; a renewal
//           that discovers the lease was reclaimed fences the worker off
//           the range (it abandons the lease without marking it done).
//   merge   Loads every shard stream and produces the CampaignResult
//           (shard_merge.h), bit-identical to a single-process run.
//
// Crash safety end to end: mission results live only in per-lease shard
// files (append + flush per record, CRC framed, torn tails healed), claim
// files only say who may *run* — so SIGKILL at any point either loses an
// in-flight mission (its lease expires, a reclaimer reruns exactly that
// mission deterministically) or nothing at all. The merge dedups the one
// overlap case (a record landing after its lease was reclaimed) keep-first
// after checking the copies agree.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/campaign.h"
#include "fuzz/lease.h"

namespace swarmfuzz::fuzz {

// The coordinator's durable handoff to shard workers: everything needed to
// rebuild the campaign configuration in another process, plus the lease
// geometry. `campaign_args` holds resolved `--flag=value` strings (the CLI
// layer renders and re-parses them); `config_hash` is the
// campaign_config_hash of the configuration they rebuild, which workers
// recompute and verify so a drifted binary or edited manifest is rejected
// instead of silently fuzzing a different campaign.
struct ServiceManifest {
  int schema_version = 1;
  std::string config_hash;
  int num_missions = 0;
  int num_leases = 0;
  std::int64_t lease_ttl_ms = 30000;
  std::vector<std::string> campaign_args;
};

[[nodiscard]] std::string to_jsonl(const ServiceManifest& manifest);
[[nodiscard]] ServiceManifest service_manifest_from_json(std::string_view line);

[[nodiscard]] std::string manifest_path(const std::string& dir);
// Atomic write (write-temp-then-rename); creates `dir` if missing.
void write_manifest(const std::string& dir, const ServiceManifest& manifest);
// Throws std::runtime_error when the manifest is missing or malformed.
[[nodiscard]] ServiceManifest load_manifest(const std::string& dir);

// True when every lease's done marker exists.
[[nodiscard]] bool all_leases_done(const std::string& dir, int num_leases);

// Polls (every `poll_ms`) until all leases are done or `timeout_ms` elapses;
// returns whether completion was reached. timeout_ms <= 0 waits forever.
[[nodiscard]] bool wait_for_leases(const std::string& dir, int num_leases,
                                   std::int64_t timeout_ms,
                                   std::int64_t poll_ms = 200);

struct ShardWorkerConfig {
  // Campaign to shard. The single-process observer fields (checkpoint_path,
  // telemetry, on_progress, max_new_missions) are ignored: durability is
  // the shard files', and quarantine rides per lease (shard-<k>.quarantine).
  CampaignConfig campaign;
  std::string dir;                  // service directory (must exist)
  int num_leases = 0;               // must match the manifest's carve
  std::int64_t lease_ttl_ms = 30000;
  std::string owner;                // unique worker identity
  // Injectable time and waiting, for deterministic tests. Defaults: system
  // clock; real sleep.
  LeaseStore::Clock clock;
  std::function<void(std::int64_t)> sleep_ms;
};

struct ShardWorkerStats {
  int leases_claimed = 0;    // leases this worker won (incl. reclaims)
  int leases_abandoned = 0;  // leases fenced off mid-range (reclaimed away)
  int missions_run = 0;      // missions executed by this worker
  int missions_resumed = 0;  // missions satisfied by existing shard records
};

// Runs one shard worker to completion: claims leases (reclaiming expired
// ones), resumes each from its shard file, runs the missing missions, and
// marks leases done. Returns when every lease of the service is done.
// Mission outcomes depend only on (config, base_seed, index), so any number
// of workers — on any schedule, with any crash/reclaim history — produce
// shard streams that merge bit-identical to a single-process run.
ShardWorkerStats run_shard_worker(const ShardWorkerConfig& config);

}  // namespace swarmfuzz::fuzz
