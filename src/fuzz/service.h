// Sharded multi-process campaign service.
//
// Roles (one binary, three subcommands — see cli/commands.h):
//
//   serve   Coordinator. Builds the campaign configuration, carves its
//           missions into durable work leases (lease.h), and writes the
//           service manifest into a shared directory. Stateless afterwards:
//           the directory *is* the coordination medium, so the coordinator
//           can exit (or die) without affecting running workers.
//   shard   Worker process. Loads the manifest, rebuilds the configuration,
//           verifies its campaign_config_hash, then repeatedly claims
//           leases and runs their missions through the standard supervisor
//           (MissionRunner — the same clean-redraw/fault-retry/quarantine
//           ladder run_campaign uses), streaming one CRC-framed
//           TelemetryRecord per completed mission to the lease's shard
//           file. A heartbeat thread renews the lease at ttl/3; a renewal
//           that discovers the lease was reclaimed fences the worker off
//           the range (it abandons the lease without marking it done).
//   merge   Loads every shard stream and produces the CampaignResult
//           (shard_merge.h), bit-identical to a single-process run.
//
// Crash safety end to end: mission results live only in per-lease shard
// files (append + flush per record, CRC framed, torn tails healed), claim
// files only say who may *run* — so SIGKILL at any point either loses an
// in-flight mission (its lease expires, a reclaimer reruns exactly that
// mission deterministically) or nothing at all. The merge dedups the one
// overlap case (a record landing after its lease was reclaimed) keep-first
// after checking the copies agree.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fuzz/campaign.h"
#include "fuzz/lease.h"
#include "fuzz/shard_merge.h"

namespace swarmfuzz::fuzz {

// The coordinator's durable handoff to shard workers: everything needed to
// rebuild the campaign configuration in another process, plus the lease
// geometry. `campaign_args` holds resolved `--flag=value` strings (the CLI
// layer renders and re-parses them); `config_hash` is the
// campaign_config_hash of the configuration they rebuild, which workers
// recompute and verify so a drifted binary or edited manifest is rejected
// instead of silently fuzzing a different campaign.
struct ServiceManifest {
  int schema_version = 1;
  std::string config_hash;
  int num_missions = 0;
  int num_leases = 0;
  std::int64_t lease_ttl_ms = 30000;
  std::vector<std::string> campaign_args;
};

[[nodiscard]] std::string to_jsonl(const ServiceManifest& manifest);
[[nodiscard]] ServiceManifest service_manifest_from_json(std::string_view line);

[[nodiscard]] std::string manifest_path(const std::string& dir);
// Atomic write (write-temp-then-rename); creates `dir` if missing.
void write_manifest(const std::string& dir, const ServiceManifest& manifest);
// Throws std::runtime_error when the manifest is missing or malformed.
[[nodiscard]] ServiceManifest load_manifest(const std::string& dir);

// True when every lease's done marker exists. Pre-re-carve view: only the
// base carve's leases are checked. Prefer service_complete(), which folds in
// the recarve ledger.
[[nodiscard]] bool all_leases_done(const std::string& dir, int num_leases);

// True when every *active* lease (base carve + recarve ledger, minus
// retired) is done — the condition under which merge_shards covers every
// mission index.
[[nodiscard]] bool service_complete(const std::string& dir, int num_missions,
                                    int num_leases);

// Polls (every `poll_ms`) until the service completes or `timeout_ms`
// elapses; returns whether completion was reached. timeout_ms <= 0 waits
// forever.
[[nodiscard]] bool wait_for_service(const std::string& dir, int num_missions,
                                    int num_leases, std::int64_t timeout_ms,
                                    std::int64_t poll_ms = 200);

// --- Chaos harness ---------------------------------------------------------
//
// Deterministic failure injection for the service layer, the distributed
// sibling of the campaign's --fault-inject (campaign.h). A plan is a comma-
// separated list of `<mode>@<mission_index>[xN]`:
//
//   kill@i        SIGKILL the worker right before mission i's shard record
//                 is appended (the outcome is computed, then lost — the
//                 classic mid-range crash).
//   torn-write@i  append only a prefix of mission i's record (no newline),
//                 then SIGKILL: the torn-tail crash signature heal_torn_tail
//                 recovers from.
//   hang@i        stall forever before running mission i while the
//                 heartbeat keeps renewing — the true straggler only the
//                 coordinator's re-carve rescues.
//   eio@i[xN]     fail mission i's shard append with EIO N times (default
//                 1) before letting it through: proves the retry layer
//                 absorbs transient faults. Injected inside the retried
//                 operation, so budgets and counters account for it.
//
// The process-fatal modes (kill, torn-write) take effect once per plan
// entry; on restart the replayed shard file carries no trace of them.
struct ChaosAction {
  enum class Kind { kKill, kHang, kTornWrite, kEio };
  Kind kind = Kind::kKill;
  int mission_index = -1;
  int count = 1;  // xN: eio failures to inject; ignored by other modes
};

struct ChaosPlan {
  std::vector<ChaosAction> actions;
  [[nodiscard]] bool empty() const noexcept { return actions.empty(); }
};

// Parses the grammar above; empty spec -> empty plan. Throws
// std::invalid_argument on malformed specs.
[[nodiscard]] ChaosPlan parse_chaos_plan(std::string_view spec);

struct ShardWorkerConfig {
  // Campaign to shard. The single-process observer fields (checkpoint_path,
  // telemetry, on_progress, max_new_missions) are ignored: durability is
  // the shard files', and quarantine rides per lease (shard-<k>.quarantine).
  CampaignConfig campaign;
  std::string dir;                  // service directory (must exist)
  int num_leases = 0;               // must match the manifest's carve
  std::int64_t lease_ttl_ms = 30000;
  std::string owner;                // unique worker identity
  // Injectable time and waiting, for deterministic tests. Defaults: system
  // clock; real sleep.
  LeaseStore::Clock clock;
  std::function<void(std::int64_t)> sleep_ms;
  // Chaos harness (see above). `chaos_kill` overrides the process-fatal
  // action (default: raise(SIGKILL)) so in-process tests can observe the
  // on-disk state a real SIGKILL would leave; `chaos_hang_wait(ms)` is one
  // bounded wait of the hang loop, returning true to release the hang
  // (default: real sleep, never releases).
  ChaosPlan chaos;
  std::function<void()> chaos_kill;
  std::function<bool(std::int64_t)> chaos_hang_wait;
};

struct ShardWorkerStats {
  int leases_claimed = 0;    // leases this worker won (incl. reclaims)
  int leases_abandoned = 0;  // leases fenced off mid-range (reclaimed away)
  int missions_run = 0;      // missions executed by this worker
  int missions_resumed = 0;  // missions satisfied by existing shard records
  int io_aborts = 0;         // leases abandoned on exhausted/permanent I/O
};

// Runs one shard worker to completion: claims leases (reclaiming expired
// ones), resumes each from its shard file, runs the missing missions, and
// marks leases done. Returns when every active lease of the service is done
// (the lease table is reloaded between leases, so re-carves by a running
// coordinator are picked up). Mission outcomes depend only on (config,
// base_seed, index), so any number of workers — on any schedule, with any
// crash/reclaim/re-carve history — produce shard streams that merge
// bit-identical to a single-process run.
ShardWorkerStats run_shard_worker(const ShardWorkerConfig& config);

// Heartbeat: renews a claim every ttl/3 on a dedicated thread until
// destroyed. fenced() trips — and the worker must abandon the lease — when:
//   - a renewal finds the claim under another owner (reclaimed/fenced),
//   - renewal fails with a *permanent* I/O error (e.g. EROFS): no retry
//     cadence fixes a read-only filesystem, and spinning on one starves
//     the machine, or
//   - transient renewal failures persist past the claim's own TTL: the
//     claim has lapsed on disk, so a reclaimer may already own the range.
// Transient failures inside the TTL back off exponentially (capped at the
// renewal period) rather than tight-looping.
class LeaseHeartbeat {
 public:
  LeaseHeartbeat(LeaseStore& store, int lease_id);
  ~LeaseHeartbeat();

  LeaseHeartbeat(const LeaseHeartbeat&) = delete;
  LeaseHeartbeat& operator=(const LeaseHeartbeat&) = delete;

  [[nodiscard]] bool fenced() const noexcept { return fenced_.load(); }

 private:
  void loop();

  LeaseStore& store_;
  int lease_id_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  std::atomic<bool> fenced_{false};
};

// --- Graceful partial merge: holes and resume ------------------------------

// Machine-readable manifest of the mission ranges a partial merge could not
// cover, written as `holes.json` next to the shard files so a later
// `resume-holes` (or an external scheduler) can finish the campaign.
struct HolesManifest {
  int schema_version = 1;
  std::string config_hash;  // must match the service manifest's
  int num_missions = 0;
  std::vector<MissionHole> holes;
};

[[nodiscard]] std::string to_jsonl(const HolesManifest& manifest);
[[nodiscard]] HolesManifest holes_manifest_from_json(std::string_view line);

[[nodiscard]] std::string holes_path(const std::string& dir);
// Atomic write (write-temp-then-rename).
void write_holes(const std::string& dir, const HolesManifest& manifest);
// Throws std::runtime_error when missing or malformed.
[[nodiscard]] HolesManifest load_holes(const std::string& dir);

// Turns holes back into claimable leases: every active lease overlapping a
// hole is retired (marker + ledger entry + claim fence — the standard
// re-carve protocol) and replaced by sub-leases covering exactly its hole
// intersections; hole ranges inside no active lease (a retired lease's
// recorded prefix whose shard file was later lost) become parentless ledger
// entries. Leases that already cover exactly one hole and are not done are
// left alone, so re-running with the same holes.json is idempotent.
// Returns the number of new leases created; throws when the manifest hashes
// disagree.
int resume_holes(const std::string& dir, const ServiceManifest& manifest,
                 const HolesManifest& holes);

}  // namespace swarmfuzz::fuzz
