#include "fuzz/lease.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "fuzz/telemetry.h"
#include "util/fileio.h"
#include "util/json.h"
#include "util/logging.h"

namespace swarmfuzz::fuzz {

std::vector<LeaseRange> carve_leases(int num_missions, int num_leases) {
  if (num_missions < 1) {
    throw std::invalid_argument("carve_leases: num_missions < 1");
  }
  num_leases = std::clamp(num_leases, 1, num_missions);
  std::vector<LeaseRange> leases;
  leases.reserve(static_cast<std::size_t>(num_leases));
  const int base = num_missions / num_leases;
  const int extra = num_missions % num_leases;
  int begin = 0;
  for (int k = 0; k < num_leases; ++k) {
    const int size = base + (k < extra ? 1 : 0);
    leases.push_back(LeaseRange{.lease_id = k, .begin = begin, .end = begin + size});
    begin += size;
  }
  return leases;
}

std::string to_jsonl(const LeaseClaimRecord& record) {
  util::JsonWriter json;
  json.begin_object();
  json.key("v");
  json.value(record.schema_version);
  json.key("lease");
  json.value(record.lease_id);
  json.key("owner");
  json.value(record.owner);
  // Stringified like mission seeds: epoch milliseconds exceed no 53-bit
  // bound today, but the record format should not bake that assumption in.
  json.key("expires_at_ms");
  json.value(std::to_string(record.expires_at_ms));
  json.end_object();
  return frame_with_crc(json.str());
}

LeaseClaimRecord lease_claim_from_json(std::string_view line) {
  verify_crc_frame(line);
  const util::JsonValue root = util::parse_json(line);
  LeaseClaimRecord record;
  record.schema_version = root.at("v").as_int();
  if (record.schema_version != 1) {
    throw std::invalid_argument("lease: unsupported schema version " +
                                std::to_string(record.schema_version));
  }
  record.lease_id = root.at("lease").as_int();
  record.owner = root.at("owner").as_string();
  record.expires_at_ms = std::stoll(root.at("expires_at_ms").as_string());
  return record;
}

namespace {

std::int64_t system_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Appends one claim/renewal line in a single flushed write (same durability
// contract as telemetry records: a crash can only tear the final line).
void append_claim(const std::string& path, const LeaseClaimRecord& record) {
  append_jsonl_line(path, to_jsonl(record));
}

}  // namespace

LeaseStore::LeaseStore(std::string dir, std::int64_t ttl_ms, std::string owner,
                       Clock clock)
    : dir_(std::move(dir)),
      ttl_ms_(ttl_ms),
      owner_(std::move(owner)),
      clock_(clock ? std::move(clock) : Clock{system_now_ms}) {
  if (ttl_ms_ < 1) {
    throw std::invalid_argument("LeaseStore: ttl_ms < 1");
  }
  if (owner_.empty()) {
    throw std::invalid_argument("LeaseStore: owner must not be empty");
  }
}

std::string LeaseStore::claim_path(int lease_id) const {
  return dir_ + "/lease-" + std::to_string(lease_id) + ".claim";
}

std::string LeaseStore::done_path(int lease_id) const {
  return dir_ + "/lease-" + std::to_string(lease_id) + ".done";
}

bool LeaseStore::is_done(int lease_id) const {
  std::error_code ec;
  return std::filesystem::exists(done_path(lease_id), ec);
}

void LeaseStore::mark_done(int lease_id) {
  // Atomic write-then-rename: the marker either exists complete or not at
  // all, so a crash between the final mission record and this call merely
  // leaves the lease for a (no-op) reclaim that re-marks it.
  util::write_file_atomic(done_path(lease_id), owner_ + "\n");
}

LeaseClaimRecord LeaseStore::latest_claim(const std::string& path) const {
  LeaseClaimRecord latest;  // lease_id = -1: no valid record
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return latest;
  std::string content;
  char buffer[1 << 14];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);

  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    const std::string_view line{content.data() + start, end - start};
    start = end + 1;
    if (line.empty()) continue;
    try {
      latest = lease_claim_from_json(line);
    } catch (const std::exception&) {
      // A torn or corrupt line (SIGKILL mid-claim or mid-renew) is a dead
      // claimant's unfinished write: ignore it and keep the last record
      // that did land, which expires on its own schedule.
    }
  }
  return latest;
}

bool LeaseStore::try_claim(int lease_id) {
  if (is_done(lease_id)) return false;
  const std::string path = claim_path(lease_id);
  // Bounded retries: each loop iteration either wins the exclusive create,
  // rejects, or loses a reclaim race to a process that just claimed — which
  // then holds an unexpired lease, so the next iteration rejects.
  for (int attempt = 0; attempt < 4; ++attempt) {
    // C11 exclusive create: exactly one of any number of racing processes
    // gets the file handle; everyone else sees EEXIST.
    if (std::FILE* file = std::fopen(path.c_str(), "wbx"); file != nullptr) {
      std::fclose(file);
      append_claim(path, LeaseClaimRecord{.lease_id = lease_id,
                                          .owner = owner_,
                                          .expires_at_ms = now_ms() + ttl_ms_});
      return true;
    }
    const LeaseClaimRecord latest = latest_claim(path);
    if (latest.lease_id >= 0 && latest.expires_at_ms > now_ms()) {
      if (latest.owner != owner_) return false;  // validly held by another
      return true;  // re-entry on our own live claim
    }
    // Expired (or the file holds no valid record at all — a claimant that
    // died before its first line landed). Move it aside; the atomic rename
    // picks a single winner among racing reclaimers, and the loser's next
    // iteration observes whatever the winner wrote.
    const std::string dead = path + ".dead." + std::to_string(now_ms()) + "." +
                             std::to_string(reclaim_nonce_++);
    std::error_code ec;
    std::filesystem::rename(path, dead, ec);
    if (ec) {
      if (!std::filesystem::exists(path)) continue;  // winner re-creating
      throw std::runtime_error("lease: cannot reclaim " + path + ": " +
                               ec.message());
    }
    SWARMFUZZ_WARN("lease {}: reclaiming expired claim of '{}' (moved to {})",
                   lease_id, latest.lease_id >= 0 ? latest.owner : "<torn>",
                   dead);
  }
  return false;
}

bool LeaseStore::renew(int lease_id) {
  const std::string path = claim_path(lease_id);
  const LeaseClaimRecord latest = latest_claim(path);
  if (latest.lease_id < 0 || latest.owner != owner_) {
    // Fencing: the lease lapsed and someone reclaimed (renamed) our claim
    // file. Writing a renewal now would resurrect a lease another worker
    // legitimately owns; the caller must abandon the range instead.
    return false;
  }
  append_claim(path, LeaseClaimRecord{.lease_id = lease_id,
                                      .owner = owner_,
                                      .expires_at_ms = now_ms() + ttl_ms_});
  return true;
}

bool LeaseStore::holds(int lease_id) const {
  const LeaseClaimRecord latest = latest_claim(claim_path(lease_id));
  return latest.lease_id >= 0 && latest.owner == owner_ &&
         latest.expires_at_ms > now_ms();
}

std::string shard_telemetry_path(const std::string& dir, int lease_id) {
  return dir + "/shard-" + std::to_string(lease_id) + ".jsonl";
}

}  // namespace swarmfuzz::fuzz
