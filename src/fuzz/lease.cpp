#include "fuzz/lease.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <stdexcept>

#include "fuzz/telemetry.h"
#include "util/fileio.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/retry.h"

namespace swarmfuzz::fuzz {

std::vector<LeaseRange> carve_leases(int num_missions, int num_leases) {
  if (num_missions < 1) {
    throw std::invalid_argument("carve_leases: num_missions < 1");
  }
  num_leases = std::clamp(num_leases, 1, num_missions);
  std::vector<LeaseRange> leases;
  leases.reserve(static_cast<std::size_t>(num_leases));
  const int base = num_missions / num_leases;
  const int extra = num_missions % num_leases;
  int begin = 0;
  for (int k = 0; k < num_leases; ++k) {
    const int size = base + (k < extra ? 1 : 0);
    leases.push_back(LeaseRange{.lease_id = k, .begin = begin, .end = begin + size});
    begin += size;
  }
  return leases;
}

std::string to_jsonl(const LeaseClaimRecord& record) {
  util::JsonWriter json;
  json.begin_object();
  json.key("v");
  json.value(record.schema_version);
  json.key("lease");
  json.value(record.lease_id);
  json.key("owner");
  json.value(record.owner);
  // Stringified like mission seeds: epoch milliseconds exceed no 53-bit
  // bound today, but the record format should not bake that assumption in.
  json.key("expires_at_ms");
  json.value(std::to_string(record.expires_at_ms));
  json.end_object();
  return frame_with_crc(json.str());
}

LeaseClaimRecord lease_claim_from_json(std::string_view line) {
  verify_crc_frame(line);
  const util::JsonValue root = util::parse_json(line);
  LeaseClaimRecord record;
  record.schema_version = root.at("v").as_int();
  if (record.schema_version != 1) {
    throw std::invalid_argument("lease: unsupported schema version " +
                                std::to_string(record.schema_version));
  }
  record.lease_id = root.at("lease").as_int();
  record.owner = root.at("owner").as_string();
  record.expires_at_ms = std::stoll(root.at("expires_at_ms").as_string());
  return record;
}

std::string to_jsonl(const RecarveRecord& record) {
  util::JsonWriter json;
  json.begin_object();
  json.key("v");
  json.value(record.schema_version);
  json.key("parent");
  json.value(record.parent);
  json.key("subs");
  json.begin_array();
  for (const LeaseRange& sub : record.subs) {
    json.begin_object();
    json.key("id");
    json.value(sub.lease_id);
    json.key("begin");
    json.value(sub.begin);
    json.key("end");
    json.value(sub.end);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return frame_with_crc(json.str());
}

RecarveRecord recarve_record_from_json(std::string_view line) {
  verify_crc_frame(line);
  const util::JsonValue root = util::parse_json(line);
  RecarveRecord record;
  record.schema_version = root.at("v").as_int();
  if (record.schema_version != 1) {
    throw std::invalid_argument("recarve: unsupported schema version " +
                                std::to_string(record.schema_version));
  }
  record.parent = root.at("parent").as_int();
  const util::JsonValue& subs = root.at("subs");
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const util::JsonValue& sub = subs.at(i);
    record.subs.push_back(LeaseRange{.lease_id = sub.at("id").as_int(),
                                     .begin = sub.at("begin").as_int(),
                                     .end = sub.at("end").as_int()});
  }
  return record;
}

std::string recarve_ledger_path(const std::string& dir) {
  return dir + "/recarve.jsonl";
}

std::string recarved_marker_path(const std::string& dir, int lease_id) {
  return dir + "/lease-" + std::to_string(lease_id) + ".recarved";
}

namespace {

std::int64_t system_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Reads a whole file through the retrier. ENOENT yields an empty result with
// `exists` false (an absent claim/ledger is a normal state, not an error);
// any other failure is an IoError the retrier may absorb.
struct FileContent {
  bool exists = false;
  std::string content;
};

FileContent read_file(const std::string& path, std::string_view op) {
  return util::io_retrier().run(op, [&]() -> FileContent {
    FileContent result;
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      if (errno == ENOENT) return result;
      throw util::IoError("lease: cannot open " + path, errno);
    }
    char buffer[1 << 14];
    std::size_t read = 0;
    while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
      result.content.append(buffer, read);
    }
    const bool failed = std::ferror(file) != 0;
    const int read_errno = errno;
    std::fclose(file);
    if (failed) {
      throw util::IoError("lease: cannot read " + path, read_errno);
    }
    result.exists = true;
    return result;
  });
}

}  // namespace

std::vector<RecarveRecord> load_recarve_ledger(const std::string& path) {
  std::vector<RecarveRecord> records;
  const FileContent file = read_file(path, "ledger_read");
  if (!file.exists) return records;
  std::size_t start = 0;
  const std::string& content = file.content;
  while (start < content.size()) {
    std::size_t end = content.find('\n', start);
    const bool complete_line = end != std::string::npos;
    if (!complete_line) end = content.size();
    const std::string_view line{content.data() + start, end - start};
    start = end + 1;
    if (line.empty()) continue;
    try {
      records.push_back(recarve_record_from_json(line));
    } catch (const std::exception& e) {
      // Same torn-tail contract as telemetry streams: an unterminated final
      // line is a coordinator that died mid-append (its orphaned marker is
      // healed later); a corrupt complete line is real corruption.
      if (complete_line) {
        throw std::runtime_error("recarve: corrupt ledger record in " + path +
                                 ": " + e.what());
      }
      SWARMFUZZ_WARN("recarve: skipping torn final record in {} ({} bytes)",
                     path, line.size());
    }
  }
  return records;
}

LeaseTable load_lease_table(const std::string& dir, int num_missions,
                            int num_leases) {
  LeaseTable table;
  table.active = carve_leases(num_missions, num_leases);
  table.next_lease_id = static_cast<int>(table.active.size());
  const int base_count = table.next_lease_id;  // ids below this are the carve's
  std::map<int, std::size_t> index_of;  // lease id -> index into active
  for (std::size_t i = 0; i < table.active.size(); ++i) {
    index_of[table.active[i].lease_id] = i;
  }
  for (const RecarveRecord& record :
       load_recarve_ledger(recarve_ledger_path(dir))) {
    if (record.parent >= 0) {
      const auto it = index_of.find(record.parent);
      if (it == index_of.end()) {
        // Keep-first: the parent was already retired (the heal path may
        // re-append an entry it could not know had landed).
        continue;
      }
      table.retired.push_back(table.active[it->second]);
      table.active.erase(table.active.begin() +
                         static_cast<std::ptrdiff_t>(it->second));
      index_of.clear();
      for (std::size_t i = 0; i < table.active.size(); ++i) {
        index_of[table.active[i].lease_id] = i;
      }
    }
    for (const LeaseRange& sub : record.subs) {
      if (sub.lease_id < base_count || index_of.count(sub.lease_id) != 0) {
        throw std::runtime_error("recarve: sub-lease id " +
                                 std::to_string(sub.lease_id) +
                                 " collides with an existing lease in " + dir);
      }
      for (const LeaseRange& retired : table.retired) {
        if (retired.lease_id == sub.lease_id) {
          throw std::runtime_error("recarve: sub-lease id " +
                                   std::to_string(sub.lease_id) +
                                   " reuses a retired id in " + dir);
        }
      }
      if (sub.begin < 0 || sub.begin >= sub.end || sub.end > num_missions) {
        throw std::runtime_error("recarve: sub-lease " +
                                 std::to_string(sub.lease_id) +
                                 " has invalid range in " + dir);
      }
      index_of[sub.lease_id] = table.active.size();
      table.active.push_back(sub);
      table.next_lease_id = std::max(table.next_lease_id, sub.lease_id + 1);
    }
  }
  return table;
}

LeaseStore::LeaseStore(std::string dir, std::int64_t ttl_ms, std::string owner,
                       Clock clock)
    : dir_(std::move(dir)),
      ttl_ms_(ttl_ms),
      owner_(std::move(owner)),
      clock_(clock ? std::move(clock) : Clock{system_now_ms}) {
  if (ttl_ms_ < 1) {
    throw std::invalid_argument("LeaseStore: ttl_ms < 1");
  }
  if (owner_.empty()) {
    throw std::invalid_argument("LeaseStore: owner must not be empty");
  }
}

std::string LeaseStore::claim_path(int lease_id) const {
  return dir_ + "/lease-" + std::to_string(lease_id) + ".claim";
}

std::string LeaseStore::done_path(int lease_id) const {
  return dir_ + "/lease-" + std::to_string(lease_id) + ".done";
}

bool LeaseStore::is_done(int lease_id) const {
  std::error_code ec;
  return std::filesystem::exists(done_path(lease_id), ec);
}

bool LeaseStore::is_retired(int lease_id) const {
  std::error_code ec;
  return std::filesystem::exists(recarved_marker_path(dir_, lease_id), ec);
}

void LeaseStore::mark_done(int lease_id) {
  // Atomic write-then-rename: the marker either exists complete or not at
  // all, so a crash between the final mission record and this call merely
  // leaves the lease for a (no-op) reclaim that re-marks it.
  util::write_file_atomic(done_path(lease_id), owner_ + "\n");
}

void LeaseStore::set_append_hook_for_test(std::function<void()> hook) {
  append_hook_ = std::move(hook);
}

void LeaseStore::append_claim(const std::string& path,
                              const LeaseClaimRecord& record) {
  if (append_hook_) append_hook_();
  append_jsonl_line(path, to_jsonl(record));
}

LeaseClaimRecord LeaseStore::latest_claim(const std::string& path) const {
  LeaseClaimRecord latest;  // lease_id = -1: no valid record
  const FileContent file = read_file(path, "claim_read");
  if (!file.exists) return latest;
  const std::string& content = file.content;
  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    const std::string_view line{content.data() + start, end - start};
    start = end + 1;
    if (line.empty()) continue;
    try {
      latest = lease_claim_from_json(line);
    } catch (const std::exception&) {
      // A torn or corrupt line (SIGKILL mid-claim or mid-renew) is a dead
      // claimant's unfinished write: ignore it and keep the last record
      // that did land, which expires on its own schedule.
    }
  }
  return latest;
}

LeaseClaimRecord LeaseStore::peek_claim(int lease_id) const {
  return latest_claim(claim_path(lease_id));
}

bool LeaseStore::try_claim(int lease_id) {
  if (is_done(lease_id)) return false;
  if (is_retired(lease_id)) return false;  // re-carved: successors own the tail
  const std::string path = claim_path(lease_id);
  // Bounded retries: each loop iteration either wins the exclusive create,
  // rejects, or loses a reclaim race to a process that just claimed — which
  // then holds an unexpired lease, so the next iteration rejects.
  for (int attempt = 0; attempt < 4; ++attempt) {
    // C11 exclusive create: exactly one of any number of racing processes
    // gets the file handle; everyone else sees EEXIST.
    const bool created =
        util::io_retrier().run("claim_create", [&]() -> bool {
          std::FILE* file = std::fopen(path.c_str(), "wbx");
          if (file != nullptr) {
            std::fclose(file);
            return true;
          }
          if (errno == EEXIST) return false;
          throw util::IoError("lease: cannot create " + path, errno);
        });
    if (created) {
      append_claim(path, LeaseClaimRecord{.lease_id = lease_id,
                                          .owner = owner_,
                                          .expires_at_ms = now_ms() + ttl_ms_});
      return true;
    }
    const LeaseClaimRecord latest = latest_claim(path);
    if (latest.lease_id >= 0 && latest.expires_at_ms > now_ms()) {
      if (latest.owner != owner_) return false;  // validly held by another
      return true;  // re-entry on our own live claim
    }
    // Expired (or the file holds no valid record at all — a claimant that
    // died before its first line landed). Move it aside; the atomic rename
    // picks a single winner among racing reclaimers, and the loser's next
    // iteration observes whatever the winner wrote.
    const std::string dead = path + ".dead." + std::to_string(now_ms()) + "." +
                             std::to_string(reclaim_nonce_++);
    const bool renamed = util::io_retrier().run("claim_reclaim", [&]() -> bool {
      std::error_code ec;
      std::filesystem::rename(path, dead, ec);
      if (!ec) return true;
      std::error_code exists_ec;
      if (!std::filesystem::exists(path, exists_ec)) return false;
      throw util::IoError("lease: cannot reclaim " + path + ": " + ec.message(),
                          ec.value());
    });
    if (!renamed) continue;  // winner re-creating
    SWARMFUZZ_WARN("lease {}: reclaiming expired claim of '{}' (moved to {})",
                   lease_id, latest.lease_id >= 0 ? latest.owner : "<torn>",
                   dead);
  }
  return false;
}

bool LeaseStore::renew(int lease_id) {
  const std::string path = claim_path(lease_id);
  const LeaseClaimRecord latest = latest_claim(path);
  if (latest.lease_id < 0 || latest.owner != owner_) {
    // Fencing: the lease lapsed and someone reclaimed (renamed) our claim
    // file. Writing a renewal now would resurrect a lease another worker
    // legitimately owns; the caller must abandon the range instead.
    return false;
  }
  append_claim(path, LeaseClaimRecord{.lease_id = lease_id,
                                      .owner = owner_,
                                      .expires_at_ms = now_ms() + ttl_ms_});
  return true;
}

bool LeaseStore::holds(int lease_id) const {
  const LeaseClaimRecord latest = latest_claim(claim_path(lease_id));
  return latest.lease_id >= 0 && latest.owner == owner_ &&
         latest.expires_at_ms > now_ms();
}

bool LeaseStore::fence_claim(int lease_id) {
  const std::string path = claim_path(lease_id);
  const std::string dead = path + ".dead." + std::to_string(now_ms()) + "." +
                           std::to_string(reclaim_nonce_++);
  return util::io_retrier().run("claim_fence", [&]() -> bool {
    std::error_code ec;
    std::filesystem::rename(path, dead, ec);
    if (!ec) return true;
    std::error_code exists_ec;
    if (!std::filesystem::exists(path, exists_ec)) return false;  // no claim
    throw util::IoError("lease: cannot fence " + path + ": " + ec.message(),
                        ec.value());
  });
}

std::string shard_telemetry_path(const std::string& dir, int lease_id) {
  return dir + "/shard-" + std::to_string(lease_id) + ".jsonl";
}

}  // namespace swarmfuzz::fuzz
