#include "fuzz/eval_pool.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/tick_pool.h"

namespace swarmfuzz::fuzz {

int hardware_threads() noexcept { return sim::hardware_threads(); }

int split_eval_threads(int workers, int requested, int hardware) noexcept {
  workers = std::max(workers, 1);
  hardware = std::max(hardware, 1);
  const int per_worker = std::max(hardware / workers, 1);
  if (requested <= 0) {
    return per_worker;  // auto: divide the machine evenly
  }
  return std::min(requested, per_worker);
}

ThreadBudget split_thread_budget(int workers, int requested_eval,
                                 int requested_sim, int hardware) noexcept {
  workers = std::max(workers, 1);
  hardware = std::max(hardware, 1);
  const int per_worker = std::max(hardware / workers, 1);
  ThreadBudget budget;
  if (requested_eval > 0) {
    // Explicit eval width wins; sim threads take (or are clamped to) the
    // rest of this worker's share.
    budget.eval_threads = std::min(requested_eval, per_worker);
    const int sim_share = std::max(per_worker / budget.eval_threads, 1);
    budget.sim_threads =
        requested_sim <= 0 ? sim_share : std::min(requested_sim, sim_share);
  } else if (requested_sim > 0) {
    // Explicit sim width wins; eval threads absorb the rest of the share.
    budget.sim_threads = std::min(requested_sim, per_worker);
    budget.eval_threads = std::max(per_worker / budget.sim_threads, 1);
  } else {
    // Both auto: historical split — all batch parallelism, serial ticks.
    budget.eval_threads = per_worker;
    budget.sim_threads = 1;
  }
  return budget;
}

EvalPool::EvalPool(const sim::SimulationConfig& sim,
                   std::shared_ptr<const swarm::SwarmController> controller,
                   const swarm::CommConfig& comm, int threads)
    : sim_config_(sim),
      controller_(std::move(controller)),
      comm_(comm),
      threads_(std::max(threads, 1)) {
  if (controller_ == nullptr) {
    throw std::invalid_argument("EvalPool: controller must not be null");
  }
  if (threads_ > 1) {
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

EvalPool::~EvalPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::vector<EvalPool::JobResult> EvalPool::evaluate(const BatchContext& context,
                                                    std::span<const Job> jobs) {
  if (jobs.empty()) {
    return {};
  }
  if (workers_.empty()) {
    // Single-threaded pool: run inline on the caller with a per-call clone.
    // Objective skips the pool entirely in this configuration, so this path
    // only serves direct (test) callers.
    std::vector<JobResult> results(jobs.size());
    const sim::Simulator simulator(sim_config_);
    swarm::FlockingControlSystem system(controller_, comm_);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      run_job(simulator, system, context, jobs[i], results[i]);
    }
    return results;
  }

  std::unique_lock lock(mutex_);
  results_.assign(jobs.size(), JobResult{});
  context_ = &context;
  jobs_ = jobs.data();
  num_jobs_ = jobs.size();
  next_.store(0, std::memory_order_relaxed);
  // Count down *workers*, not jobs: a worker reports only after it has
  // drained the claim cursor, so once every worker has reported, no thread
  // can touch this batch's cursor or results again — making it safe to
  // reset them for the next batch.
  remaining_ = workers_.size();
  ++generation_;
  work_ready_.notify_all();
  batch_done_.wait(lock, [this] { return remaining_ == 0; });
  context_ = nullptr;
  jobs_ = nullptr;
  num_jobs_ = 0;
  return std::move(results_);
}

void EvalPool::worker_loop() {
  // Per-worker clones of the only mutable simulation state; everything the
  // jobs share (mission, prefix cache, guards) is read-only.
  const sim::Simulator simulator(sim_config_);
  swarm::FlockingControlSystem system(controller_, comm_);
  std::uint64_t seen = 0;
  for (;;) {
    const BatchContext* context = nullptr;
    const Job* jobs = nullptr;
    std::size_t num_jobs = 0;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
      context = context_;
      jobs = jobs_;
      num_jobs = num_jobs_;
    }
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_jobs) {
        break;
      }
      run_job(simulator, system, *context, jobs[i], results_[i]);
    }
    {
      const std::lock_guard lock(mutex_);
      if (--remaining_ == 0) {
        batch_done_.notify_one();
      }
    }
  }
}

void EvalPool::run_job(const sim::Simulator& simulator,
                       swarm::FlockingControlSystem& system,
                       const BatchContext& context, const Job& job,
                       JobResult& out) noexcept {
  try {
    const AttackEvalOutcome result =
        evaluate_attack(*context.mission, simulator, system, context.seed,
                        context.spoof_distance, context.prefix, context.guards,
                        job.t_start, job.duration);
    out.eval = result.eval;
    out.steps_executed = result.steps_executed;
    out.steps_resumed = result.steps_resumed;
  } catch (...) {
    // Captured, not thrown: the Objective replays outcomes in submission
    // order and rethrows this at the job's serial position.
    out.error = std::current_exception();
  }
}

}  // namespace swarmfuzz::fuzz
