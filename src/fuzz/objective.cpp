#include "fuzz/objective.h"

#include <algorithm>
#include <stdexcept>

namespace swarmfuzz::fuzz {

Objective::Objective(const sim::MissionSpec& mission, const sim::Simulator& simulator,
                     swarm::FlockingControlSystem& system, Seed seed,
                     double spoof_distance, double t_mission)
    : mission_(mission),
      simulator_(simulator),
      system_(system),
      seed_(seed),
      spoof_distance_(spoof_distance),
      t_mission_(t_mission) {
  if (seed.target < 0 || seed.target >= mission.num_drones() || seed.victim < 0 ||
      seed.victim >= mission.num_drones() || seed.target == seed.victim) {
    throw std::invalid_argument("Objective: invalid seed pair");
  }
  if (spoof_distance <= 0.0 || t_mission <= 0.0) {
    throw std::invalid_argument("Objective: non-positive parameter");
  }
}

void Objective::project(double& t_start, double& duration) const {
  const double dt_min = simulator_.config().dt;
  t_start = std::clamp(t_start, 0.0, t_mission_ - dt_min);
  duration = std::clamp(duration, dt_min, t_mission_ - t_start);
}

ObjectiveEval Objective::evaluate(double t_start, double duration) {
  project(t_start, duration);
  const attack::SpoofingPlan plan{
      .target = seed_.target,
      .direction = seed_.direction,
      .start_time = t_start,
      .duration = duration,
      .distance = spoof_distance_,
  };
  const attack::GpsSpoofer spoofer(plan, mission_);
  const sim::RunResult run = simulator_.run(mission_, system_, &spoofer);
  ++evaluations_;

  ObjectiveEval eval;
  eval.end_time = run.end_time;
  eval.f = run.recorder.min_obstacle_distance(seed_.victim) - mission_.drone_radius;
  if (run.first_collision) {
    const sim::CollisionEvent& event = *run.first_collision;
    const bool involves_target =
        event.drone == seed_.target ||
        (event.kind == sim::CollisionKind::kDroneDrone && event.other == seed_.target);
    if (event.kind == sim::CollisionKind::kDroneObstacle && !involves_target) {
      // Success per the paper's metric: a victim drone (any swarm member
      // other than the target) crashed into the on-path obstacle.
      eval.success = true;
      eval.crashed_drone = event.drone;
      if (event.drone != seed_.victim) {
        // Another drone than the scheduled victim crashed; reflect that in f
        // so the optimizer sees the success.
        eval.f = std::min(
            eval.f,
            run.recorder.min_obstacle_distance(event.drone) - mission_.drone_radius);
      }
    } else {
      eval.target_caused = involves_target;
    }
  }
  return eval;
}

}  // namespace swarmfuzz::fuzz
