#include "fuzz/objective.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "fuzz/eval_pool.h"

namespace swarmfuzz::fuzz {

void ObjectiveFunction::evaluate_batch(std::span<const EvalRequest> batch,
                                       const BatchConsumer& consume) {
  // Lazy serial default: an entry is only evaluated once every earlier
  // entry was consumed, so implementations without a pool behave exactly
  // like the pre-batching caller-driven loop (same evaluation counts).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!consume(i, evaluate(batch[i].t_start, batch[i].duration))) {
      return;
    }
  }
}

void PrefixCache::on_checkpoint(sim::SimulationCheckpoint&& checkpoint) {
  if (!checkpoints_.empty() && checkpoint.time <= checkpoints_.back().time) {
    throw std::invalid_argument("PrefixCache: checkpoints must advance in time");
  }
  checkpoints_.push_back(std::move(checkpoint));
}

const sim::SimulationCheckpoint* PrefixCache::latest_at_or_before(
    double t) const noexcept {
  // Checkpoints are captured *before* sensing, so one taken exactly at the
  // spoofing start is still a valid resume point; allow the simulator's
  // cadence epsilon to avoid rejecting t == checkpoint.time by a rounding
  // hair.
  const sim::SimulationCheckpoint* best = nullptr;
  for (const sim::SimulationCheckpoint& cp : checkpoints_) {
    if (cp.time <= t + 1e-9) {
      best = &cp;
    } else {
      break;  // ascending order: later entries are even further past t
    }
  }
  return best;
}

AttackEvalOutcome evaluate_attack(const sim::MissionSpec& mission,
                                  const sim::Simulator& simulator,
                                  swarm::FlockingControlSystem& system,
                                  const Seed& seed, double spoof_distance,
                                  const PrefixCache* prefix,
                                  const EvalGuards* guards, double t_start,
                                  double duration) {
  const attack::SpoofingPlan plan{
      .target = seed.target,
      .direction = seed.direction,
      .start_time = t_start,
      .duration = duration,
      .distance = spoof_distance,
  };
  const attack::GpsSpoofer spoofer(plan, mission);

  // Until t_start the attacked run is bit-identical to the clean run, so a
  // clean-run checkpoint taken at or before t_start is a valid prefix.
  const sim::SimulationCheckpoint* resume =
      prefix != nullptr ? prefix->latest_at_or_before(t_start) : nullptr;
  if (resume != nullptr && prefix->source() == nullptr) {
    throw std::logic_error(
        "Objective: prefix cache has checkpoints but no source recorder; "
        "call PrefixCache::set_source(clean.recorder) after the clean run");
  }
  sim::RunHooks hooks;
  hooks.spoofer = &spoofer;
  if (resume != nullptr) {
    hooks.resume_from = resume;
    hooks.resume_recorder = prefix->source();
  }
  if (guards != nullptr) {
    hooks.watchdog = guards->watchdog;
    hooks.inject_fault = guards->inject;
  }
  const sim::RunResult run = simulator.run(mission, system, hooks);

  AttackEvalOutcome out;
  out.steps_executed = run.steps_executed;
  out.steps_resumed = run.steps_resumed;
  out.eval.end_time = run.end_time;
  out.eval.f =
      run.recorder.min_obstacle_distance(seed.victim) - mission.drone_radius;
  // Behavioral features for the novelty signature: where every drone ended
  // up relative to the obstacle field, when the globally tightest approach
  // happened, and how tightly the swarm packed. Cheap — the recorder already
  // tracked the minima; only the packing term scans one sample (O(n^2)).
  const int n = mission.num_drones();
  out.eval.drone_clearance.resize(static_cast<std::size_t>(n));
  double tightest = std::numeric_limits<double>::infinity();
  out.eval.min_clearance_time = 0.0;
  for (int i = 0; i < n; ++i) {
    const double clearance = run.recorder.min_obstacle_distance(i);
    out.eval.drone_clearance[static_cast<std::size_t>(i)] = clearance;
    if (clearance < tightest) {
      tightest = clearance;
      out.eval.min_clearance_time = run.recorder.time_of_min_obstacle_distance(i);
    }
  }
  if (run.recorder.num_samples() > 0 && n > 1) {
    const double t_clo = run.recorder.closest_time();
    out.eval.min_avg_separation =
        run.recorder.avg_inter_distance(run.recorder.sample_index_at(t_clo));
  }
  // +inf is legitimate (obstacle-free victim path); NaN means the recorder
  // ingested a non-finite sample the sentinel somehow let through — surface
  // it as a fault rather than feeding NaN to the optimizer's comparisons.
  if (std::isnan(out.eval.f)) {
    throw sim::RunFaultError(
        sim::RunFault{.kind = sim::FaultKind::kNumericalDivergence,
                      .time = run.end_time,
                      .drone = seed.victim,
                      .detail = "objective value is NaN"});
  }
  if (run.first_collision) {
    const sim::CollisionEvent& event = *run.first_collision;
    const bool involves_target =
        event.drone == seed.target ||
        (event.kind == sim::CollisionKind::kDroneDrone && event.other == seed.target);
    if (event.kind == sim::CollisionKind::kDroneObstacle && !involves_target) {
      // Success per the paper's metric: a victim drone (any swarm member
      // other than the target) crashed into the on-path obstacle.
      out.eval.success = true;
      out.eval.crashed_drone = event.drone;
      if (event.drone != seed.victim) {
        // Another drone than the scheduled victim crashed; reflect that in f
        // so the optimizer sees the success.
        out.eval.f = std::min(
            out.eval.f,
            run.recorder.min_obstacle_distance(event.drone) - mission.drone_radius);
      }
    } else {
      out.eval.target_caused = involves_target;
    }
  }
  return out;
}

Objective::Objective(const sim::MissionSpec& mission, const sim::Simulator& simulator,
                     swarm::FlockingControlSystem& system, Seed seed,
                     double spoof_distance, double t_mission,
                     const PrefixCache* prefix, const EvalGuards* guards,
                     EvalPool* pool)
    : mission_(mission),
      simulator_(simulator),
      system_(system),
      seed_(seed),
      spoof_distance_(spoof_distance),
      t_mission_(t_mission),
      prefix_(prefix),
      guards_(guards),
      pool_(pool) {
  if (seed.target < 0 || seed.target >= mission.num_drones() || seed.victim < 0 ||
      seed.victim >= mission.num_drones() || seed.target == seed.victim) {
    throw std::invalid_argument("Objective: invalid seed pair");
  }
  if (spoof_distance <= 0.0 || t_mission <= 0.0) {
    throw std::invalid_argument("Objective: non-positive parameter");
  }
}

void Objective::project(double& t_start, double& duration) const {
  const double dt_min = simulator_.config().dt;
  t_start = std::clamp(t_start, 0.0, t_mission_ - dt_min);
  duration = std::clamp(duration, dt_min, t_mission_ - t_start);
}

ObjectiveEval Objective::evaluate(double t_start, double duration) {
  project(t_start, duration);

  const std::pair<std::uint64_t, std::uint64_t> key{
      std::bit_cast<std::uint64_t>(t_start), std::bit_cast<std::uint64_t>(duration)};
  if (const auto it = memo_.find(key); it != memo_.end()) {
    ++memo_hits_;
    return it->second;
  }

  const AttackEvalOutcome out =
      evaluate_attack(mission_, simulator_, system_, seed_, spoof_distance_,
                      prefix_, guards_, t_start, duration);
  ++evaluations_;
  sim_steps_executed_ += out.steps_executed;
  prefix_steps_reused_ += out.steps_resumed;
  memo_.emplace(key, out.eval);
  return out.eval;
}

void Objective::evaluate_batch(std::span<const EvalRequest> batch,
                               const BatchConsumer& consume) {
  ++eval_batches_;
  if (pool_ == nullptr || pool_->threads() <= 1 || batch.size() <= 1) {
    ObjectiveFunction::evaluate_batch(batch, consume);
    return;
  }

  // Speculative fan-out: simulate every non-memoised candidate concurrently
  // (including entries a serial run might never reach), then replay in
  // submission order and commit — counter increments, memo inserts — only
  // the prefix the consumer accepts. Discarded speculative work touches no
  // observable state, so evaluations()/memo_hits()/memo contents match the
  // serial path bit for bit.
  constexpr std::size_t kNoJob = std::numeric_limits<std::size_t>::max();
  struct Candidate {
    double t_start = 0.0;
    double duration = 0.0;
    std::pair<std::uint64_t, std::uint64_t> key{};
    std::size_t job = kNoJob;
  };
  std::vector<Candidate> candidates(batch.size());
  std::vector<EvalPool::Job> jobs;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> queued;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Candidate& c = candidates[i];
    c.t_start = batch[i].t_start;
    c.duration = batch[i].duration;
    project(c.t_start, c.duration);
    c.key = {std::bit_cast<std::uint64_t>(c.t_start),
             std::bit_cast<std::uint64_t>(c.duration)};
    if (memo_.contains(c.key)) {
      continue;  // replay will serve it as a memo hit
    }
    // Duplicate keys within the batch simulate once; during replay the
    // first occurrence commits the memo entry and later ones hit it,
    // exactly as serial evaluation would.
    const auto [it, inserted] = queued.try_emplace(c.key, jobs.size());
    if (inserted) {
      jobs.push_back({.t_start = c.t_start, .duration = c.duration});
    }
    c.job = it->second;
  }

  std::vector<EvalPool::JobResult> results;
  if (!jobs.empty()) {
    const EvalPool::BatchContext context{.mission = &mission_,
                                         .seed = seed_,
                                         .spoof_distance = spoof_distance_,
                                         .prefix = prefix_,
                                         .guards = guards_};
    results = pool_->evaluate(context, jobs);
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Candidate& c = candidates[i];
    ObjectiveEval eval;
    if (const auto it = memo_.find(c.key); it != memo_.end()) {
      ++memo_hits_;
      eval = it->second;
    } else {
      EvalPool::JobResult& r = results[c.job];
      if (r.error) {
        // Rethrown at the entry's replay position: everything committed so
        // far matches the serial run, and the exception aborts the search
        // before any counter becomes externally observable.
        std::rethrow_exception(r.error);
      }
      ++evaluations_;
      sim_steps_executed_ += r.steps_executed;
      prefix_steps_reused_ += r.steps_resumed;
      memo_.emplace(c.key, r.eval);
      eval = r.eval;
    }
    if (!consume(i, eval)) {
      return;
    }
  }
}

}  // namespace swarmfuzz::fuzz
