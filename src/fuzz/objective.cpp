#include "fuzz/objective.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace swarmfuzz::fuzz {

void PrefixCache::on_checkpoint(sim::SimulationCheckpoint&& checkpoint) {
  if (!checkpoints_.empty() && checkpoint.time <= checkpoints_.back().time) {
    throw std::invalid_argument("PrefixCache: checkpoints must advance in time");
  }
  checkpoints_.push_back(std::move(checkpoint));
}

const sim::SimulationCheckpoint* PrefixCache::latest_at_or_before(
    double t) const noexcept {
  // Checkpoints are captured *before* sensing, so one taken exactly at the
  // spoofing start is still a valid resume point; allow the simulator's
  // cadence epsilon to avoid rejecting t == checkpoint.time by a rounding
  // hair.
  const sim::SimulationCheckpoint* best = nullptr;
  for (const sim::SimulationCheckpoint& cp : checkpoints_) {
    if (cp.time <= t + 1e-9) {
      best = &cp;
    } else {
      break;  // ascending order: later entries are even further past t
    }
  }
  return best;
}

Objective::Objective(const sim::MissionSpec& mission, const sim::Simulator& simulator,
                     swarm::FlockingControlSystem& system, Seed seed,
                     double spoof_distance, double t_mission,
                     const PrefixCache* prefix, const EvalGuards* guards)
    : mission_(mission),
      simulator_(simulator),
      system_(system),
      seed_(seed),
      spoof_distance_(spoof_distance),
      t_mission_(t_mission),
      prefix_(prefix),
      guards_(guards) {
  if (seed.target < 0 || seed.target >= mission.num_drones() || seed.victim < 0 ||
      seed.victim >= mission.num_drones() || seed.target == seed.victim) {
    throw std::invalid_argument("Objective: invalid seed pair");
  }
  if (spoof_distance <= 0.0 || t_mission <= 0.0) {
    throw std::invalid_argument("Objective: non-positive parameter");
  }
}

void Objective::project(double& t_start, double& duration) const {
  const double dt_min = simulator_.config().dt;
  t_start = std::clamp(t_start, 0.0, t_mission_ - dt_min);
  duration = std::clamp(duration, dt_min, t_mission_ - t_start);
}

ObjectiveEval Objective::evaluate(double t_start, double duration) {
  project(t_start, duration);

  const std::pair<std::uint64_t, std::uint64_t> key{
      std::bit_cast<std::uint64_t>(t_start), std::bit_cast<std::uint64_t>(duration)};
  if (const auto it = memo_.find(key); it != memo_.end()) {
    ++memo_hits_;
    return it->second;
  }

  const attack::SpoofingPlan plan{
      .target = seed_.target,
      .direction = seed_.direction,
      .start_time = t_start,
      .duration = duration,
      .distance = spoof_distance_,
  };
  const attack::GpsSpoofer spoofer(plan, mission_);

  // Until t_start the attacked run is bit-identical to the clean run, so a
  // clean-run checkpoint taken at or before t_start is a valid prefix.
  const sim::SimulationCheckpoint* resume =
      prefix_ != nullptr ? prefix_->latest_at_or_before(t_start) : nullptr;
  if (resume != nullptr && prefix_->source() == nullptr) {
    throw std::logic_error(
        "Objective: prefix cache has checkpoints but no source recorder; "
        "call PrefixCache::set_source(clean.recorder) after the clean run");
  }
  sim::RunHooks hooks;
  hooks.spoofer = &spoofer;
  if (resume != nullptr) {
    hooks.resume_from = resume;
    hooks.resume_recorder = prefix_->source();
  }
  if (guards_ != nullptr) {
    hooks.watchdog = guards_->watchdog;
    hooks.inject_fault = guards_->inject;
  }
  const sim::RunResult run = simulator_.run(mission_, system_, hooks);
  ++evaluations_;
  sim_steps_executed_ += run.steps_executed;
  prefix_steps_reused_ += run.steps_resumed;

  ObjectiveEval eval;
  eval.end_time = run.end_time;
  eval.f = run.recorder.min_obstacle_distance(seed_.victim) - mission_.drone_radius;
  // +inf is legitimate (obstacle-free victim path); NaN means the recorder
  // ingested a non-finite sample the sentinel somehow let through — surface
  // it as a fault rather than feeding NaN to the optimizer's comparisons.
  if (std::isnan(eval.f)) {
    throw sim::RunFaultError(
        sim::RunFault{.kind = sim::FaultKind::kNumericalDivergence,
                      .time = run.end_time,
                      .drone = seed_.victim,
                      .detail = "objective value is NaN"});
  }
  if (run.first_collision) {
    const sim::CollisionEvent& event = *run.first_collision;
    const bool involves_target =
        event.drone == seed_.target ||
        (event.kind == sim::CollisionKind::kDroneDrone && event.other == seed_.target);
    if (event.kind == sim::CollisionKind::kDroneObstacle && !involves_target) {
      // Success per the paper's metric: a victim drone (any swarm member
      // other than the target) crashed into the on-path obstacle.
      eval.success = true;
      eval.crashed_drone = event.drone;
      if (event.drone != seed_.victim) {
        // Another drone than the scheduled victim crashed; reflect that in f
        // so the optimizer sees the success.
        eval.f = std::min(
            eval.f,
            run.recorder.min_obstacle_distance(event.drone) - mission_.drone_radius);
      }
    } else {
      eval.target_caused = involves_target;
    }
  }
  memo_.emplace(key, eval);
  return eval;
}

}  // namespace swarmfuzz::fuzz
