// E_Fuzz mutation operators (DESIGN.md section 17).
//
// A mutant is derived from one corpus entry (the parent) and, for crossover,
// a second (the partner). Operators cover both halves of the test-run tuple
// <T-V, theta, t_s, dt>: continuous window edits (shift, stretch, reset)
// explore the spoofing window, discrete pair edits (target/victim swap,
// direction flip) re-aim the attack, and crossover recombines a proven
// window with a proven pair. Every draw count is fixed per operator, so the
// mutant is a pure function of (parent, partner, swarm size, mission length,
// RNG state) — the determinism argument of the whole evolutionary mode rests
// on this.
#pragma once

#include <string_view>

#include "fuzz/corpus.h"
#include "math/rng.h"

namespace swarmfuzz::fuzz {

enum class MutationOp {
  kWindowShift,    // translate the window in time
  kWindowStretch,  // scale the duration
  kWindowReset,    // fresh uniform window (exploration restart)
  kCrossover,      // parent's pair/direction + partner's window
  kTargetSwap,     // re-aim the spoof at a different target
  kVictimSwap,     // expect a different victim to crash
  kDirectionFlip,  // mirror the spoofing direction
};

[[nodiscard]] std::string_view mutation_op_name(MutationOp op) noexcept;

struct MutationConfig {
  double shift_max_s = 10.0;  // window-shift amplitude, +- seconds
  double stretch_min = 0.6;   // duration scale range for kWindowStretch
  double stretch_max = 1.6;
};

// A candidate produced by mutation: the window is raw (pre-projection; the
// objective projects exactly as it does for every other caller). seed.vdo is
// the parent's and goes stale on a victim swap — the fuzzer refreshes it
// from the clean run before recording.
struct MutantCandidate {
  Seed seed;
  double t_start = 0.0;
  double duration = 0.0;
  MutationOp op = MutationOp::kWindowShift;
};

// Draws an operator (window edits weighted over pair edits) and applies it.
// `num_drones` bounds the pair swaps; swarms too small for a swap fall back
// to a direction flip, and t_mission bounds the reset window. The target-
// victim invariant (distinct, in range) is maintained for any input that
// satisfies it.
[[nodiscard]] MutantCandidate mutate(const CorpusEntry& parent,
                                     const CorpusEntry& partner, int num_drones,
                                     double t_mission, math::Rng& rng,
                                     const MutationConfig& config = {});

}  // namespace swarmfuzz::fuzz
