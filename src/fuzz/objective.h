// The fuzzing objective f(t_s, dt) - paper section IV-C.
//
// Given a seed <T-V, theta> and the spoofing deviation d, f(t_s, dt) is the
// minimum distance between the victim drone and the obstacle over the
// attacked mission, minus the drone's collision radius; a collision occurs
// iff f <= 0. Each evaluation is one full mission simulation.
#pragma once

#include "attack/spoofing.h"
#include "fuzz/seeds.h"
#include "sim/simulator.h"
#include "swarm/flocking_system.h"

namespace swarmfuzz::fuzz {

struct ObjectiveEval {
  double f = 0.0;               // victim-obstacle clearance, m (<= 0: crash)
  bool success = false;         // a victim drone hit the obstacle
  int crashed_drone = -1;       // which drone hit the obstacle (on success)
  bool target_caused = false;   // collision involved the target (excluded by
                                // the paper's success metric)
  double end_time = 0.0;
};

// Abstract objective over (t_s, dt): what the gradient search minimises.
// Split from the simulator-backed Objective so the optimizer can be tested
// (and reused) against synthetic landscapes.
class ObjectiveFunction {
 public:
  virtual ~ObjectiveFunction() = default;
  [[nodiscard]] virtual ObjectiveEval evaluate(double t_start, double duration) = 0;
  // Clamps (t_s, dt) into the feasible region.
  virtual void project(double& t_start, double& duration) const = 0;
};

// Evaluates attacked missions for a fixed seed. Not thread-safe (owns the
// control system it mutates); create one per worker.
class Objective final : public ObjectiveFunction {
 public:
  // `system` must outlive the objective. `t_mission` (timing constraint
  // t_s + dt < t_mission) is taken from the clean run's end time.
  Objective(const sim::MissionSpec& mission, const sim::Simulator& simulator,
            swarm::FlockingControlSystem& system, Seed seed, double spoof_distance,
            double t_mission);

  [[nodiscard]] ObjectiveEval evaluate(double t_start, double duration) override;

  // Clamps (t_s, dt) into the feasible region 0 <= t_s, dt_min <= dt,
  // t_s + dt <= t_mission.
  void project(double& t_start, double& duration) const override;

  [[nodiscard]] int evaluations() const noexcept { return evaluations_; }
  [[nodiscard]] double t_mission() const noexcept { return t_mission_; }
  [[nodiscard]] const Seed& seed() const noexcept { return seed_; }

 private:
  const sim::MissionSpec& mission_;
  const sim::Simulator& simulator_;
  swarm::FlockingControlSystem& system_;
  Seed seed_;
  double spoof_distance_;
  double t_mission_;
  int evaluations_ = 0;
};

}  // namespace swarmfuzz::fuzz
