// The fuzzing objective f(t_s, dt) - paper section IV-C.
//
// Given a seed <T-V, theta> and the spoofing deviation d, f(t_s, dt) is the
// minimum distance between the victim drone and the obstacle over the
// attacked mission, minus the drone's collision radius; a collision occurs
// iff f <= 0. Each evaluation is one full mission simulation — unless the
// prefix cache can supply a mid-mission checkpoint with time <= t_s, in
// which case only the tail from that checkpoint is simulated (the attacked
// run is bit-identical to the clean run until the spoofing window opens, so
// the clean run's checkpoints are valid prefixes for every (t_s, dt)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "attack/spoofing.h"
#include "fuzz/seeds.h"
#include "sim/checkpoint.h"
#include "sim/simulator.h"
#include "swarm/flocking_system.h"

namespace swarmfuzz::fuzz {

// Execution guards applied to every simulation an Objective runs: the
// per-evaluation watchdog (sim-step budget + wall-clock deadline, both
// raising RunFaultError{kTimeout}) and the deterministic fault-injection
// hook used by the containment tests. Borrowed by the Objective so the
// fuzzer can tighten the deadline between evaluations.
struct EvalGuards {
  sim::RunWatchdog watchdog{};
  sim::FaultInjection inject{};
};

struct ObjectiveEval {
  double f = 0.0;               // victim-obstacle clearance, m (<= 0: crash)
  bool success = false;         // a victim drone hit the obstacle
  int crashed_drone = -1;       // which drone hit the obstacle (on success)
  bool target_caused = false;   // collision involved the target (excluded by
                                // the paper's success metric)
  double end_time = 0.0;
  // Behavioral probe of the attacked run, the raw material of E_Fuzz's
  // novelty signature (fuzz/corpus.h). Deterministic — derived from the
  // recorder of a deterministic simulation — and carried through the memo
  // and EvalPool untouched, so replayed and memo-served evaluations report
  // the identical features.
  std::vector<double> drone_clearance;  // per-drone min obstacle distance, m
  double min_clearance_time = 0.0;      // when the tightest approach happened
  double min_avg_separation = 0.0;      // tightest average swarm packing, m
};

// One candidate of an evaluation batch (raw, pre-projection coordinates —
// evaluate_batch projects exactly like evaluate does).
struct EvalRequest {
  double t_start = 0.0;
  double duration = 0.0;
};

// Receives batch results replayed in submission order: called once per
// entry with the entry's index and its evaluation. Return false to stop —
// later entries are then discarded without touching any observable state,
// exactly as a serial caller that stopped issuing evaluate() calls.
using BatchConsumer = std::function<bool(std::size_t, const ObjectiveEval&)>;

// Abstract objective over (t_s, dt): what the gradient search minimises.
// Split from the simulator-backed Objective so the optimizer can be tested
// (and reused) against synthetic landscapes.
class ObjectiveFunction {
 public:
  virtual ~ObjectiveFunction() = default;
  [[nodiscard]] virtual ObjectiveEval evaluate(double t_start, double duration) = 0;
  // Clamps (t_s, dt) into the feasible region.
  virtual void project(double& t_start, double& duration) const = 0;

  // Evaluates a batch of independent candidates and replays the outcomes
  // through `consume` in submission order. The default is a lazy serial
  // loop (evaluate each entry only when the previous consume returned
  // true), so for any implementation the observable behaviour — results,
  // evaluation counts, memoisation — is that of the equivalent sequence of
  // evaluate() calls; overrides may evaluate speculatively in parallel but
  // must preserve that contract (see Objective::evaluate_batch).
  virtual void evaluate_batch(std::span<const EvalRequest> batch,
                              const BatchConsumer& consume);
};

// Collects the clean run's checkpoints, ordered by capture time. One cache
// per mission: the pre-spoof prefix is seed-independent, so every Objective
// of that mission (any target-victim pair) can resume from it. After the
// clean run finishes, hand its recorder to set_source(): checkpoints store
// only accumulator state, and resume rebuilds each prefix's trajectory
// samples from the source recorder (see sim/recorder.h). Populate from one
// thread (on_checkpoint/set_source/clear are not synchronised); once
// populated, the const lookups (latest_at_or_before/source) are safe to
// call concurrently — EvalPool workers share one cache this way.
class PrefixCache final : public sim::CheckpointSink {
 public:
  void on_checkpoint(sim::SimulationCheckpoint&& checkpoint) override;

  // Latest checkpoint with time <= t (within a small epsilon, matching the
  // simulator's capture cadence); nullptr when none qualifies.
  [[nodiscard]] const sim::SimulationCheckpoint* latest_at_or_before(
      double t) const noexcept;

  // Stores (a copy of) the recorder of the run that produced the collected
  // checkpoints. Must be called before any resume; Objective throws
  // std::logic_error on a cache with checkpoints but no source.
  void set_source(const sim::Recorder& recorder) { source_ = recorder; }
  [[nodiscard]] const sim::Recorder* source() const noexcept {
    return source_ ? &*source_ : nullptr;
  }

  void clear() noexcept {
    checkpoints_.clear();
    source_.reset();
  }
  [[nodiscard]] size_t size() const noexcept { return checkpoints_.size(); }

 private:
  std::vector<sim::SimulationCheckpoint> checkpoints_;  // ascending time
  std::optional<sim::Recorder> source_;
};

class EvalPool;

// Result of one attack simulation, before any Objective bookkeeping.
struct AttackEvalOutcome {
  ObjectiveEval eval{};
  std::int64_t steps_executed = 0;
  std::int64_t steps_resumed = 0;
};

// Runs one attacked mission for the (already projected) spoofing window:
// the stateless core of Objective::evaluate, also executed by EvalPool
// workers against their own simulator/system clones. Mutates only `system`
// (each caller must own its clone); `prefix` is only read. Throws
// sim::RunFaultError on guard trips or numerical divergence and
// std::logic_error on a prefix cache with checkpoints but no source.
[[nodiscard]] AttackEvalOutcome evaluate_attack(
    const sim::MissionSpec& mission, const sim::Simulator& simulator,
    swarm::FlockingControlSystem& system, const Seed& seed,
    double spoof_distance, const PrefixCache* prefix, const EvalGuards* guards,
    double t_start, double duration);

// Evaluates attacked missions for a fixed seed. Not thread-safe (owns the
// control system it mutates); create one per worker.
class Objective final : public ObjectiveFunction {
 public:
  // `system` must outlive the objective. `t_mission` (timing constraint
  // t_s + dt < t_mission) is taken from the clean run's end time. `prefix`
  // (optional, borrowed) supplies clean-run checkpoints for prefix reuse;
  // results are bit-identical with or without it. `guards` (optional,
  // borrowed) bounds each evaluation's execution; a tripped guard raises
  // sim::RunFaultError from evaluate(). `pool` (optional, borrowed) lets
  // evaluate_batch() fan batches out over worker threads — results stay
  // bit-identical to the serial path (see evaluate_batch).
  Objective(const sim::MissionSpec& mission, const sim::Simulator& simulator,
            swarm::FlockingControlSystem& system, Seed seed, double spoof_distance,
            double t_mission, const PrefixCache* prefix = nullptr,
            const EvalGuards* guards = nullptr, EvalPool* pool = nullptr);

  [[nodiscard]] ObjectiveEval evaluate(double t_start, double duration) override;

  // With a pool: projects every candidate, simulates the non-memoised ones
  // concurrently (speculatively — including entries a serial run would
  // never reach), then replays outcomes in submission order, committing
  // counters and memo entries only for the prefix of entries the consumer
  // actually accepts. Evaluations, memo hits, step counters, and memo
  // contents end up exactly as if evaluate() had been called serially until
  // consume returned false; a captured worker exception is rethrown at its
  // entry's replay position. Without a pool (or single-threaded, or a
  // batch of one) this is the serial loop.
  void evaluate_batch(std::span<const EvalRequest> batch,
                      const BatchConsumer& consume) override;

  // Clamps (t_s, dt) into the feasible region 0 <= t_s, dt_min <= dt,
  // t_s + dt <= t_mission.
  void project(double& t_start, double& duration) const override;

  // Simulations actually run. Memoised repeats of an already-evaluated
  // projected (t_s, dt) are served from the memo and do not count.
  [[nodiscard]] int evaluations() const noexcept { return evaluations_; }
  [[nodiscard]] int memo_hits() const noexcept { return memo_hits_; }

  // Batches submitted through evaluate_batch (pooled or not); equal across
  // serial and parallel runs of the same search.
  [[nodiscard]] int eval_batches() const noexcept { return eval_batches_; }

  // Control ticks simulated vs skipped by resuming from prefix checkpoints,
  // summed over all evaluations.
  [[nodiscard]] std::int64_t sim_steps_executed() const noexcept {
    return sim_steps_executed_;
  }
  [[nodiscard]] std::int64_t prefix_steps_reused() const noexcept {
    return prefix_steps_reused_;
  }

  [[nodiscard]] double t_mission() const noexcept { return t_mission_; }
  [[nodiscard]] const Seed& seed() const noexcept { return seed_; }

 private:
  const sim::MissionSpec& mission_;
  const sim::Simulator& simulator_;
  swarm::FlockingControlSystem& system_;
  Seed seed_;
  double spoof_distance_;
  double t_mission_;
  const PrefixCache* prefix_;
  const EvalGuards* guards_;
  EvalPool* pool_;
  int evaluations_ = 0;
  int memo_hits_ = 0;
  int eval_batches_ = 0;
  std::int64_t sim_steps_executed_ = 0;
  std::int64_t prefix_steps_reused_ = 0;
  // Evaluation memo keyed on the exact bits of the *projected* (t_s, dt):
  // the simulation is a pure function of those bits, so a repeat probe
  // (e.g. the optimizer re-evaluating its multi-start winner) costs zero
  // simulations.
  std::map<std::pair<std::uint64_t, std::uint64_t>, ObjectiveEval> memo_;
};

}  // namespace swarmfuzz::fuzz
