// Report helpers shared by the benchmark harness: run the paper's
// configuration grid ({5,10,15} drones x {5,10} m spoofing) and format the
// aggregate tables.
#pragma once

#include <string>
#include <vector>

#include "fuzz/campaign.h"

namespace swarmfuzz::fuzz {

struct GridCell {
  int swarm_size = 0;
  double spoof_distance = 0.0;
  CampaignResult result;
};

struct GridConfig {
  std::vector<int> swarm_sizes{5, 10, 15};
  std::vector<double> spoof_distances{5.0, 10.0};
  CampaignConfig base{};  // mission.num_drones / fuzzer.spoof_distance overridden
  // When set, each cell's campaign checkpoints to
  // `<checkpoint_dir>/<cell_label>.jsonl` (the directory is created), so an
  // interrupted grid run resumes mid-cell. base.resume / base.telemetry
  // apply to every cell.
  std::string checkpoint_dir;
};

// Runs one campaign per (size, distance) cell, in declaration order.
[[nodiscard]] std::vector<GridCell> run_grid(const GridConfig& config);

// Table I: success rates per configuration.
[[nodiscard]] std::string format_success_table(const std::vector<GridCell>& grid);

// Table II: average search iterations (over successful missions).
[[nodiscard]] std::string format_iterations_table(const std::vector<GridCell>& grid);

// Table III: fuzzer comparison for a single configuration.
[[nodiscard]] std::string format_ablation_table(
    const std::vector<CampaignResult>& per_fuzzer);

// Short label like "5d-5m" used in Fig. 6/7 renderings.
[[nodiscard]] std::string cell_label(const GridCell& cell);

}  // namespace swarmfuzz::fuzz
