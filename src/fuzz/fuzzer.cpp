#include "fuzz/fuzzer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <tuple>

#include "fuzz/eval_pool.h"
#include "fuzz/objective.h"
#include "swarm/vasarhelyi.h"
#include "util/logging.h"

namespace swarmfuzz::fuzz {
namespace {

// Cap on recorded failed attempts per mission (successes are always
// recorded): keeps FuzzResult/telemetry bounded for the random fuzzers at
// large budgets while attempts_tried still counts everything.
constexpr std::size_t kMaxRecordedAttempts = 256;

// Resolves sim_threads = 0 (auto) before anything consumes config.sim: the
// simulator and every EvalPool worker are built from it (and FuzzerBase's
// member order initializes simulator_ before eval_threads_). Auto gives the
// intra-tick pool whatever the eval fan-out leaves of the machine, so
// eval x sim never oversubscribes by default; an explicit request passes
// through untouched (oversubscription is then the caller's choice — results
// are identical regardless).
FuzzerConfig resolve_fuzzer_threads(FuzzerConfig config) {
  if (config.sim.sim_threads <= 0) {
    const int eval =
        config.eval_threads > 0 ? config.eval_threads : hardware_threads();
    config.sim.sim_threads =
        std::max(hardware_threads() / std::max(eval, 1), 1);
  }
  return config;
}

// Shared plumbing: clean run, seed scheduling, bookkeeping.
class FuzzerBase : public Fuzzer {
 public:
  FuzzerBase(FuzzerConfig config,
             std::shared_ptr<const swarm::SwarmController> controller)
      : config_(resolve_fuzzer_threads(std::move(config))),
        controller_(controller != nullptr
                        ? std::move(controller)
                        : std::make_shared<swarm::VasarhelyiController>()),
        system_(controller_, config_.comm),
        simulator_(config_.sim),
        eval_threads_(config_.eval_threads > 0 ? config_.eval_threads
                                               : hardware_threads()) {
    // An explicit eval_threads is honoured as-is (oversubscription is the
    // caller's choice; results are identical regardless); only the 0 = auto
    // case consults the hardware. Campaigns pre-split their budget via
    // split_eval_threads before configuring workers.
    if (eval_threads_ > 1) {
      pool_ = std::make_unique<EvalPool>(config_.sim, controller_, config_.comm,
                                         eval_threads_);
    }
  }

  FuzzResult fuzz(const sim::MissionSpec& mission) final {
    FuzzResult result;
    // Arm the execution guards for this whole fuzz() call: the wall-clock
    // deadline is absolute, so the clean run and every objective evaluation
    // draw from the same budget.
    guards_.watchdog = config_.mission_timeout_s > 0.0
                           ? sim::RunWatchdog::with_timeout(config_.mission_timeout_s)
                           : sim::RunWatchdog{};
    guards_.watchdog.max_steps = config_.eval_max_steps;
    guards_.inject = config_.fault_injection;
    // The clean run doubles as the prefix-recording run: with reuse enabled
    // it emits checkpoints that every subsequent objective evaluation of
    // this mission resumes from (the pre-spoof prefix is seed-independent),
    // at zero extra simulation cost.
    prefix_.clear();
    sim::RunHooks hooks;
    hooks.watchdog = guards_.watchdog;
    hooks.inject_fault = guards_.inject;
    if (config_.prefix_reuse) {
      hooks.checkpoints = &prefix_;
      hooks.checkpoint_period = config_.checkpoint_period;
    }
    const sim::RunResult clean = simulator_.run(mission, system_, hooks);
    if (config_.prefix_reuse) {
      // Checkpoints carry no trajectory samples; resumes rebuild each
      // prefix from the clean run's recorder.
      prefix_.set_source(clean.recorder);
    }
    result.simulations = 1;
    result.sim_steps_executed = clean.steps_executed;
    result.clean_mission_time = clean.end_time;
    result.eval_parallelism = eval_threads_;
    if (clean.collided) {
      // The paper's step (1): missions that fail without any attack are not
      // fuzzed.
      result.clean_run_failed = true;
      return result;
    }
    // Min over finite per-drone VDOs only. A drone that never meets an
    // obstacle reports infinity (and a degenerate sample could surface NaN);
    // letting either win the fold leaks a non-finite value into telemetry,
    // where it serializes as JSON null and parses back as NaN — breaking the
    // bit-exact checkpoint round trip (same_double(inf, NaN) is false). A
    // mission with no finite VDO keeps NaN, which round-trips stably.
    double mission_vdo = std::numeric_limits<double>::quiet_NaN();
    for (int i = 0; i < mission.num_drones(); ++i) {
      const double vdo = clean.recorder.min_obstacle_distance(i);
      if (std::isfinite(vdo) && !(vdo >= mission_vdo)) mission_vdo = vdo;
    }
    result.mission_vdo = mission_vdo;

    run_search(mission, clean, result);
    return result;
  }

 protected:
  // Subclass-specific search; fills result.found/plan/victim/iterations.
  virtual void run_search(const sim::MissionSpec& mission,
                          const sim::RunResult& clean, FuzzResult& result) = 0;

  // Initial (t_s, dt) candidates for a seed, anchored on the victim's
  // clean-run closest approach t_ca: one window ending at the encounter, one
  // well before it (attacks that pre-deviate the trajectory), and one short
  // late window. Multi-start matters because far from the collision basin
  // the objective is nearly flat and gradients carry no signal.
  [[nodiscard]] std::vector<StartPoint> initial_guesses(
      const sim::RunResult& clean, const Seed& seed) const {
    const double t_ca = clean.recorder.time_of_min_obstacle_distance(seed.victim);
    const double lead = config_.lead_time;
    const double dur = config_.initial_duration;
    return {
        StartPoint{std::max(t_ca - lead, 0.0), dur},
        StartPoint{std::max(t_ca - 2.0 * lead - dur, 0.0), dur},
        StartPoint{std::max(t_ca - lead / 2.0, 0.0), dur / 2.0},
    };
  }

  void record_success(FuzzResult& result, const Seed& seed,
                      const OptimizationResult& outcome,
                      const sim::RunResult& clean) const {
    result.found = true;
    result.plan = attack::SpoofingPlan{
        .target = seed.target,
        .direction = seed.direction,
        .start_time = outcome.t_start,
        .duration = outcome.duration,
        .distance = config_.spoof_distance,
    };
    result.victim = outcome.crashed_drone >= 0 ? outcome.crashed_drone : seed.victim;
    result.victim_vdo = clean.recorder.min_obstacle_distance(result.victim);
  }

  FuzzerConfig config_;
  std::shared_ptr<const swarm::SwarmController> controller_;
  swarm::FlockingControlSystem system_;
  sim::Simulator simulator_;
  PrefixCache prefix_;   // clean-run checkpoints of the current mission
  EvalGuards guards_{};  // armed at fuzz() entry, shared by all evaluations
  int eval_threads_ = 1;
  std::unique_ptr<EvalPool> pool_;  // non-null iff eval_threads_ > 1
};

// Runs the gradient search over an ordered seed list (SwarmFuzz / G_Fuzz).
class GradientSearchFuzzer : public FuzzerBase {
 public:
  using FuzzerBase::FuzzerBase;

 protected:
  void search_seeds(const sim::MissionSpec& mission, const sim::RunResult& clean,
                    std::vector<Seed> seeds, FuzzResult& result) {
    for (const Seed& seed : seeds) {
      const int remaining = config_.mission_budget - result.iterations;
      if (remaining <= 0) break;
      Objective objective(mission, simulator_, system_, seed,
                          config_.spoof_distance, clean.end_time,
                          config_.prefix_reuse ? &prefix_ : nullptr, &guards_,
                          pool_.get());
      const std::vector<StartPoint> starts = initial_guesses(clean, seed);
      const OptimizationResult outcome =
          optimize(objective, starts, std::min(remaining, config_.per_seed_budget),
                   config_.optimizer);
      ++result.attempts_tried;
      result.iterations += outcome.iterations;
      result.simulations += objective.evaluations();
      result.sim_steps_executed += objective.sim_steps_executed();
      result.prefix_steps_reused += objective.prefix_steps_reused();
      result.eval_batches += objective.eval_batches();
      result.attempts.push_back(SeedAttempt{seed, outcome});
      if (outcome.success) {
        record_success(result, seed, outcome, clean);
        return;
      }
    }
  }
};

class SwarmFuzzer final : public GradientSearchFuzzer {
 public:
  using GradientSearchFuzzer::GradientSearchFuzzer;
  [[nodiscard]] std::string_view name() const noexcept override { return "SwarmFuzz"; }

 protected:
  void run_search(const sim::MissionSpec& mission, const sim::RunResult& clean,
                  FuzzResult& result) override {
    std::vector<Seed> seeds = schedule_seeds(clean, mission, system_,
                                             config_.spoof_distance, config_.seeds);
    SWARMFUZZ_DEBUG("SwarmFuzz: {} scheduled seeds", seeds.size());
    if (seeds.empty()) {
      SWARMFUZZ_WARN(
          "SwarmFuzz: seed scheduling produced no seeds for mission seed {}; "
          "nothing fuzzed", mission.seed);
      result.no_seeds = true;
      return;
    }
    search_seeds(mission, clean, std::move(seeds), result);
  }
};

// G_Fuzz: gradient search on randomly chosen pairs/directions.
class GradientOnlyFuzzer final : public GradientSearchFuzzer {
 public:
  GradientOnlyFuzzer(FuzzerConfig config,
                     std::shared_ptr<const swarm::SwarmController> controller)
      : GradientSearchFuzzer(std::move(config), std::move(controller)),
        rng_(config_.rng_seed) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "G_Fuzz"; }

 protected:
  void run_search(const sim::MissionSpec& mission, const sim::RunResult& clean,
                  FuzzResult& result) override {
    const int n = mission.num_drones();
    if (n < 2) {
      // A target-victim pair needs two drones; uniform_int(0, n - 2) below
      // would otherwise be called on an empty range.
      SWARMFUZZ_WARN(
          "G_Fuzz: mission seed {} has {} drone(s), no target-victim pair "
          "exists; nothing fuzzed", mission.seed, n);
      result.no_seeds = true;
      return;
    }
    // Same seed count as SwarmFuzz would schedule, but drawn uniformly.
    math::Rng rng = rng_.split(mission.seed);
    std::vector<Seed> seeds;
    for (int k = 0; k < config_.seeds.max_seeds; ++k) {
      const int target = rng.uniform_int(0, n - 1);
      int victim = rng.uniform_int(0, n - 2);
      if (victim >= target) ++victim;
      seeds.push_back(Seed{
          .target = target,
          .victim = victim,
          .direction = rng.bernoulli(0.5) ? attack::SpoofDirection::kRight
                                          : attack::SpoofDirection::kLeft,
          .vdo = clean.recorder.min_obstacle_distance(victim),
          .influence = 0.0,
      });
    }
    search_seeds(mission, clean, std::move(seeds), result);
  }

 private:
  math::Rng rng_;
};

// Random-parameter search shared by R_Fuzz and S_Fuzz: each iteration is one
// simulation with random (t_s, dt); only a collision stops it early.
class RandomSearchFuzzer : public FuzzerBase {
 public:
  RandomSearchFuzzer(FuzzerConfig config,
                     std::shared_ptr<const swarm::SwarmController> controller)
      : FuzzerBase(std::move(config), std::move(controller)), rng_(config_.rng_seed) {}

 protected:
  // Draws and evaluates random parameters for `seed`; true on success.
  bool try_random_params(const sim::MissionSpec& mission, const sim::RunResult& clean,
                         const Seed& seed, math::Rng& rng, FuzzResult& result) {
    Objective objective(mission, simulator_, system_, seed, config_.spoof_distance,
                        clean.end_time, config_.prefix_reuse ? &prefix_ : nullptr,
                        &guards_);
    const double t_s = rng.uniform(0.0, clean.end_time);
    const double dt = rng.uniform(0.0, clean.end_time - t_s);
    const ObjectiveEval eval = objective.evaluate(t_s, dt);
    ++result.iterations;
    ++result.attempts_tried;
    result.simulations += objective.evaluations();
    result.sim_steps_executed += objective.sim_steps_executed();
    result.prefix_steps_reused += objective.prefix_steps_reused();
    const OptimizationResult outcome{.success = eval.success,
                                     .t_start = t_s,
                                     .duration = dt,
                                     .best_f = eval.f,
                                     .crashed_drone = eval.crashed_drone,
                                     .iterations = 1};
    // Failed draws are recorded too (capped) so R_Fuzz/S_Fuzz telemetry and
    // the ablation report see every attempt, not just the winning one;
    // successes always record.
    if (eval.success || result.attempts.size() < kMaxRecordedAttempts) {
      result.attempts.push_back(SeedAttempt{seed, outcome});
    }
    if (eval.success) {
      record_success(result, seed, outcome, clean);
      return true;
    }
    return false;
  }

  math::Rng rng_;
};

// R_Fuzz: random pair, direction and parameters every iteration.
class RandomFuzzer final : public RandomSearchFuzzer {
 public:
  using RandomSearchFuzzer::RandomSearchFuzzer;
  [[nodiscard]] std::string_view name() const noexcept override { return "R_Fuzz"; }

 protected:
  void run_search(const sim::MissionSpec& mission, const sim::RunResult& clean,
                  FuzzResult& result) override {
    const int n = mission.num_drones();
    if (n < 2) {
      // Same degenerate-swarm guard as G_Fuzz: no pair to spoof, and the
      // victim draw below would hit uniform_int's empty-range precondition.
      SWARMFUZZ_WARN(
          "R_Fuzz: mission seed {} has {} drone(s), no target-victim pair "
          "exists; nothing fuzzed", mission.seed, n);
      result.no_seeds = true;
      return;
    }
    math::Rng rng = rng_.split(mission.seed);
    while (result.iterations < config_.mission_budget) {
      const int target = rng.uniform_int(0, n - 1);
      int victim = rng.uniform_int(0, n - 2);
      if (victim >= target) ++victim;
      const Seed seed{
          .target = target,
          .victim = victim,
          .direction = rng.bernoulli(0.5) ? attack::SpoofDirection::kRight
                                          : attack::SpoofDirection::kLeft,
          .vdo = clean.recorder.min_obstacle_distance(victim),
          .influence = 0.0,
      };
      if (try_random_params(mission, clean, seed, rng, result)) return;
    }
  }
};

// S_Fuzz: SVG-scheduled seeds, random parameters (round-robin over seeds).
class SvgOnlyFuzzer final : public RandomSearchFuzzer {
 public:
  using RandomSearchFuzzer::RandomSearchFuzzer;
  [[nodiscard]] std::string_view name() const noexcept override { return "S_Fuzz"; }

 protected:
  void run_search(const sim::MissionSpec& mission, const sim::RunResult& clean,
                  FuzzResult& result) override {
    const std::vector<Seed> seeds = schedule_seeds(
        clean, mission, system_, config_.spoof_distance, config_.seeds);
    if (seeds.empty()) {
      // Without the marker this mission is indistinguishable from a
      // zero-cost success-free run in campaign summaries.
      SWARMFUZZ_WARN(
          "S_Fuzz: seed scheduling produced no seeds for mission seed {}; "
          "nothing fuzzed", mission.seed);
      result.no_seeds = true;
      return;
    }
    math::Rng rng = rng_.split(mission.seed);
    size_t index = 0;
    while (result.iterations < config_.mission_budget) {
      const Seed& seed = seeds[index % seeds.size()];
      ++index;
      if (try_random_params(mission, clean, seed, rng, result)) return;
    }
  }
};

// E_Fuzz: AFL-style persistent evolutionary search (DESIGN.md section 17).
// The corpus is seeded from the SVG schedule (one t_ca-anchored window per
// scheduled seed); each round assembles a fixed-size batch of mutants,
// evaluates it through the speculate-then-replay batch path, and admits
// candidates whose behavioral signature lights a novelty bin no corpus
// member has lit. Periodic minimization keeps the population at one cheap
// entry per bin. Results are bit-identical for any eval-thread count: batch
// composition depends only on the RNG stream and corpus state, both of
// which advance in replay (= submission) order.
class EvolutionaryFuzzer final : public FuzzerBase {
 public:
  EvolutionaryFuzzer(FuzzerConfig config,
                     std::shared_ptr<const swarm::SwarmController> controller)
      : FuzzerBase(std::move(config), std::move(controller)),
        rng_(config_.rng_seed) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "E_Fuzz"; }

 protected:
  void run_search(const sim::MissionSpec& mission, const sim::RunResult& clean,
                  FuzzResult& result) override {
    const int n = mission.num_drones();
    const std::vector<Seed> scheduled = schedule_seeds(
        clean, mission, system_, config_.spoof_distance, config_.seeds);
    if (scheduled.empty()) {
      SWARMFUZZ_WARN(
          "E_Fuzz: seed scheduling produced no seeds for mission seed {}; "
          "nothing fuzzed", mission.seed);
      result.no_seeds = true;
      return;
    }

    const EvolutionConfig& evo = config_.evolution;
    Corpus corpus(evo.max_corpus);
    int minimized_at = 0;

    // Per-pair objectives are cached for the whole mission so each pair's
    // memo keeps absorbing repeated windows across rounds; all share the
    // mission's prefix cache, guards, and eval pool.
    std::map<std::tuple<int, int, int>, std::unique_ptr<Objective>> objectives;
    const auto objective_for = [&](const Seed& seed) -> Objective& {
      const std::tuple<int, int, int> key{seed.target, seed.victim,
                                          static_cast<int>(seed.direction)};
      auto it = objectives.find(key);
      if (it == objectives.end()) {
        it = objectives
                 .emplace(key, std::make_unique<Objective>(
                                   mission, simulator_, system_, seed,
                                   config_.spoof_distance, clean.end_time,
                                   config_.prefix_reuse ? &prefix_ : nullptr,
                                   &guards_, pool_.get()))
                 .first;
      }
      return *it->second;
    };

    // Anytime mode: resume this mission's corpus from a previous campaign.
    // Entries for a different swarm size are skipped (the corpus directory
    // may be shared across grid cells).
    const std::string corpus_path =
        evo.corpus_dir.empty()
            ? std::string{}
            : evo.corpus_dir + "/corpus_" + std::to_string(mission.seed) +
                  ".jsonl";
    if (!corpus_path.empty()) {
      for (CorpusEntry& entry : load_corpus(corpus_path)) {
        if (entry.seed.target < 0 || entry.seed.target >= n ||
            entry.seed.victim < 0 || entry.seed.victim >= n ||
            entry.seed.target == entry.seed.victim) {
          continue;
        }
        corpus.admit(std::move(entry));
      }
      if (corpus.size() > 0) {
        SWARMFUZZ_DEBUG("E_Fuzz: resumed {} corpus entries from {}",
                        corpus.size(), corpus_path);
      }
    }

    // Round 0: one t_ca-anchored window per scheduled seed — breadth over
    // pairs first; depth per pair comes from mutation.
    std::vector<MutantCandidate> pending;
    pending.reserve(scheduled.size());
    for (const Seed& seed : scheduled) {
      const std::vector<StartPoint> starts = initial_guesses(clean, seed);
      pending.push_back(MutantCandidate{seed, starts.front().t_start,
                                        starts.front().duration,
                                        MutationOp::kWindowReset});
    }

    math::Rng rng = rng_.split(mission.seed);
    std::size_t pending_next = 0;
    std::size_t parent_cursor = 0;
    std::size_t reseed_cursor = 0;
    bool stop = false;
    while (!stop && result.iterations < config_.mission_budget) {
      // Assemble one batch. Mutation draws happen here, before any
      // evaluation of the batch, so the RNG stream never depends on
      // speculative execution order.
      std::vector<MutantCandidate> batch;
      const int remaining = config_.mission_budget - result.iterations;
      const int batch_size = std::min(std::max(evo.batch_size, 1), remaining);
      while (static_cast<int>(batch.size()) < batch_size) {
        if (pending_next < pending.size()) {
          batch.push_back(pending[pending_next++]);
        } else if (corpus.size() > 0) {
          const auto& entries = corpus.entries();
          const CorpusEntry& parent = entries[parent_cursor++ % entries.size()];
          const CorpusEntry& partner = entries[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(entries.size()) - 1))];
          batch.push_back(mutate(parent, partner, n, clean.end_time, rng,
                                 evo.mutation));
        } else {
          // Unreachable in practice (the first evaluated candidate always
          // lights fresh bins), but guarantees the loop can never starve:
          // fall back to scheduled seeds with uniform windows.
          const Seed& seed = scheduled[reseed_cursor++ % scheduled.size()];
          const double t_s = rng.uniform(0.0, clean.end_time);
          batch.push_back(MutantCandidate{
              seed, t_s, rng.uniform(0.0, clean.end_time - t_s),
              MutationOp::kWindowReset});
        }
        // A victim swap leaves the parent's VDO on the seed; refresh every
        // candidate from the clean run so recorded attempts stay truthful.
        MutantCandidate& c = batch.back();
        c.seed.vdo = clean.recorder.min_obstacle_distance(c.seed.victim);
      }

      // Group by pair/direction in first-appearance order: each group is one
      // evaluate_batch against that pair's objective, so window mutants of
      // one parent fan out over the pool together.
      std::vector<std::pair<Objective*, std::vector<std::size_t>>> groups;
      std::map<Objective*, std::size_t> group_of;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        Objective& objective = objective_for(batch[i].seed);
        const auto [it, inserted] = group_of.try_emplace(&objective, groups.size());
        if (inserted) groups.push_back({&objective, {}});
        groups[it->second].second.push_back(i);
      }

      for (auto& [objective, indices] : groups) {
        if (stop) break;
        std::vector<EvalRequest> requests;
        requests.reserve(indices.size());
        for (const std::size_t i : indices) {
          double t_s = batch[i].t_start;
          double dur = batch[i].duration;
          objective->project(t_s, dur);
          requests.push_back(EvalRequest{t_s, dur});
        }
        objective->evaluate_batch(
            requests, [&](std::size_t j, const ObjectiveEval& eval) {
              const MutantCandidate& candidate = batch[indices[j]];
              ++result.iterations;
              ++result.attempts_tried;
              corpus.admit(CorpusEntry{
                  candidate.seed, requests[j].t_start, requests[j].duration,
                  eval.f,
                  // Cost proxy: the tail simulated under prefix reuse — later
                  // windows are cheaper to re-evaluate, so minimization
                  // prefers them on equal coverage.
                  clean.end_time - requests[j].t_start,
                  novelty_signature(eval, clean.end_time, evo.novelty)});
              const OptimizationResult outcome{.success = eval.success,
                                               .t_start = requests[j].t_start,
                                               .duration = requests[j].duration,
                                               .best_f = eval.f,
                                               .crashed_drone = eval.crashed_drone,
                                               .iterations = 1};
              if (eval.success ||
                  result.attempts.size() < kMaxRecordedAttempts) {
                result.attempts.push_back(SeedAttempt{candidate.seed, outcome});
              }
              if (eval.success) {
                record_success(result, candidate.seed, outcome, clean);
                stop = true;
                return false;
              }
              return result.iterations < config_.mission_budget;
            });
      }

      if (corpus.admissions() - minimized_at >= std::max(evo.minimize_period, 1)) {
        corpus.minimize();
        minimized_at = corpus.admissions();
      }
    }

    // The reported (and persisted) corpus is always minimal.
    corpus.minimize();
    for (const auto& [key, objective] : objectives) {
      result.simulations += objective->evaluations();
      result.sim_steps_executed += objective->sim_steps_executed();
      result.prefix_steps_reused += objective->prefix_steps_reused();
      result.eval_batches += objective->eval_batches();
    }
    result.corpus_size = static_cast<int>(corpus.size());
    result.novelty_bins = corpus.bins_lit();
    result.corpus_admissions = corpus.admissions();
    SWARMFUZZ_DEBUG(
        "E_Fuzz: mission seed {}: {} iterations, corpus {} entries / {} bins "
        "({} admissions)", mission.seed, result.iterations, result.corpus_size,
        result.novelty_bins, result.corpus_admissions);
    if (!corpus_path.empty()) save_corpus(corpus, corpus_path);
  }

 private:
  math::Rng rng_;
};

}  // namespace

std::string_view fuzzer_kind_name(FuzzerKind kind) noexcept {
  switch (kind) {
    case FuzzerKind::kSwarmFuzz: return "SwarmFuzz";
    case FuzzerKind::kRandom: return "R_Fuzz";
    case FuzzerKind::kGradientOnly: return "G_Fuzz";
    case FuzzerKind::kSvgOnly: return "S_Fuzz";
    case FuzzerKind::kEvolutionary: return "E_Fuzz";
  }
  return "?";
}

std::unique_ptr<Fuzzer> make_fuzzer(
    FuzzerKind kind, const FuzzerConfig& config,
    std::shared_ptr<const swarm::SwarmController> controller) {
  switch (kind) {
    case FuzzerKind::kSwarmFuzz:
      return std::make_unique<SwarmFuzzer>(config, std::move(controller));
    case FuzzerKind::kRandom:
      return std::make_unique<RandomFuzzer>(config, std::move(controller));
    case FuzzerKind::kGradientOnly:
      return std::make_unique<GradientOnlyFuzzer>(config, std::move(controller));
    case FuzzerKind::kSvgOnly:
      return std::make_unique<SvgOnlyFuzzer>(config, std::move(controller));
    case FuzzerKind::kEvolutionary:
      return std::make_unique<EvolutionaryFuzzer>(config, std::move(controller));
  }
  throw std::invalid_argument("make_fuzzer: unknown kind");
}

}  // namespace swarmfuzz::fuzz
