#include "fuzz/fuzzer.h"

#include <algorithm>
#include <thread>

#include "fuzz/eval_pool.h"
#include "fuzz/objective.h"
#include "swarm/vasarhelyi.h"
#include "util/logging.h"

namespace swarmfuzz::fuzz {
namespace {

// Cap on recorded failed attempts per mission (successes are always
// recorded): keeps FuzzResult/telemetry bounded for the random fuzzers at
// large budgets while attempts_tried still counts everything.
constexpr std::size_t kMaxRecordedAttempts = 256;

// Resolves sim_threads = 0 (auto) before anything consumes config.sim: the
// simulator and every EvalPool worker are built from it (and FuzzerBase's
// member order initializes simulator_ before eval_threads_). Auto gives the
// intra-tick pool whatever the eval fan-out leaves of the machine, so
// eval x sim never oversubscribes by default; an explicit request passes
// through untouched (oversubscription is then the caller's choice — results
// are identical regardless).
FuzzerConfig resolve_fuzzer_threads(FuzzerConfig config) {
  if (config.sim.sim_threads <= 0) {
    const int eval =
        config.eval_threads > 0 ? config.eval_threads : hardware_threads();
    config.sim.sim_threads =
        std::max(hardware_threads() / std::max(eval, 1), 1);
  }
  return config;
}

// Shared plumbing: clean run, seed scheduling, bookkeeping.
class FuzzerBase : public Fuzzer {
 public:
  FuzzerBase(FuzzerConfig config,
             std::shared_ptr<const swarm::SwarmController> controller)
      : config_(resolve_fuzzer_threads(std::move(config))),
        controller_(controller != nullptr
                        ? std::move(controller)
                        : std::make_shared<swarm::VasarhelyiController>()),
        system_(controller_, config_.comm),
        simulator_(config_.sim),
        eval_threads_(config_.eval_threads > 0 ? config_.eval_threads
                                               : hardware_threads()) {
    // An explicit eval_threads is honoured as-is (oversubscription is the
    // caller's choice; results are identical regardless); only the 0 = auto
    // case consults the hardware. Campaigns pre-split their budget via
    // split_eval_threads before configuring workers.
    if (eval_threads_ > 1) {
      pool_ = std::make_unique<EvalPool>(config_.sim, controller_, config_.comm,
                                         eval_threads_);
    }
  }

  FuzzResult fuzz(const sim::MissionSpec& mission) final {
    FuzzResult result;
    // Arm the execution guards for this whole fuzz() call: the wall-clock
    // deadline is absolute, so the clean run and every objective evaluation
    // draw from the same budget.
    guards_.watchdog = config_.mission_timeout_s > 0.0
                           ? sim::RunWatchdog::with_timeout(config_.mission_timeout_s)
                           : sim::RunWatchdog{};
    guards_.watchdog.max_steps = config_.eval_max_steps;
    guards_.inject = config_.fault_injection;
    // The clean run doubles as the prefix-recording run: with reuse enabled
    // it emits checkpoints that every subsequent objective evaluation of
    // this mission resumes from (the pre-spoof prefix is seed-independent),
    // at zero extra simulation cost.
    prefix_.clear();
    sim::RunHooks hooks;
    hooks.watchdog = guards_.watchdog;
    hooks.inject_fault = guards_.inject;
    if (config_.prefix_reuse) {
      hooks.checkpoints = &prefix_;
      hooks.checkpoint_period = config_.checkpoint_period;
    }
    const sim::RunResult clean = simulator_.run(mission, system_, hooks);
    if (config_.prefix_reuse) {
      // Checkpoints carry no trajectory samples; resumes rebuild each
      // prefix from the clean run's recorder.
      prefix_.set_source(clean.recorder);
    }
    result.simulations = 1;
    result.sim_steps_executed = clean.steps_executed;
    result.clean_mission_time = clean.end_time;
    result.eval_parallelism = eval_threads_;
    if (clean.collided) {
      // The paper's step (1): missions that fail without any attack are not
      // fuzzed.
      result.clean_run_failed = true;
      return result;
    }
    double mission_vdo = std::numeric_limits<double>::infinity();
    for (int i = 0; i < mission.num_drones(); ++i) {
      mission_vdo = std::min(mission_vdo, clean.recorder.min_obstacle_distance(i));
    }
    result.mission_vdo = mission_vdo;

    run_search(mission, clean, result);
    return result;
  }

 protected:
  // Subclass-specific search; fills result.found/plan/victim/iterations.
  virtual void run_search(const sim::MissionSpec& mission,
                          const sim::RunResult& clean, FuzzResult& result) = 0;

  // Initial (t_s, dt) candidates for a seed, anchored on the victim's
  // clean-run closest approach t_ca: one window ending at the encounter, one
  // well before it (attacks that pre-deviate the trajectory), and one short
  // late window. Multi-start matters because far from the collision basin
  // the objective is nearly flat and gradients carry no signal.
  [[nodiscard]] std::vector<StartPoint> initial_guesses(
      const sim::RunResult& clean, const Seed& seed) const {
    const double t_ca = clean.recorder.time_of_min_obstacle_distance(seed.victim);
    const double lead = config_.lead_time;
    const double dur = config_.initial_duration;
    return {
        StartPoint{std::max(t_ca - lead, 0.0), dur},
        StartPoint{std::max(t_ca - 2.0 * lead - dur, 0.0), dur},
        StartPoint{std::max(t_ca - lead / 2.0, 0.0), dur / 2.0},
    };
  }

  void record_success(FuzzResult& result, const Seed& seed,
                      const OptimizationResult& outcome,
                      const sim::RunResult& clean) const {
    result.found = true;
    result.plan = attack::SpoofingPlan{
        .target = seed.target,
        .direction = seed.direction,
        .start_time = outcome.t_start,
        .duration = outcome.duration,
        .distance = config_.spoof_distance,
    };
    result.victim = outcome.crashed_drone >= 0 ? outcome.crashed_drone : seed.victim;
    result.victim_vdo = clean.recorder.min_obstacle_distance(result.victim);
  }

  FuzzerConfig config_;
  std::shared_ptr<const swarm::SwarmController> controller_;
  swarm::FlockingControlSystem system_;
  sim::Simulator simulator_;
  PrefixCache prefix_;   // clean-run checkpoints of the current mission
  EvalGuards guards_{};  // armed at fuzz() entry, shared by all evaluations
  int eval_threads_ = 1;
  std::unique_ptr<EvalPool> pool_;  // non-null iff eval_threads_ > 1
};

// Runs the gradient search over an ordered seed list (SwarmFuzz / G_Fuzz).
class GradientSearchFuzzer : public FuzzerBase {
 public:
  using FuzzerBase::FuzzerBase;

 protected:
  void search_seeds(const sim::MissionSpec& mission, const sim::RunResult& clean,
                    std::vector<Seed> seeds, FuzzResult& result) {
    for (const Seed& seed : seeds) {
      const int remaining = config_.mission_budget - result.iterations;
      if (remaining <= 0) break;
      Objective objective(mission, simulator_, system_, seed,
                          config_.spoof_distance, clean.end_time,
                          config_.prefix_reuse ? &prefix_ : nullptr, &guards_,
                          pool_.get());
      const std::vector<StartPoint> starts = initial_guesses(clean, seed);
      const OptimizationResult outcome =
          optimize(objective, starts, std::min(remaining, config_.per_seed_budget),
                   config_.optimizer);
      ++result.attempts_tried;
      result.iterations += outcome.iterations;
      result.simulations += objective.evaluations();
      result.sim_steps_executed += objective.sim_steps_executed();
      result.prefix_steps_reused += objective.prefix_steps_reused();
      result.eval_batches += objective.eval_batches();
      result.attempts.push_back(SeedAttempt{seed, outcome});
      if (outcome.success) {
        record_success(result, seed, outcome, clean);
        return;
      }
    }
  }
};

class SwarmFuzzer final : public GradientSearchFuzzer {
 public:
  using GradientSearchFuzzer::GradientSearchFuzzer;
  [[nodiscard]] std::string_view name() const noexcept override { return "SwarmFuzz"; }

 protected:
  void run_search(const sim::MissionSpec& mission, const sim::RunResult& clean,
                  FuzzResult& result) override {
    std::vector<Seed> seeds = schedule_seeds(clean, mission, system_,
                                             config_.spoof_distance, config_.seeds);
    SWARMFUZZ_DEBUG("SwarmFuzz: {} scheduled seeds", seeds.size());
    if (seeds.empty()) {
      SWARMFUZZ_WARN(
          "SwarmFuzz: seed scheduling produced no seeds for mission seed {}; "
          "nothing fuzzed", mission.seed);
      result.no_seeds = true;
      return;
    }
    search_seeds(mission, clean, std::move(seeds), result);
  }
};

// G_Fuzz: gradient search on randomly chosen pairs/directions.
class GradientOnlyFuzzer final : public GradientSearchFuzzer {
 public:
  GradientOnlyFuzzer(FuzzerConfig config,
                     std::shared_ptr<const swarm::SwarmController> controller)
      : GradientSearchFuzzer(std::move(config), std::move(controller)),
        rng_(config_.rng_seed) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "G_Fuzz"; }

 protected:
  void run_search(const sim::MissionSpec& mission, const sim::RunResult& clean,
                  FuzzResult& result) override {
    // Same seed count as SwarmFuzz would schedule, but drawn uniformly.
    math::Rng rng = rng_.split(mission.seed);
    std::vector<Seed> seeds;
    const int n = mission.num_drones();
    for (int k = 0; k < config_.seeds.max_seeds; ++k) {
      const int target = rng.uniform_int(0, n - 1);
      int victim = rng.uniform_int(0, n - 2);
      if (victim >= target) ++victim;
      seeds.push_back(Seed{
          .target = target,
          .victim = victim,
          .direction = rng.bernoulli(0.5) ? attack::SpoofDirection::kRight
                                          : attack::SpoofDirection::kLeft,
          .vdo = clean.recorder.min_obstacle_distance(victim),
          .influence = 0.0,
      });
    }
    search_seeds(mission, clean, std::move(seeds), result);
  }

 private:
  math::Rng rng_;
};

// Random-parameter search shared by R_Fuzz and S_Fuzz: each iteration is one
// simulation with random (t_s, dt); only a collision stops it early.
class RandomSearchFuzzer : public FuzzerBase {
 public:
  RandomSearchFuzzer(FuzzerConfig config,
                     std::shared_ptr<const swarm::SwarmController> controller)
      : FuzzerBase(std::move(config), std::move(controller)), rng_(config_.rng_seed) {}

 protected:
  // Draws and evaluates random parameters for `seed`; true on success.
  bool try_random_params(const sim::MissionSpec& mission, const sim::RunResult& clean,
                         const Seed& seed, math::Rng& rng, FuzzResult& result) {
    Objective objective(mission, simulator_, system_, seed, config_.spoof_distance,
                        clean.end_time, config_.prefix_reuse ? &prefix_ : nullptr,
                        &guards_);
    const double t_s = rng.uniform(0.0, clean.end_time);
    const double dt = rng.uniform(0.0, clean.end_time - t_s);
    const ObjectiveEval eval = objective.evaluate(t_s, dt);
    ++result.iterations;
    ++result.attempts_tried;
    result.simulations += objective.evaluations();
    result.sim_steps_executed += objective.sim_steps_executed();
    result.prefix_steps_reused += objective.prefix_steps_reused();
    const OptimizationResult outcome{.success = eval.success,
                                     .t_start = t_s,
                                     .duration = dt,
                                     .best_f = eval.f,
                                     .crashed_drone = eval.crashed_drone,
                                     .iterations = 1};
    // Failed draws are recorded too (capped) so R_Fuzz/S_Fuzz telemetry and
    // the ablation report see every attempt, not just the winning one;
    // successes always record.
    if (eval.success || result.attempts.size() < kMaxRecordedAttempts) {
      result.attempts.push_back(SeedAttempt{seed, outcome});
    }
    if (eval.success) {
      record_success(result, seed, outcome, clean);
      return true;
    }
    return false;
  }

  math::Rng rng_;
};

// R_Fuzz: random pair, direction and parameters every iteration.
class RandomFuzzer final : public RandomSearchFuzzer {
 public:
  using RandomSearchFuzzer::RandomSearchFuzzer;
  [[nodiscard]] std::string_view name() const noexcept override { return "R_Fuzz"; }

 protected:
  void run_search(const sim::MissionSpec& mission, const sim::RunResult& clean,
                  FuzzResult& result) override {
    math::Rng rng = rng_.split(mission.seed);
    const int n = mission.num_drones();
    while (result.iterations < config_.mission_budget) {
      const int target = rng.uniform_int(0, n - 1);
      int victim = rng.uniform_int(0, n - 2);
      if (victim >= target) ++victim;
      const Seed seed{
          .target = target,
          .victim = victim,
          .direction = rng.bernoulli(0.5) ? attack::SpoofDirection::kRight
                                          : attack::SpoofDirection::kLeft,
          .vdo = clean.recorder.min_obstacle_distance(victim),
          .influence = 0.0,
      };
      if (try_random_params(mission, clean, seed, rng, result)) return;
    }
  }
};

// S_Fuzz: SVG-scheduled seeds, random parameters (round-robin over seeds).
class SvgOnlyFuzzer final : public RandomSearchFuzzer {
 public:
  using RandomSearchFuzzer::RandomSearchFuzzer;
  [[nodiscard]] std::string_view name() const noexcept override { return "S_Fuzz"; }

 protected:
  void run_search(const sim::MissionSpec& mission, const sim::RunResult& clean,
                  FuzzResult& result) override {
    const std::vector<Seed> seeds = schedule_seeds(
        clean, mission, system_, config_.spoof_distance, config_.seeds);
    if (seeds.empty()) {
      // Without the marker this mission is indistinguishable from a
      // zero-cost success-free run in campaign summaries.
      SWARMFUZZ_WARN(
          "S_Fuzz: seed scheduling produced no seeds for mission seed {}; "
          "nothing fuzzed", mission.seed);
      result.no_seeds = true;
      return;
    }
    math::Rng rng = rng_.split(mission.seed);
    size_t index = 0;
    while (result.iterations < config_.mission_budget) {
      const Seed& seed = seeds[index % seeds.size()];
      ++index;
      if (try_random_params(mission, clean, seed, rng, result)) return;
    }
  }
};

}  // namespace

std::string_view fuzzer_kind_name(FuzzerKind kind) noexcept {
  switch (kind) {
    case FuzzerKind::kSwarmFuzz: return "SwarmFuzz";
    case FuzzerKind::kRandom: return "R_Fuzz";
    case FuzzerKind::kGradientOnly: return "G_Fuzz";
    case FuzzerKind::kSvgOnly: return "S_Fuzz";
  }
  return "?";
}

std::unique_ptr<Fuzzer> make_fuzzer(
    FuzzerKind kind, const FuzzerConfig& config,
    std::shared_ptr<const swarm::SwarmController> controller) {
  switch (kind) {
    case FuzzerKind::kSwarmFuzz:
      return std::make_unique<SwarmFuzzer>(config, std::move(controller));
    case FuzzerKind::kRandom:
      return std::make_unique<RandomFuzzer>(config, std::move(controller));
    case FuzzerKind::kGradientOnly:
      return std::make_unique<GradientOnlyFuzzer>(config, std::move(controller));
    case FuzzerKind::kSvgOnly:
      return std::make_unique<SvgOnlyFuzzer>(config, std::move(controller));
  }
  throw std::invalid_argument("make_fuzzer: unknown kind");
}

}  // namespace swarmfuzz::fuzz
