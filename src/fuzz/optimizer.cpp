#include "fuzz/optimizer.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "util/logging.h"

namespace swarmfuzz::fuzz {

OptimizationResult optimize(ObjectiveFunction& objective,
                            std::span<const StartPoint> starts, int budget,
                            const OptimizerConfig& config) {
  OptimizationResult result;
  result.best_f = std::numeric_limits<double>::infinity();
  const int iterations = std::min(budget, config.max_iterations);
  if (starts.empty() || iterations <= 0) return result;

  // Multi-start phase: probe every candidate once (submitted as one batch,
  // evaluated concurrently when the objective has a pool); descend from the
  // best. Replay order is submission order, so the winner — and the early
  // return on a success — are the ones the serial loop would pick.
  double t_start = starts.front().t_start;
  double duration = starts.front().duration;
  double start_f = std::numeric_limits<double>::infinity();
  std::vector<EvalRequest> start_batch;
  start_batch.reserve(starts.size());
  for (const StartPoint& start : starts) {
    if (static_cast<int>(start_batch.size()) >= iterations) break;
    double ts = start.t_start;
    double dur = start.duration;
    objective.project(ts, dur);
    start_batch.push_back({.t_start = ts, .duration = dur});
  }
  objective.evaluate_batch(
      start_batch, [&](std::size_t i, const ObjectiveEval& eval) {
        ++result.iterations;
        const double ts = start_batch[i].t_start;
        const double dur = start_batch[i].duration;
        if (eval.f < result.best_f) {
          result.best_f = eval.f;
          result.t_start = ts;
          result.duration = dur;
        }
        if (eval.success) {
          result.success = true;
          result.t_start = ts;
          result.duration = dur;
          result.crashed_drone = eval.crashed_drone;
          return false;
        }
        if (eval.f < start_f) {
          start_f = eval.f;
          t_start = ts;
          duration = dur;
        }
        return true;
      });
  if (result.success) return result;
  objective.project(t_start, duration);

  // The first descent iteration re-evaluates the chosen start; seed the
  // stall detector with infinity so that re-evaluation never counts as a
  // stall.
  double previous_f = std::numeric_limits<double>::infinity();
  int stalls = 0;

  for (int iter = result.iterations; iter < iterations; ++iter) {
    result.iterations = iter + 1;

    // One batch per gradient update: the centre plus the four-point central
    // FD stencil, all *projected up front* so each denominator below can be
    // derived from the coordinates actually evaluated. (Projection clamps
    // against t_mission too, so near the mission end a raw t_s + h probe is
    // silently pulled back — dividing by the nominal 2h there mis-scales
    // the gradient, which is the bug this layout fixes.) The stencil
    // evaluations also count toward success: if any lands on a collision we
    // take it immediately.
    const double h = config.fd_step;
    std::array<EvalRequest, 5> pts;
    pts[0] = {.t_start = t_start, .duration = duration};
    pts[1] = {.t_start = t_start + h, .duration = duration};
    pts[2] = {.t_start = std::max(t_start - h, 0.0), .duration = duration};
    pts[3] = {.t_start = t_start, .duration = duration + h};
    pts[4] = {.t_start = t_start, .duration = std::max(duration - h, 0.0)};
    for (EvalRequest& p : pts) objective.project(p.t_start, p.duration);

    std::array<double, 5> f{};
    bool stop = false;
    objective.evaluate_batch(pts, [&](std::size_t i, const ObjectiveEval& e) {
      f[i] = e.f;
      if (i == 0) {
        if (e.f < result.best_f) {
          result.best_f = e.f;
          result.t_start = t_start;
          result.duration = duration;
        }
        if (e.success) {
          result.success = true;
          result.t_start = t_start;
          result.duration = duration;
          result.crashed_drone = e.crashed_drone;
          stop = true;
          return false;
        }
        // Stall detection: converged to a positive minimum -> abandon the
        // seed (the fuzzer moves on; this is what keeps SwarmFuzz's runtime
        // ~3x below the random fuzzers in Table III).
        if (previous_f - e.f < config.stall_tolerance) {
          if (++stalls >= config.stall_patience) {
            result.stalled = true;
            stop = true;
            return false;
          }
        } else {
          stalls = 0;
        }
        previous_f = e.f;
        return true;
      }
      if (e.success) {
        result.success = true;
        result.t_start = pts[i].t_start;
        result.duration = pts[i].duration;
        result.best_f = e.f;
        result.crashed_drone = e.crashed_drone;
        stop = true;
        return false;
      }
      return true;
    });
    if (stop) return result;

    // Central finite differences over the projected stencil: denominators
    // are the distances between the points that were actually simulated,
    // not the nominal 2h.
    const double grad_ts =
        (f[1] - f[2]) / std::max(pts[1].t_start - pts[2].t_start, 1e-9);
    const double grad_dt =
        (f[3] - f[4]) / std::max(pts[3].duration - pts[4].duration, 1e-9);

    // Degenerate gradient: the attack window has no effect; abandon *before*
    // stepping. Updating and re-projecting first would leave (t_start,
    // duration) at a point no evaluation ever visited — any caller reading
    // the abandoned center would be looking at a fabricated coordinate.
    if (std::abs(grad_ts) < 1e-6 && std::abs(grad_dt) < 1e-6) {
      SWARMFUZZ_TRACE("opt iter={} f={:.3f} degenerate gradient, abandoning",
                      iter, f[0]);
      result.stalled = true;
      return result;
    }

    const double step_ts =
        std::clamp(config.learning_rate * grad_ts, -config.max_step, config.max_step);
    const double step_dt =
        std::clamp(config.learning_rate * grad_dt, -config.max_step, config.max_step);
    t_start = std::max(t_start - step_ts, 0.0);   // Eq. (1a)
    duration = std::max(duration - step_dt, 0.0); // Eq. (1b)
    objective.project(t_start, duration);

    SWARMFUZZ_TRACE("opt iter={} f={:.3f} t_s={:.2f} dt={:.2f} grad=({:.3f},{:.3f})",
                    iter, f[0], t_start, duration, grad_ts, grad_dt);
  }
  return result;
}

}  // namespace swarmfuzz::fuzz
