#include "fuzz/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "util/logging.h"

namespace swarmfuzz::fuzz {

OptimizationResult optimize(ObjectiveFunction& objective,
                            std::span<const StartPoint> starts, int budget,
                            const OptimizerConfig& config) {
  OptimizationResult result;
  result.best_f = std::numeric_limits<double>::infinity();
  const int iterations = std::min(budget, config.max_iterations);
  if (starts.empty() || iterations <= 0) return result;

  // Multi-start phase: probe every candidate once; descend from the best.
  double t_start = starts.front().t_start;
  double duration = starts.front().duration;
  double start_f = std::numeric_limits<double>::infinity();
  for (const StartPoint& start : starts) {
    if (result.iterations >= iterations) break;
    ++result.iterations;
    double ts = start.t_start;
    double dur = start.duration;
    objective.project(ts, dur);
    const ObjectiveEval eval = objective.evaluate(ts, dur);
    if (eval.f < result.best_f) {
      result.best_f = eval.f;
      result.t_start = ts;
      result.duration = dur;
    }
    if (eval.success) {
      result.success = true;
      result.t_start = ts;
      result.duration = dur;
      result.crashed_drone = eval.crashed_drone;
      return result;
    }
    if (eval.f < start_f) {
      start_f = eval.f;
      t_start = ts;
      duration = dur;
    }
  }
  objective.project(t_start, duration);

  // The first descent iteration re-evaluates the chosen start; seed the
  // stall detector with infinity so that re-evaluation never counts as a
  // stall.
  double previous_f = std::numeric_limits<double>::infinity();
  int stalls = 0;

  for (int iter = result.iterations; iter < iterations; ++iter) {
    result.iterations = iter + 1;
    const ObjectiveEval eval = objective.evaluate(t_start, duration);
    if (eval.f < result.best_f) {
      result.best_f = eval.f;
      result.t_start = t_start;
      result.duration = duration;
    }
    if (eval.success) {
      result.success = true;
      result.t_start = t_start;
      result.duration = duration;
      result.crashed_drone = eval.crashed_drone;
      return result;
    }

    // Stall detection: converged to a positive minimum -> abandon the seed
    // (the fuzzer moves on; this is what keeps SwarmFuzz's runtime ~3x below
    // the random fuzzers in Table III).
    if (previous_f - eval.f < config.stall_tolerance) {
      if (++stalls >= config.stall_patience) {
        result.stalled = true;
        return result;
      }
    } else {
      stalls = 0;
    }
    previous_f = eval.f;

    // Central finite differences. The stencil evaluations also count toward
    // success: if any lands on a collision we take it immediately.
    const double h = config.fd_step;
    const auto probe = [&](double ts, double dt) -> double {
      const ObjectiveEval e = objective.evaluate(ts, dt);
      if (e.success && !result.success) {
        result.success = true;
        result.t_start = ts;
        result.duration = dt;
        result.best_f = e.f;
        result.crashed_drone = e.crashed_drone;
      }
      return e.f;
    };
    const double f_ts_plus = probe(t_start + h, duration);
    if (result.success) return result;
    const double f_ts_minus = probe(std::max(t_start - h, 0.0), duration);
    if (result.success) return result;
    const double f_dt_plus = probe(t_start, duration + h);
    if (result.success) return result;
    const double f_dt_minus = probe(t_start, std::max(duration - h, 0.0));
    if (result.success) return result;

    const double denom_ts = t_start + h - std::max(t_start - h, 0.0);
    const double denom_dt = duration + h - std::max(duration - h, 0.0);
    const double grad_ts = (f_ts_plus - f_ts_minus) / std::max(denom_ts, 1e-9);
    const double grad_dt = (f_dt_plus - f_dt_minus) / std::max(denom_dt, 1e-9);

    const double step_ts =
        std::clamp(config.learning_rate * grad_ts, -config.max_step, config.max_step);
    const double step_dt =
        std::clamp(config.learning_rate * grad_dt, -config.max_step, config.max_step);
    t_start = std::max(t_start - step_ts, 0.0);   // Eq. (1a)
    duration = std::max(duration - step_dt, 0.0); // Eq. (1b)
    objective.project(t_start, duration);

    SWARMFUZZ_TRACE("opt iter={} f={:.3f} t_s={:.2f} dt={:.2f} grad=({:.3f},{:.3f})",
                    iter, eval.f, t_start, duration, grad_ts, grad_dt);

    // Degenerate gradient: the attack window has no effect; abandon.
    if (std::abs(grad_ts) < 1e-6 && std::abs(grad_dt) < 1e-6) {
      result.stalled = true;
      return result;
    }
  }
  return result;
}

}  // namespace swarmfuzz::fuzz
