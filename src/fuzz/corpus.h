// E_Fuzz corpus: the persistent population of the evolutionary fuzzer
// (DESIGN.md section 17).
//
// Classic coverage-guided fuzzers admit an input to the corpus when it
// exercises a new branch. A drone-swarm mission has no branch map, so the
// coverage analogue is *behavioral*: every attacked run is summarized into a
// signature of binned trajectory features — per-drone obstacle clearance,
// the mission-time fraction of the tightest approach, the near-miss count,
// the tightest swarm packing, and the objective value — and a candidate
// enters the corpus only when it lights a bin no current member has lit.
// Periodic minimization (the afl-cmin analogue) keeps, for each lit bin, the
// cheapest entry covering it, so the population stays small and biased
// toward windows that are cheap to re-simulate under prefix reuse.
//
// Everything here is deterministic: signatures are pure functions of a
// deterministic simulation's recorder, admission depends only on admission
// order, and minimization breaks cost ties by admission order.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/objective.h"
#include "fuzz/seeds.h"

namespace swarmfuzz::fuzz {

// Behavioral-novelty binning. `bins` is the resolution of every bucketed
// axis; the *_bin_m widths translate meters into buckets. Coarser bins mean
// a smaller corpus and faster saturation; finer bins keep more diversity.
struct NoveltyConfig {
  int bins = 16;                 // buckets per feature axis
  double clearance_bin_m = 2.0;  // meters per obstacle-clearance bucket
  double separation_bin_m = 2.0; // meters per swarm-packing bucket
  double near_miss_m = 5.0;      // clearance below this counts as a near miss
};

// Bins the evaluation's behavioral features into a sorted, duplicate-free
// signature of bin ids. `t_mission` scales the time-of-tightest-approach
// axis. Non-finite features bin deterministically (NaN lowest, +inf top).
[[nodiscard]] std::vector<std::uint32_t> novelty_signature(
    const ObjectiveEval& eval, double t_mission, const NoveltyConfig& config);

// One corpus member: a seed pair plus a *projected* spoofing window, the
// objective value it scored, a deterministic evaluation-cost proxy (the
// simulated tail length under prefix reuse, in mission seconds), and the
// behavioral signature its evaluation produced.
struct CorpusEntry {
  Seed seed;
  double t_start = 0.0;
  double duration = 0.0;
  double f = 0.0;
  double cost = 0.0;
  std::vector<std::uint32_t> signature;
};

class Corpus {
 public:
  explicit Corpus(int max_entries = 256) : max_entries_(max_entries) {}

  // Admits `entry` iff its signature lights at least one bin no current
  // member has lit; returns whether it was admitted. Exceeding max_entries
  // triggers an immediate minimization (coverage is never dropped).
  bool admit(CorpusEntry entry);

  // afl-cmin analogue: keeps, for each lit bin, the cheapest entry covering
  // it (ties broken by admission order); everything else is dropped. The
  // union of lit bins is invariant under minimization.
  void minimize();

  [[nodiscard]] const std::vector<CorpusEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  // Distinct novelty bins lit across every admission (minimization keeps
  // this invariant).
  [[nodiscard]] int bins_lit() const noexcept {
    return static_cast<int>(lit_.size());
  }
  // Total entries ever admitted, including those minimized away since.
  [[nodiscard]] int admissions() const noexcept { return admissions_; }

 private:
  int max_entries_;
  std::vector<CorpusEntry> entries_;  // in admission order
  std::set<std::uint32_t> lit_;       // union of member signatures
  int admissions_ = 0;
};

// --- persistence ------------------------------------------------------------
//
// A corpus file is CRC-framed JSONL, one entry per line, using the same
// framing as every other durable stream (fuzz/telemetry.h): doubles
// round-trip exactly, a torn final line is healed on load, and a corrupt
// complete line throws.

// One CRC-framed JSONL line (no trailing newline).
[[nodiscard]] std::string to_jsonl(const CorpusEntry& entry);
[[nodiscard]] CorpusEntry corpus_entry_from_json(std::string_view line);

// Rewrites `path` with the corpus's entries via write-to-temp + atomic
// rename, so a crash mid-save never clobbers the previous corpus. Throws
// util::IoError on unrecoverable I/O failure.
void save_corpus(const Corpus& corpus, const std::string& path);

// Loads every well-formed entry. A torn final line — the crash signature —
// is skipped with a warning; a corrupt complete line throws
// std::runtime_error. A missing file yields an empty vector.
[[nodiscard]] std::vector<CorpusEntry> load_corpus(const std::string& path);

}  // namespace swarmfuzz::fuzz
