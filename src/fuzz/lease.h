// Durable work leases for sharded (multi-process) campaigns.
//
// A coordinator carves the campaign's mission indices into contiguous
// ranges — the leases — and shard workers claim them through files in a
// shared service directory. The protocol is designed so that killing any
// worker at any instruction (including SIGKILL mid-write) loses no missions
// and duplicates none in the merged report:
//
//   lease-<k>.claim   Exclusive-create claim file, appended-to JSONL of
//                     CRC-framed LeaseClaimRecords (the initial claim plus
//                     one renewal per heartbeat). The last *valid* record
//                     holds the current owner and expiry; a torn trailing
//                     record (SIGKILL mid-renew) simply falls back to the
//                     previous one, which expires on schedule.
//   lease-<k>.done    Atomically-written completion marker (exists = every
//                     mission of the range has a durable shard record).
//
// Claiming: try to create the claim file exclusively (O_EXCL — a single
// winner even across racing processes). If it already exists and its latest
// valid record is unexpired under another owner, the claim is rejected. If
// it is expired (the owner died or stalled), the reclaimer renames the file
// aside to `lease-<k>.claim.dead.<nonce>` — rename is atomic, so exactly one
// of any number of racing reclaimers wins — and then competes again on the
// fresh exclusive create. Mission results are never stored in the claim
// file, so reclamation never discards work: the per-lease shard telemetry
// file (shard_merge.h) doubles as the sub-range checkpoint the new owner
// resumes from.
//
// Adaptive re-carving (coordinator.h) extends the carve with a durable
// ledger so a straggler's unfinished tail can be split into fresh
// sub-leases without breaking any of the above:
//
//   lease-<k>.recarved   Exclusive-create retirement marker: lease <k> must
//                        never be (re)claimed again. Created first, so a
//                        coordinator crash mid-re-carve can only leave a
//                        marker without ledger entry — healed by a later
//                        coordinator pass, never by double-claiming.
//   recarve.jsonl        Append-only CRC-framed ledger of RecarveRecords.
//                        Each entry retires its parent lease and declares
//                        the sub-leases (fresh, never-reused ids) covering
//                        the parent's unfinished tail. load_lease_table()
//                        folds base carve + ledger into the live lease set.
//
// A retired lease's already-recorded prefix stays in its shard file and
// merges normally; if the straggler revives and appends more records they
// are keep-first duplicates of the sub-lease owners' identical outcomes
// (mission results depend only on (config, seed, index)), so the
// bit-identical merge guarantee survives re-carving.
//
// Time is injectable (milliseconds since an arbitrary epoch) so expiry and
// reclamation are unit-testable without sleeping through real TTLs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace swarmfuzz::fuzz {

// One lease: the contiguous mission-index range [begin, end).
struct LeaseRange {
  int lease_id = -1;
  int begin = 0;
  int end = 0;

  [[nodiscard]] int size() const noexcept { return end - begin; }
};

// Carves `num_missions` indices into `num_leases` contiguous ranges of
// near-equal size (the first `num_missions % num_leases` ranges are one
// longer). `num_leases` is clamped to [1, num_missions]. Throws
// std::invalid_argument when num_missions < 1.
[[nodiscard]] std::vector<LeaseRange> carve_leases(int num_missions,
                                                   int num_leases);

// One CRC-framed line of a claim file: who holds the lease and until when.
struct LeaseClaimRecord {
  int schema_version = 1;
  int lease_id = -1;
  std::string owner;               // worker identity (unique per process)
  std::int64_t expires_at_ms = 0;  // clock ms at which the claim lapses
};

[[nodiscard]] std::string to_jsonl(const LeaseClaimRecord& record);
[[nodiscard]] LeaseClaimRecord lease_claim_from_json(std::string_view line);

// One CRC-framed ledger entry: lease `parent` is retired and replaced by
// `subs` (fresh sub-leases covering its unfinished tail). parent == -1 is
// the hole-recovery form (resume_holes): no lease is retired, the subs
// cover mission ranges that lost their records. Empty `subs` is legal —
// a parent whose range was fully recorded is retired with no successor.
struct RecarveRecord {
  int schema_version = 1;
  int parent = -1;
  std::vector<LeaseRange> subs;
};

[[nodiscard]] std::string to_jsonl(const RecarveRecord& record);
[[nodiscard]] RecarveRecord recarve_record_from_json(std::string_view line);

[[nodiscard]] std::string recarve_ledger_path(const std::string& dir);
[[nodiscard]] std::string recarved_marker_path(const std::string& dir,
                                               int lease_id);

// Loads the ledger records in order; same torn-tail tolerance as telemetry
// streams (a torn final line is a coordinator that died mid-append — its
// retirement marker without entry is healed by the next coordinator pass).
[[nodiscard]] std::vector<RecarveRecord> load_recarve_ledger(
    const std::string& path);

// The live lease set: base carve folded with the recarve ledger.
struct LeaseTable {
  std::vector<LeaseRange> active;   // claimable (base minus retired, plus subs)
  std::vector<LeaseRange> retired;  // recarved parents (never claimable again)
  int next_lease_id = 0;            // first id no lease has ever used
};

// Base carve + ledger -> live leases. Duplicate retirements of one parent
// are keep-first (the heal path may re-append); a sub-lease id collision or
// an invalid range throws — that is ledger corruption, not a race.
[[nodiscard]] LeaseTable load_lease_table(const std::string& dir,
                                          int num_missions, int num_leases);

class LeaseStore {
 public:
  // Millisecond clock; the default reads std::chrono::system_clock. Tests
  // inject a fake to step through expiry deterministically.
  using Clock = std::function<std::int64_t()>;

  // `dir` must exist. `owner` identifies this worker in claim records; two
  // stores must never share an owner string (uniqueness is what lets a
  // worker recognise its own claims after a restart race).
  LeaseStore(std::string dir, std::int64_t ttl_ms, std::string owner,
             Clock clock = {});

  // Claims `lease_id` for `owner`: true when this store now holds an
  // unexpired claim (including re-entry on a claim it already holds), false
  // when the lease is done or validly held by another owner. Expired claims
  // are reclaimed as described in the file header. Throws on I/O errors.
  [[nodiscard]] bool try_claim(int lease_id);

  // Appends a renewal record extending the claim to now + ttl. Returns false
  // (without writing) when the claim file's latest valid record is no longer
  // ours — the fencing signal that the lease expired and was reclaimed while
  // we were running; the caller must stop working on the lease.
  [[nodiscard]] bool renew(int lease_id);

  // True while the claim file's latest valid record names us, unexpired.
  [[nodiscard]] bool holds(int lease_id) const;

  // Writes the completion marker (atomic write-then-rename).
  void mark_done(int lease_id);
  [[nodiscard]] bool is_done(int lease_id) const;

  // True when the lease's retirement marker exists (its tail was re-carved
  // into sub-leases); try_claim refuses retired leases unconditionally.
  [[nodiscard]] bool is_retired(int lease_id) const;

  // Read-only probe of the claim file's latest valid record (lease_id < 0:
  // no valid record). For coordinators and status reports; never writes.
  [[nodiscard]] LeaseClaimRecord peek_claim(int lease_id) const;

  // Forcibly fences whoever holds the lease by renaming the claim file
  // aside (the same mechanism expiry reclamation uses): the holder's next
  // renew() returns false and it abandons the range. Returns whether a
  // claim file existed to fence. The coordinator calls this after retiring
  // a straggler so its in-flight mission result is dropped, not recorded.
  bool fence_claim(int lease_id);

  // Test hook: runs before every claim-file append (initial claim and each
  // renewal); a hook that throws util::IoError simulates transport failure.
  void set_append_hook_for_test(std::function<void()> hook);

  [[nodiscard]] std::string claim_path(int lease_id) const;
  [[nodiscard]] std::string done_path(int lease_id) const;

  [[nodiscard]] std::int64_t ttl_ms() const noexcept { return ttl_ms_; }
  [[nodiscard]] const std::string& owner() const noexcept { return owner_; }
  [[nodiscard]] std::int64_t now_ms() const { return clock_(); }

 private:
  // Latest valid (CRC-passing, parseable) record of a claim file; nullopt
  // semantics via lease_id < 0 when the file has no valid record at all —
  // which is treated as expired (a torn initial claim is a dead claimant).
  [[nodiscard]] LeaseClaimRecord latest_claim(const std::string& path) const;

  // Appends one claim/renewal record, via the append hook when set.
  void append_claim(const std::string& path, const LeaseClaimRecord& record);

  std::string dir_;
  std::int64_t ttl_ms_;
  std::string owner_;
  Clock clock_;
  int reclaim_nonce_ = 0;  // disambiguates this store's dead-file names
  std::function<void()> append_hook_;
};

// Path of lease `lease_id`'s shard telemetry file inside `dir` — the
// per-lease JSONL stream of TelemetryRecords that doubles as the sub-range
// checkpoint a reclaiming owner resumes from (see shard_merge.h).
[[nodiscard]] std::string shard_telemetry_path(const std::string& dir,
                                               int lease_id);

}  // namespace swarmfuzz::fuzz
