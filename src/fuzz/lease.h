// Durable work leases for sharded (multi-process) campaigns.
//
// A coordinator carves the campaign's mission indices into contiguous
// ranges — the leases — and shard workers claim them through files in a
// shared service directory. The protocol is designed so that killing any
// worker at any instruction (including SIGKILL mid-write) loses no missions
// and duplicates none in the merged report:
//
//   lease-<k>.claim   Exclusive-create claim file, appended-to JSONL of
//                     CRC-framed LeaseClaimRecords (the initial claim plus
//                     one renewal per heartbeat). The last *valid* record
//                     holds the current owner and expiry; a torn trailing
//                     record (SIGKILL mid-renew) simply falls back to the
//                     previous one, which expires on schedule.
//   lease-<k>.done    Atomically-written completion marker (exists = every
//                     mission of the range has a durable shard record).
//
// Claiming: try to create the claim file exclusively (O_EXCL — a single
// winner even across racing processes). If it already exists and its latest
// valid record is unexpired under another owner, the claim is rejected. If
// it is expired (the owner died or stalled), the reclaimer renames the file
// aside to `lease-<k>.claim.dead.<nonce>` — rename is atomic, so exactly one
// of any number of racing reclaimers wins — and then competes again on the
// fresh exclusive create. Mission results are never stored in the claim
// file, so reclamation never discards work: the per-lease shard telemetry
// file (shard_merge.h) doubles as the sub-range checkpoint the new owner
// resumes from.
//
// Time is injectable (milliseconds since an arbitrary epoch) so expiry and
// reclamation are unit-testable without sleeping through real TTLs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace swarmfuzz::fuzz {

// One lease: the contiguous mission-index range [begin, end).
struct LeaseRange {
  int lease_id = -1;
  int begin = 0;
  int end = 0;

  [[nodiscard]] int size() const noexcept { return end - begin; }
};

// Carves `num_missions` indices into `num_leases` contiguous ranges of
// near-equal size (the first `num_missions % num_leases` ranges are one
// longer). `num_leases` is clamped to [1, num_missions]. Throws
// std::invalid_argument when num_missions < 1.
[[nodiscard]] std::vector<LeaseRange> carve_leases(int num_missions,
                                                   int num_leases);

// One CRC-framed line of a claim file: who holds the lease and until when.
struct LeaseClaimRecord {
  int schema_version = 1;
  int lease_id = -1;
  std::string owner;               // worker identity (unique per process)
  std::int64_t expires_at_ms = 0;  // clock ms at which the claim lapses
};

[[nodiscard]] std::string to_jsonl(const LeaseClaimRecord& record);
[[nodiscard]] LeaseClaimRecord lease_claim_from_json(std::string_view line);

class LeaseStore {
 public:
  // Millisecond clock; the default reads std::chrono::system_clock. Tests
  // inject a fake to step through expiry deterministically.
  using Clock = std::function<std::int64_t()>;

  // `dir` must exist. `owner` identifies this worker in claim records; two
  // stores must never share an owner string (uniqueness is what lets a
  // worker recognise its own claims after a restart race).
  LeaseStore(std::string dir, std::int64_t ttl_ms, std::string owner,
             Clock clock = {});

  // Claims `lease_id` for `owner`: true when this store now holds an
  // unexpired claim (including re-entry on a claim it already holds), false
  // when the lease is done or validly held by another owner. Expired claims
  // are reclaimed as described in the file header. Throws on I/O errors.
  [[nodiscard]] bool try_claim(int lease_id);

  // Appends a renewal record extending the claim to now + ttl. Returns false
  // (without writing) when the claim file's latest valid record is no longer
  // ours — the fencing signal that the lease expired and was reclaimed while
  // we were running; the caller must stop working on the lease.
  [[nodiscard]] bool renew(int lease_id);

  // True while the claim file's latest valid record names us, unexpired.
  [[nodiscard]] bool holds(int lease_id) const;

  // Writes the completion marker (atomic write-then-rename).
  void mark_done(int lease_id);
  [[nodiscard]] bool is_done(int lease_id) const;

  [[nodiscard]] std::string claim_path(int lease_id) const;
  [[nodiscard]] std::string done_path(int lease_id) const;

  [[nodiscard]] std::int64_t ttl_ms() const noexcept { return ttl_ms_; }
  [[nodiscard]] const std::string& owner() const noexcept { return owner_; }
  [[nodiscard]] std::int64_t now_ms() const { return clock_(); }

 private:
  // Latest valid (CRC-passing, parseable) record of a claim file; nullopt
  // semantics via lease_id < 0 when the file has no valid record at all —
  // which is treated as expired (a torn initial claim is a dead claimant).
  [[nodiscard]] LeaseClaimRecord latest_claim(const std::string& path) const;

  std::string dir_;
  std::int64_t ttl_ms_;
  std::string owner_;
  Clock clock_;
  int reclaim_nonce_ = 0;  // disambiguates this store's dead-file names
};

// Path of lease `lease_id`'s shard telemetry file inside `dir` — the
// per-lease JSONL stream of TelemetryRecords that doubles as the sub-range
// checkpoint a reclaiming owner resumes from (see shard_merge.h).
[[nodiscard]] std::string shard_telemetry_path(const std::string& dir,
                                               int lease_id);

}  // namespace swarmfuzz::fuzz
