#include "fuzz/svg.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/geometry.h"
#include "swarm/spatial_grid.h"

namespace swarmfuzz::fuzz {

graph::Digraph build_svg(const sim::WorldSnapshot& snapshot,
                         const sim::MissionSpec& mission,
                         const swarm::FlockingControlSystem& system,
                         attack::SpoofDirection direction, double distance,
                         const SvgConfig& config) {
  const int n = snapshot.size();
  graph::Digraph svg(n);
  if (mission.obstacles.empty()) return svg;

  // World-frame spoofing offset for this direction (same mapping as the
  // attack itself uses).
  const math::Vec3 left = math::lateral_left(sim::mission_axis(mission));
  const math::Vec3 spoof_offset =
      left * (-static_cast<double>(attack::direction_sign(direction)) * distance);

  // Baseline: what every drone would do right now, unspoofed. The probes
  // are whole-broadcast and index-based (drone i is broadcast slot i here
  // by construction), which is exactly the controller's batch entry point —
  // bit-identical to one probe per drone, and grid-accelerated for large
  // swarms.
  std::vector<math::Vec3> base_velocity(static_cast<size_t>(n));
  system.controller().desired_velocity_all(snapshot, mission, base_velocity);

  // Spoof-probe culling: if drone j sits (spoofed and unspoofed) beyond the
  // controller's influence radius from drone i, i's probed velocity is
  // bit-identical to its baseline, so spoofed_rate == base_rate and — with
  // a non-negative influence threshold — no edge can appear. Probing only
  // the i's the grid gathers within influence + spoof-shift of j therefore
  // changes nothing in the output graph. A non-finite radius (controller
  // with unbounded influence, e.g. fewer members than k_att) disables
  // culling, as does a negative threshold or an unbuildable grid.
  swarm::SpatialGrid grid;
  bool cull = false;
  double cull_radius = 0.0;
  if (config.influence_threshold >= 0.0 && swarm::spatial_grid_wanted(n)) {
    const double influence =
        system.controller().probe_influence_radius(snapshot, mission);
    if (std::isfinite(influence)) {
      cull_radius = influence + spoof_offset.norm();
      grid.build(std::span<const math::Vec3>(snapshot.gps_position),
                 std::max(cull_radius, 1e-3));
      cull = grid.valid();
    }
  }

  // One reusable counterfactual snapshot: spoof drone j's broadcast position
  // in place, probe, then restore — instead of re-copying the snapshot per j.
  sim::WorldSnapshot spoofed = snapshot;
  std::vector<int> probe_targets;
  for (int j = 0; j < n; ++j) {
    spoofed.gps_position[static_cast<size_t>(j)] += spoof_offset;

    probe_targets.clear();
    if (cull) {
      grid.gather(snapshot.gps_position[static_cast<size_t>(j)], cull_radius,
                  probe_targets);
    } else {
      for (int i = 0; i < n; ++i) probe_targets.push_back(i);
    }
    for (const int i : probe_targets) {
      if (i == j) continue;
      const math::Vec3& pos_i = snapshot.gps_position[static_cast<size_t>(i)];
      const auto hit = mission.obstacles.nearest(pos_i);
      if (!hit) continue;

      const math::Vec3 spoofed_velocity =
          system.probe_desired_velocity_at(i, spoofed, mission);
      const double base_rate =
          math::radial_speed_xy(pos_i, mission.obstacles.at(hit->index).center,
                                base_velocity[static_cast<size_t>(i)]);
      const double spoofed_rate = math::radial_speed_xy(
          pos_i, mission.obstacles.at(hit->index).center, spoofed_velocity);

      // Edge i -> j iff spoofing j makes i approach the obstacle faster.
      if (spoofed_rate < base_rate - config.influence_threshold) {
        const double weight = math::cos_angle_xy(
            pos_i, snapshot.gps_position[static_cast<size_t>(j)], left);
        // A zero-weight edge carries no PageRank mass; keep a small floor so
        // the malicious link itself is never lost from the graph.
        svg.add_edge(i, j, std::max(weight, 1e-3));
      }
    }
    spoofed.gps_position[static_cast<size_t>(j)] =
        snapshot.gps_position[static_cast<size_t>(j)];
  }
  return svg;
}

}  // namespace swarmfuzz::fuzz
