#include "fuzz/svg.h"

#include "math/geometry.h"

namespace swarmfuzz::fuzz {

graph::Digraph build_svg(const sim::WorldSnapshot& snapshot,
                         const sim::MissionSpec& mission,
                         const swarm::FlockingControlSystem& system,
                         attack::SpoofDirection direction, double distance,
                         const SvgConfig& config) {
  const int n = static_cast<int>(snapshot.drones.size());
  graph::Digraph svg(n);
  if (mission.obstacles.empty()) return svg;

  // World-frame spoofing offset for this direction (same mapping as the
  // attack itself uses).
  const math::Vec3 left = math::lateral_left(sim::mission_axis(mission));
  const math::Vec3 spoof_offset =
      left * (-static_cast<double>(attack::direction_sign(direction)) * distance);

  // Baseline: what every drone would do right now, unspoofed. Probes are
  // index-based: drone i is snapshot.drones[i] here by construction, so no
  // per-probe id rescan is needed.
  std::vector<math::Vec3> base_velocity(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    base_velocity[static_cast<size_t>(i)] =
        system.probe_desired_velocity_at(i, snapshot, mission);
  }

  // One reusable counterfactual snapshot: spoof drone j's broadcast position
  // in place, probe, then restore — instead of re-copying the snapshot per j.
  sim::WorldSnapshot spoofed = snapshot;
  for (int j = 0; j < n; ++j) {
    spoofed.drones[static_cast<size_t>(j)].gps_position += spoof_offset;

    for (int i = 0; i < n; ++i) {
      if (i == j) continue;
      const sim::DroneObservation& obs_i = snapshot.drones[static_cast<size_t>(i)];
      const auto hit = mission.obstacles.nearest(obs_i.gps_position);
      if (!hit) continue;

      const math::Vec3 spoofed_velocity =
          system.probe_desired_velocity_at(i, spoofed, mission);
      const double base_rate =
          math::radial_speed_xy(obs_i.gps_position, mission.obstacles.at(hit->index).center,
                                base_velocity[static_cast<size_t>(i)]);
      const double spoofed_rate = math::radial_speed_xy(
          obs_i.gps_position, mission.obstacles.at(hit->index).center, spoofed_velocity);

      // Edge i -> j iff spoofing j makes i approach the obstacle faster.
      if (spoofed_rate < base_rate - config.influence_threshold) {
        const double weight = math::cos_angle_xy(
            obs_i.gps_position, snapshot.drones[static_cast<size_t>(j)].gps_position,
            left);
        // A zero-weight edge carries no PageRank mass; keep a small floor so
        // the malicious link itself is never lost from the graph.
        svg.add_edge(i, j, std::max(weight, 1e-3));
      }
    }
    spoofed.drones[static_cast<size_t>(j)].gps_position =
        snapshot.drones[static_cast<size_t>(j)].gps_position;
  }
  return svg;
}

}  // namespace swarmfuzz::fuzz
