// Campaign telemetry: one machine-readable record per completed mission.
//
// Records serve two purposes:
//   1. Observability — a campaign is no longer a black box; every mission
//      outcome (seed, fuzzer, status, fault, iterations, simulations,
//      wall-clock) streams to a JSONL sink as it completes.
//   2. Durability — when `CampaignConfig.checkpoint_path` is set the same
//      records double as a crash-safe checkpoint: each line is written and
//      flushed in a single call, carries a CRC-32 of its own payload (a
//      trailing `"crc"` member), and a killed campaign resumes by replaying
//      the file and running only the missing mission indices. A torn final
//      line — the crash signature — is detected by the framing and skipped.
//
// Serialization is exact: doubles are written with %.17g (see
// JsonWriter::value_exact) so a record parsed back reconstructs the
// original FuzzResult bit-for-bit. The only non-deterministic field is
// wall_time_s, which is measured, not computed.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/fuzzer.h"
#include "sim/fault.h"

namespace swarmfuzz::fuzz {

// One completed mission, as persisted to a telemetry/checkpoint stream.
struct TelemetryRecord {
  int schema_version = 1;
  int mission_index = -1;         // index within the campaign [0, num_missions)
  std::string fuzzer;             // fuzzer_kind_name() of the campaign's kind
  std::uint64_t mission_seed = 0; // final (possibly retried) mission seed
  double wall_time_s = 0.0;       // wall-clock spent on this mission
  // Shard (lease) id the record came from, for sharded campaigns; -1 for
  // single-process runs. Written only when >= 0, so single-process records
  // stay byte-identical with pre-shard-schema files.
  int shard = -1;
  FuzzResult result;              // full outcome, including seed attempts
  // Fault containment (DESIGN.md section 11). kNone: the mission fuzzed
  // normally. Any other kind: the supervisor exhausted its fault retries and
  // recorded the mission as faulted (result is then default-constructed,
  // except kCleanRunFailed which keeps the clean-run accounting). Written
  // only when != kNone, so fault-free records are byte-identical with
  // pre-fault-schema files; on parse, records without the field derive
  // kCleanRunFailed from result.clean_run_failed.
  sim::FaultKind fault = sim::FaultKind::kNone;
  std::string fault_detail;       // human-readable cause (empty when kNone)
  int fault_attempts = 0;         // fault retries consumed on this mission
};

// One JSONL line (no trailing newline), CRC-framed: the final member is
// `"crc":"<8 lowercase hex>"`, the CRC-32 of the line with that member
// removed. Doubles round-trip exactly.
[[nodiscard]] std::string to_jsonl(const TelemetryRecord& record);

// Parses one JSONL line. Lines without a crc member (written before framing
// existed) are accepted; a present-but-mismatching crc throws. Throws
// std::invalid_argument on malformed input.
[[nodiscard]] TelemetryRecord telemetry_record_from_json(std::string_view line);

// A mission the campaign supervisor gave up on: every fault retry faulted
// again. Quarantine records carry enough to reproduce the failure offline
// (`swarmfuzz campaign --missions 1 ...` with the recorded seed/fuzzer).
struct QuarantineRecord {
  int mission_index = -1;
  std::string fuzzer;
  std::uint64_t mission_seed = 0;  // seed of the final faulted attempt
  std::string config_hash;         // campaign_config_hash() of the campaign
  sim::FaultKind fault = sim::FaultKind::kNone;
  std::string detail;
  int attempts = 0;                // attempts made (initial + retries)
};

// CRC-framed JSONL line for a quarantine record (no trailing newline).
[[nodiscard]] std::string to_jsonl(const QuarantineRecord& record);
[[nodiscard]] QuarantineRecord quarantine_record_from_json(std::string_view line);

// Loads every record from a quarantine JSONL file; same torn-tail tolerance
// as load_telemetry. A missing file yields an empty vector.
[[nodiscard]] std::vector<QuarantineRecord> load_quarantine(const std::string& path);

// Appends one line + '\n' to `path` in a single flushed write, creating the
// file if needed. Transient failures retry with backoff through
// util::io_retrier(), healing any torn tail the failed attempt left before
// re-appending; throws util::IoError once retries are exhausted or the
// error is permanent.
void append_jsonl_line(const std::string& path, std::string_view line);

// CRC-32 record framing, shared by every durable JSONL stream (telemetry,
// checkpoints, quarantine, work leases). frame_with_crc splices the checksum
// in as the line's final member — `{...}` becomes `{...,"crc":"xxxxxxxx"}`,
// where the checksum covers the unframed line — so `line` must be a
// single-line JSON object. verify_crc_frame validates the trailing member
// when present (unframed legacy lines pass through) and throws
// std::invalid_argument on mismatch.
[[nodiscard]] std::string frame_with_crc(std::string line);
void verify_crc_frame(std::string_view line);

// Truncates an unterminated final line (a write the previous process never
// finished) so appending resumes on a line boundary. Without this, the next
// append would glue a fresh record onto the torn fragment, turning the
// recoverable crash signature into an unrecoverable corrupt complete line.
// A missing file is a no-op.
void heal_torn_tail(const std::string& path);

// Receives completed-mission records; implementations must be thread-safe
// (campaign workers call record() concurrently).
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void record(const TelemetryRecord& record) = 0;
};

// Thread-safe JSONL file sink. Every record() appends one line + newline in
// a single fwrite and flushes, so a crash loses at most the line being
// written — never a completed one. Opening in append mode first heals a
// torn tail: an unterminated final line (the previous process died
// mid-write) is truncated away so the next append starts on a line boundary
// instead of corrupting a complete line.
class JsonlTelemetrySink final : public TelemetrySink {
 public:
  // Opens `path` for writing; `append` keeps existing records (resume),
  // otherwise the file is truncated. Throws std::runtime_error on failure.
  explicit JsonlTelemetrySink(const std::string& path, bool append = true);
  ~JsonlTelemetrySink() override;

  JsonlTelemetrySink(const JsonlTelemetrySink&) = delete;
  JsonlTelemetrySink& operator=(const JsonlTelemetrySink&) = delete;

  void record(const TelemetryRecord& record) override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

// Loads every well-formed record from a JSONL file. A malformed or
// incomplete *last* line (the write a crash interrupted) is skipped with a
// warning; a malformed line elsewhere — including a CRC mismatch — throws
// std::runtime_error. A missing file yields an empty vector.
[[nodiscard]] std::vector<TelemetryRecord> load_telemetry(const std::string& path);

// Raw line replay shared by the durable JSONL loaders (telemetry,
// quarantine, the E_Fuzz corpus): every line of `path` without its
// terminator, in file order. An unterminated final line — the torn-write
// crash signature — is returned with `complete = false` so callers can
// apply the skip-torn-tail / throw-on-corrupt-complete-line policy. A
// missing file yields an empty vector.
struct JsonlLine {
  std::string text;
  bool complete = true;
};
[[nodiscard]] std::vector<JsonlLine> read_jsonl_lines(const std::string& path);

}  // namespace swarmfuzz::fuzz
