// Campaign telemetry: one machine-readable record per completed mission.
//
// Records serve two purposes:
//   1. Observability — a campaign is no longer a black box; every mission
//      outcome (seed, fuzzer, status, iterations, simulations, wall-clock)
//      streams to a JSONL sink as it completes.
//   2. Durability — when `CampaignConfig.checkpoint_path` is set the same
//      records double as a crash-safe checkpoint: each line is written and
//      flushed atomically-enough that a killed campaign can be resumed by
//      replaying the file and running only the missing mission indices.
//
// Serialization is exact: doubles are written with %.17g (see
// JsonWriter::value_exact) so a record parsed back reconstructs the
// original FuzzResult bit-for-bit. The only non-deterministic field is
// wall_time_s, which is measured, not computed.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/fuzzer.h"

namespace swarmfuzz::fuzz {

// One completed mission, as persisted to a telemetry/checkpoint stream.
struct TelemetryRecord {
  int schema_version = 1;
  int mission_index = -1;         // index within the campaign [0, num_missions)
  std::string fuzzer;             // fuzzer_kind_name() of the campaign's kind
  std::uint64_t mission_seed = 0; // final (possibly retried) mission seed
  double wall_time_s = 0.0;       // wall-clock spent on this mission
  FuzzResult result;              // full outcome, including seed attempts
};

// One JSONL line (no trailing newline). Doubles round-trip exactly.
[[nodiscard]] std::string to_jsonl(const TelemetryRecord& record);

// Parses one JSONL line. Throws std::invalid_argument on malformed input.
[[nodiscard]] TelemetryRecord telemetry_record_from_json(std::string_view line);

// Receives completed-mission records; implementations must be thread-safe
// (campaign workers call record() concurrently).
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void record(const TelemetryRecord& record) = 0;
};

// Thread-safe JSONL file sink. Every record() appends one line and flushes,
// so a crash loses at most the line being written — never a completed one.
class JsonlTelemetrySink final : public TelemetrySink {
 public:
  // Opens `path` for writing; `append` keeps existing records (resume),
  // otherwise the file is truncated. Throws std::runtime_error on failure.
  explicit JsonlTelemetrySink(const std::string& path, bool append = true);
  ~JsonlTelemetrySink() override;

  JsonlTelemetrySink(const JsonlTelemetrySink&) = delete;
  JsonlTelemetrySink& operator=(const JsonlTelemetrySink&) = delete;

  void record(const TelemetryRecord& record) override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

// Loads every well-formed record from a JSONL file. A malformed or
// incomplete *last* line (the write a crash interrupted) is skipped
// silently; a malformed line elsewhere throws std::runtime_error. A missing
// file yields an empty vector.
[[nodiscard]] std::vector<TelemetryRecord> load_telemetry(const std::string& path);

}  // namespace swarmfuzz::fuzz
