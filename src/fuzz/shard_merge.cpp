#include "fuzz/shard_merge.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "util/logging.h"

namespace swarmfuzz::fuzz {
namespace {

// Lease id of a `shard-<k>.jsonl` filename, or -1 when the name is not a
// shard stream (dead claim files, manifests, summaries all live in `dir`).
int shard_id_of(const std::filesystem::path& path) {
  constexpr std::string_view kPrefix = "shard-";
  constexpr std::string_view kSuffix = ".jsonl";
  const std::string name = path.filename().string();
  if (name.size() <= kPrefix.size() + kSuffix.size() ||
      name.compare(0, kPrefix.size(), kPrefix) != 0 ||
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
    return -1;
  }
  const std::string digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  for (const char ch : digits) {
    if (ch < '0' || ch > '9') return -1;
  }
  try {
    return std::stoi(digits);
  } catch (const std::exception&) {
    return -1;
  }
}

}  // namespace

std::vector<MissionHole> missing_mission_ranges(const CampaignResult& result) {
  std::vector<MissionHole> holes;
  const int n = static_cast<int>(result.outcomes.size());
  for (int i = 0; i < n; ++i) {
    if (result.outcomes[static_cast<std::size_t>(i)].completed) continue;
    if (!holes.empty() && holes.back().end == i) {
      ++holes.back().end;
    } else {
      holes.push_back(MissionHole{.begin = i, .end = i + 1});
    }
  }
  return holes;
}

CampaignResult merge_shards(const CampaignConfig& config, const std::string& dir,
                            bool allow_partial, ShardMergeStats* stats) {
  if (config.num_missions < 1) {
    throw std::invalid_argument("merge_shards: num_missions < 1");
  }
  std::vector<std::pair<int, std::string>> shards;  // (lease id, path)
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const int id = shard_id_of(entry.path());
    if (id >= 0) shards.emplace_back(id, entry.path().string());
  }
  // Deterministic read order (directory iteration order is not): ascending
  // lease id, so keep-first dedup is stable across runs and platforms.
  std::sort(shards.begin(), shards.end());

  CampaignResult result;
  result.config = config;
  result.outcomes.resize(static_cast<std::size_t>(config.num_missions));
  for (int i = 0; i < config.num_missions; ++i) {
    result.outcomes[static_cast<std::size_t>(i)].mission_index = i;
  }

  ShardMergeStats accounting;
  accounting.shard_files = static_cast<int>(shards.size());
  for (const auto& [id, path] : shards) {
    for (const TelemetryRecord& record : load_telemetry(path)) {
      validate_checkpoint_record(record, config);
      ++accounting.records;
      MissionOutcome& outcome =
          result.outcomes[static_cast<std::size_t>(record.mission_index)];
      MissionOutcome loaded;
      loaded.mission_index = record.mission_index;
      loaded.completed = true;
      loaded.mission_seed = record.mission_seed;
      loaded.wall_time_s = record.wall_time_s;
      loaded.result = record.result;
      loaded.fault = record.fault;
      loaded.fault_detail = record.fault_detail;
      loaded.fault_attempts = record.fault_attempts;
      if (outcome.completed) {
        // Keep-first duplicate (a reclaimed lease recorded the mission
        // twice) — but only if the copies agree on every deterministic
        // field; disagreement means the shard streams belong to different
        // campaigns or a corrupted record slipped past its CRC.
        if (!deterministic_equal(outcome, loaded)) {
          throw std::runtime_error(
              "merge_shards: mission " + std::to_string(record.mission_index) +
              " has conflicting records across shard files (shard " +
              std::to_string(id) + ")");
        }
        ++accounting.duplicates;
        continue;
      }
      outcome = loaded;
    }
  }

  const int completed = result.num_completed();
  if (!allow_partial && completed != config.num_missions) {
    throw std::runtime_error(
        "merge_shards: " + std::to_string(config.num_missions - completed) +
        " of " + std::to_string(config.num_missions) +
        " missions missing from " + dir +
        " (campaign incomplete; pass allow_partial to merge anyway)");
  }
  if (accounting.duplicates > 0) {
    SWARMFUZZ_INFO("merge: dropped {} duplicate records (reclaimed leases)",
                   accounting.duplicates);
  }
  if (stats != nullptr) *stats = accounting;
  return result;
}

}  // namespace swarmfuzz::fuzz
