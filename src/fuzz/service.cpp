#include "fuzz/service.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "fuzz/shard_merge.h"
#include "util/fileio.h"
#include "util/json.h"
#include "util/logging.h"

namespace swarmfuzz::fuzz {

std::string to_jsonl(const ServiceManifest& manifest) {
  util::JsonWriter json;
  json.begin_object();
  json.key("v");
  json.value(manifest.schema_version);
  json.key("config_hash");
  json.value(manifest.config_hash);
  json.key("missions");
  json.value(manifest.num_missions);
  json.key("leases");
  json.value(manifest.num_leases);
  json.key("ttl_ms");
  json.value(std::to_string(manifest.lease_ttl_ms));
  json.key("args");
  json.begin_array();
  for (const std::string& arg : manifest.campaign_args) json.value(arg);
  json.end_array();
  json.end_object();
  return frame_with_crc(json.str());
}

ServiceManifest service_manifest_from_json(std::string_view line) {
  verify_crc_frame(line);
  const util::JsonValue root = util::parse_json(line);
  ServiceManifest manifest;
  manifest.schema_version = root.at("v").as_int();
  if (manifest.schema_version != 1) {
    throw std::invalid_argument("service: unsupported manifest version " +
                                std::to_string(manifest.schema_version));
  }
  manifest.config_hash = root.at("config_hash").as_string();
  manifest.num_missions = root.at("missions").as_int();
  manifest.num_leases = root.at("leases").as_int();
  manifest.lease_ttl_ms = std::stoll(root.at("ttl_ms").as_string());
  const util::JsonValue& args = root.at("args");
  for (std::size_t i = 0; i < args.size(); ++i) {
    manifest.campaign_args.push_back(args.at(i).as_string());
  }
  return manifest;
}

std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.json";
}

void write_manifest(const std::string& dir, const ServiceManifest& manifest) {
  std::filesystem::create_directories(dir);
  util::write_file_atomic(manifest_path(dir), to_jsonl(manifest) + "\n");
}

ServiceManifest load_manifest(const std::string& dir) {
  const std::string path = manifest_path(dir);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw std::runtime_error("service: no manifest at " + path +
                             " (run `swarmfuzz serve` first)");
  }
  std::string content;
  char buffer[1 << 12];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);
  while (!content.empty() && (content.back() == '\n' || content.back() == '\r')) {
    content.pop_back();
  }
  try {
    return service_manifest_from_json(content);
  } catch (const std::exception& e) {
    throw std::runtime_error("service: corrupt manifest at " + path + ": " +
                             e.what());
  }
}

bool all_leases_done(const std::string& dir, int num_leases) {
  for (int k = 0; k < num_leases; ++k) {
    std::error_code ec;
    if (!std::filesystem::exists(
            dir + "/lease-" + std::to_string(k) + ".done", ec)) {
      return false;
    }
  }
  return true;
}

bool wait_for_leases(const std::string& dir, int num_leases,
                     std::int64_t timeout_ms, std::int64_t poll_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!all_leases_done(dir, num_leases)) {
    if (timeout_ms > 0 && std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(std::max<std::int64_t>(poll_ms, 1)));
  }
  return true;
}

namespace {

TelemetryRecord shard_record(const CampaignConfig& config,
                             const MissionOutcome& outcome, int lease_id) {
  TelemetryRecord record;
  record.mission_index = outcome.mission_index;
  record.fuzzer = std::string{fuzzer_kind_name(config.kind)};
  record.mission_seed = outcome.mission_seed;
  record.wall_time_s = outcome.wall_time_s;
  record.shard = lease_id;
  record.result = outcome.result;
  record.fault = outcome.fault;
  record.fault_detail = outcome.fault_detail;
  record.fault_attempts = outcome.fault_attempts;
  return record;
}

// Heartbeat: renews the claim every ttl/3 on a dedicated thread until
// stopped. A renewal that finds the claim no longer ours trips `fenced` —
// the worker was presumed dead and its lease reclaimed; continuing to
// record would race the new owner, so the mission loop must abandon.
class LeaseHeartbeat {
 public:
  LeaseHeartbeat(LeaseStore& store, int lease_id)
      : store_(store), lease_id_(lease_id) {
    thread_ = std::thread([this] { loop(); });
  }

  ~LeaseHeartbeat() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    thread_.join();
  }

  [[nodiscard]] bool fenced() const noexcept { return fenced_.load(); }

 private:
  void loop() {
    const auto period =
        std::chrono::milliseconds(std::max<std::int64_t>(store_.ttl_ms() / 3, 1));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      if (wake_.wait_for(lock, period, [this] { return stop_; })) break;
      try {
        if (!store_.renew(lease_id_)) {
          SWARMFUZZ_WARN("shard [{}]: lease {} was reclaimed; abandoning",
                         store_.owner(), lease_id_);
          fenced_.store(true);
          break;
        }
      } catch (const std::exception& e) {
        // Renewal I/O failure: keep trying — the claim only lapses at its
        // recorded expiry, and a later renewal may still land in time.
        SWARMFUZZ_ERROR("shard [{}]: lease {} renewal failed: {}",
                        store_.owner(), lease_id_, e.what());
      }
    }
  }

  LeaseStore& store_;
  int lease_id_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  std::atomic<bool> fenced_{false};
};

}  // namespace

ShardWorkerStats run_shard_worker(const ShardWorkerConfig& config) {
  if (config.owner.empty()) {
    throw std::invalid_argument("run_shard_worker: owner must not be empty");
  }
  const std::vector<LeaseRange> leases =
      carve_leases(config.campaign.num_missions, config.num_leases);
  LeaseStore store(config.dir, config.lease_ttl_ms, config.owner, config.clock);
  std::function<void(std::int64_t)> sleep_ms = config.sleep_ms;
  if (!sleep_ms) {
    sleep_ms = [](std::int64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }

  // Shard processes do not split the hardware the way in-process campaign
  // workers do: each process is its own "worker", so auto eval threads
  // resolve to the whole machine. eval_threads never changes outcomes.
  const FuzzerConfig worker_fuzzer = worker_fuzzer_config(config.campaign, 1);
  const std::string config_hash = campaign_config_hash(config.campaign);

  ShardWorkerStats stats;
  MissionRunner runner(config.campaign, worker_fuzzer);

  const auto run_lease = [&](const LeaseRange& lease) {
    const std::string shard_path = shard_telemetry_path(config.dir, lease.lease_id);
    // The shard file is the lease's sub-range checkpoint: heal a previous
    // owner's torn tail, then skip every mission it already recorded. The
    // records are validated exactly like a resume checkpoint — a foreign
    // file must fail loudly, not seed a merged report.
    heal_torn_tail(shard_path);
    std::set<int> recorded;
    for (const TelemetryRecord& record : load_telemetry(shard_path)) {
      validate_checkpoint_record(record, config.campaign);
      if (record.mission_index < lease.begin || record.mission_index >= lease.end) {
        throw std::runtime_error(
            "shard: record for mission " + std::to_string(record.mission_index) +
            " outside lease " + std::to_string(lease.lease_id) + " range in " +
            shard_path);
      }
      recorded.insert(record.mission_index);
    }
    // Quarantine dedup across reclaims, keyed like run_campaign's.
    const std::string quarantine_path = shard_path + ".quarantine";
    std::set<std::tuple<std::string, std::uint64_t, int>> quarantined;
    for (const QuarantineRecord& record : load_quarantine(quarantine_path)) {
      quarantined.emplace(record.config_hash, record.mission_seed,
                          record.mission_index);
    }

    LeaseHeartbeat heartbeat(store, lease.lease_id);
    for (int index = lease.begin; index < lease.end; ++index) {
      if (heartbeat.fenced()) {
        ++stats.leases_abandoned;
        return;
      }
      if (recorded.count(index) != 0) {
        ++stats.missions_resumed;
        continue;
      }
      const MissionOutcome outcome = runner.run(index);
      if (heartbeat.fenced()) {
        // Reclaimed mid-mission: the successor will rerun this index and
        // record the identical outcome; dropping ours avoids racing its
        // appends on the shard file.
        ++stats.leases_abandoned;
        return;
      }
      append_jsonl_line(shard_path,
                        to_jsonl(shard_record(config.campaign, outcome,
                                              lease.lease_id)));
      ++stats.missions_run;
      if (outcome.fault != sim::FaultKind::kNone &&
          quarantined.emplace(config_hash, outcome.mission_seed, index).second) {
        QuarantineRecord quarantine;
        quarantine.mission_index = index;
        quarantine.fuzzer = std::string{fuzzer_kind_name(config.campaign.kind)};
        quarantine.mission_seed = outcome.mission_seed;
        quarantine.config_hash = config_hash;
        quarantine.fault = outcome.fault;
        quarantine.detail = outcome.fault_detail;
        quarantine.attempts = outcome.fault_attempts;
        try {
          append_jsonl_line(quarantine_path, to_jsonl(quarantine));
        } catch (const std::exception& e) {
          SWARMFUZZ_ERROR("shard: cannot write quarantine record: {}", e.what());
        }
      }
    }
    if (heartbeat.fenced()) {
      ++stats.leases_abandoned;
      return;
    }
    store.mark_done(lease.lease_id);
    SWARMFUZZ_INFO("shard [{}]: lease {} done (missions {}..{})", config.owner,
                   lease.lease_id, lease.begin, lease.end - 1);
  };

  // Claim until every lease of the service is done. When nothing is
  // claimable but leases remain (validly held by live peers), wait out a
  // fraction of the TTL: either their done markers appear or their claims
  // expire and become reclaimable.
  while (true) {
    bool all_done = true;
    bool claimed_any = false;
    for (const LeaseRange& lease : leases) {
      if (store.is_done(lease.lease_id)) continue;
      all_done = false;
      if (!store.try_claim(lease.lease_id)) continue;
      claimed_any = true;
      ++stats.leases_claimed;
      run_lease(lease);
    }
    if (all_done) break;
    if (!claimed_any) {
      sleep_ms(std::max<std::int64_t>(config.lease_ttl_ms / 4, 1));
    }
  }
  return stats;
}

}  // namespace swarmfuzz::fuzz
