#include "fuzz/service.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <stdexcept>
#include <tuple>

#include "util/fileio.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/retry.h"

namespace swarmfuzz::fuzz {
namespace {

// Reads a small durable file (manifest, holes) through the retrier.
// `missing_hint` is appended to the ENOENT message — the one failure with an
// operator remedy rather than a retry schedule.
std::string read_small_file(const std::string& path, std::string_view op,
                            const char* missing_hint) {
  return util::io_retrier().run(op, [&]() -> std::string {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      std::string message = "service: cannot open " + path;
      if (errno == ENOENT) message += missing_hint;
      throw util::IoError(message, errno);
    }
    std::string content;
    char buffer[1 << 12];
    std::size_t read = 0;
    while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
      content.append(buffer, read);
    }
    const bool failed = std::ferror(file) != 0;
    const int read_errno = errno;
    std::fclose(file);
    if (failed) {
      throw util::IoError("service: cannot read " + path, read_errno);
    }
    while (!content.empty() &&
           (content.back() == '\n' || content.back() == '\r')) {
      content.pop_back();
    }
    return content;
  });
}

}  // namespace

std::string to_jsonl(const ServiceManifest& manifest) {
  util::JsonWriter json;
  json.begin_object();
  json.key("v");
  json.value(manifest.schema_version);
  json.key("config_hash");
  json.value(manifest.config_hash);
  json.key("missions");
  json.value(manifest.num_missions);
  json.key("leases");
  json.value(manifest.num_leases);
  json.key("ttl_ms");
  json.value(std::to_string(manifest.lease_ttl_ms));
  json.key("args");
  json.begin_array();
  for (const std::string& arg : manifest.campaign_args) json.value(arg);
  json.end_array();
  json.end_object();
  return frame_with_crc(json.str());
}

ServiceManifest service_manifest_from_json(std::string_view line) {
  verify_crc_frame(line);
  const util::JsonValue root = util::parse_json(line);
  ServiceManifest manifest;
  manifest.schema_version = root.at("v").as_int();
  if (manifest.schema_version != 1) {
    throw std::invalid_argument("service: unsupported manifest version " +
                                std::to_string(manifest.schema_version));
  }
  manifest.config_hash = root.at("config_hash").as_string();
  manifest.num_missions = root.at("missions").as_int();
  manifest.num_leases = root.at("leases").as_int();
  manifest.lease_ttl_ms = std::stoll(root.at("ttl_ms").as_string());
  const util::JsonValue& args = root.at("args");
  for (std::size_t i = 0; i < args.size(); ++i) {
    manifest.campaign_args.push_back(args.at(i).as_string());
  }
  return manifest;
}

std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.json";
}

void write_manifest(const std::string& dir, const ServiceManifest& manifest) {
  std::filesystem::create_directories(dir);
  util::write_file_atomic(manifest_path(dir), to_jsonl(manifest) + "\n");
}

ServiceManifest load_manifest(const std::string& dir) {
  const std::string path = manifest_path(dir);
  const std::string content = read_small_file(
      path, "manifest_read", " (run `swarmfuzz serve` first)");
  try {
    return service_manifest_from_json(content);
  } catch (const std::exception& e) {
    throw std::runtime_error("service: corrupt manifest at " + path + ": " +
                             e.what());
  }
}

bool all_leases_done(const std::string& dir, int num_leases) {
  for (int k = 0; k < num_leases; ++k) {
    std::error_code ec;
    if (!std::filesystem::exists(
            dir + "/lease-" + std::to_string(k) + ".done", ec)) {
      return false;
    }
  }
  return true;
}

bool service_complete(const std::string& dir, int num_missions,
                      int num_leases) {
  const LeaseTable table = load_lease_table(dir, num_missions, num_leases);
  for (const LeaseRange& lease : table.active) {
    std::error_code ec;
    if (!std::filesystem::exists(
            dir + "/lease-" + std::to_string(lease.lease_id) + ".done", ec)) {
      return false;
    }
  }
  return true;
}

bool wait_for_service(const std::string& dir, int num_missions, int num_leases,
                      std::int64_t timeout_ms, std::int64_t poll_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!service_complete(dir, num_missions, num_leases)) {
    if (timeout_ms > 0 && std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max<std::int64_t>(poll_ms, 1)));
  }
  return true;
}

ChaosPlan parse_chaos_plan(std::string_view spec) {
  ChaosPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string item{spec.substr(
        start, (comma == std::string_view::npos ? spec.size() : comma) - start)};
    start = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) continue;
    const auto fail = [&item](const std::string& why) {
      return std::invalid_argument("parse_chaos_plan: " + why + " in '" + item +
                                   "'");
    };
    const std::size_t at = item.find('@');
    if (at == std::string::npos) throw fail("missing '@<mission-index>'");
    const std::string mode = item.substr(0, at);
    ChaosAction action;
    if (mode == "kill") {
      action.kind = ChaosAction::Kind::kKill;
    } else if (mode == "hang") {
      action.kind = ChaosAction::Kind::kHang;
    } else if (mode == "torn-write") {
      action.kind = ChaosAction::Kind::kTornWrite;
    } else if (mode == "eio") {
      action.kind = ChaosAction::Kind::kEio;
    } else {
      throw fail("unknown chaos mode '" + mode +
                 "' (kill|hang|torn-write|eio)");
    }
    try {
      std::string rest = item.substr(at + 1);
      if (const std::size_t x = rest.find('x'); x != std::string::npos) {
        action.count = std::stoi(rest.substr(x + 1));
        rest.resize(x);
      }
      action.mission_index = std::stoi(rest);
    } catch (const std::invalid_argument&) {
      throw fail("malformed number");
    } catch (const std::out_of_range&) {
      throw fail("number out of range");
    }
    if (action.mission_index < 0 || action.count < 1) {
      throw fail("negative index or non-positive count");
    }
    plan.actions.push_back(action);
  }
  return plan;
}

LeaseHeartbeat::LeaseHeartbeat(LeaseStore& store, int lease_id)
    : store_(store), lease_id_(lease_id) {
  thread_ = std::thread([this] { loop(); });
}

LeaseHeartbeat::~LeaseHeartbeat() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  thread_.join();
}

void LeaseHeartbeat::loop() {
  const std::int64_t period_ms = std::max<std::int64_t>(store_.ttl_ms() / 3, 1);
  // Backoff for failed renewals starts well under the period (so a hiccup
  // costs little freshness) and doubles up to the period (so a dying disk
  // is probed no faster than a healthy one is renewed).
  const std::int64_t backoff_floor_ms =
      std::max<std::int64_t>(store_.ttl_ms() / 24, 1);
  std::int64_t backoff_ms = 0;  // 0: healthy, wait a full period
  std::int64_t last_success_ms = store_.now_ms();
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    const std::int64_t wait_ms =
        backoff_ms > 0 ? std::min(backoff_ms, period_ms) : period_ms;
    if (wake_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                       [this] { return stop_; })) {
      break;
    }
    try {
      if (!store_.renew(lease_id_)) {
        SWARMFUZZ_WARN("shard [{}]: lease {} was reclaimed; abandoning",
                       store_.owner(), lease_id_);
        fenced_.store(true);
        break;
      }
      last_success_ms = store_.now_ms();
      backoff_ms = 0;
    } catch (const util::IoError& e) {
      if (!util::is_transient_errno(e.code())) {
        // A read-only filesystem (EROFS, EACCES...) will not heal on any
        // retry cadence; treat it like fencing so the worker abandons the
        // lease instead of spinning against the mount.
        SWARMFUZZ_ERROR(
            "shard [{}]: lease {} renewal failed permanently ({}); abandoning",
            store_.owner(), lease_id_, e.what());
        fenced_.store(true);
        break;
      }
      if (store_.now_ms() - last_success_ms >= store_.ttl_ms()) {
        // Our claim has lapsed on disk while renewals kept failing: a
        // reclaimer may legitimately own the range now, so continuing to
        // record would race it. Same abandon path as observed fencing.
        SWARMFUZZ_ERROR(
            "shard [{}]: lease {} renewals failed past the TTL; abandoning",
            store_.owner(), lease_id_);
        fenced_.store(true);
        break;
      }
      backoff_ms = backoff_ms > 0 ? std::min(backoff_ms * 2, period_ms)
                                  : backoff_floor_ms;
      SWARMFUZZ_WARN(
          "shard [{}]: lease {} renewal failed transiently ({}); retrying in "
          "{} ms",
          store_.owner(), lease_id_, e.what(), backoff_ms);
    } catch (const std::exception& e) {
      // Unclassified failure: treat as transient but stay bounded by the
      // TTL check above on the next failures.
      backoff_ms = backoff_ms > 0 ? std::min(backoff_ms * 2, period_ms)
                                  : backoff_floor_ms;
      SWARMFUZZ_ERROR("shard [{}]: lease {} renewal failed: {}",
                      store_.owner(), lease_id_, e.what());
    }
  }
}

namespace {

TelemetryRecord shard_record(const CampaignConfig& config,
                             const MissionOutcome& outcome, int lease_id) {
  TelemetryRecord record;
  record.mission_index = outcome.mission_index;
  record.fuzzer = std::string{fuzzer_kind_name(config.kind)};
  record.mission_seed = outcome.mission_seed;
  record.wall_time_s = outcome.wall_time_s;
  record.shard = lease_id;
  record.result = outcome.result;
  record.fault = outcome.fault;
  record.fault_detail = outcome.fault_detail;
  record.fault_attempts = outcome.fault_attempts;
  return record;
}

// Mutable per-process chaos state: which plan entries have fired, and how
// many EIO injections each mission still owes.
struct ChaosState {
  explicit ChaosState(const ChaosPlan& plan) {
    for (const ChaosAction& action : plan.actions) {
      if (action.kind == ChaosAction::Kind::kEio) {
        eio_remaining[action.mission_index] += action.count;
      } else {
        pending.push_back(action);
      }
    }
  }

  // Pops the first un-fired process-fatal/hang action for `index`.
  [[nodiscard]] const ChaosAction* take(ChaosAction::Kind kind, int index) {
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].kind == kind && pending[i].mission_index == index) {
        taken = pending[i];
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        return &taken;
      }
    }
    return nullptr;
  }

  std::vector<ChaosAction> pending;
  std::map<int, int> eio_remaining;
  ChaosAction taken;
};

}  // namespace

ShardWorkerStats run_shard_worker(const ShardWorkerConfig& config) {
  if (config.owner.empty()) {
    throw std::invalid_argument("run_shard_worker: owner must not be empty");
  }
  LeaseStore store(config.dir, config.lease_ttl_ms, config.owner, config.clock);
  std::function<void(std::int64_t)> sleep_ms = config.sleep_ms;
  if (!sleep_ms) {
    sleep_ms = [](std::int64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
  std::function<void()> chaos_kill = config.chaos_kill;
  if (!chaos_kill) {
    chaos_kill = [] { std::raise(SIGKILL); };
  }
  std::function<bool(std::int64_t)> chaos_hang_wait = config.chaos_hang_wait;
  if (!chaos_hang_wait) {
    chaos_hang_wait = [](std::int64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      return false;
    };
  }
  ChaosState chaos(config.chaos);

  // Shard processes do not split the hardware the way in-process campaign
  // workers do: each process is its own "worker", so auto eval threads
  // resolve to the whole machine. eval_threads never changes outcomes.
  const FuzzerConfig worker_fuzzer = worker_fuzzer_config(config.campaign, 1);
  const std::string config_hash = campaign_config_hash(config.campaign);

  ShardWorkerStats stats;
  MissionRunner runner(config.campaign, worker_fuzzer);

  const auto run_lease = [&](const LeaseRange& lease) {
    const std::string shard_path = shard_telemetry_path(config.dir, lease.lease_id);
    // The shard file is the lease's sub-range checkpoint: heal a previous
    // owner's torn tail, then skip every mission it already recorded. The
    // records are validated exactly like a resume checkpoint — a foreign
    // file must fail loudly, not seed a merged report.
    heal_torn_tail(shard_path);
    std::set<int> recorded;
    for (const TelemetryRecord& record : load_telemetry(shard_path)) {
      validate_checkpoint_record(record, config.campaign);
      if (record.mission_index < lease.begin || record.mission_index >= lease.end) {
        throw std::runtime_error(
            "shard: record for mission " + std::to_string(record.mission_index) +
            " outside lease " + std::to_string(lease.lease_id) + " range in " +
            shard_path);
      }
      recorded.insert(record.mission_index);
    }
    // Quarantine dedup across reclaims, keyed like run_campaign's.
    const std::string quarantine_path = shard_path + ".quarantine";
    std::set<std::tuple<std::string, std::uint64_t, int>> quarantined;
    for (const QuarantineRecord& record : load_quarantine(quarantine_path)) {
      quarantined.emplace(record.config_hash, record.mission_seed,
                          record.mission_index);
    }

    LeaseHeartbeat heartbeat(store, lease.lease_id);
    for (int index = lease.begin; index < lease.end; ++index) {
      if (heartbeat.fenced()) {
        ++stats.leases_abandoned;
        return;
      }
      if (recorded.count(index) != 0) {
        ++stats.missions_resumed;
        continue;
      }
      if (chaos.take(ChaosAction::Kind::kHang, index) != nullptr) {
        // The straggler the coordinator exists for: the mission loop stalls
        // while the heartbeat keeps the claim fresh. Only a re-carve (which
        // fences us) — or the injected release in tests — gets us out.
        SWARMFUZZ_WARN("shard [{}]: chaos hang before mission {}",
                       config.owner, index);
        while (!heartbeat.fenced()) {
          if (chaos_hang_wait(50)) break;
        }
        if (heartbeat.fenced()) {
          ++stats.leases_abandoned;
          return;
        }
      }
      const MissionOutcome outcome = runner.run(index);
      if (heartbeat.fenced()) {
        // Reclaimed mid-mission: the successor will rerun this index and
        // record the identical outcome; dropping ours avoids racing its
        // appends on the shard file.
        ++stats.leases_abandoned;
        return;
      }
      const std::string line =
          to_jsonl(shard_record(config.campaign, outcome, lease.lease_id));
      if (chaos.take(ChaosAction::Kind::kKill, index) != nullptr) {
        SWARMFUZZ_WARN("shard [{}]: chaos kill before recording mission {}",
                       config.owner, index);
        chaos_kill();
        return;  // unreachable with the default raise(SIGKILL)
      }
      if (chaos.take(ChaosAction::Kind::kTornWrite, index) != nullptr) {
        // Append a prefix of the record without its newline, then die: the
        // torn-tail crash signature a successor's heal_torn_tail removes.
        SWARMFUZZ_WARN("shard [{}]: chaos torn write on mission {}",
                       config.owner, index);
        if (std::FILE* file = std::fopen(shard_path.c_str(), "ab");
            file != nullptr) {
          std::fwrite(line.data(), 1, line.size() / 2, file);
          std::fflush(file);
          std::fclose(file);
        }
        chaos_kill();
        return;
      }
      util::io_retrier().run("shard_append", [&] {
        if (const auto it = chaos.eio_remaining.find(index);
            it != chaos.eio_remaining.end() && it->second > 0) {
          --it->second;
          throw util::IoError("chaos: injected EIO on shard append for mission " +
                                  std::to_string(index),
                              EIO);
        }
        append_jsonl_line(shard_path, line);
      });
      ++stats.missions_run;
      if (outcome.fault != sim::FaultKind::kNone &&
          quarantined.emplace(config_hash, outcome.mission_seed, index).second) {
        QuarantineRecord quarantine;
        quarantine.mission_index = index;
        quarantine.fuzzer = std::string{fuzzer_kind_name(config.campaign.kind)};
        quarantine.mission_seed = outcome.mission_seed;
        quarantine.config_hash = config_hash;
        quarantine.fault = outcome.fault;
        quarantine.detail = outcome.fault_detail;
        quarantine.attempts = outcome.fault_attempts;
        try {
          append_jsonl_line(quarantine_path, to_jsonl(quarantine));
        } catch (const std::exception& e) {
          SWARMFUZZ_ERROR("shard: cannot write quarantine record: {}", e.what());
        }
      }
    }
    if (heartbeat.fenced()) {
      ++stats.leases_abandoned;
      return;
    }
    store.mark_done(lease.lease_id);
    SWARMFUZZ_INFO("shard [{}]: lease {} done (missions {}..{})", config.owner,
                   lease.lease_id, lease.begin, lease.end - 1);
  };

  // Claim until every active lease of the service is done. The lease table
  // is reloaded every scan so a coordinator's re-carves (retired parents,
  // fresh sub-leases) are picked up promptly. When nothing is claimable but
  // leases remain (validly held by live peers, or retired-but-unhealed),
  // wait out a fraction of the TTL: done markers appear, claims expire, or
  // the coordinator finishes the re-carve.
  while (true) {
    const LeaseTable table = load_lease_table(
        config.dir, config.campaign.num_missions, config.num_leases);
    bool all_done = true;
    bool claimed_any = false;
    for (const LeaseRange& lease : table.active) {
      if (store.is_done(lease.lease_id)) continue;
      all_done = false;
      if (store.is_retired(lease.lease_id)) continue;  // awaiting ledger heal
      if (!store.try_claim(lease.lease_id)) continue;
      claimed_any = true;
      ++stats.leases_claimed;
      try {
        run_lease(lease);
      } catch (const util::IoError& e) {
        // Transport gave up (retries exhausted or permanent): abandon the
        // lease — its claim expires on schedule and any worker (including
        // this one, next scan) resumes from the shard file's prefix.
        SWARMFUZZ_ERROR("shard [{}]: lease {} abandoned on I/O failure: {}",
                        config.owner, lease.lease_id, e.what());
        ++stats.io_aborts;
        ++stats.leases_abandoned;
      }
      // Reload the table after each lease so a mid-scan re-carve cannot
      // leave this worker iterating a stale carve.
      break;
    }
    if (all_done) break;
    if (!claimed_any) {
      sleep_ms(std::max<std::int64_t>(config.lease_ttl_ms / 4, 1));
    }
  }
  return stats;
}

std::string to_jsonl(const HolesManifest& manifest) {
  util::JsonWriter json;
  json.begin_object();
  json.key("v");
  json.value(manifest.schema_version);
  json.key("config_hash");
  json.value(manifest.config_hash);
  json.key("missions");
  json.value(manifest.num_missions);
  json.key("holes");
  json.begin_array();
  for (const MissionHole& hole : manifest.holes) {
    json.begin_object();
    json.key("begin");
    json.value(hole.begin);
    json.key("end");
    json.value(hole.end);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return frame_with_crc(json.str());
}

HolesManifest holes_manifest_from_json(std::string_view line) {
  verify_crc_frame(line);
  const util::JsonValue root = util::parse_json(line);
  HolesManifest manifest;
  manifest.schema_version = root.at("v").as_int();
  if (manifest.schema_version != 1) {
    throw std::invalid_argument("service: unsupported holes version " +
                                std::to_string(manifest.schema_version));
  }
  manifest.config_hash = root.at("config_hash").as_string();
  manifest.num_missions = root.at("missions").as_int();
  const util::JsonValue& holes = root.at("holes");
  for (std::size_t i = 0; i < holes.size(); ++i) {
    manifest.holes.push_back(MissionHole{.begin = holes.at(i).at("begin").as_int(),
                                         .end = holes.at(i).at("end").as_int()});
  }
  return manifest;
}

std::string holes_path(const std::string& dir) { return dir + "/holes.json"; }

void write_holes(const std::string& dir, const HolesManifest& manifest) {
  util::write_file_atomic(holes_path(dir), to_jsonl(manifest) + "\n");
}

HolesManifest load_holes(const std::string& dir) {
  const std::string path = holes_path(dir);
  const std::string content = read_small_file(
      path, "holes_read", " (run `swarmfuzz merge --allow-partial` first)");
  try {
    return holes_manifest_from_json(content);
  } catch (const std::exception& e) {
    throw std::runtime_error("service: corrupt holes manifest at " + path +
                             ": " + e.what());
  }
}

namespace {

// The pieces of [lease.begin, lease.end) that fall inside any hole.
std::vector<MissionHole> hole_overlap(const LeaseRange& lease,
                                      const std::vector<MissionHole>& holes) {
  std::vector<MissionHole> overlap;
  for (const MissionHole& hole : holes) {
    const int begin = std::max(lease.begin, hole.begin);
    const int end = std::min(lease.end, hole.end);
    if (begin < end) overlap.push_back(MissionHole{.begin = begin, .end = end});
  }
  return overlap;
}

}  // namespace

int resume_holes(const std::string& dir, const ServiceManifest& manifest,
                 const HolesManifest& holes) {
  if (holes.config_hash != manifest.config_hash) {
    throw std::runtime_error(
        "resume-holes: holes.json is for config " + holes.config_hash +
        " but the service manifest says " + manifest.config_hash);
  }
  if (holes.num_missions != manifest.num_missions) {
    throw std::runtime_error("resume-holes: mission count mismatch");
  }
  LeaseTable table =
      load_lease_table(dir, manifest.num_missions, manifest.num_leases);
  LeaseStore store(dir, manifest.lease_ttl_ms, "resume-holes");
  int next_id = table.next_lease_id;
  int created = 0;
  std::vector<MissionHole> uncovered = holes.holes;

  for (const LeaseRange& lease : table.active) {
    const std::vector<MissionHole> overlap = hole_overlap(lease, holes.holes);
    if (overlap.empty()) continue;
    // Every overlapped range is covered one way or the other below.
    for (const MissionHole& piece : overlap) {
      for (MissionHole& hole : uncovered) {
        if (piece.begin >= hole.begin && piece.end <= hole.end) {
          // Mark covered by splitting; fully-covered holes become empty.
          if (piece.begin == hole.begin) {
            hole.begin = piece.end;
          } else if (piece.end == hole.end) {
            hole.end = piece.begin;
          } else {
            uncovered.push_back(MissionHole{.begin = piece.end, .end = hole.end});
            hole.end = piece.begin;
          }
          break;
        }
      }
    }
    // Idempotency: a not-done lease that covers exactly one hole *is* that
    // hole's recovery lease already (a previous resume-holes created it, or
    // the base carve happens to line up) — leave it for workers to claim.
    if (!store.is_done(lease.lease_id) && overlap.size() == 1 &&
        overlap.front().begin == lease.begin &&
        overlap.front().end == lease.end) {
      continue;
    }
    // Retire the lease via the standard re-carve protocol and cover its
    // hole pieces with fresh sub-leases. Done-but-holey leases (shard file
    // lost after the marker was written) are retired too: their remaining
    // records still merge, and the subs restore the missing coverage.
    if (!store.is_retired(lease.lease_id)) {
      const std::string marker = recarved_marker_path(dir, lease.lease_id);
      util::io_retrier().run("recarve_marker", [&] {
        std::FILE* file = std::fopen(marker.c_str(), "wbx");
        if (file != nullptr) {
          std::fclose(file);
          return;
        }
        if (errno == EEXIST) return;
        throw util::IoError("resume-holes: cannot create " + marker, errno);
      });
    }
    RecarveRecord record;
    record.parent = lease.lease_id;
    for (const MissionHole& piece : overlap) {
      record.subs.push_back(
          LeaseRange{.lease_id = next_id++, .begin = piece.begin, .end = piece.end});
    }
    append_jsonl_line(recarve_ledger_path(dir), to_jsonl(record));
    store.fence_claim(lease.lease_id);
    created += static_cast<int>(record.subs.size());
    SWARMFUZZ_INFO("resume-holes: retired lease {} for {} hole range(s)",
                   lease.lease_id, static_cast<int>(record.subs.size()));
  }

  // Residue: hole ranges no active lease covers (a retired lease's recorded
  // prefix whose records were later lost). Parentless ledger entry.
  RecarveRecord orphan;
  orphan.parent = -1;
  for (const MissionHole& hole : uncovered) {
    if (hole.begin < hole.end) {
      orphan.subs.push_back(
          LeaseRange{.lease_id = next_id++, .begin = hole.begin, .end = hole.end});
    }
  }
  if (!orphan.subs.empty()) {
    append_jsonl_line(recarve_ledger_path(dir), to_jsonl(orphan));
    created += static_cast<int>(orphan.subs.size());
    SWARMFUZZ_INFO("resume-holes: {} orphaned hole range(s) re-leased",
                   static_cast<int>(orphan.subs.size()));
  }
  return created;
}

}  // namespace swarmfuzz::fuzz
