#include "defense/detector.h"

#include <algorithm>
#include <stdexcept>

namespace swarmfuzz::defense {

InnovationDetector::InnovationDetector(const DetectorConfig& config)
    : config_(config) {
  if (config.threshold <= 0.0 || config.required_hits < 1) {
    throw std::invalid_argument("InnovationDetector: invalid config");
  }
}

void InnovationDetector::reset() {
  has_previous_ = false;
  consecutive_hits_ = 0;
  alarmed_ = false;
  alarm_time_ = 0.0;
  peak_ = 0.0;
}

bool InnovationDetector::observe(const Vec3& gps_position, const Vec3& velocity,
                                 double time) {
  if (has_previous_) {
    const double dt = time - previous_time_;
    if (dt > 0.0) {
      // Dead-reckoned prediction from the previous fix. The onset (and the
      // removal) of a constant spoofing offset appears as a position jump
      // the velocity cannot explain.
      const Vec3 predicted = previous_position_ + previous_velocity_ * dt;
      const double innovation = math::distance(predicted, gps_position);
      peak_ = std::max(peak_, innovation);
      if (innovation > config_.threshold) {
        if (++consecutive_hits_ >= config_.required_hits && !alarmed_) {
          alarmed_ = true;
          alarm_time_ = time;
        }
      } else {
        consecutive_hits_ = 0;
      }
    }
  }
  previous_position_ = gps_position;
  previous_velocity_ = velocity;
  previous_time_ = time;
  has_previous_ = true;
  return alarmed_;
}

SwarmDetectionMonitor::SwarmDetectionMonitor(int num_drones,
                                             const DetectorConfig& config) {
  if (num_drones < 1) {
    throw std::invalid_argument("SwarmDetectionMonitor: num_drones < 1");
  }
  detectors_.reserve(static_cast<size_t>(num_drones));
  for (int i = 0; i < num_drones; ++i) detectors_.emplace_back(config);
}

void SwarmDetectionMonitor::on_step(double time, const sim::WorldSnapshot& snapshot,
                                    std::span<const sim::DroneState> /*truth*/) {
  for (int k = 0; k < snapshot.size(); ++k) {
    const int id = snapshot.id[static_cast<size_t>(k)];
    if (id < 0 || id >= static_cast<int>(detectors_.size())) continue;
    InnovationDetector& detector = detectors_[static_cast<size_t>(id)];
    const bool was_alarmed = detector.alarmed();
    detector.observe(snapshot.gps_position[static_cast<size_t>(k)],
                     snapshot.velocity[static_cast<size_t>(k)], time);
    if (!was_alarmed && detector.alarmed() && !first_alarm_.detected) {
      first_alarm_.detected = true;
      first_alarm_.drone = id;
      first_alarm_.time = detector.alarm_time();
    }
  }
}

DetectionReport SwarmDetectionMonitor::report() const {
  DetectionReport report = first_alarm_;
  for (const InnovationDetector& detector : detectors_) {
    report.peak_innovation = std::max(report.peak_innovation,
                                      detector.peak_innovation());
  }
  return report;
}

}  // namespace swarmfuzz::defense
