// GPS-spoofing detection (the defender's side of the paper's threat model).
//
// The paper's motivation (sections I, II, VII) rests on a property of
// deployed anti-spoofing defenses: to avoid false positives from standard
// GPS error, they ignore small deviations (0-10 m), so the SPV attack slips
// under the detection threshold. This module implements that class of
// defense so the claim can be evaluated quantitatively
// (bench/detection_tradeoff):
//
//   InnovationDetector - per-drone dead-reckoning check: each GPS fix is
//     compared against the position predicted from the previous fix and the
//     velocity estimate (IMU-derived, not spoofable via GPS). An innovation
//     above `threshold` on `required_hits` consecutive fixes raises an
//     alarm. The threshold models the defense's tolerance of standard GPS
//     offset; the hit count suppresses single-fix noise.
//
//   SwarmDetectionMonitor - a sim::StepObserver running one detector per
//     swarm member, reporting the first alarm.
#pragma once

#include <optional>
#include <vector>

#include "sim/simulator.h"

namespace swarmfuzz::defense {

using math::Vec3;

struct DetectorConfig {
  double threshold = 10.0;  // m of innovation tolerated (paper: 0-10 m band)
  // Consecutive anomalous fixes before alarming. The default is 1: a
  // constant-offset spoof is anomalous only at onset and removal (between
  // them the offset fixes are self-consistent), so persistence requirements
  // would blind the defense entirely. The threshold alone provides the
  // false-positive control (it absorbs standard GPS offset).
  int required_hits = 1;
};

// Per-drone innovation detector. Feed it every broadcast fix in order.
class InnovationDetector {
 public:
  explicit InnovationDetector(const DetectorConfig& config = {});

  // Processes one fix; `velocity` is the drone's (unspoofed) velocity
  // estimate at the fix time. Returns true when the alarm is raised.
  bool observe(const Vec3& gps_position, const Vec3& velocity, double time);

  [[nodiscard]] bool alarmed() const noexcept { return alarmed_; }
  // Time of the first alarm; meaningless unless alarmed().
  [[nodiscard]] double alarm_time() const noexcept { return alarm_time_; }
  // Largest innovation seen so far, m.
  [[nodiscard]] double peak_innovation() const noexcept { return peak_; }

  void reset();

 private:
  DetectorConfig config_;
  bool has_previous_ = false;
  Vec3 previous_position_;
  Vec3 previous_velocity_;
  double previous_time_ = 0.0;
  int consecutive_hits_ = 0;
  bool alarmed_ = false;
  double alarm_time_ = 0.0;
  double peak_ = 0.0;
};

struct DetectionReport {
  bool detected = false;
  int drone = -1;        // first drone whose detector alarmed
  double time = 0.0;     // alarm time
  double peak_innovation = 0.0;  // max over drones
};

// Runs one InnovationDetector per swarm member during a simulation.
class SwarmDetectionMonitor final : public sim::StepObserver {
 public:
  SwarmDetectionMonitor(int num_drones, const DetectorConfig& config = {});

  void on_step(double time, const sim::WorldSnapshot& snapshot,
               std::span<const sim::DroneState> truth) override;

  [[nodiscard]] DetectionReport report() const;

 private:
  std::vector<InnovationDetector> detectors_;
  DetectionReport first_alarm_;
};

}  // namespace swarmfuzz::defense
