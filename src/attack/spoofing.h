// GPS spoofing attack model (paper sections II and IV-A).
//
// The attacker performs *horizontal constant spoofing* on a single swarm
// member: during [t_start, t_start + duration) the target's GPS reading is
// offset by a constant distance d, laterally (perpendicular to the mission
// axis), to the right (theta = +1) or left (theta = -1). A test-run is the
// tuple <T-V, t_s, dt, theta>; this header defines the attack half of it.
#pragma once

#include <string>
#include <string_view>

#include "math/vec3.h"
#include "sim/gps.h"
#include "sim/mission.h"

namespace swarmfuzz::attack {

using math::Vec3;

// Spoofing direction: the paper encodes right as +1 and left as -1.
enum class SpoofDirection : int {
  kRight = +1,
  kLeft = -1,
};

[[nodiscard]] constexpr int direction_sign(SpoofDirection dir) noexcept {
  return static_cast<int>(dir);
}
[[nodiscard]] std::string_view direction_name(SpoofDirection dir) noexcept;
// Inverse of direction_name; throws std::invalid_argument on unknown names.
// Shared by every stream that persists a direction (telemetry, corpus).
[[nodiscard]] SpoofDirection direction_from_name(std::string_view name);
[[nodiscard]] SpoofDirection opposite(SpoofDirection dir) noexcept;

struct SpoofingPlan {
  int target = 0;                 // drone id under attack
  SpoofDirection direction = SpoofDirection::kRight;
  double start_time = 0.0;        // t_s, s
  double duration = 0.0;          // delta-t, s
  double distance = 10.0;         // d, m (paper evaluates 5 m and 10 m)

  [[nodiscard]] bool active_at(double t) const noexcept {
    return t >= start_time && t < start_time + duration;
  }
  [[nodiscard]] std::string to_string() const;
};

// GpsOffsetProvider that applies one SpoofingPlan. The lateral axis is
// derived from the mission (perpendicular to the mission axis, pointing
// left); "right" spoofing is -lateral.
class GpsSpoofer final : public sim::GpsOffsetProvider {
 public:
  GpsSpoofer(const SpoofingPlan& plan, const sim::MissionSpec& mission);

  [[nodiscard]] Vec3 offset(int drone_id, double time) const override;

  [[nodiscard]] const SpoofingPlan& plan() const noexcept { return plan_; }
  // The world-frame offset applied while the attack is active.
  [[nodiscard]] Vec3 active_offset() const noexcept { return active_offset_; }

 private:
  SpoofingPlan plan_;
  Vec3 active_offset_;
};

}  // namespace swarmfuzz::attack
