#include "attack/spoofing.h"

#include <cstdio>
#include <stdexcept>

#include "math/geometry.h"

namespace swarmfuzz::attack {

std::string_view direction_name(SpoofDirection dir) noexcept {
  return dir == SpoofDirection::kRight ? "right" : "left";
}

SpoofDirection direction_from_name(std::string_view name) {
  if (name == direction_name(SpoofDirection::kRight)) {
    return SpoofDirection::kRight;
  }
  if (name == direction_name(SpoofDirection::kLeft)) {
    return SpoofDirection::kLeft;
  }
  throw std::invalid_argument("attack: unknown spoof direction: " +
                              std::string{name});
}

SpoofDirection opposite(SpoofDirection dir) noexcept {
  return dir == SpoofDirection::kRight ? SpoofDirection::kLeft
                                       : SpoofDirection::kRight;
}

std::string SpoofingPlan::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "spoof{target=%d dir=%s t_s=%.2fs dt=%.2fs d=%.1fm}", target,
                direction_name(direction).data(), start_time, duration, distance);
  return buf;
}

GpsSpoofer::GpsSpoofer(const SpoofingPlan& plan, const sim::MissionSpec& mission)
    : plan_(plan) {
  if (plan.target < 0 || plan.target >= mission.num_drones()) {
    throw std::invalid_argument("GpsSpoofer: target out of range");
  }
  if (plan.distance < 0.0 || plan.duration < 0.0 || plan.start_time < 0.0) {
    throw std::invalid_argument("GpsSpoofer: negative spoofing parameter");
  }
  const Vec3 left = math::lateral_left(sim::mission_axis(mission));
  active_offset_ =
      left * (-static_cast<double>(direction_sign(plan.direction)) * plan.distance);
}

Vec3 GpsSpoofer::offset(int drone_id, double time) const {
  if (drone_id != plan_.target || !plan_.active_at(time)) return Vec3{};
  return active_offset_;
}

}  // namespace swarmfuzz::attack
