// Vehicle dynamics interface.
//
// The swarm controller outputs a desired velocity; a vehicle model tracks it.
// Two models are provided, mirroring SwarmLab:
//  - PointMassModel: first-order velocity tracking with acceleration limits
//    (fast; default for fuzzing campaigns),
//  - QuadrotorModel: 12-state rigid body with a cascaded PID flight
//    controller (the paper's setup: 0.296 kg quadcopter with PID control).
#pragma once

#include <memory>

#include "math/vec3.h"
#include "sim/types.h"

namespace swarmfuzz::sim {

using math::Vec3;

// Complete internal state of one vehicle, as captured into a simulation
// checkpoint (sim/checkpoint.h). The struct is the superset of every model's
// state: a point mass uses only `state`; the quadrotor additionally carries
// its rigid-body attitude, body rates, the velocity-loop PI integral and the
// commanded thrust. save()/restore() round-trip it bit-exactly.
struct VehicleCheckpoint {
  DroneState state;        // ground-truth position + velocity
  Vec3 attitude;           // quadrotor: roll, pitch, yaw (rad)
  Vec3 body_rates;         // quadrotor: p, q, r (rad/s)
  Vec3 velocity_integral;  // quadrotor: velocity-loop PI integral
  double thrust = 0.0;     // quadrotor: last commanded total thrust, N
};

class VehicleModel {
 public:
  virtual ~VehicleModel() = default;

  // Re-initialises the vehicle at rest-or-moving initial conditions.
  virtual void reset(const Vec3& position, const Vec3& velocity) = 0;

  // Advances the vehicle by dt seconds while tracking `desired_velocity`.
  virtual void step(const Vec3& desired_velocity, double dt) = 0;

  [[nodiscard]] virtual DroneState state() const = 0;

  // Captures / reinstates *all* state step() evolves, so that a restored
  // vehicle continues bit-identically to one that was never interrupted.
  virtual void save(VehicleCheckpoint& out) const = 0;
  virtual void restore(const VehicleCheckpoint& in) = 0;
};

enum class VehicleType {
  kPointMass,
  kQuadrotor,
};

struct PointMassParams {
  double max_acceleration = 5.0;  // m/s^2
  double max_speed = 8.0;         // m/s, hard clamp on tracked velocity
  double time_constant = 0.3;     // s, first-order velocity response
};

struct QuadrotorParams {
  double mass = 0.296;            // kg, SwarmLab default quadcopter
  double arm_length = 0.08;       // m
  double inertia_xx = 1.4e-4;     // kg m^2 (small quad, diagonal inertia)
  double inertia_yy = 1.4e-4;
  double inertia_zz = 2.2e-4;
  double gravity = 9.81;
  double max_tilt = 0.6;          // rad, attitude command saturation
  double max_thrust_factor = 2.0; // max thrust = factor * hover thrust
  double max_speed = 8.0;         // m/s velocity-command clamp
  double drag_coefficient = 0.08; // kg/s, linear aerodynamic drag
  // Cascaded loop gains (velocity -> attitude -> rate). Bandwidths are
  // separated by ~5x per stage (velocity ~1.5, attitude ~8, rate ~50 rad/s)
  // so the cascade is stable at the 5 ms internal substep.
  double vel_kp = 1.6;
  double vel_ki = 0.3;
  double att_kp = 8.0;    // rad/s commanded per rad of attitude error
  double rate_kp = 50.0;  // rad/s^2 per rad/s of rate error
  double rate_kd = 5.0;   // rad/s^2 per rad/s of body rate (damping)
};

// Factory: builds a model of the requested type with the given parameters.
[[nodiscard]] std::unique_ptr<VehicleModel> make_vehicle(
    VehicleType type, const PointMassParams& point_mass = {},
    const QuadrotorParams& quadrotor = {});

}  // namespace swarmfuzz::sim
