#include "sim/world.h"

#include <stdexcept>

namespace swarmfuzz::sim {

World::World(const MissionSpec& mission, VehicleType vehicle_type,
             const PointMassParams& point_mass, const QuadrotorParams& quadrotor) {
  vehicles_.reserve(mission.initial_positions.size());
  states_.reserve(mission.initial_positions.size());
  for (const Vec3& position : mission.initial_positions) {
    auto vehicle = make_vehicle(vehicle_type, point_mass, quadrotor);
    vehicle->reset(position, Vec3{});
    states_.push_back(vehicle->state());
    vehicles_.push_back(std::move(vehicle));
  }
}

DroneState World::state(int drone) const {
  if (drone < 0 || drone >= num_drones()) {
    throw std::out_of_range("World: drone id out of range");
  }
  return states_[static_cast<size_t>(drone)];
}

void World::save(std::vector<VehicleCheckpoint>& out) const {
  out.resize(vehicles_.size());
  for (size_t i = 0; i < vehicles_.size(); ++i) vehicles_[i]->save(out[i]);
}

void World::restore(std::span<const VehicleCheckpoint> vehicles, double time) {
  if (vehicles.size() != vehicles_.size()) {
    throw std::invalid_argument("World::restore: vehicle count mismatch");
  }
  for (size_t i = 0; i < vehicles_.size(); ++i) {
    vehicles_[i]->restore(vehicles[i]);
    states_[i] = vehicles_[i]->state();
  }
  time_ = time;
}

void World::step(std::span<const Vec3> desired, double dt) {
  if (static_cast<int>(desired.size()) != num_drones()) {
    throw std::invalid_argument("World::step: desired size mismatch");
  }
  for (size_t i = 0; i < vehicles_.size(); ++i) {
    vehicles_[i]->step(desired[i], dt);
    states_[i] = vehicles_[i]->state();
  }
  time_ += dt;
}

}  // namespace swarmfuzz::sim
