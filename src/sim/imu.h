// Inertial measurement unit model: measures the vehicle's acceleration with
// a constant per-device bias plus white noise. Together with the
// NavigationFilter this gives drones a GPS+IMU navigation pipeline, so GPS
// spoofing acts through sensor fusion instead of replacing the position
// outright (closer to a real autopilot; enable via
// SimulationConfig::use_navigation_filter).
#pragma once

#include "math/rng.h"
#include "math/vec3.h"

namespace swarmfuzz::sim {

using math::Vec3;

struct ImuConfig {
  double accel_noise_stddev = 0.05;  // m/s^2 per axis, white noise
  double accel_bias_stddev = 0.02;   // m/s^2 per axis, constant per device
};

// Mutable IMU state for simulation checkpoints: the white-noise RNG phase
// plus the per-device bias (constant, but restoring it explicitly keeps the
// checkpoint self-contained rather than relying on reconstruction order).
struct ImuSensorState {
  math::Rng::State rng{};
  Vec3 bias;
};

class ImuSensor {
 public:
  // The constant bias is drawn once from `rng` at construction.
  ImuSensor(const ImuConfig& config, math::Rng rng);

  // Measurement of the true acceleration.
  [[nodiscard]] Vec3 measure(const Vec3& true_acceleration);

  [[nodiscard]] const Vec3& bias() const noexcept { return bias_; }
  [[nodiscard]] const ImuConfig& config() const noexcept { return config_; }

  // Snapshot/restore so a resumed run draws the same noise sequence.
  void save(ImuSensorState& out) const;
  void restore(const ImuSensorState& in);

 private:
  ImuConfig config_;
  math::Rng rng_;
  Vec3 bias_;
};

}  // namespace swarmfuzz::sim
