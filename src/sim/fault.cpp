#include "sim/fault.h"

#include "util/format.h"

namespace swarmfuzz::sim {

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kNumericalDivergence: return "numerical_divergence";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kException: return "exception";
    case FaultKind::kCleanRunFailed: return "clean_run_failed";
  }
  return "?";
}

FaultKind fault_kind_from_name(std::string_view name) {
  for (const FaultKind kind :
       {FaultKind::kNone, FaultKind::kNumericalDivergence, FaultKind::kTimeout,
        FaultKind::kException, FaultKind::kCleanRunFailed}) {
    if (name == fault_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown fault kind: " + std::string{name});
}

RunFaultError::RunFaultError(RunFault fault)
    : std::runtime_error(util::format("{} at t={:.2f}s{}: {}",
                                      fault_kind_name(fault.kind), fault.time,
                                      fault.drone >= 0
                                          ? " drone=" + std::to_string(fault.drone)
                                          : std::string{},
                                      fault.detail)),
      fault_(std::move(fault)) {}

RunWatchdog RunWatchdog::with_timeout(double seconds) {
  RunWatchdog watchdog;
  watchdog.has_deadline = true;
  watchdog.deadline = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(seconds));
  return watchdog;
}

}  // namespace swarmfuzz::sim
