#include "sim/simulator.h"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "math/rng.h"
#include "util/logging.h"

namespace swarmfuzz::sim {

namespace {

// Shape check before touching any state: a checkpoint from a different
// mission size or sensing configuration must fail loudly, not resume into
// silently wrong dynamics.
void validate_checkpoint(const SimulationCheckpoint& cp, int n,
                         bool use_navigation_filter) {
  const auto drones = static_cast<size_t>(n);
  if (cp.vehicles.size() != drones || cp.gps.size() != drones) {
    throw std::invalid_argument("Simulator: checkpoint drone count mismatch");
  }
  const size_t fused = use_navigation_filter ? drones : 0;
  if (cp.imus.size() != fused || cp.filters.size() != fused) {
    throw std::invalid_argument(
        "Simulator: checkpoint navigation-filter state mismatch");
  }
}

// The negated comparisons below are deliberate: `!(x <= limit)` is true for
// NaN as well as for a genuine blowup, so one branch per drone covers both
// sentinel conditions.
[[noreturn]] void raise_divergence(double t, int drone, const char* what) {
  throw RunFaultError(RunFault{.kind = FaultKind::kNumericalDivergence,
                               .time = t,
                               .drone = drone,
                               .detail = what});
}

}  // namespace

Simulator::Simulator(SimulationConfig config) : config_(std::move(config)) {
  if (config_.dt <= 0.0) throw std::invalid_argument("Simulator: dt <= 0");
}

RunResult Simulator::run(const MissionSpec& mission, ControlSystem& control,
                         const GpsOffsetProvider* spoofer,
                         StepObserver* observer) const {
  return run(mission, control, RunHooks{.spoofer = spoofer, .observer = observer});
}

RunResult Simulator::run_from(const SimulationCheckpoint& checkpoint,
                              const Recorder& prefix_recorder,
                              const MissionSpec& mission, ControlSystem& control,
                              const GpsOffsetProvider* spoofer,
                              StepObserver* observer) const {
  return run(mission, control,
             RunHooks{.spoofer = spoofer, .observer = observer,
                      .resume_from = &checkpoint,
                      .resume_recorder = &prefix_recorder});
}

RunResult Simulator::run(const MissionSpec& mission, ControlSystem& control,
                         const RunHooks& hooks) const {
  const int n = mission.num_drones();
  if (n < 1) throw std::invalid_argument("Simulator: empty mission");
  const GpsOffsetProvider* spoofer = hooks.spoofer;
  StepObserver* observer = hooks.observer;
  const SimulationCheckpoint* resume = hooks.resume_from;
  if (resume != nullptr) {
    if (hooks.resume_recorder == nullptr) {
      throw std::invalid_argument(
          "Simulator: resume_from requires resume_recorder (the source run's "
          "recorder, which supplies the trajectory-sample prefix)");
    }
    validate_checkpoint(*resume, n, config_.use_navigation_filter);
  }

  World world(mission, config_.vehicle, config_.point_mass, config_.quadrotor);
  CollisionMonitor monitor(mission.drone_radius);

  // Intra-tick worker pool, resolved per run (sim_threads = 0 tracks the
  // host) and recreated only when the resolved width changes. Missions below
  // kSerialTickThreshold stay serial: the handoff would cost more than the
  // scans. The pool is handed to the control system for the duration of the
  // run and detached on every exit path; the collision monitor gets its own
  // lane context since check() runs outside control.compute().
  TickPool* pool = nullptr;
  if (n >= kSerialTickThreshold) {
    const int threads = resolve_sim_threads(config_.sim_threads);
    if (threads > 1) {
      if (tick_pool_ == nullptr || tick_pool_->threads() != threads) {
        tick_pool_ = std::make_unique<TickPool>(threads);
      }
      pool = tick_pool_.get();
    }
  }
  swarm::TickContext collision_context(pool != nullptr ? pool->threads() : 1);
  const swarm::TickExecutor tick_exec{pool, &collision_context};
  control.set_tick_pool(pool);
  struct TickPoolBinding {
    ControlSystem& control;
    ~TickPoolBinding() { control.set_tick_pool(nullptr); }
  } tick_pool_binding{control};

  math::Rng gps_rng(config_.noise_seed ^ mission.seed);
  std::vector<GpsSensor> gps;
  gps.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    gps.emplace_back(config_.gps, gps_rng.split(static_cast<std::uint64_t>(i)));
    gps.back().reset();
  }

  // Optional GPS+IMU fusion pipeline (one IMU + filter per drone).
  std::vector<ImuSensor> imus;
  std::vector<NavigationFilter> filters;
  if (config_.use_navigation_filter) {
    math::Rng imu_rng(config_.noise_seed * 0x9e3779b9ull + mission.seed);
    for (int i = 0; i < n; ++i) {
      imus.emplace_back(config_.imu, imu_rng.split(static_cast<std::uint64_t>(i)));
      filters.emplace_back(config_.nav_filter);
      filters.back().reset(mission.initial_positions[static_cast<size_t>(i)], Vec3{});
    }
  }

  control.reset(mission, mission.seed ^ 0x5f3759dfull);

  RunResult result{.recorder = Recorder(n, mission.obstacles, config_.record_period)};

  // `states` tracks World's internal buffer: step() refreshes it in place,
  // so the loop below never copies the state vector. Pre-step state needed
  // later in the tick (collision sweep, IMU acceleration) is kept in
  // preallocated scratch, making the whole sense→exchange→control loop
  // allocation-free in steady state (DESIGN.md §9).
  const std::vector<DroneState>& states = world.states();

  double t = 0.0;
  std::int64_t total_steps = 0;  // ticks since t=0, including resumed ones
  if (resume != nullptr) {
    // Everything above ran exactly as in the original prefix (the RNG
    // splits and control.reset() consume the same draws), and is now
    // overwritten wholesale with the checkpoint's state; the loop below
    // continues the original run bit-for-bit from `resume->time`.
    world.restore(resume->vehicles, resume->time);
    for (int i = 0; i < n; ++i) {
      gps[static_cast<size_t>(i)].restore(resume->gps[static_cast<size_t>(i)]);
    }
    if (config_.use_navigation_filter) {
      for (int i = 0; i < n; ++i) {
        imus[static_cast<size_t>(i)].restore(resume->imus[static_cast<size_t>(i)]);
        filters[static_cast<size_t>(i)].restore(
            resume->filters[static_cast<size_t>(i)]);
      }
    }
    control.restore_state(resume->control);
    result.recorder.restore(resume->recorder_state, *hooks.resume_recorder);
    result.collided = resume->collided;
    result.first_collision = resume->first_collision;
    t = resume->time;
    total_steps = resume->steps;
    result.steps_resumed = resume->steps;
  } else {
    result.recorder.record(0.0, states);
  }

  WorldSnapshot snapshot;
  snapshot.resize(n);
  std::vector<Vec3> desired(static_cast<size_t>(n));
  std::vector<DroneState> prev_states(static_cast<size_t>(n));
  std::vector<Vec3> prev_positions(static_cast<size_t>(n));

  // Sentinel/watchdog setup. The position envelope doubles as the
  // non-finite check: `!(norm_sq <= limit_sq)` is true for NaN too. With
  // divergence_limit == 0 only non-finite states fault (limit_sq = inf).
  const double divergence_limit_sq =
      config_.divergence_limit > 0.0
          ? config_.divergence_limit * config_.divergence_limit
          : std::numeric_limits<double>::infinity();
  const RunWatchdog& watchdog = hooks.watchdog;
  const FaultInjection& inject = hooks.inject_fault;

  double last_checkpoint = -std::numeric_limits<double>::infinity();
  while (t < mission.max_time) {
    // Watchdog: the step budget is a plain compare; the wall-clock deadline
    // is checked every 64 ticks to keep the clock read off the hot path.
    if (watchdog.max_steps > 0 && result.steps_executed >= watchdog.max_steps) {
      throw RunFaultError(RunFault{
          .kind = FaultKind::kTimeout,
          .time = t,
          .drone = -1,
          .detail = "sim-step budget of " + std::to_string(watchdog.max_steps) +
                    " steps exhausted"});
    }
    if (watchdog.has_deadline && (total_steps & 63) == 0 &&
        std::chrono::steady_clock::now() >= watchdog.deadline) {
      throw RunFaultError(RunFault{.kind = FaultKind::kTimeout,
                                   .time = t,
                                   .drone = -1,
                                   .detail = "wall-clock deadline exceeded"});
    }
    // 0. Checkpoint at loop-top, before any sensor consumes randomness for
    // this tick, so resuming here replays the tick exactly (including a
    // spoofing window that opens at this very t).
    if (hooks.checkpoints != nullptr &&
        t - last_checkpoint >= hooks.checkpoint_period - 1e-9) {
      SimulationCheckpoint cp;
      cp.time = t;
      cp.steps = total_steps;
      world.save(cp.vehicles);
      cp.gps.resize(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        gps[static_cast<size_t>(i)].save(cp.gps[static_cast<size_t>(i)]);
      }
      if (config_.use_navigation_filter) {
        cp.imus.resize(static_cast<size_t>(n));
        cp.filters.resize(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
          imus[static_cast<size_t>(i)].save(cp.imus[static_cast<size_t>(i)]);
          filters[static_cast<size_t>(i)].save(
              cp.filters[static_cast<size_t>(i)]);
        }
      }
      control.save_state(cp.control);
      cp.collided = result.collided;
      cp.first_collision = result.first_collision;
      result.recorder.save(cp.recorder_state);
      hooks.checkpoints->on_checkpoint(std::move(cp));
      last_checkpoint = t;
    }

    // 1-2. Sense and exchange states.
    snapshot.time = t;
    for (int i = 0; i < n; ++i) {
      const DroneState& truth = states[static_cast<size_t>(i)];
      const Vec3 offset = spoofer ? spoofer->offset(i, t) : Vec3{};
      const Vec3 fix = gps[static_cast<size_t>(i)].read(truth.position, offset, t);
      snapshot.id[static_cast<size_t>(i)] = i;
      if (config_.use_navigation_filter) {
        NavigationFilter& filter = filters[static_cast<size_t>(i)];
        filter.correct(fix);
        snapshot.gps_position[static_cast<size_t>(i)] = filter.position();
        snapshot.velocity[static_cast<size_t>(i)] = filter.velocity();
      } else {
        snapshot.gps_position[static_cast<size_t>(i)] = fix;
        snapshot.velocity[static_cast<size_t>(i)] = truth.velocity;
      }
    }

    if (observer != nullptr) observer->on_step(t, snapshot, states);

    // 3. Swarm control.
    control.compute(snapshot, mission, desired);

    if (inject.mode != FaultInjection::Mode::kNone && t >= inject.at_time) {
      switch (inject.mode) {
        case FaultInjection::Mode::kNan:
          desired[0] = Vec3{std::numeric_limits<double>::quiet_NaN(), 0.0, 0.0};
          break;
        case FaultInjection::Mode::kThrow:
          throw std::runtime_error("injected fault: throw at t=" +
                                   std::to_string(t));
        case FaultInjection::Mode::kHang:
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          break;
        case FaultInjection::Mode::kNone: break;
      }
    }

    // Sentinel: a non-finite control output would corrupt every downstream
    // state; fault here with the offending drone identified.
    for (int i = 0; i < n; ++i) {
      if (!(desired[static_cast<size_t>(i)].norm_sq() <
            std::numeric_limits<double>::infinity())) {
        raise_divergence(t, i, "non-finite control output");
      }
    }

    // 4. Physics.
    for (int i = 0; i < n; ++i) {
      prev_states[static_cast<size_t>(i)] = states[static_cast<size_t>(i)];
      prev_positions[static_cast<size_t>(i)] = states[static_cast<size_t>(i)].position;
    }
    world.step(desired, config_.dt);  // refreshes `states` in place
    t = world.time();
    ++total_steps;
    ++result.steps_executed;

    // Sentinel: ground truth must stay finite and inside the divergence
    // envelope. One negated compare per drone catches NaN and blowup alike.
    for (int i = 0; i < n; ++i) {
      const DroneState& s = states[static_cast<size_t>(i)];
      if (!(s.position.norm_sq() <= divergence_limit_sq)) {
        raise_divergence(t, i, "position diverged (non-finite or out of envelope)");
      }
      if (!(s.velocity.norm_sq() < std::numeric_limits<double>::infinity())) {
        raise_divergence(t, i, "non-finite velocity");
      }
    }
    if (config_.use_navigation_filter) {
      for (int i = 0; i < n; ++i) {
        const Vec3 true_accel = (states[static_cast<size_t>(i)].velocity -
                                 prev_states[static_cast<size_t>(i)].velocity) /
                                config_.dt;
        filters[static_cast<size_t>(i)].predict(
            imus[static_cast<size_t>(i)].measure(true_accel), config_.dt);
      }
    }
    result.recorder.record(t, states);

    if (const auto event = monitor.check(states, prev_positions,
                                         mission.obstacles, t, tick_exec)) {
      result.collided = true;
      if (!result.first_collision) result.first_collision = *event;
      SWARMFUZZ_DEBUG("collision at t={:.2f}s drone={} kind={}", event->time,
                      event->drone, event->kind == CollisionKind::kDroneObstacle
                                        ? "obstacle"
                                        : "drone");
      if (config_.stop_on_collision) break;
    }

    if (config_.stop_on_arrival) {
      Vec3 centroid;
      for (const DroneState& s : states) centroid += s.position;
      centroid = centroid / static_cast<double>(n);
      if (math::distance_xy(centroid, mission.destination) <= mission.arrival_radius) {
        result.reached_destination = true;
        break;
      }
    }
  }

  result.end_time = t;
  return result;
}

}  // namespace swarmfuzz::sim
