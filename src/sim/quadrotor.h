// 12-state quadrotor rigid-body model with a cascaded PID flight controller
// (velocity -> attitude -> body rate), matching the paper's setup of a
// 0.296 kg PID-controlled quadcopter in SwarmLab.
//
// Cascade, evaluated every internal substep:
//   1. velocity loop (PI)  : a_des = Kp (v_des - v) + Ki integral
//   2. thrust/attitude map : f = a_des + g z_hat; T = m |f|;
//                            (roll_des, pitch_des) tilt the thrust onto f
//                            (yaw held at 0 - flocking has no heading goal)
//   3. attitude loop (P)   : rate_des = Katt (angle_des - angle)
//   4. rate loop (P + damp): torque = I (Krate (rate_des - rate)) - Kd rate
// Rigid-body integration uses ZYX Euler kinematics and semi-implicit Euler,
// internally substepped to <= 5 ms so callers can step at any control dt.
#pragma once

#include "sim/dynamics.h"
#include "sim/pid.h"

namespace swarmfuzz::sim {

class QuadrotorModel final : public VehicleModel {
 public:
  explicit QuadrotorModel(const QuadrotorParams& params);

  void reset(const Vec3& position, const Vec3& velocity) override;
  void step(const Vec3& desired_velocity, double dt) override;
  [[nodiscard]] DroneState state() const override;
  void save(VehicleCheckpoint& out) const override;
  void restore(const VehicleCheckpoint& in) override;

  // Euler angles (roll, pitch, yaw) in radians; exposed for tests.
  [[nodiscard]] Vec3 attitude() const noexcept { return attitude_; }
  [[nodiscard]] Vec3 body_rates() const noexcept { return rates_; }
  // Most recent commanded total thrust, Newtons.
  [[nodiscard]] double thrust() const noexcept { return thrust_; }

  [[nodiscard]] const QuadrotorParams& params() const noexcept { return params_; }

 private:
  void substep(const Vec3& desired_velocity, double dt);

  QuadrotorParams params_;
  Vec3 position_;
  Vec3 velocity_;
  Vec3 attitude_;  // roll (x), pitch (y), yaw (z)
  Vec3 rates_;     // body angular rates p, q, r
  Vec3 velocity_integral_;
  double thrust_ = 0.0;
};

}  // namespace swarmfuzz::sim
