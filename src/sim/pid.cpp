#include "sim/pid.h"

#include <algorithm>
#include <stdexcept>

namespace swarmfuzz::sim {

Pid::Pid(const PidGains& gains) : gains_(gains) {
  if (gains.output_limit <= 0.0) throw std::invalid_argument("Pid: output_limit <= 0");
}

void Pid::reset() {
  integral_ = 0.0;
  previous_error_ = 0.0;
  has_history_ = false;
}

double Pid::update(double error, double dt) {
  if (dt <= 0.0) throw std::invalid_argument("Pid: dt <= 0");
  const double derivative = has_history_ ? (error - previous_error_) / dt : 0.0;
  previous_error_ = error;
  has_history_ = true;

  const double unsaturated =
      gains_.kp * error + gains_.ki * (integral_ + error * dt) + gains_.kd * derivative;
  const double saturated =
      std::clamp(unsaturated, -gains_.output_limit, gains_.output_limit);
  // Conditional anti-windup: only integrate when not pushing further into
  // saturation.
  if (unsaturated == saturated || unsaturated * error < 0.0) {
    integral_ += error * dt;
  }
  return saturated;
}

}  // namespace swarmfuzz::sim
