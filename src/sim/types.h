// Plain data types shared across the simulator, swarm controllers and the
// fuzzer. These are deliberately invariant-free structs (data members vary
// independently), so they stay structs per the Core Guidelines.
#pragma once

#include <vector>

#include "math/vec3.h"

namespace swarmfuzz::sim {

using math::Vec3;

// Ground-truth physical state of one drone.
struct DroneState {
  Vec3 position;
  Vec3 velocity;
};

// What the rest of the swarm knows about a drone at an instant: the GPS fix
// it broadcast (possibly spoofed and noisy) and its velocity estimate
// (IMU-derived, not affected by GPS spoofing — see DESIGN.md). This is the
// AoS convenience record; the broadcast itself stores the fields as
// structure-of-arrays (WorldSnapshot below).
struct DroneObservation {
  int id = 0;
  Vec3 gps_position;
  Vec3 velocity;
};

// The shared broadcast picture at one control tick. Swarm controllers only
// ever see this, never ground truth.
//
// Layout is structure-of-arrays: parallel vectors indexed by broadcast slot.
// The pair kernels (repulsion/friction/alignment) stream positions without
// dragging velocities and ids through the cache, and the spatial grid
// (swarm/spatial_grid.h) indexes straight into `gps_position`. Slot k's
// observation is {id[k], gps_position[k], velocity[k]}; the three vectors
// always have equal length.
struct WorldSnapshot {
  double time = 0.0;
  std::vector<int> id;
  std::vector<Vec3> gps_position;
  std::vector<Vec3> velocity;

  [[nodiscard]] int size() const noexcept { return static_cast<int>(id.size()); }
  [[nodiscard]] bool empty() const noexcept { return id.empty(); }

  void clear() {
    id.clear();
    gps_position.clear();
    velocity.clear();
  }
  void resize(int n) {
    id.resize(static_cast<size_t>(n));
    gps_position.resize(static_cast<size_t>(n));
    velocity.resize(static_cast<size_t>(n));
  }
  void reserve(int n) {
    id.reserve(static_cast<size_t>(n));
    gps_position.reserve(static_cast<size_t>(n));
    velocity.reserve(static_cast<size_t>(n));
  }
  void push_back(const DroneObservation& obs) {
    id.push_back(obs.id);
    gps_position.push_back(obs.gps_position);
    velocity.push_back(obs.velocity);
  }

  // AoS adapter for cold paths and tests.
  [[nodiscard]] DroneObservation observation(int k) const {
    return DroneObservation{.id = id[static_cast<size_t>(k)],
                            .gps_position = gps_position[static_cast<size_t>(k)],
                            .velocity = velocity[static_cast<size_t>(k)]};
  }
};

}  // namespace swarmfuzz::sim
