// Plain data types shared across the simulator, swarm controllers and the
// fuzzer. These are deliberately invariant-free structs (data members vary
// independently), so they stay structs per the Core Guidelines.
#pragma once

#include <vector>

#include "math/vec3.h"

namespace swarmfuzz::sim {

using math::Vec3;

// Ground-truth physical state of one drone.
struct DroneState {
  Vec3 position;
  Vec3 velocity;
};

// What the rest of the swarm knows about a drone at an instant: the GPS fix
// it broadcast (possibly spoofed and noisy) and its velocity estimate
// (IMU-derived, not affected by GPS spoofing — see DESIGN.md).
struct DroneObservation {
  int id = 0;
  Vec3 gps_position;
  Vec3 velocity;
};

// The shared broadcast picture at one control tick. Swarm controllers only
// ever see this, never ground truth.
struct WorldSnapshot {
  double time = 0.0;
  std::vector<DroneObservation> drones;
};

}  // namespace swarmfuzz::sim
