#include "sim/imu.h"

#include <stdexcept>

namespace swarmfuzz::sim {

ImuSensor::ImuSensor(const ImuConfig& config, math::Rng rng)
    : config_(config), rng_(rng) {
  if (config.accel_noise_stddev < 0.0 || config.accel_bias_stddev < 0.0) {
    throw std::invalid_argument("ImuSensor: negative noise parameter");
  }
  bias_ = Vec3{rng_.normal(0.0, config.accel_bias_stddev),
               rng_.normal(0.0, config.accel_bias_stddev),
               rng_.normal(0.0, config.accel_bias_stddev)};
}

void ImuSensor::save(ImuSensorState& out) const {
  out.rng = rng_.state();
  out.bias = bias_;
}

void ImuSensor::restore(const ImuSensorState& in) {
  rng_.set_state(in.rng);
  bias_ = in.bias;
}

Vec3 ImuSensor::measure(const Vec3& true_acceleration) {
  Vec3 reading = true_acceleration + bias_;
  if (config_.accel_noise_stddev > 0.0) {
    reading += Vec3{rng_.normal(0.0, config_.accel_noise_stddev),
                    rng_.normal(0.0, config_.accel_noise_stddev),
                    rng_.normal(0.0, config_.accel_noise_stddev)};
  }
  return reading;
}

}  // namespace swarmfuzz::sim
