#include "sim/recorder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace swarmfuzz::sim {

Recorder::Recorder(int num_drones, ObstacleField obstacles, double record_period)
    : num_drones_(num_drones),
      obstacles_(std::move(obstacles)),
      record_period_(record_period) {
  if (num_drones < 1) throw std::invalid_argument("Recorder: num_drones < 1");
  if (record_period < 0.0) throw std::invalid_argument("Recorder: negative period");
  const size_t cells =
      static_cast<size_t>(num_drones) * static_cast<size_t>(obstacles_.size());
  min_center_d2_.assign(cells, std::numeric_limits<double>::infinity());
  min_center_time_.assign(cells, 0.0);
}

void Recorder::record(double t, std::span<const DroneState> states) {
  if (static_cast<int>(states.size()) != num_drones_) {
    throw std::invalid_argument("Recorder: state count mismatch");
  }
  last_time_ = t;

  const int m = obstacles_.size();
  for (int i = 0; i < num_drones_; ++i) {
    const Vec3& pos = states[static_cast<size_t>(i)].position;
    const size_t row = static_cast<size_t>(i) * static_cast<size_t>(m);
    for (int k = 0; k < m; ++k) {
      const double d2 = (pos - obstacles_.at(k).center).norm_xy_sq();
      if (d2 < min_center_d2_[row + static_cast<size_t>(k)]) {
        min_center_d2_[row + static_cast<size_t>(k)] = d2;
        min_center_time_[row + static_cast<size_t>(k)] = t;
      }
    }
  }

  if (last_kept_ >= 0.0 && t - last_kept_ < record_period_ - 1e-9) return;
  last_kept_ = t;
  times_.push_back(t);
  states_.insert(states_.end(), states.begin(), states.end());
}

void Recorder::save(RecorderCheckpoint& out) const {
  out.num_samples = num_samples();
  out.last_kept = last_kept_;
  out.last_time = last_time_;
  out.min_center_d2 = min_center_d2_;
  out.min_center_time = min_center_time_;
}

void Recorder::restore(const RecorderCheckpoint& state, const Recorder& source) {
  if (source.num_drones_ != num_drones_ ||
      state.min_center_d2.size() != min_center_d2_.size() ||
      state.min_center_time.size() != min_center_time_.size()) {
    throw std::invalid_argument("Recorder: restore shape mismatch");
  }
  const int k = state.num_samples;
  if (k < 0 || k > source.num_samples()) {
    throw std::invalid_argument("Recorder: restore source has too few samples");
  }
  if (k > 0 && source.times_[static_cast<size_t>(k) - 1] != state.last_kept) {
    // The source's k-th kept sample is not the one this snapshot last kept:
    // the source is from a different run (or a different record cadence).
    throw std::invalid_argument("Recorder: restore source mismatch");
  }
  times_.assign(source.times_.begin(), source.times_.begin() + k);
  states_.assign(source.states_.begin(),
                 source.states_.begin() +
                     static_cast<size_t>(k) * static_cast<size_t>(num_drones_));
  min_center_d2_ = state.min_center_d2;
  min_center_time_ = state.min_center_time;
  last_kept_ = state.last_kept;
  last_time_ = state.last_time;
}

std::span<const DroneState> Recorder::sample(int index) const {
  if (index < 0 || index >= num_samples()) {
    throw std::out_of_range("Recorder: sample index out of range");
  }
  return {states_.data() + static_cast<size_t>(index) * static_cast<size_t>(num_drones_),
          static_cast<size_t>(num_drones_)};
}

int Recorder::sample_index_at(double t) const {
  if (times_.empty()) throw std::out_of_range("Recorder: no samples");
  const auto it = std::lower_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return 0;
  if (it == times_.end()) return num_samples() - 1;
  const auto hi = static_cast<int>(it - times_.begin());
  const int lo = hi - 1;
  return (t - times_[static_cast<size_t>(lo)] <= times_[static_cast<size_t>(hi)] - t)
             ? lo
             : hi;
}

double Recorder::min_obstacle_distance(int drone) const {
  if (drone < 0 || drone >= num_drones_) {
    throw std::out_of_range("Recorder: drone id out of range");
  }
  const size_t row =
      static_cast<size_t>(drone) * static_cast<size_t>(obstacles_.size());
  double best = std::numeric_limits<double>::infinity();
  for (int k = 0; k < obstacles_.size(); ++k) {
    const double dist = std::sqrt(min_center_d2_[row + static_cast<size_t>(k)]) -
                        obstacles_.at(k).radius;
    if (dist < best) best = dist;
  }
  return best;
}

double Recorder::time_of_min_obstacle_distance(int drone) const {
  if (drone < 0 || drone >= num_drones_) {
    throw std::out_of_range("Recorder: drone id out of range");
  }
  const size_t row =
      static_cast<size_t>(drone) * static_cast<size_t>(obstacles_.size());
  double best = std::numeric_limits<double>::infinity();
  double best_time = 0.0;
  for (int k = 0; k < obstacles_.size(); ++k) {
    const double dist = std::sqrt(min_center_d2_[row + static_cast<size_t>(k)]) -
                        obstacles_.at(k).radius;
    if (dist < best) {
      best = dist;
      best_time = min_center_time_[row + static_cast<size_t>(k)];
    }
  }
  return best_time;
}

double Recorder::avg_inter_distance(int index) const {
  const std::span<const DroneState> snap = sample(index);
  if (num_drones_ < 2) return 0.0;
  double sum = 0.0;
  int pairs = 0;
  for (int i = 0; i < num_drones_; ++i) {
    for (int j = i + 1; j < num_drones_; ++j) {
      sum += math::distance(snap[static_cast<size_t>(i)].position,
                            snap[static_cast<size_t>(j)].position);
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

double Recorder::closest_time(double up_to) const {
  double best_time = 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (int s = 0; s < num_samples(); ++s) {
    if (times_[static_cast<size_t>(s)] > up_to) break;
    const double avg = avg_inter_distance(s);
    if (avg < best) {
      best = avg;
      best_time = times_[static_cast<size_t>(s)];
    }
  }
  return best_time;
}

}  // namespace swarmfuzz::sim
