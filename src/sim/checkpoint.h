// Mid-run simulation snapshots for prefix reuse.
//
// A SimulationCheckpoint captures everything Simulator::run evolves between
// control ticks: ground-truth vehicle internals, every sensor's RNG stream
// and fix/bias state, the navigation filters, the control system's opaque
// state (e.g. the comm packet-drop RNG), the collision flags, the Recorder
// accumulators, and the accumulated sim clock. Resuming from a checkpoint
// via Simulator::run_from reproduces the uninterrupted run bit-for-bit,
// which is what lets the fuzzer skip re-simulating the pre-spoof prefix on
// every objective evaluation (fork-server-style throughput; see
// fuzz/objective.h and DESIGN.md section 10).
//
// The one thing a checkpoint does not embed is the recorder's kept
// trajectory samples: those are append-only, so run_from takes the source
// run's (later) recorder alongside the checkpoint and rebuilds the prefix
// from its first recorder_state.num_samples samples. That keeps capture
// cost and retained memory per checkpoint at a few KB regardless of how
// far into the mission it was taken.
//
// Checkpoints are captured at the top of the step loop, *before* sensing, so
// a checkpoint with time <= t_start of a spoofing window is always safe to
// resume with the spoofer attached: no sensor has consumed randomness for
// that tick yet, and spoofing that begins exactly at the checkpoint time is
// applied identically in both paths.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/collision.h"
#include "sim/dynamics.h"
#include "sim/gps.h"
#include "sim/imu.h"
#include "sim/nav_filter.h"
#include "sim/recorder.h"

namespace swarmfuzz::sim {

struct SimulationCheckpoint {
  double time = 0.0;        // accumulated sim clock at capture (loop-top)
  std::int64_t steps = 0;   // control ticks executed from t=0 up to `time`

  std::vector<VehicleCheckpoint> vehicles;  // one per drone, id order
  std::vector<GpsSensorState> gps;          // one per drone, id order
  std::vector<ImuSensorState> imus;         // empty unless nav filter enabled
  std::vector<NavFilterState> filters;      // empty unless nav filter enabled
  std::vector<std::uint64_t> control;       // ControlSystem::save_state blob

  bool collided = false;
  std::optional<CollisionEvent> first_collision;
  RecorderCheckpoint recorder_state;  // accumulators only; samples live in
                                      // the source run's recorder
};

// Receives checkpoints as the simulator captures them. The simulator moves
// each checkpoint in; the sink owns it afterwards.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual void on_checkpoint(SimulationCheckpoint&& checkpoint) = 0;
};

}  // namespace swarmfuzz::sim
