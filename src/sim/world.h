// World: owns the vehicle models and advances ground truth.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sim/dynamics.h"
#include "sim/mission.h"
#include "sim/types.h"

namespace swarmfuzz::sim {

class World {
 public:
  // Builds one vehicle per drone in `mission` at its initial position, at
  // rest, and time 0.
  World(const MissionSpec& mission, VehicleType vehicle_type,
        const PointMassParams& point_mass = {}, const QuadrotorParams& quadrotor = {});

  [[nodiscard]] int num_drones() const noexcept {
    return static_cast<int>(vehicles_.size());
  }
  [[nodiscard]] double time() const noexcept { return time_; }

  // Ground-truth state of one drone / all drones. states() returns a
  // reference to an internal buffer refreshed by step(): the reference
  // stays valid (and current) across steps, so per-step callers need no
  // copy. Callers that want a stable pre-step snapshot must copy.
  [[nodiscard]] DroneState state(int drone) const;
  [[nodiscard]] const std::vector<DroneState>& states() const noexcept {
    return states_;
  }

  // Advances every vehicle by dt tracking its desired velocity.
  // `desired.size()` must equal num_drones().
  void step(std::span<const Vec3> desired, double dt);

  // Captures every vehicle's internal state plus the sim clock into `out`
  // (resized to num_drones()), and the inverse. `time` must be the exact
  // accumulated clock of the run being restored: step() keeps adding dt to
  // it, so restoring the recorded double continues the same float
  // accumulation bit-identically.
  void save(std::vector<VehicleCheckpoint>& out) const;
  void restore(std::span<const VehicleCheckpoint> vehicles, double time);

 private:
  std::vector<std::unique_ptr<VehicleModel>> vehicles_;
  std::vector<DroneState> states_;  // cache of vehicles_[i]->state()
  double time_ = 0.0;
};

}  // namespace swarmfuzz::sim
