// Simulator front-end: runs one mission end-to-end.
//
// Per control tick (the distributed-swarm loop of Fig. 1 in the paper):
//   1. each drone reads its GPS (spoofing offset applied here),
//   2. drones exchange physical states (the shared WorldSnapshot),
//   3. the control system computes per-drone desired velocities,
//   4. vehicle dynamics advance ground truth,
// then collisions are checked and the recorder updated.
#pragma once

#include <optional>

#include "sim/collision.h"
#include "sim/control.h"
#include "sim/gps.h"
#include "sim/imu.h"
#include "sim/mission.h"
#include "sim/nav_filter.h"
#include "sim/recorder.h"
#include "sim/world.h"

namespace swarmfuzz::sim {

// Observes every control tick of a run (after sensing, before actuation).
// Used by defenses (GPS-spoofing detectors watch the broadcast fixes) and by
// streaming exporters. Observers must not mutate simulation state.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(double time, const WorldSnapshot& snapshot,
                       std::span<const DroneState> truth) = 0;
};

struct SimulationConfig {
  double dt = 0.05;               // control/physics step, s
  GpsConfig gps{.rate_hz = 20.0, .noise_stddev = 0.0};
  VehicleType vehicle = VehicleType::kPointMass;
  PointMassParams point_mass{};
  QuadrotorParams quadrotor{};
  bool stop_on_collision = true;  // collision ends the run
  bool stop_on_arrival = true;    // centroid within arrival_radius ends it
  double record_period = 0.1;     // s between kept trajectory samples
  std::uint64_t noise_seed = 1;   // GPS/IMU noise stream seed
  // When true, drones broadcast GPS+IMU fused estimates (complementary
  // navigation filter) instead of raw GPS fixes. Spoofing then drags the
  // estimate gradually rather than stepping it (see sim/nav_filter.h).
  bool use_navigation_filter = false;
  ImuConfig imu{};
  NavFilterConfig nav_filter{};
};

struct RunResult {
  bool collided = false;
  std::optional<CollisionEvent> first_collision;
  bool reached_destination = false;
  double end_time = 0.0;           // mission duration t_mission
  Recorder recorder;               // trajectories + VDO + t_clo

  // Convenience accessors over the recorder.
  [[nodiscard]] double vdo(int drone) const {
    return recorder.min_obstacle_distance(drone);
  }
  [[nodiscard]] double t_clo() const { return recorder.closest_time(); }
};

class Simulator {
 public:
  explicit Simulator(SimulationConfig config = {});

  // Runs `mission` under `control`; `spoofer` (optional) injects GPS
  // offsets; `observer` (optional) sees every control tick. The control
  // system is reset() before the run with a seed derived from the mission
  // seed, so repeated runs are identical.
  [[nodiscard]] RunResult run(const MissionSpec& mission, ControlSystem& control,
                              const GpsOffsetProvider* spoofer = nullptr,
                              StepObserver* observer = nullptr) const;

  [[nodiscard]] const SimulationConfig& config() const noexcept { return config_; }

 private:
  SimulationConfig config_;
};

}  // namespace swarmfuzz::sim
