// Simulator front-end: runs one mission end-to-end.
//
// Per control tick (the distributed-swarm loop of Fig. 1 in the paper):
//   1. each drone reads its GPS (spoofing offset applied here),
//   2. drones exchange physical states (the shared WorldSnapshot),
//   3. the control system computes per-drone desired velocities,
//   4. vehicle dynamics advance ground truth,
// then collisions are checked and the recorder updated.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "sim/checkpoint.h"
#include "sim/collision.h"
#include "sim/control.h"
#include "sim/fault.h"
#include "sim/gps.h"
#include "sim/imu.h"
#include "sim/mission.h"
#include "sim/nav_filter.h"
#include "sim/recorder.h"
#include "sim/tick_pool.h"
#include "sim/world.h"

namespace swarmfuzz::sim {

// Observes every control tick of a run (after sensing, before actuation).
// Used by defenses (GPS-spoofing detectors watch the broadcast fixes) and by
// streaming exporters. Observers must not mutate simulation state.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(double time, const WorldSnapshot& snapshot,
                       std::span<const DroneState> truth) = 0;
};

struct SimulationConfig {
  double dt = 0.05;               // control/physics step, s
  GpsConfig gps{.rate_hz = 20.0, .noise_stddev = 0.0};
  VehicleType vehicle = VehicleType::kPointMass;
  PointMassParams point_mass{};
  QuadrotorParams quadrotor{};
  bool stop_on_collision = true;  // collision ends the run
  bool stop_on_arrival = true;    // centroid within arrival_radius ends it
  double record_period = 0.1;     // s between kept trajectory samples
  std::uint64_t noise_seed = 1;   // GPS/IMU noise stream seed
  // When true, drones broadcast GPS+IMU fused estimates (complementary
  // navigation filter) instead of raw GPS fixes. Spoofing then drags the
  // estimate gradually rather than stepping it (see sim/nav_filter.h).
  bool use_navigation_filter = false;
  ImuConfig imu{};
  NavFilterConfig nav_filter{};
  // Numerical-health sentinel: a drone whose position magnitude exceeds this
  // (metres; missions span a few hundred) — or whose position, velocity or
  // control output goes non-finite — aborts the run with a structured
  // RunFaultError{kNumericalDivergence} instead of letting NaNs reach the
  // recorder and the objective math. 0 disables the magnitude envelope (the
  // non-finite checks stay on; they share the same comparison).
  double divergence_limit = 1e6;
  // Intra-tick worker threads for the per-drone hot loops (controller batch
  // kernels, lossless comm filtering, collision scans). 0 = auto (all
  // hardware threads); 1 (the default) = serial. Results are bit-identical
  // for every value — static contiguous chunking preserves each drone's
  // accumulation order (DESIGN.md §15) — and swarms below
  // kSerialTickThreshold stay on the serial path regardless.
  int sim_threads = 1;
};

struct RunResult {
  bool collided = false;
  std::optional<CollisionEvent> first_collision;
  bool reached_destination = false;
  double end_time = 0.0;           // mission duration t_mission
  Recorder recorder;               // trajectories + VDO + t_clo

  // Performance accounting: control ticks this call actually simulated vs
  // ticks inherited from the resume checkpoint (0 for from-scratch runs).
  // steps_executed + steps_resumed = total ticks of the logical mission.
  std::int64_t steps_executed = 0;
  std::int64_t steps_resumed = 0;

  // Convenience accessors over the recorder.
  [[nodiscard]] double vdo(int drone) const {
    return recorder.min_obstacle_distance(drone);
  }
  [[nodiscard]] double t_clo() const { return recorder.closest_time(); }
};

// Optional attachments for a run. All pointers are borrowed and may be null.
struct RunHooks {
  const GpsOffsetProvider* spoofer = nullptr;  // injects GPS offsets
  StepObserver* observer = nullptr;            // sees every control tick

  // When set, the run emits a SimulationCheckpoint at loop-top (before
  // sensing) every `checkpoint_period` seconds of sim time, starting at
  // t = 0. Resuming from any emitted checkpoint reproduces the remainder
  // of this run bit-for-bit (see sim/checkpoint.h). Captures cost a few µs
  // each (checkpoints carry no trajectory samples), so a tight period is
  // cheap and shortens the re-simulated gap between a resume point and the
  // spoofing window it serves.
  CheckpointSink* checkpoints = nullptr;
  double checkpoint_period = 1.0;  // s of sim time between checkpoints

  // When set, the run starts from this checkpoint instead of t = 0, and
  // `resume_recorder` must point at the recorder of the run that captured
  // it (at capture time or later — e.g. the finished clean run's recorder),
  // which supplies the trajectory-sample prefix. The checkpoint must come
  // from a run of the same mission under the same SimulationConfig and
  // control-system type; shape mismatches throw.
  const SimulationCheckpoint* resume_from = nullptr;
  const Recorder* resume_recorder = nullptr;

  // Execution guards: per-run sim-step budget and absolute wall-clock
  // deadline; exceeding either throws RunFaultError{kTimeout}. Defaults
  // disable both (see sim/fault.h).
  RunWatchdog watchdog{};

  // Deterministic fault injection (test machinery): drives a NaN, throw or
  // hang fault at a chosen sim time so containment paths can be exercised.
  FaultInjection inject_fault{};
};

class Simulator {
 public:
  explicit Simulator(SimulationConfig config = {});

  // Runs `mission` under `control`; `spoofer` (optional) injects GPS
  // offsets; `observer` (optional) sees every control tick. The control
  // system is reset() before the run with a seed derived from the mission
  // seed, so repeated runs are identical.
  [[nodiscard]] RunResult run(const MissionSpec& mission, ControlSystem& control,
                              const GpsOffsetProvider* spoofer = nullptr,
                              StepObserver* observer = nullptr) const;

  // Full-control entry point: spoofer/observer plus checkpoint emission
  // and/or resumption via `hooks`.
  [[nodiscard]] RunResult run(const MissionSpec& mission, ControlSystem& control,
                              const RunHooks& hooks) const;

  // Resumes `mission` from `checkpoint` (captured by an earlier run of the
  // same mission/config); `prefix_recorder` is that run's recorder, which
  // supplies the trajectory samples up to the checkpoint. The tail is
  // bit-identical to the uninterrupted run, including with a spoofer whose
  // window opens at or after checkpoint.time.
  [[nodiscard]] RunResult run_from(const SimulationCheckpoint& checkpoint,
                                   const Recorder& prefix_recorder,
                                   const MissionSpec& mission,
                                   ControlSystem& control,
                                   const GpsOffsetProvider* spoofer = nullptr,
                                   StepObserver* observer = nullptr) const;

  [[nodiscard]] const SimulationConfig& config() const noexcept { return config_; }

 private:
  SimulationConfig config_;
  // Lazily created per-run worker pool (only when the resolved sim_threads
  // exceeds 1 and the mission is large enough to leave the serial path).
  // mutable because run() is const; safe because a Simulator instance is
  // driven by one thread at a time — concurrent fuzzing goes through
  // EvalPool, whose workers each own their own Simulator.
  mutable std::unique_ptr<TickPool> tick_pool_;
};

}  // namespace swarmfuzz::sim
