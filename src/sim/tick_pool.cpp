#include "sim/tick_pool.h"

#include <algorithm>
#include <utility>

namespace swarmfuzz::sim {

int hardware_threads() noexcept {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

int resolve_sim_threads(int requested) noexcept {
  return requested <= 0 ? hardware_threads() : requested;
}

TickPool::TickPool(int threads) : threads_(std::max(threads, 1)) {
  errors_.assign(static_cast<std::size_t>(threads_), nullptr);
  if (threads_ > 1) {
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int w = 0; w < threads_ - 1; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

TickPool::~TickPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void TickPool::run(int n, ChunkFn fn, void* context) {
  if (n <= 0) return;
  if (workers_.empty()) {
    fn(context, 0, n, 0);
    return;
  }
  {
    const std::lock_guard lock(mutex_);
    fn_ = fn;
    context_ = context;
    n_ = n;
    remaining_ = workers_.size();
    ++generation_;
  }
  work_ready_.notify_all();
  // Lane 0 runs on the caller while the workers take lanes 1..T-1; its
  // exception is captured like theirs so the lowest-lane error wins below.
  try {
    const int end = chunk_bound(n, threads_, 1);
    if (end > 0) fn(context, 0, end, 0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  {
    std::unique_lock lock(mutex_);
    batch_done_.wait(lock, [this] { return remaining_ == 0; });
    fn_ = nullptr;
    context_ = nullptr;
    n_ = 0;
  }
  for (std::size_t lane = 0; lane < errors_.size(); ++lane) {
    if (errors_[lane] != nullptr) {
      const std::exception_ptr error = std::exchange(errors_[lane], nullptr);
      for (std::exception_ptr& slot : errors_) slot = nullptr;
      std::rethrow_exception(error);
    }
  }
}

void TickPool::worker_loop(int worker) {
  const int lane = worker + 1;
  std::uint64_t seen = 0;
  for (;;) {
    ChunkFn fn = nullptr;
    void* context = nullptr;
    int n = 0;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      context = context_;
      n = n_;
    }
    const int begin = chunk_bound(n, threads_, lane);
    const int end = chunk_bound(n, threads_, lane + 1);
    if (begin < end) {
      try {
        fn(context, begin, end, lane);
      } catch (...) {
        errors_[static_cast<std::size_t>(lane)] = std::current_exception();
      }
    }
    {
      const std::lock_guard lock(mutex_);
      if (--remaining_ == 0) batch_done_.notify_one();
    }
  }
}

}  // namespace swarmfuzz::sim
