// Implementation note: the factory lives in its own TU so headers stay
// lightweight; it is compiled into swarmfuzz_sim via point_mass.cpp /
// quadrotor.cpp siblings.
#include "sim/dynamics.h"

#include <stdexcept>

#include "sim/point_mass.h"
#include "sim/quadrotor.h"

namespace swarmfuzz::sim {

std::unique_ptr<VehicleModel> make_vehicle(VehicleType type,
                                           const PointMassParams& point_mass,
                                           const QuadrotorParams& quadrotor) {
  switch (type) {
    case VehicleType::kPointMass:
      return std::make_unique<PointMassModel>(point_mass);
    case VehicleType::kQuadrotor:
      return std::make_unique<QuadrotorModel>(quadrotor);
  }
  throw std::invalid_argument("make_vehicle: unknown vehicle type");
}

}  // namespace swarmfuzz::sim
