// Mission specification and the randomized mission generator.
//
// Missions follow the paper's setup (section V-A): the swarm spawns at
// random positions inside a 0-50 m box, flies 233.5 m to a pre-defined
// destination, and must avoid a single on-path obstacle placed at roughly
// the half-way mark. The obstacle's lateral offset and radius are randomized
// per mission, which produces the spread of victim-distance-to-obstacle
// (VDO) values analysed in Fig. 6.
#pragma once

#include <cstdint>
#include <vector>

#include "math/vec3.h"
#include "sim/obstacle.h"

namespace swarmfuzz::sim {

// A fully-instantiated mission: everything the simulator needs to run.
struct MissionSpec {
  std::vector<Vec3> initial_positions;  // one per drone
  Vec3 destination;
  double cruise_altitude = 10.0;  // m, all flight is at this height
  ObstacleField obstacles;
  double max_time = 180.0;        // s, hard cap on mission duration
  double arrival_radius = 8.0;    // m, centroid-to-destination arrival test
  double drone_radius = 0.3;      // m, collision radius of one drone
  std::uint64_t seed = 0;         // generator seed, kept for reproducibility

  [[nodiscard]] int num_drones() const noexcept {
    return static_cast<int>(initial_positions.size());
  }
};

// Knobs for the random generator; defaults mirror the paper.
struct MissionConfig {
  int num_drones = 5;
  double spawn_range = 50.0;        // spawn box edge, m (paper: 0-50 m)
  double min_spawn_separation = 8.0;  // m, rejection-sampled
  double mission_length = 233.5;    // m (paper)
  double cruise_altitude = 10.0;    // m
  int num_obstacles = 1;            // paper uses one; >1 supported (section VI)
  double obstacle_radius_min = 2.5;   // m
  double obstacle_radius_max = 4.0;   // m
  double obstacle_lateral_jitter = 12.0;  // m, off-path offset range
  double obstacle_along_jitter = 10.0;    // m, along-path placement jitter
  double max_time = 180.0;
  double arrival_radius = 8.0;
  double drone_radius = 0.3;
};

// Deterministically generates a mission from (config, seed). Spawn positions
// are rejection-sampled to respect min_spawn_separation; throws
// std::runtime_error if the box cannot fit the swarm (too many drones for
// the spawn range).
[[nodiscard]] MissionSpec generate_mission(const MissionConfig& config,
                                           std::uint64_t seed);

// Unit vector from the spawn centroid to the destination (the mission axis).
// Spoofing directions "left"/"right" are defined relative to this axis.
[[nodiscard]] Vec3 mission_axis(const MissionSpec& mission);

}  // namespace swarmfuzz::sim
