// Fault taxonomy and execution guards for fault-tolerant campaigns.
//
// A long fuzzing campaign must treat a bad evaluation the way AFL's fork
// server treats a bad input: one mission pays, the fleet survives. Three
// cooperating pieces implement that discipline:
//
//   1. Numerical-health sentinel (Simulator::run): non-finite positions,
//      velocities or control outputs — and position-magnitude blowup beyond
//      SimulationConfig::divergence_limit — abort the run with a structured
//      RunFaultError instead of propagating NaNs into VDO/objective math.
//   2. Watchdog (RunHooks::watchdog): a per-run sim-step budget and an
//      absolute wall-clock deadline; exceeding either raises kTimeout
//      instead of leaving a hung worker.
//   3. Fault injection (RunHooks::inject_fault): a deterministic test hook
//      that drives NaN, throw and hang faults at a chosen sim time so every
//      containment path is exercised end to end.
//
// The campaign supervisor (fuzz::run_campaign) catches RunFaultError (and
// any other exception, as kException), retries the mission with a salted
// seed, and quarantines persistent failures.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace swarmfuzz::sim {

// Terminal classification of a failed run/mission. kNone means healthy.
enum class FaultKind {
  kNone,
  kNumericalDivergence,  // non-finite state or position blowup (sentinel)
  kTimeout,              // sim-step budget or wall-clock deadline exceeded
  kException,            // any exception not raised as a structured fault
  kCleanRunFailed,       // mission collided without attack on every re-draw
};

// Stable wire names ("none", "numerical_divergence", ...), used in
// telemetry/quarantine records.
[[nodiscard]] std::string_view fault_kind_name(FaultKind kind) noexcept;
// Inverse of fault_kind_name; throws std::invalid_argument on unknown input.
[[nodiscard]] FaultKind fault_kind_from_name(std::string_view name);

// Structured description of an aborted run: what tripped, when, and (for
// drone-specific sentinels) which drone.
struct RunFault {
  FaultKind kind = FaultKind::kNone;
  double time = 0.0;   // sim time at detection
  int drone = -1;      // offending drone, -1 when not drone-specific
  std::string detail;  // human-readable diagnosis
};

// Exception carrying a RunFault out of Simulator::run / Objective::evaluate.
class RunFaultError : public std::runtime_error {
 public:
  explicit RunFaultError(RunFault fault);
  [[nodiscard]] const RunFault& fault() const noexcept { return fault_; }

 private:
  RunFault fault_;
};

// Deterministic fault injection, applied inside the simulation step loop
// once sim time reaches `at_time`. Test machinery only: the default mode
// kNone costs one branch per tick.
struct FaultInjection {
  enum class Mode {
    kNone,
    kNan,    // corrupt drone 0's control output to NaN (trips the sentinel)
    kThrow,  // throw a plain std::runtime_error (exercises kException)
    kHang,   // sleep 1 ms per tick (trips the wall-clock watchdog)
  };
  Mode mode = Mode::kNone;
  double at_time = 0.0;  // sim time at/after which the fault fires
};

// Per-run execution guards checked inside the step loop. Default values
// disable both checks.
struct RunWatchdog {
  std::int64_t max_steps = 0;  // ticks this run() call may execute; 0 = off
  bool has_deadline = false;   // when true, `deadline` is enforced
  // Absolute cutoff, so one deadline can span every run of a mission (clean
  // run plus all objective evaluations). Checked every 64 ticks to keep the
  // steady_clock read off the per-tick hot path.
  std::chrono::steady_clock::time_point deadline{};

  // Watchdog with a wall-clock deadline `seconds` from now.
  [[nodiscard]] static RunWatchdog with_timeout(double seconds);
};

}  // namespace swarmfuzz::sim
