#include "sim/gps.h"

#include <stdexcept>

namespace swarmfuzz::sim {

GpsSensor::GpsSensor(const GpsConfig& config, math::Rng rng)
    : config_(config), rng_(rng) {
  if (config.rate_hz <= 0.0) throw std::invalid_argument("GpsSensor: rate_hz <= 0");
  if (config.noise_stddev < 0.0) {
    throw std::invalid_argument("GpsSensor: negative noise");
  }
}

void GpsSensor::reset() {
  has_fix_ = false;
  fix_count_ = 0;
  last_fix_time_ = 0.0;
  last_fix_ = Vec3{};
}

void GpsSensor::save(GpsSensorState& out) const {
  out.rng = rng_.state();
  out.last_fix = last_fix_;
  out.last_fix_time = last_fix_time_;
  out.has_fix = has_fix_;
  out.fix_count = fix_count_;
}

void GpsSensor::restore(const GpsSensorState& in) {
  rng_.set_state(in.rng);
  last_fix_ = in.last_fix;
  last_fix_time_ = in.last_fix_time;
  has_fix_ = in.has_fix;
  fix_count_ = in.fix_count;
}

Vec3 GpsSensor::read(const Vec3& true_position, const Vec3& spoof_offset, double t) {
  const double period = 1.0 / config_.rate_hz;
  // Small epsilon so a caller stepping at exactly the GPS period re-samples
  // every step despite floating-point accumulation.
  if (!has_fix_ || t - last_fix_time_ >= period - 1e-9) {
    Vec3 fix = true_position + spoof_offset;
    if (config_.noise_stddev > 0.0) {
      fix += Vec3{rng_.normal(0.0, config_.noise_stddev),
                  rng_.normal(0.0, config_.noise_stddev),
                  rng_.normal(0.0, config_.noise_stddev)};
    }
    last_fix_ = fix;
    last_fix_time_ = t;
    has_fix_ = true;
    ++fix_count_;
  }
  return last_fix_;
}

}  // namespace swarmfuzz::sim
