// Complementary GPS/IMU navigation filter.
//
// Between GPS corrections the state is dead-reckoned from IMU acceleration;
// each correction blends the GPS fix into the estimate:
//   predict: v += a_imu * dt;  p += v * dt
//   correct: e = gps - p;  p += Kp * e;  v += Kv * e
// A spoofed fix therefore drags the estimate toward the spoofed position at
// a rate set by the gains instead of teleporting it, and leaves a velocity
// transient - the signature defenses look for (src/defense).
#pragma once

#include "math/vec3.h"

namespace swarmfuzz::sim {

using math::Vec3;

struct NavFilterConfig {
  double position_gain = 0.12;  // Kp, per correction
  double velocity_gain = 0.04;  // Kv (1/s-ish), per correction
};

// The filter's whole mutable state, for simulation checkpoints.
struct NavFilterState {
  Vec3 position;
  Vec3 velocity;
};

class NavigationFilter {
 public:
  explicit NavigationFilter(const NavFilterConfig& config = {});

  void reset(const Vec3& position, const Vec3& velocity);

  // Dead-reckoning with the IMU acceleration over dt (> 0).
  void predict(const Vec3& accel_measurement, double dt);

  // Blends a GPS fix into the state.
  void correct(const Vec3& gps_position);

  [[nodiscard]] const Vec3& position() const noexcept { return position_; }
  [[nodiscard]] const Vec3& velocity() const noexcept { return velocity_; }
  [[nodiscard]] const NavFilterConfig& config() const noexcept { return config_; }

  // Snapshot/restore of the (position, velocity) estimate.
  void save(NavFilterState& out) const {
    out.position = position_;
    out.velocity = velocity_;
  }
  void restore(const NavFilterState& in) { reset(in.position, in.velocity); }

 private:
  NavFilterConfig config_;
  Vec3 position_;
  Vec3 velocity_;
};

}  // namespace swarmfuzz::sim
