// Obstacles are vertical cylinders (SwarmLab models buildings/pillars the
// same way); collision and avoidance are horizontal.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "math/vec3.h"

namespace swarmfuzz::sim {

using math::Vec3;

struct CylinderObstacle {
  Vec3 center;          // axis position (z component unused)
  double radius = 1.0;  // metres
};

// Result of a nearest-obstacle query.
struct ObstacleHit {
  int index = -1;              // index into the field
  double surface_distance = 0; // horizontal distance to the surface (signed)
  Vec3 closest_point;          // on the surface, at the query height
  Vec3 outward_normal;         // horizontal unit normal at closest_point
};

// An immutable set of obstacles for one mission.
class ObstacleField {
 public:
  ObstacleField() = default;
  explicit ObstacleField(std::vector<CylinderObstacle> obstacles);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(obstacles_.size()); }
  [[nodiscard]] bool empty() const noexcept { return obstacles_.empty(); }
  [[nodiscard]] std::span<const CylinderObstacle> obstacles() const noexcept {
    return obstacles_;
  }
  [[nodiscard]] const CylinderObstacle& at(int index) const;

  // Nearest obstacle to `point` by surface distance; nullopt when empty.
  [[nodiscard]] std::optional<ObstacleHit> nearest(const Vec3& point) const;

  // Signed surface distance to the nearest obstacle; +infinity when empty.
  [[nodiscard]] double min_surface_distance(const Vec3& point) const;

 private:
  std::vector<CylinderObstacle> obstacles_;
};

}  // namespace swarmfuzz::sim
