#include "sim/quadrotor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace swarmfuzz::sim {
namespace {

constexpr double kMaxSubstep = 0.005;  // s

// Body z-axis in world frame for ZYX Euler angles (yaw assumed ~0 is not
// required here; full expression kept for correctness).
Vec3 body_z_world(const Vec3& att) {
  const double cr = std::cos(att.x), sr = std::sin(att.x);
  const double cp = std::cos(att.y), sp = std::sin(att.y);
  const double cy = std::cos(att.z), sy = std::sin(att.z);
  return {cy * sp * cr + sy * sr, sy * sp * cr - cy * sr, cp * cr};
}

}  // namespace

QuadrotorModel::QuadrotorModel(const QuadrotorParams& params) : params_(params) {
  if (params.mass <= 0.0 || params.inertia_xx <= 0.0 || params.inertia_yy <= 0.0 ||
      params.inertia_zz <= 0.0 || params.max_tilt <= 0.0 ||
      params.max_thrust_factor <= 1.0 || params.max_speed <= 0.0) {
    throw std::invalid_argument("QuadrotorModel: invalid parameter");
  }
}

void QuadrotorModel::reset(const Vec3& position, const Vec3& velocity) {
  position_ = position;
  velocity_ = velocity.clamped(params_.max_speed);
  attitude_ = {};
  rates_ = {};
  velocity_integral_ = {};
  thrust_ = params_.mass * params_.gravity;
}

DroneState QuadrotorModel::state() const { return {position_, velocity_}; }

void QuadrotorModel::save(VehicleCheckpoint& out) const {
  out.state = {position_, velocity_};
  out.attitude = attitude_;
  out.body_rates = rates_;
  out.velocity_integral = velocity_integral_;
  out.thrust = thrust_;
}

void QuadrotorModel::restore(const VehicleCheckpoint& in) {
  position_ = in.state.position;
  velocity_ = in.state.velocity;
  attitude_ = in.attitude;
  rates_ = in.body_rates;
  velocity_integral_ = in.velocity_integral;
  thrust_ = in.thrust;
}

void QuadrotorModel::step(const Vec3& desired_velocity, double dt) {
  if (dt <= 0.0) throw std::invalid_argument("QuadrotorModel: dt <= 0");
  const int substeps = std::max(1, static_cast<int>(std::ceil(dt / kMaxSubstep)));
  const double h = dt / substeps;
  for (int i = 0; i < substeps; ++i) substep(desired_velocity, h);
}

void QuadrotorModel::substep(const Vec3& desired_velocity, double dt) {
  const Vec3 v_des = desired_velocity.clamped(params_.max_speed);

  // 1. Velocity loop (PI) with clamped integral for anti-windup.
  const Vec3 v_err = v_des - velocity_;
  velocity_integral_ = (velocity_integral_ + v_err * dt).clamped(4.0);
  const Vec3 a_des =
      (v_err * params_.vel_kp + velocity_integral_ * params_.vel_ki).clamped(6.0);

  // 2. Map desired acceleration to thrust magnitude + attitude setpoint.
  const Vec3 f = a_des + Vec3{0.0, 0.0, params_.gravity};
  const double hover = params_.mass * params_.gravity;
  thrust_ = std::clamp(params_.mass * f.norm(), 0.1 * hover,
                       params_.max_thrust_factor * hover);
  const double fz = std::max(f.z, 1e-3);
  double pitch_des = std::atan2(f.x, fz);
  double roll_des = std::atan2(-f.y * std::cos(pitch_des), fz);
  pitch_des = std::clamp(pitch_des, -params_.max_tilt, params_.max_tilt);
  roll_des = std::clamp(roll_des, -params_.max_tilt, params_.max_tilt);
  const Vec3 att_des{roll_des, pitch_des, 0.0};

  // 3./4. Attitude (P) and rate (P + damping) loops. Gains are angular
  // accelerations per unit error; the inertia scaling keeps the closed-loop
  // bandwidth independent of the airframe.
  const Vec3 rate_des = (att_des - attitude_) * params_.att_kp;
  const Vec3 rate_err = rate_des - rates_;
  const Vec3 torque{
      params_.inertia_xx * (params_.rate_kp * rate_err.x - params_.rate_kd * rates_.x),
      params_.inertia_yy * (params_.rate_kp * rate_err.y - params_.rate_kd * rates_.y),
      params_.inertia_zz * (params_.rate_kp * rate_err.z - params_.rate_kd * rates_.z)};

  // Rigid-body rotational dynamics (gyroscopic coupling included).
  const Vec3 omega = rates_;
  const Vec3 omega_dot{
      (torque.x - (params_.inertia_zz - params_.inertia_yy) * omega.y * omega.z) /
          params_.inertia_xx,
      (torque.y - (params_.inertia_xx - params_.inertia_zz) * omega.x * omega.z) /
          params_.inertia_yy,
      (torque.z - (params_.inertia_yy - params_.inertia_xx) * omega.x * omega.y) /
          params_.inertia_zz};
  rates_ += omega_dot * dt;

  // ZYX Euler kinematics (guard the pitch singularity).
  const double cp = std::max(std::cos(attitude_.y), 0.2);
  const double sr = std::sin(attitude_.x), cr = std::cos(attitude_.x);
  const double tp = std::tan(std::clamp(attitude_.y, -1.2, 1.2));
  const Vec3 att_dot{rates_.x + sr * tp * rates_.y + cr * tp * rates_.z,
                     cr * rates_.y - sr * rates_.z,
                     (sr * rates_.y + cr * rates_.z) / cp};
  attitude_ += att_dot * dt;

  // Translational dynamics: thrust along body z minus gravity and linear
  // drag (the drag makes cruising require a sustained tilt, as on a real
  // airframe).
  const Vec3 accel = body_z_world(attitude_) * (thrust_ / params_.mass) -
                     Vec3{0.0, 0.0, params_.gravity} -
                     velocity_ * (params_.drag_coefficient / params_.mass);
  velocity_ = (velocity_ + accel * dt).clamped(1.5 * params_.max_speed);
  position_ += velocity_ * dt;
}

}  // namespace swarmfuzz::sim
