#include "sim/collision.h"

#include <stdexcept>

#include "math/geometry.h"

namespace swarmfuzz::sim {

CollisionMonitor::CollisionMonitor(double drone_radius) : drone_radius_(drone_radius) {
  if (drone_radius <= 0.0) {
    throw std::invalid_argument("CollisionMonitor: drone_radius <= 0");
  }
}

std::optional<CollisionEvent> CollisionMonitor::check(
    std::span<const DroneState> states, std::span<const Vec3> prev_positions,
    const ObstacleField& obstacles, double time) const {
  const int n = static_cast<int>(states.size());
  const bool swept = prev_positions.size() == states.size();

  for (int i = 0; i < n; ++i) {
    const Vec3& pos = states[static_cast<size_t>(i)].position;
    for (int k = 0; k < obstacles.size(); ++k) {
      const CylinderObstacle& o = obstacles.at(k);
      const double dist =
          swept ? math::segment_point_distance_xy(prev_positions[static_cast<size_t>(i)],
                                                  pos, o.center)
                : math::distance_xy(pos, o.center);
      if (dist <= o.radius + drone_radius_) {
        return CollisionEvent{CollisionKind::kDroneObstacle, time, i, k};
      }
    }
  }

  const double thr = 2.0 * drone_radius_;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const Vec3 d = states[static_cast<size_t>(i)].position -
                     states[static_cast<size_t>(j)].position;
      // Cheap squared pre-reject with a 2x margin: well-separated pairs
      // (the overwhelming majority) skip the sqrt. The margin is far beyond
      // any rounding of d.norm(), so pairs that could possibly satisfy
      // `dist <= thr` always fall through to the exact original test.
      if (d.norm_sq() > 4.0 * thr * thr) continue;
      const double dist = d.norm();
      if (dist <= thr) {
        return CollisionEvent{CollisionKind::kDroneDrone, time, i, j};
      }
    }
  }
  return std::nullopt;
}

}  // namespace swarmfuzz::sim
