#include "sim/collision.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "math/geometry.h"
#include "swarm/spatial_grid.h"

namespace swarmfuzz::sim {

CollisionMonitor::CollisionMonitor(double drone_radius) : drone_radius_(drone_radius) {
  if (drone_radius <= 0.0) {
    throw std::invalid_argument("CollisionMonitor: drone_radius <= 0");
  }
}

std::optional<CollisionEvent> CollisionMonitor::check(
    std::span<const DroneState> states, std::span<const Vec3> prev_positions,
    const ObstacleField& obstacles, double time,
    const swarm::TickExecutor& exec) const {
  const int n = static_cast<int>(states.size());
  const bool swept = prev_positions.size() == states.size();

  // First obstacle hit by drone i this step, or -1; k ascending so the
  // reported (drone, obstacle) pair matches the serial double loop.
  const auto first_obstacle = [&](int i) {
    const Vec3& pos = states[static_cast<size_t>(i)].position;
    for (int k = 0; k < obstacles.size(); ++k) {
      const CylinderObstacle& o = obstacles.at(k);
      const double dist =
          swept ? math::segment_point_distance_xy(prev_positions[static_cast<size_t>(i)],
                                                  pos, o.center)
                : math::distance_xy(pos, o.center);
      if (dist <= o.radius + drone_radius_) return k;
    }
    return -1;
  };

  // Drone-drone proximity. `pair_test` is the exact accept test; every scan
  // strategy below visits pairs in the same lexicographic (i, j) order, so
  // the first reported event is identical.
  const double thr = 2.0 * drone_radius_;
  const auto pair_test = [&](int i, int j) {
    const Vec3 d = states[static_cast<size_t>(i)].position -
                   states[static_cast<size_t>(j)].position;
    // Cheap squared pre-reject with a 2x margin: well-separated pairs
    // (the overwhelming majority) skip the sqrt. The margin is far beyond
    // any rounding of d.norm(), so pairs that could possibly satisfy
    // `dist <= thr` always fall through to the exact original test.
    if (d.norm_sq() > 4.0 * thr * thr) return false;
    return d.norm() <= thr;
  };

  // Grid fast path: any colliding pair has XY distance <= 3D distance
  // <= thr, so the per-drone candidate superset at radius thr contains every
  // partner the exact test could accept; candidates arrive in ascending
  // index order. check() is const, so the grid and staging buffers come
  // from the shared tick context (buffers reused: no steady-state
  // allocation); a parallel executor chunks both scans across the pool.
  if (swarm::spatial_grid_wanted(n)) {
    swarm::TickContext& ctx =
        exec.context != nullptr ? *exec.context : swarm::thread_tick_context();
    swarm::SpatialGrid& grid = ctx.grid();
    std::vector<Vec3>& pos = ctx.lane(0).pos;
    pos.clear();
    pos.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      pos.push_back(states[static_cast<size_t>(i)].position);
    }
    grid.build(std::span<const Vec3>(pos), std::max(thr, 1e-3));
    if (grid.valid()) {
      if (exec.parallel()) {
        // Each lane records its chunk's first obstacle event and first pair
        // event; a lane stops each scan at its first hit (later drones in
        // the chunk can only yield later events).
        exec.pool->parallel_for(n, [&](int begin, int end, int lane) {
          swarm::PairScanScratch& s = ctx.lane(lane);
          s.first_event = {};
          for (int i = begin; i < end; ++i) {
            const int k = first_obstacle(i);
            if (k >= 0) {
              s.first_event.obstacle_drone = i;
              s.first_event.obstacle_other = k;
              break;
            }
          }
          for (int i = begin; i < end && s.first_event.pair_drone < 0; ++i) {
            s.cand.clear();
            grid.gather(pos[static_cast<size_t>(i)], thr, s.cand);
            for (const int j : s.cand) {
              if (j <= i) continue;
              if (pair_test(i, j)) {
                s.first_event.pair_drone = i;
                s.first_event.pair_other = j;
                break;
              }
            }
          }
        });
        // Deterministic reduction matching the serial order: the serial
        // loop runs EVERY obstacle check before the first pair check, so
        // any obstacle event beats any pair event; within a class the
        // lowest lane holds the globally first event because chunks are
        // ascending and contiguous.
        for (int lane = 0; lane < exec.pool->threads(); ++lane) {
          const swarm::FirstEventSlots& e = ctx.lane(lane).first_event;
          if (e.obstacle_drone >= 0) {
            return CollisionEvent{CollisionKind::kDroneObstacle, time,
                                  e.obstacle_drone, e.obstacle_other};
          }
        }
        for (int lane = 0; lane < exec.pool->threads(); ++lane) {
          const swarm::FirstEventSlots& e = ctx.lane(lane).first_event;
          if (e.pair_drone >= 0) {
            return CollisionEvent{CollisionKind::kDroneDrone, time,
                                  e.pair_drone, e.pair_other};
          }
        }
        return std::nullopt;
      }
      for (int i = 0; i < n; ++i) {
        const int k = first_obstacle(i);
        if (k >= 0) {
          return CollisionEvent{CollisionKind::kDroneObstacle, time, i, k};
        }
      }
      std::vector<int>& cand = ctx.lane(0).cand;
      for (int i = 0; i < n; ++i) {
        cand.clear();
        grid.gather(pos[static_cast<size_t>(i)], thr, cand);
        for (const int j : cand) {
          if (j <= i) continue;
          if (pair_test(i, j)) {
            return CollisionEvent{CollisionKind::kDroneDrone, time, i, j};
          }
        }
      }
      return std::nullopt;
    }
  }

  for (int i = 0; i < n; ++i) {
    const int k = first_obstacle(i);
    if (k >= 0) {
      return CollisionEvent{CollisionKind::kDroneObstacle, time, i, k};
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (pair_test(i, j)) {
        return CollisionEvent{CollisionKind::kDroneDrone, time, i, j};
      }
    }
  }
  return std::nullopt;
}

}  // namespace swarmfuzz::sim
