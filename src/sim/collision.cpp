#include "sim/collision.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "math/geometry.h"
#include "swarm/spatial_grid.h"

namespace swarmfuzz::sim {

CollisionMonitor::CollisionMonitor(double drone_radius) : drone_radius_(drone_radius) {
  if (drone_radius <= 0.0) {
    throw std::invalid_argument("CollisionMonitor: drone_radius <= 0");
  }
}

std::optional<CollisionEvent> CollisionMonitor::check(
    std::span<const DroneState> states, std::span<const Vec3> prev_positions,
    const ObstacleField& obstacles, double time) const {
  const int n = static_cast<int>(states.size());
  const bool swept = prev_positions.size() == states.size();

  for (int i = 0; i < n; ++i) {
    const Vec3& pos = states[static_cast<size_t>(i)].position;
    for (int k = 0; k < obstacles.size(); ++k) {
      const CylinderObstacle& o = obstacles.at(k);
      const double dist =
          swept ? math::segment_point_distance_xy(prev_positions[static_cast<size_t>(i)],
                                                  pos, o.center)
                : math::distance_xy(pos, o.center);
      if (dist <= o.radius + drone_radius_) {
        return CollisionEvent{CollisionKind::kDroneObstacle, time, i, k};
      }
    }
  }

  // Drone-drone proximity. `pair_test` is the exact accept test; both scan
  // strategies below visit pairs in the same lexicographic (i, j) order, so
  // the first reported event is identical.
  const double thr = 2.0 * drone_radius_;
  const auto pair_test = [&](int i, int j) {
    const Vec3 d = states[static_cast<size_t>(i)].position -
                   states[static_cast<size_t>(j)].position;
    // Cheap squared pre-reject with a 2x margin: well-separated pairs
    // (the overwhelming majority) skip the sqrt. The margin is far beyond
    // any rounding of d.norm(), so pairs that could possibly satisfy
    // `dist <= thr` always fall through to the exact original test.
    if (d.norm_sq() > 4.0 * thr * thr) return false;
    return d.norm() <= thr;
  };

  // Grid fast path: any colliding pair has XY distance <= 3D distance
  // <= thr, so the per-drone candidate superset at radius thr contains every
  // partner the exact test could accept; candidates arrive in ascending
  // index order. check() is const, so the grid lives in thread-local
  // scratch (buffers reused: no steady-state allocation).
  if (swarm::spatial_grid_wanted(n)) {
    thread_local swarm::SpatialGrid grid;
    thread_local std::vector<Vec3> pos;
    thread_local std::vector<int> cand;
    pos.clear();
    pos.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      pos.push_back(states[static_cast<size_t>(i)].position);
    }
    grid.build(std::span<const Vec3>(pos), std::max(thr, 1e-3));
    if (grid.valid()) {
      for (int i = 0; i < n; ++i) {
        cand.clear();
        grid.gather(pos[static_cast<size_t>(i)], thr, cand);
        for (const int j : cand) {
          if (j <= i) continue;
          if (pair_test(i, j)) {
            return CollisionEvent{CollisionKind::kDroneDrone, time, i, j};
          }
        }
      }
      return std::nullopt;
    }
  }

  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (pair_test(i, j)) {
        return CollisionEvent{CollisionKind::kDroneDrone, time, i, j};
      }
    }
  }
  return std::nullopt;
}

}  // namespace swarmfuzz::sim
