#include "sim/obstacle.h"

#include <limits>
#include <stdexcept>

#include "math/geometry.h"

namespace swarmfuzz::sim {

ObstacleField::ObstacleField(std::vector<CylinderObstacle> obstacles)
    : obstacles_(std::move(obstacles)) {
  for (const CylinderObstacle& o : obstacles_) {
    if (o.radius <= 0.0) throw std::invalid_argument("ObstacleField: radius <= 0");
  }
}

const CylinderObstacle& ObstacleField::at(int index) const {
  if (index < 0 || index >= size()) {
    throw std::out_of_range("ObstacleField: index out of range");
  }
  return obstacles_[static_cast<size_t>(index)];
}

std::optional<ObstacleHit> ObstacleField::nearest(const Vec3& point) const {
  std::optional<ObstacleHit> best;
  for (int i = 0; i < size(); ++i) {
    const CylinderObstacle& o = obstacles_[static_cast<size_t>(i)];
    const double dist = math::distance_to_cylinder(point, o.center, o.radius);
    if (!best || dist < best->surface_distance) {
      best = ObstacleHit{
          .index = i,
          .surface_distance = dist,
          .closest_point = math::closest_point_on_cylinder(point, o.center, o.radius),
          .outward_normal = math::cylinder_outward_normal(point, o.center),
      };
    }
  }
  return best;
}

double ObstacleField::min_surface_distance(const Vec3& point) const {
  const auto hit = nearest(point);
  return hit ? hit->surface_distance : std::numeric_limits<double>::infinity();
}

}  // namespace swarmfuzz::sim
