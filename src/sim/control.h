// Control-system boundary between the simulator and the swarm algorithms.
//
// The interface lives in sim/ (not swarm/) so the simulator does not depend
// on concrete flocking implementations; swarm/ provides FlockingControlSystem
// on top of this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/mission.h"
#include "sim/types.h"

namespace swarmfuzz::sim {

class TickPool;

// Computes one desired velocity per drone from the shared broadcast picture.
// Implementations may keep state (e.g. a communication model with packet
// drops); reset() is called once per mission before the first compute().
class ControlSystem {
 public:
  virtual ~ControlSystem() = default;

  virtual void reset(const MissionSpec& mission, std::uint64_t seed) = 0;

  // Hands the implementation a borrowed intra-tick worker pool before the
  // first compute() of a run (nullptr detaches it afterwards; the pool
  // outlives the binding). Implementations that opt in MUST stay
  // bit-identical for every pool size — the pool exists to move wall time,
  // never results. The default ignores the pool and stays serial.
  virtual void set_tick_pool(TickPool* pool) { (void)pool; }

  // `desired` has exactly snapshot.size() entries, filled in id order.
  virtual void compute(const WorldSnapshot& snapshot, const MissionSpec& mission,
                       std::span<Vec3> desired) = 0;

  // Mid-run state capture for simulation checkpoints (sim/checkpoint.h):
  // save_state() serializes whatever compute() evolves between ticks (RNG
  // streams, filters) into an opaque word blob; restore_state() — called
  // after reset() with a blob from the same implementation — reinstates it
  // so the next compute() behaves bit-identically to the uninterrupted run.
  // Stateless systems (the default) save an empty blob and ignore restores.
  virtual void save_state(std::vector<std::uint64_t>& out) const { out.clear(); }
  virtual void restore_state(std::span<const std::uint64_t> state) {
    (void)state;
  }
};

}  // namespace swarmfuzz::sim
