#include "sim/nav_filter.h"

#include <stdexcept>

namespace swarmfuzz::sim {

NavigationFilter::NavigationFilter(const NavFilterConfig& config) : config_(config) {
  if (config.position_gain <= 0.0 || config.position_gain > 1.0 ||
      config.velocity_gain < 0.0) {
    throw std::invalid_argument("NavigationFilter: invalid gains");
  }
}

void NavigationFilter::reset(const Vec3& position, const Vec3& velocity) {
  position_ = position;
  velocity_ = velocity;
}

void NavigationFilter::predict(const Vec3& accel_measurement, double dt) {
  if (dt <= 0.0) throw std::invalid_argument("NavigationFilter: dt <= 0");
  velocity_ += accel_measurement * dt;
  position_ += velocity_ * dt;
}

void NavigationFilter::correct(const Vec3& gps_position) {
  const Vec3 error = gps_position - position_;
  position_ += error * config_.position_gain;
  velocity_ += error * config_.velocity_gain;
}

}  // namespace swarmfuzz::sim
