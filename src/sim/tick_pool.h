// Deterministic intra-mission worker pool for the per-tick hot loops.
//
// EvalPool (fuzz/eval_pool.h) parallelizes *across* independent simulations;
// TickPool parallelizes *inside* one simulation tick. Per-drone kernel
// outputs are independent given the immutable per-tick inputs (WorldSnapshot,
// SpatialGrid), so the pool splits the drone range into STATIC CONTIGUOUS
// chunks — chunk boundaries depend only on (n, threads), never on timing —
// and each drone's floating-point accumulation order is exactly the serial
// order. Results are therefore bit-identical for any thread count; only wall
// time changes. The golden ParallelTick tests and DESIGN.md §15 hold the
// claim.
//
// The handoff mirrors EvalPool's persistent-worker + generation pattern:
// run() publishes the kernel under the mutex and bumps the generation, the
// CALLER executes chunk 0 inline (lane 0), workers execute chunks 1..T-1
// (lane = worker index + 1), and the last worker's countdown releases the
// caller — so every worker write is ordered before the caller's reads.
// run() performs no heap allocation, keeping the steady-state tick loop
// allocation-free (the zero-allocation tests cover the threaded path too).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace swarmfuzz::sim {

// std::thread::hardware_concurrency() with the unknown-concurrency zero case
// clamped to 1. The sim-layer twin of fuzz::hardware_threads() (which
// delegates here); every thread-count resolution goes through one of them.
[[nodiscard]] int hardware_threads() noexcept;

// Resolves a --sim-threads request: <= 0 is auto (all hardware threads),
// explicit values pass through. Always >= 1.
[[nodiscard]] int resolve_sim_threads(int requested) noexcept;

// Swarms below this size stay on the serial tick path: chunk handoff costs
// more than a sub-32-drone pair scan, so paper-scale 5-15-drone missions pay
// zero overhead. Deliberately equal to SpatialGridPolicy's default
// min_drones — the parallel kernels only exist on the grid fast paths.
inline constexpr int kSerialTickThreshold = 32;

class TickPool {
 public:
  // Clamped to >= 1 threads; with one thread no workers are spawned and
  // parallel_for() runs inline on the caller.
  explicit TickPool(int threads);
  ~TickPool();

  TickPool(const TickPool&) = delete;
  TickPool& operator=(const TickPool&) = delete;

  [[nodiscard]] int threads() const noexcept { return threads_; }

  // Invokes fn(begin, end, lane) so that the half-open chunks [begin, end)
  // partition [0, n) into threads() static contiguous pieces (chunk c =
  // [c*n/T, (c+1)*n/T)); lane c runs chunk c. The caller runs lane 0
  // inline; one call in flight at a time per pool (callers must not nest).
  // `fn` must write only lane-disjoint state plus its own drone range. An
  // exception thrown by any lane is rethrown here (lowest lane wins, so the
  // surfaced error is the one the serial loop would have hit first).
  template <typename Fn>
  void parallel_for(int n, Fn&& fn) {
    run(n,
        [](void* context, int begin, int end, int lane) {
          (*static_cast<std::remove_reference_t<Fn>*>(context))(begin, end, lane);
        },
        std::addressof(fn));
  }

 private:
  using ChunkFn = void (*)(void* context, int begin, int end, int lane);

  void run(int n, ChunkFn fn, void* context);
  void worker_loop(int worker);

  [[nodiscard]] static int chunk_bound(int n, int threads, int lane) noexcept {
    return static_cast<int>((static_cast<std::int64_t>(n) * lane) / threads);
  }

  int threads_ = 1;

  // Generation handoff (see EvalPool): run() publishes {fn_, context_, n_}
  // under the mutex and bumps generation_; each worker runs its fixed chunk
  // and the last decrement of remaining_ (under the mutex) wakes the caller.
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  ChunkFn fn_ = nullptr;
  void* context_ = nullptr;
  int n_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;  // one slot per lane, preallocated
  std::vector<std::thread> workers_;        // threads_ - 1 persistent workers
};

}  // namespace swarmfuzz::sim
