#include "sim/point_mass.h"

#include <stdexcept>

namespace swarmfuzz::sim {

PointMassModel::PointMassModel(const PointMassParams& params) : params_(params) {
  if (params.max_acceleration <= 0.0 || params.max_speed <= 0.0 ||
      params.time_constant <= 0.0) {
    throw std::invalid_argument("PointMassModel: non-positive parameter");
  }
}

void PointMassModel::reset(const Vec3& position, const Vec3& velocity) {
  state_.position = position;
  state_.velocity = velocity.clamped(params_.max_speed);
}

void PointMassModel::step(const Vec3& desired_velocity, double dt) {
  if (dt <= 0.0) throw std::invalid_argument("PointMassModel: dt <= 0");
  const Vec3 target = desired_velocity.clamped(params_.max_speed);
  const Vec3 accel =
      ((target - state_.velocity) / params_.time_constant).clamped(params_.max_acceleration);
  // Semi-implicit Euler: update velocity first so position uses the new
  // velocity; stable for this first-order system at any dt we use.
  state_.velocity = (state_.velocity + accel * dt).clamped(params_.max_speed);
  state_.position += state_.velocity * dt;
}

}  // namespace swarmfuzz::sim
