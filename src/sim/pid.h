// Scalar PID controller with clamped output and integral anti-windup, used
// by the quadrotor model's cascaded loops (SwarmLab drones use PID flight
// controllers, section V-A of the paper).
#pragma once

#include <limits>

namespace swarmfuzz::sim {

struct PidGains {
  double kp = 0.0;
  double ki = 0.0;
  double kd = 0.0;
  // Symmetric output saturation; also bounds the integral term's
  // contribution (conditional anti-windup).
  double output_limit = std::numeric_limits<double>::infinity();
};

class Pid {
 public:
  explicit Pid(const PidGains& gains);

  // Clears the integral and derivative history.
  void reset();

  // One update with measured error over timestep dt (> 0). The derivative is
  // computed on the error signal; the first call after reset() uses a zero
  // derivative (no history).
  double update(double error, double dt);

  [[nodiscard]] const PidGains& gains() const noexcept { return gains_; }
  [[nodiscard]] double integral() const noexcept { return integral_; }

 private:
  PidGains gains_;
  double integral_ = 0.0;
  double previous_error_ = 0.0;
  bool has_history_ = false;
};

}  // namespace swarmfuzz::sim
