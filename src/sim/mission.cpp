#include "sim/mission.h"

#include <algorithm>
#include <stdexcept>

#include "math/rng.h"

namespace swarmfuzz::sim {

MissionSpec generate_mission(const MissionConfig& config, std::uint64_t seed) {
  if (config.num_drones < 2) {
    throw std::invalid_argument("generate_mission: need at least 2 drones");
  }
  if (config.spawn_range <= 0.0 || config.mission_length <= 0.0) {
    throw std::invalid_argument("generate_mission: non-positive dimensions");
  }

  math::Rng rng(seed);
  math::Rng spawn_rng = rng.split(1);
  math::Rng obstacle_rng = rng.split(2);

  MissionSpec mission;
  mission.seed = seed;
  mission.cruise_altitude = config.cruise_altitude;
  mission.max_time = config.max_time;
  mission.arrival_radius = config.arrival_radius;
  mission.drone_radius = config.drone_radius;

  // Spawn positions: uniform in the box, rejection-sampled for separation.
  const Vec3 lo{0.0, 0.0, config.cruise_altitude};
  const Vec3 hi{config.spawn_range, config.spawn_range, config.cruise_altitude};
  // The attempt budget scales with swarm size: large swarms legitimately
  // need more rejection-sampling draws even in a comfortably sized box.
  const int max_attempts = std::max(20000, 200 * config.num_drones);
  int attempts = 0;
  while (static_cast<int>(mission.initial_positions.size()) < config.num_drones) {
    if (++attempts > max_attempts) {
      throw std::runtime_error(
          "generate_mission: cannot place swarm with requested separation");
    }
    const Vec3 candidate = spawn_rng.uniform_in_box(lo, hi);
    bool ok = true;
    for (const Vec3& placed : mission.initial_positions) {
      if (math::distance_xy(candidate, placed) < config.min_spawn_separation) {
        ok = false;
        break;
      }
    }
    if (ok) mission.initial_positions.push_back(candidate);
  }

  // Mission axis: +x from the spawn-box centre, per the paper's layout.
  const Vec3 spawn_center{config.spawn_range / 2.0, config.spawn_range / 2.0,
                          config.cruise_altitude};
  mission.destination =
      spawn_center + Vec3{config.mission_length, 0.0, 0.0};

  // Obstacles near the half-way mark with lateral jitter.
  std::vector<CylinderObstacle> obstacles;
  obstacles.reserve(static_cast<size_t>(config.num_obstacles));
  for (int i = 0; i < config.num_obstacles; ++i) {
    const double along =
        config.mission_length / 2.0 +
        obstacle_rng.uniform(-config.obstacle_along_jitter, config.obstacle_along_jitter) +
        // Spread multiple obstacles out along the path so they are met in
        // sequence rather than simultaneously.
        static_cast<double>(i) * 3.0 * config.obstacle_radius_max;
    const double lateral = obstacle_rng.uniform(-config.obstacle_lateral_jitter,
                                                config.obstacle_lateral_jitter);
    const double radius =
        obstacle_rng.uniform(config.obstacle_radius_min, config.obstacle_radius_max);
    obstacles.push_back(CylinderObstacle{
        .center = spawn_center + Vec3{along, lateral, 0.0},
        .radius = radius,
    });
  }
  mission.obstacles = ObstacleField(std::move(obstacles));
  return mission;
}

Vec3 mission_axis(const MissionSpec& mission) {
  Vec3 centroid;
  for (const Vec3& p : mission.initial_positions) centroid += p;
  if (!mission.initial_positions.empty()) {
    centroid = centroid / static_cast<double>(mission.initial_positions.size());
  }
  return (mission.destination - centroid).horizontal().normalized();
}

}  // namespace swarmfuzz::sim
