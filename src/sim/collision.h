// Collision detection between drones and obstacles / other drones.
//
// Obstacle checks sweep the segment travelled during a step so fast drones
// cannot tunnel through a thin cylinder between samples. Drone-drone checks
// use instantaneous distance (relative speeds are low in a flock).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sim/mission.h"
#include "sim/types.h"
#include "swarm/tick_context.h"

namespace swarmfuzz::sim {

enum class CollisionKind {
  kDroneObstacle,
  kDroneDrone,
};

struct CollisionEvent {
  CollisionKind kind = CollisionKind::kDroneObstacle;
  double time = 0.0;
  int drone = -1;   // the drone that collided
  int other = -1;   // obstacle index, or the other drone's id
};

class CollisionMonitor {
 public:
  explicit CollisionMonitor(double drone_radius);

  // Checks all drones against obstacles (swept from prev_positions) and each
  // other; returns the first collision found, if any. `prev_positions` may
  // be empty on the first step (point checks only). A parallel `exec` chunks
  // the per-drone scans over the tick pool; the lane-wise reduction
  // reproduces the serial first-event choice exactly (obstacle events beat
  // drone-drone events, and within a class the lowest drone index wins), so
  // the returned event is identical for any thread count.
  [[nodiscard]] std::optional<CollisionEvent> check(
      std::span<const DroneState> states, std::span<const Vec3> prev_positions,
      const ObstacleField& obstacles, double time,
      const swarm::TickExecutor& exec = {}) const;

  [[nodiscard]] double drone_radius() const noexcept { return drone_radius_; }

 private:
  double drone_radius_;
};

}  // namespace swarmfuzz::sim
