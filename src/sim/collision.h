// Collision detection between drones and obstacles / other drones.
//
// Obstacle checks sweep the segment travelled during a step so fast drones
// cannot tunnel through a thin cylinder between samples. Drone-drone checks
// use instantaneous distance (relative speeds are low in a flock).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sim/mission.h"
#include "sim/types.h"

namespace swarmfuzz::sim {

enum class CollisionKind {
  kDroneObstacle,
  kDroneDrone,
};

struct CollisionEvent {
  CollisionKind kind = CollisionKind::kDroneObstacle;
  double time = 0.0;
  int drone = -1;   // the drone that collided
  int other = -1;   // obstacle index, or the other drone's id
};

class CollisionMonitor {
 public:
  explicit CollisionMonitor(double drone_radius);

  // Checks all drones against obstacles (swept from prev_positions) and each
  // other; returns the first collision found, if any. `prev_positions` may
  // be empty on the first step (point checks only).
  [[nodiscard]] std::optional<CollisionEvent> check(
      std::span<const DroneState> states, std::span<const Vec3> prev_positions,
      const ObstacleField& obstacles, double time) const;

  [[nodiscard]] double drone_radius() const noexcept { return drone_radius_; }

 private:
  double drone_radius_;
};

}  // namespace swarmfuzz::sim
