// GPS receiver model and the spoofing hook.
//
// The receiver produces fixes at a fixed sampling rate (SwarmLab default:
// 100 Hz) with optional zero-mean Gaussian noise; between samples the last
// fix is held, like a real receiver feeding a faster control loop.
//
// Spoofing is injected exactly the way the paper does it in software
// (section V-A): the reported reading becomes GPS + offset at the GPS
// sampling rate, where the offset is supplied by a GpsOffsetProvider
// (implemented in src/attack).
#pragma once

#include "math/rng.h"
#include "math/vec3.h"

namespace swarmfuzz::sim {

using math::Vec3;

// Supplies the spoofing offset added to a drone's true position at time t.
// The null provider (no attack) is represented by a nullptr.
class GpsOffsetProvider {
 public:
  virtual ~GpsOffsetProvider() = default;
  [[nodiscard]] virtual Vec3 offset(int drone_id, double time) const = 0;
};

struct GpsConfig {
  double rate_hz = 100.0;      // fix rate; SwarmLab default
  double noise_stddev = 0.0;   // per-axis Gaussian noise on each fix, metres
};

// Everything a receiver carries between read() calls: the noise stream and
// the held fix. Captured into simulation checkpoints (sim/checkpoint.h).
struct GpsSensorState {
  math::Rng::State rng{};
  Vec3 last_fix;
  double last_fix_time = 0.0;
  bool has_fix = false;
  int fix_count = 0;
};

// One receiver instance per drone. Not thread-safe (one drone = one owner).
class GpsSensor {
 public:
  GpsSensor(const GpsConfig& config, math::Rng rng);

  // Re-arms the receiver at mission start with an immediate first fix.
  void reset();

  // Returns the reading at time `t` for a drone truly at `true_position`,
  // with `spoof_offset` added to any fix taken while the offset is active.
  // Produces a new fix whenever at least one sampling period elapsed since
  // the previous fix; otherwise returns the held fix.
  Vec3 read(const Vec3& true_position, const Vec3& spoof_offset, double t);

  [[nodiscard]] const GpsConfig& config() const noexcept { return config_; }
  // Number of fixes taken since reset (held readings don't count).
  [[nodiscard]] int fix_count() const noexcept { return fix_count_; }

  // Snapshot/restore of the full receiver state (noise RNG phase included):
  // a restored receiver produces the same fixes and draws as one that ran
  // uninterrupted.
  void save(GpsSensorState& out) const;
  void restore(const GpsSensorState& in);

 private:
  GpsConfig config_;
  math::Rng rng_;
  Vec3 last_fix_;
  double last_fix_time_ = 0.0;
  bool has_fix_ = false;
  int fix_count_ = 0;
};

}  // namespace swarmfuzz::sim
