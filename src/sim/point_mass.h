// First-order point-mass vehicle: commanded acceleration
//   a = (v_desired - v) / tau, clamped to max_acceleration,
// integrated with semi-implicit Euler. This is SwarmLab's "point-mass"
// dynamics option and the default for fuzzing campaigns, where thousands of
// missions are simulated per table.
#pragma once

#include "sim/dynamics.h"

namespace swarmfuzz::sim {

class PointMassModel final : public VehicleModel {
 public:
  explicit PointMassModel(const PointMassParams& params);

  void reset(const Vec3& position, const Vec3& velocity) override;
  void step(const Vec3& desired_velocity, double dt) override;
  [[nodiscard]] DroneState state() const override { return state_; }

  // Position + velocity is the whole state of a point mass.
  void save(VehicleCheckpoint& out) const override { out.state = state_; }
  void restore(const VehicleCheckpoint& in) override { state_ = in.state; }

  [[nodiscard]] const PointMassParams& params() const noexcept { return params_; }

 private:
  PointMassParams params_;
  DroneState state_;
};

}  // namespace swarmfuzz::sim
