// Trajectory recorder: captures everything SwarmFuzz's initial test needs
// (paper section IV-A):
//  (1) each drone's location at each timestamp,
//  (2) each drone's minimum distance to the obstacle over the mission
//      (D_ob^i, the VDO when the drone is a victim candidate),
//  (3) the mission duration,
// plus t_clo, the time of minimum average inter-drone distance, at which the
// SVG is constructed (section IV-B).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "sim/mission.h"
#include "sim/types.h"

namespace swarmfuzz::sim {

// Snapshot of a Recorder's accumulators, cheap enough to capture every
// checkpoint (a few dozen bytes plus the per-(drone, obstacle) minima). The
// kept trajectory samples are deliberately NOT stored: samples are
// append-only, so the first `num_samples` samples of any later recorder of
// the same run are exactly the samples this snapshot had — restore() copies
// them out of that later recorder instead of every checkpoint retaining its
// own multi-hundred-KB trajectory copy.
struct RecorderCheckpoint {
  int num_samples = 0;
  double last_kept = -1.0;
  double last_time = 0.0;
  std::vector<double> min_center_d2;
  std::vector<double> min_center_time;
};

class Recorder {
 public:
  // Samples are kept when at least `record_period` elapsed since the last
  // kept sample (0 keeps every call). `obstacles` may outlive the recorder
  // (it is copied).
  Recorder(int num_drones, ObstacleField obstacles, double record_period = 0.0);

  // Ingests the state at time `t`. Distance-to-obstacle minima are updated
  // on *every* call (not just kept samples) so VDO is exact.
  void record(double t, std::span<const DroneState> states);

  [[nodiscard]] int num_drones() const noexcept { return num_drones_; }
  [[nodiscard]] int num_samples() const noexcept {
    return static_cast<int>(times_.size());
  }
  [[nodiscard]] std::span<const double> times() const noexcept { return times_; }

  // States of all drones at kept-sample `index`.
  [[nodiscard]] std::span<const DroneState> sample(int index) const;

  // Kept sample closest in time to `t` (clamped to the recording range).
  [[nodiscard]] int sample_index_at(double t) const;

  // Minimum distance from drone `i` to any obstacle surface over the whole
  // mission (exact over all record() calls). Infinity with no obstacles.
  // Computed lazily from per-obstacle squared center-distance minima so the
  // per-step hot path performs no square roots (DESIGN.md §9).
  [[nodiscard]] double min_obstacle_distance(int drone) const;
  // Time at which that minimum was attained.
  [[nodiscard]] double time_of_min_obstacle_distance(int drone) const;

  // Average pairwise inter-drone distance at kept sample `index`.
  [[nodiscard]] double avg_inter_distance(int index) const;

  // Time of the minimum average inter-drone distance (t_clo); 0 when no
  // samples were kept. Only samples with t <= up_to are considered: callers
  // analysing obstacle interactions bound the search to the pre-obstacle
  // phase, because a converging swarm is tightest at arrival.
  [[nodiscard]] double closest_time(
      double up_to = std::numeric_limits<double>::infinity()) const;

  // Duration covered by the recording (last t seen).
  [[nodiscard]] double duration() const noexcept { return last_time_; }

  // Captures the accumulator state (not the samples; see RecorderCheckpoint).
  void save(RecorderCheckpoint& out) const;

  // Restores accumulators from `state` and the first state.num_samples kept
  // samples from `source`. `source` must be a recorder of the same run at
  // the capture time or later — its sample prefix is then bit-for-bit the
  // sample set this recorder held at capture. Shape or provenance
  // mismatches (wrong drone count, too few samples, a prefix whose last
  // kept time disagrees with the snapshot) throw std::invalid_argument.
  void restore(const RecorderCheckpoint& state, const Recorder& source);

 private:
  int num_drones_;
  ObstacleField obstacles_;
  double record_period_;
  double last_kept_ = -1.0;
  double last_time_ = 0.0;

  std::vector<double> times_;
  std::vector<DroneState> states_;  // num_samples * num_drones, row-major

  // Per (drone, obstacle) minimum squared XY center distance and the time it
  // was attained, row-major num_drones * obstacles. sqrt is monotone, so
  // minimising the squared center distance per obstacle and taking
  // sqrt(min) - radius lazily in the accessors yields the exact same
  // minimum-distance bits as the per-step sqrt the recorder used to do.
  std::vector<double> min_center_d2_;
  std::vector<double> min_center_time_;
};

}  // namespace swarmfuzz::sim
