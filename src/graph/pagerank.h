// Weighted PageRank via the power method (paper section IV-B).
//
// The paper picks PageRank to score a drone's malicious influence in the SVG
// because (1) the power method is cheap, (2) influence grows with the number
// of maliciously-influenced neighbours, and (3) influence discounts
// hard-to-influence or distant neighbours.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace swarmfuzz::graph {

struct PageRankOptions {
  double damping = 0.85;        // classic damping factor
  int max_iterations = 200;     // power-method cap
  double tolerance = 1e-10;     // L1 convergence threshold
};

struct PageRankResult {
  std::vector<double> scores;   // one per node, sums to 1
  int iterations = 0;           // power-method iterations executed
  bool converged = false;
};

// Computes weighted PageRank. A node's rank flows along its out-edges in
// proportion to edge weight; dangling nodes (no out-edges) distribute their
// rank uniformly. Empty graphs return an empty score vector.
[[nodiscard]] PageRankResult pagerank(const Digraph& graph,
                                      const PageRankOptions& options = {});

}  // namespace swarmfuzz::graph
