#include "graph/centrality.h"

#include <cmath>

namespace swarmfuzz::graph {
namespace {

void normalize_l1(std::vector<double>& scores) {
  double sum = 0.0;
  for (const double s : scores) sum += s;
  if (sum <= 0.0) return;
  for (double& s : scores) s /= sum;
}

}  // namespace

std::vector<double> in_degree_centrality(const Digraph& graph) {
  std::vector<double> scores(static_cast<size_t>(graph.num_nodes()), 0.0);
  for (const Edge& e : graph.edges()) scores[static_cast<size_t>(e.to)] += e.weight;
  normalize_l1(scores);
  return scores;
}

std::vector<double> out_degree_centrality(const Digraph& graph) {
  std::vector<double> scores(static_cast<size_t>(graph.num_nodes()), 0.0);
  for (const Edge& e : graph.edges()) scores[static_cast<size_t>(e.from)] += e.weight;
  normalize_l1(scores);
  return scores;
}

std::vector<double> eigenvector_centrality(const Digraph& graph,
                                           const EigenvectorOptions& options) {
  const int n = graph.num_nodes();
  std::vector<double> scores(static_cast<size_t>(n), 0.0);
  if (n == 0) return scores;
  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> x(static_cast<size_t>(n), uniform);
  std::vector<double> next(static_cast<size_t>(n), 0.0);
  constexpr double kTeleport = 1e-3;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (double& v : next) v = kTeleport * uniform;
    for (const Edge& e : graph.edges()) {
      next[static_cast<size_t>(e.to)] += e.weight * x[static_cast<size_t>(e.from)];
    }
    normalize_l1(next);
    double delta = 0.0;
    for (int v = 0; v < n; ++v) {
      delta += std::abs(next[static_cast<size_t>(v)] - x[static_cast<size_t>(v)]);
    }
    x.swap(next);
    if (delta < options.tolerance) break;
  }
  return x;
}

}  // namespace swarmfuzz::graph
