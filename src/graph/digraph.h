// Weighted directed graph used for the Swarm Vulnerability Graph (SVG).
//
// Nodes are dense integer ids [0, num_nodes). Edges carry a non-negative
// weight (the paper's cos(alpha) local-influence weight). The graph is small
// (one node per drone), so adjacency lists of structs are plenty fast.
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace swarmfuzz::graph {

struct Edge {
  int from = 0;
  int to = 0;
  double weight = 1.0;
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int num_nodes);

  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] int num_edges() const noexcept { return static_cast<int>(edges_.size()); }

  // Adds a directed edge from -> to. Throws std::out_of_range on bad ids and
  // std::invalid_argument on negative weight or self-loop; replaces the
  // weight when the edge already exists.
  void add_edge(int from, int to, double weight = 1.0);

  [[nodiscard]] bool has_edge(int from, int to) const;
  [[nodiscard]] std::optional<double> edge_weight(int from, int to) const;

  // Outgoing edges of `node`, ordered by insertion.
  [[nodiscard]] std::span<const Edge> out_edges(int node) const;

  // Sum of outgoing edge weights of `node`.
  [[nodiscard]] double out_weight(int node) const;

  [[nodiscard]] int out_degree(int node) const;
  [[nodiscard]] int in_degree(int node) const;

  // All edges, in insertion order.
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  // Graph with every edge reversed (weights preserved). The paper uses the
  // transposed SVG to score victim drones.
  [[nodiscard]] Digraph transposed() const;

 private:
  void check_node(int node) const;

  int num_nodes_ = 0;
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<int> in_degree_;
  std::vector<Edge> edges_;
};

}  // namespace swarmfuzz::graph
