// GraphViz DOT export for visual inspection of SVGs (examples/svg_explorer).
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.h"

namespace swarmfuzz::graph {

struct DotOptions {
  std::string graph_name = "svg";
  // Optional per-node labels; node ids are used when empty/missing.
  std::vector<std::string> node_labels;
  // Optional per-node score annotated into the label (e.g. PageRank).
  std::vector<double> node_scores;
  bool show_edge_weights = true;
};

// Renders the digraph as DOT text.
[[nodiscard]] std::string to_dot(const Digraph& graph, const DotOptions& options = {});

}  // namespace swarmfuzz::graph
