#include "graph/dot.h"

#include <cstdio>
#include <sstream>

namespace swarmfuzz::graph {

std::string to_dot(const Digraph& graph, const DotOptions& options) {
  std::ostringstream out;
  out << "digraph " << options.graph_name << " {\n";
  out << "  rankdir=LR;\n";
  for (int v = 0; v < graph.num_nodes(); ++v) {
    std::string label =
        static_cast<size_t>(v) < options.node_labels.size() &&
                !options.node_labels[static_cast<size_t>(v)].empty()
            ? options.node_labels[static_cast<size_t>(v)]
            : "n" + std::to_string(v);
    if (static_cast<size_t>(v) < options.node_scores.size()) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", options.node_scores[static_cast<size_t>(v)]);
      label += "\\n";
      label += buf;
    }
    out << "  " << v << " [label=\"" << label << "\"];\n";
  }
  for (const Edge& e : graph.edges()) {
    out << "  " << e.from << " -> " << e.to;
    if (options.show_edge_weights) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", e.weight);
      out << " [label=\"" << buf << "\"]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace swarmfuzz::graph
