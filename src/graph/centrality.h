// Alternative centrality measures.
//
// The paper motivates PageRank over degree and eigenvector centrality
// (section IV-B); we implement all three so the choice can be ablated
// (bench/ablation_centrality).
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace swarmfuzz::graph {

// Weighted in-degree centrality: sum of incoming edge weights, normalised to
// sum to 1 across nodes (all-zero when the graph has no edges).
[[nodiscard]] std::vector<double> in_degree_centrality(const Digraph& graph);

// Weighted out-degree centrality, normalised like in_degree_centrality.
[[nodiscard]] std::vector<double> out_degree_centrality(const Digraph& graph);

struct EigenvectorOptions {
  int max_iterations = 500;
  double tolerance = 1e-10;
};

// Right-eigenvector centrality of the column-stochastic-free adjacency
// (power iteration on A^T x, i.e. influence flows along edge direction like
// PageRank). A small uniform teleport (1e-3) guarantees convergence on
// disconnected graphs. Scores are L1-normalised.
[[nodiscard]] std::vector<double> eigenvector_centrality(
    const Digraph& graph, const EigenvectorOptions& options = {});

}  // namespace swarmfuzz::graph
