#include "graph/digraph.h"

#include <stdexcept>

namespace swarmfuzz::graph {

Digraph::Digraph(int num_nodes) : num_nodes_(num_nodes) {
  if (num_nodes < 0) throw std::invalid_argument("Digraph: negative node count");
  adjacency_.resize(static_cast<size_t>(num_nodes));
  in_degree_.resize(static_cast<size_t>(num_nodes), 0);
}

void Digraph::check_node(int node) const {
  if (node < 0 || node >= num_nodes_) {
    throw std::out_of_range("Digraph: node id out of range");
  }
}

void Digraph::add_edge(int from, int to, double weight) {
  check_node(from);
  check_node(to);
  if (from == to) throw std::invalid_argument("Digraph: self-loop");
  if (weight < 0.0) throw std::invalid_argument("Digraph: negative weight");
  for (Edge& e : adjacency_[static_cast<size_t>(from)]) {
    if (e.to == to) {
      e.weight = weight;
      for (Edge& stored : edges_) {
        if (stored.from == from && stored.to == to) stored.weight = weight;
      }
      return;
    }
  }
  const Edge edge{from, to, weight};
  adjacency_[static_cast<size_t>(from)].push_back(edge);
  ++in_degree_[static_cast<size_t>(to)];
  edges_.push_back(edge);
}

bool Digraph::has_edge(int from, int to) const {
  return edge_weight(from, to).has_value();
}

std::optional<double> Digraph::edge_weight(int from, int to) const {
  check_node(from);
  check_node(to);
  for (const Edge& e : adjacency_[static_cast<size_t>(from)]) {
    if (e.to == to) return e.weight;
  }
  return std::nullopt;
}

std::span<const Edge> Digraph::out_edges(int node) const {
  check_node(node);
  return adjacency_[static_cast<size_t>(node)];
}

double Digraph::out_weight(int node) const {
  check_node(node);
  double sum = 0.0;
  for (const Edge& e : adjacency_[static_cast<size_t>(node)]) sum += e.weight;
  return sum;
}

int Digraph::out_degree(int node) const {
  check_node(node);
  return static_cast<int>(adjacency_[static_cast<size_t>(node)].size());
}

int Digraph::in_degree(int node) const {
  check_node(node);
  return in_degree_[static_cast<size_t>(node)];
}

Digraph Digraph::transposed() const {
  Digraph t(num_nodes_);
  for (const Edge& e : edges_) t.add_edge(e.to, e.from, e.weight);
  return t;
}

}  // namespace swarmfuzz::graph
