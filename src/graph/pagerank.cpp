#include "graph/pagerank.h"

#include <cmath>

namespace swarmfuzz::graph {

PageRankResult pagerank(const Digraph& graph, const PageRankOptions& options) {
  PageRankResult result;
  const int n = graph.num_nodes();
  if (n == 0) return result;

  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(static_cast<size_t>(n), uniform);
  std::vector<double> next(static_cast<size_t>(n), 0.0);
  std::vector<double> out_weight(static_cast<size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) out_weight[static_cast<size_t>(v)] = graph.out_weight(v);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double dangling_mass = 0.0;
    for (int v = 0; v < n; ++v) {
      if (out_weight[static_cast<size_t>(v)] <= 0.0) {
        dangling_mass += rank[static_cast<size_t>(v)];
      }
    }
    const double base =
        (1.0 - options.damping) * uniform + options.damping * dangling_mass * uniform;
    for (double& x : next) x = base;
    for (int v = 0; v < n; ++v) {
      const double ow = out_weight[static_cast<size_t>(v)];
      if (ow <= 0.0) continue;
      const double share = options.damping * rank[static_cast<size_t>(v)] / ow;
      for (const Edge& e : graph.out_edges(v)) {
        next[static_cast<size_t>(e.to)] += share * e.weight;
      }
    }

    double delta = 0.0;
    for (int v = 0; v < n; ++v) {
      delta += std::abs(next[static_cast<size_t>(v)] - rank[static_cast<size_t>(v)]);
    }
    rank.swap(next);
    result.iterations = iter + 1;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.scores = std::move(rank);
  return result;
}

}  // namespace swarmfuzz::graph
