// ASCII table and text-figure rendering for the benchmark harness.
//
// The paper's evaluation is presented as tables (Tables I-III) and plots
// (Figs. 6-7). Benchmarks render the same rows/series as aligned ASCII so
// they can be diffed against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace swarmfuzz::util {

// A rectangular table with a header row; cells are free-form strings.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends a row. Rows shorter than the header are padded with "";
  // longer rows throw std::invalid_argument.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] int num_rows() const noexcept { return static_cast<int>(rows_.size()); }
  [[nodiscard]] int num_cols() const noexcept { return static_cast<int>(header_.size()); }

  // Renders with a title line, +-separators and right-aligned numeric cells.
  [[nodiscard]] std::string render(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders a simple horizontal bar chart: one line per (label, value).
// Used for ASCII renderings of the paper's figures.
[[nodiscard]] std::string render_bar_chart(
    const std::string& title,
    const std::vector<std::pair<std::string, double>>& series,
    int max_width = 50);

// Renders an x/y series as "x -> y" rows plus a sparkline-style bar per row.
// `y` values are expected in [0, 1] (rates); values outside are clamped for
// the bar but printed exactly.
[[nodiscard]] std::string render_xy_series(
    const std::string& title, const std::string& x_name,
    const std::string& y_name,
    const std::vector<std::pair<double, double>>& points, int max_width = 40);

// Formats a double with fixed precision (helper shared by benches).
[[nodiscard]] std::string format_double(double value, int precision = 2);

// Formats a rate in [0,1] as a percentage string like "48.8%".
[[nodiscard]] std::string format_percent(double rate, int precision = 1);

}  // namespace swarmfuzz::util
