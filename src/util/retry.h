// Policy-driven retry for durable-I/O ("transport") operations.
//
// Every write that the sharded campaign service depends on — claim
// create/renew, atomic rename, shard append, manifest read — goes through
// one process-wide IoRetrier, so a transient filesystem error (EINTR, a
// brief ENOSPC, an NFS EIO hiccup) degrades to a bounded retry with
// exponential backoff instead of aborting a whole shard. Failures are
// classified by errno:
//
//   transient   retried up to RetryPolicy::max_attempts with exponential
//               backoff; the jitter is deterministic (seeded splitmix64 of
//               the operation name and attempt), so two workers configured
//               from the same campaign seed still de-synchronise their
//               retries reproducibly.
//   permanent   (ENOENT, EACCES, EROFS, ...) rethrown immediately — no
//               number of retries fixes a read-only filesystem, and tight-
//               looping on one is exactly the failure mode this layer and
//               the lease heartbeat must avoid.
//
// A fault budget guards against the pathological middle ground: an
// operation class that keeps exhausting its attempts (the "transient" error
// is not actually transient) is quarantined after RetryPolicy::fault_budget
// exhausted episodes; from then on it runs single-shot so the caller's own
// abandon/abort path engages without multiplying the latency by the retry
// schedule. Counters (attempts/retries/exhausted/...) are process-wide and
// stamped into the campaign summary JSON so coordinator overhead is
// observable (see serialize.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

namespace swarmfuzz::util {

// An I/O failure that remembers its errno, so retry policy (and the lease
// heartbeat) can tell a retryable hiccup from a permanent refusal. Derives
// from std::runtime_error: existing catch sites keep working unchanged.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what, int error_code);

  // The captured errno (0 when unknown; treated as transient).
  [[nodiscard]] int code() const noexcept { return code_; }

 private:
  int code_;
};

// errno classification: true for errors worth retrying (EINTR, EAGAIN, EIO,
// ENOSPC, EBUSY, fd exhaustion), false for errors no retry fixes (ENOENT,
// EACCES, EROFS, EINVAL, ...). Unknown codes (including 0) are transient:
// misclassifying a permanent error costs a few bounded retries, while
// misclassifying a transient one aborts a shard.
[[nodiscard]] bool is_transient_errno(int error_code) noexcept;

struct RetryPolicy {
  int max_attempts = 4;                 // total tries per operation
  std::int64_t initial_backoff_ms = 10; // before the second attempt
  double backoff_multiplier = 4.0;      // growth per further attempt
  std::int64_t max_backoff_ms = 2000;   // backoff ceiling
  double jitter = 0.5;                  // backoff scaled by [1-j, 1+j)
  int fault_budget = 3;                 // exhausted episodes before quarantine
};

// Snapshot of the process-wide accounting.
struct RetryCounters {
  std::int64_t attempts = 0;     // operation executions (incl. retries)
  std::int64_t retries = 0;      // re-executions after a transient failure
  std::int64_t exhausted = 0;    // episodes that used every attempt and failed
  std::int64_t permanent = 0;    // failures rethrown without retrying
  int quarantined_ops = 0;       // operation classes past their fault budget
};

class IoRetrier {
 public:
  using SleepFn = std::function<void(std::int64_t)>;

  // `sleep` defaults to a real std::this_thread sleep; tests inject a fake
  // to assert the backoff schedule without waiting it out.
  explicit IoRetrier(RetryPolicy policy = {}, std::uint64_t jitter_seed = 0,
                     SleepFn sleep = {});

  // Runs `fn`, retrying on transient IoError with backoff as described in
  // the file header. Rethrows the final IoError on a permanent errno, on
  // attempt exhaustion, or immediately when `op` is quarantined. `op` names
  // the operation class ("shard_append", "claim_create", ...): backoff
  // jitter, the fault budget and quarantine are all tracked per class.
  template <typename Fn>
  auto run(std::string_view op, Fn&& fn) -> decltype(fn()) {
    for (int attempt = 1;; ++attempt) {
      note_attempt();
      try {
        return fn();
      } catch (const IoError& error) {
        const std::int64_t backoff_ms = on_failure(op, attempt, error.code());
        if (backoff_ms < 0) throw;
        if (backoff_ms > 0) sleep_(backoff_ms);
      }
    }
  }

  // Deterministic backoff before attempt `attempt + 1` (attempt >= 1).
  [[nodiscard]] std::int64_t backoff_ms(std::string_view op, int attempt) const;

  [[nodiscard]] bool is_quarantined(std::string_view op) const;
  [[nodiscard]] RetryCounters counters() const;
  [[nodiscard]] RetryPolicy policy() const;

  void set_policy(const RetryPolicy& policy);
  // Seeds the jitter hash — the CLI passes the campaign seed through so
  // "deterministic" also means "reproducible for this campaign".
  void set_jitter_seed(std::uint64_t seed);
  void set_sleep(SleepFn sleep);
  // Clears counters and quarantine state (tests share the process-wide
  // instance and must not leak budget across cases).
  void reset();

 private:
  void note_attempt();
  // Bookkeeping for a failed attempt: returns the backoff to sleep before
  // retrying, or -1 when the error must be rethrown.
  [[nodiscard]] std::int64_t on_failure(std::string_view op, int attempt,
                                        int error_code);

  mutable std::mutex mutex_;
  RetryPolicy policy_;
  std::uint64_t jitter_seed_;
  SleepFn sleep_;
  RetryCounters counters_;
  std::map<std::string, int, std::less<>> exhausted_by_op_;
};

// The process-wide retrier every transport operation routes through.
[[nodiscard]] IoRetrier& io_retrier();

}  // namespace swarmfuzz::util
