#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace swarmfuzz::util {
namespace {

class StderrSink final : public LogSink {
 public:
  void write(LogLevel level, std::string_view message) override {
    const std::scoped_lock lock(mutex_);
    std::fprintf(stderr, "[swarmfuzz:%.*s] %.*s\n",
                 static_cast<int>(log_level_name(level).size()),
                 log_level_name(level).data(),
                 static_cast<int>(message.size()), message.data());
  }

 private:
  std::mutex mutex_;
};

StderrSink& default_sink() {
  static StderrSink sink;
  return sink;
}

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogSink*> g_sink{nullptr};
std::once_flag g_env_once;

}  // namespace

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view text) noexcept {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_sink(LogSink* sink) noexcept {
  g_sink.store(sink, std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  init_logging_from_env();
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

void log_message(LogLevel level, std::string_view message) {
  LogSink* sink = g_sink.load(std::memory_order_relaxed);
  if (sink == nullptr) sink = &default_sink();
  sink->write(level, message);
}

void init_logging_from_env() {
  std::call_once(g_env_once, [] {
    if (const char* env = std::getenv("SWARMFUZZ_LOG_LEVEL")) {
      g_level.store(parse_log_level(env), std::memory_order_relaxed);
    }
  });
}

}  // namespace swarmfuzz::util
