#include "util/retry.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/logging.h"

namespace swarmfuzz::util {
namespace {

// splitmix64 (inlined rather than taken from math/rng.h: util sits below
// math in the dependency order). Good avalanche for little state — the same
// reason mission_seed() uses it.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char ch : text) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

IoError::IoError(const std::string& what, int error_code)
    : std::runtime_error(what), code_(error_code) {}

bool is_transient_errno(int error_code) noexcept {
  switch (error_code) {
    case ENOENT:
    case EACCES:
    case EPERM:
    case EROFS:
    case EINVAL:
    case EISDIR:
    case ENOTDIR:
    case ENAMETOOLONG:
    case EEXIST:
    case EXDEV:
      return false;
    default:
      // EINTR, EAGAIN, EIO, ENOSPC, EDQUOT, EBUSY, ENFILE, EMFILE, ESTALE
      // (NFS) and anything unidentified: retry. See header for why unknown
      // codes default to transient.
      return true;
  }
}

IoRetrier::IoRetrier(RetryPolicy policy, std::uint64_t jitter_seed, SleepFn sleep)
    : policy_(policy), jitter_seed_(jitter_seed), sleep_(std::move(sleep)) {
  if (!sleep_) {
    sleep_ = [](std::int64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
}

std::int64_t IoRetrier::backoff_ms(std::string_view op, int attempt) const {
  RetryPolicy policy;
  std::uint64_t seed = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    policy = policy_;
    seed = jitter_seed_;
  }
  double base = static_cast<double>(policy.initial_backoff_ms) *
                std::pow(policy.backoff_multiplier, attempt - 1);
  base = std::min(base, static_cast<double>(policy.max_backoff_ms));
  const std::uint64_t hash =
      splitmix64(seed ^ fnv1a(op) ^ (static_cast<std::uint64_t>(attempt) << 32));
  const double unit =
      static_cast<double>(hash >> 11) / static_cast<double>(1ULL << 53);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  const double factor = 1.0 - jitter + 2.0 * jitter * unit;
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(base * factor));
}

bool IoRetrier::is_quarantined(std::string_view op) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = exhausted_by_op_.find(op);
  return it != exhausted_by_op_.end() && it->second >= policy_.fault_budget;
}

RetryCounters IoRetrier::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

RetryPolicy IoRetrier::policy() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return policy_;
}

void IoRetrier::set_policy(const RetryPolicy& policy) {
  const std::lock_guard<std::mutex> lock(mutex_);
  policy_ = policy;
}

void IoRetrier::set_jitter_seed(std::uint64_t seed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  jitter_seed_ = seed;
}

void IoRetrier::set_sleep(SleepFn sleep) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sleep_ = sleep ? std::move(sleep) : SleepFn{[](std::int64_t ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }};
}

void IoRetrier::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_ = RetryCounters{};
  exhausted_by_op_.clear();
}

void IoRetrier::note_attempt() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.attempts;
}

std::int64_t IoRetrier::on_failure(std::string_view op, int attempt,
                                   int error_code) {
  if (!is_transient_errno(error_code)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.permanent;
    return -1;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = exhausted_by_op_.find(op);
    if (it != exhausted_by_op_.end() && it->second >= policy_.fault_budget) {
      return -1;  // quarantined: single-shot, the caller's abort path owns it
    }
    if (attempt >= policy_.max_attempts) {
      ++counters_.exhausted;
      const int episodes = ++exhausted_by_op_[std::string{op}];
      if (episodes == policy_.fault_budget) {
        ++counters_.quarantined_ops;
        SWARMFUZZ_WARN(
            "retry: operation '{}' exhausted {} attempts {} times; "
            "quarantining (no further retries)",
            std::string{op}, policy_.max_attempts, episodes);
      }
      return -1;
    }
    ++counters_.retries;
  }
  return backoff_ms(op, attempt);
}

IoRetrier& io_retrier() {
  static IoRetrier retrier;
  return retrier;
}

}  // namespace swarmfuzz::util
