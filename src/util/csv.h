// Tiny CSV writer used to dump trajectories and campaign results.
//
// Quoting follows RFC 4180: fields containing the separator, quotes or
// newlines are quoted, embedded quotes are doubled.
#pragma once

#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace swarmfuzz::util {

class CsvWriter {
 public:
  // Opens `path` for writing (truncates). Throws std::runtime_error when the
  // file cannot be opened.
  explicit CsvWriter(const std::filesystem::path& path, char separator = ',');

  // Writes straight into an externally owned stream (useful in tests).
  explicit CsvWriter(std::ostream& stream, char separator = ',');

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  // Emits one row; each field is escaped independently.
  void write_row(std::span<const std::string> fields);
  void write_row(std::initializer_list<std::string_view> fields);

  // Convenience for numeric rows; doubles are formatted with %.9g.
  void write_numeric_row(std::span<const double> values);

  // Number of rows written so far (header included).
  [[nodiscard]] int rows_written() const noexcept { return rows_; }

  // Escapes a single field (exposed for testing).
  [[nodiscard]] static std::string escape(std::string_view field, char separator);

 private:
  void write_fields(std::span<const std::string> fields);

  std::ofstream owned_stream_;
  std::ostream* stream_ = nullptr;
  char separator_;
  int rows_ = 0;
};

}  // namespace swarmfuzz::util
