#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace swarmfuzz::util {
namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  int digits = 0;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
    else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' && c != 'E') {
      return false;
    }
  }
  return digits > 0;
}

std::string repeat(char c, int n) { return std::string(static_cast<size_t>(std::max(0, n)), c); }

}  // namespace

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() > header_.size()) {
    throw std::invalid_argument("TextTable: row wider than header");
  }
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render(const std::string& title) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  if (!title.empty()) out << title << '\n';

  const auto rule = [&] {
    out << '+';
    for (const size_t w : widths) out << repeat('-', static_cast<int>(w) + 2) << '+';
    out << '\n';
  };
  const auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    out << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      const int pad = static_cast<int>(widths[c] - row[c].size());
      const bool right = align_right && looks_numeric(row[c]);
      out << ' ' << (right ? repeat(' ', pad) + row[c] : row[c] + repeat(' ', pad)) << ' ' << '|';
    }
    out << '\n';
  };

  rule();
  emit_row(header_, /*align_right=*/false);
  rule();
  for (const auto& row : rows_) emit_row(row, /*align_right=*/true);
  rule();
  return out.str();
}

std::string render_bar_chart(
    const std::string& title,
    const std::vector<std::pair<std::string, double>>& series, int max_width) {
  double max_value = 0.0;
  size_t label_width = 0;
  for (const auto& [label, value] : series) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  for (const auto& [label, value] : series) {
    const int bar = max_value > 0.0
        ? static_cast<int>(std::lround(value / max_value * max_width))
        : 0;
    out << "  " << label << repeat(' ', static_cast<int>(label_width - label.size()))
        << " | " << repeat('#', bar) << ' ' << format_double(value) << '\n';
  }
  return out.str();
}

std::string render_xy_series(const std::string& title, const std::string& x_name,
                             const std::string& y_name,
                             const std::vector<std::pair<double, double>>& points,
                             int max_width) {
  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  out << "  " << x_name << " -> " << y_name << '\n';
  for (const auto& [x, y] : points) {
    const double clamped = std::clamp(y, 0.0, 1.0);
    const int bar = static_cast<int>(std::lround(clamped * max_width));
    char xbuf[32];
    std::snprintf(xbuf, sizeof xbuf, "%8.2f", x);
    out << "  " << xbuf << " | " << repeat('#', bar) << ' '
        << format_double(y, 3) << '\n';
  }
  return out.str();
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string format_percent(double rate, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, rate * 100.0);
  return buf;
}

}  // namespace swarmfuzz::util
