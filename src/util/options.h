// Command-line and environment option parsing shared by the examples and
// the benchmark harness.
//
// Syntax: --name=value or --name value; bare --flag sets "true".
// Environment variables override defaults but are overridden by the command
// line (env < CLI), letting CI scale benchmark workloads via e.g.
// SWARMFUZZ_MISSIONS without editing commands.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace swarmfuzz::util {

class Options {
 public:
  Options() = default;

  // Parses argv, recording unrecognized positional arguments in order.
  // Throws std::invalid_argument on a malformed option ("--" alone).
  static Options parse(int argc, const char* const* argv);

  // Reads SWARMFUZZ_<NAME> (upper-cased, '-' -> '_') for a fallback value.
  [[nodiscard]] static std::optional<std::string> from_env(std::string_view name);

  [[nodiscard]] bool has(std::string_view name) const;

  // Lookup order: CLI flag, then SWARMFUZZ_<NAME> env var, then fallback.
  [[nodiscard]] std::string get(std::string_view name, std::string_view fallback) const;
  [[nodiscard]] int get_int(std::string_view name, int fallback) const;
  [[nodiscard]] double get_double(std::string_view name, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  // Program name (argv[0]), empty when parsed from an empty argv.
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace swarmfuzz::util
