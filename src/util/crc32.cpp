#include "util/crc32.h"

#include <array>

namespace swarmfuzz::util {
namespace {

// Standard reflected CRC-32 table for polynomial 0xEDB88320, built once.
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, std::string_view data) noexcept {
  for (const char ch : data) {
    state = kTable[(state ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) noexcept { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::string_view data) noexcept {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace swarmfuzz::util
