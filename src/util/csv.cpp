#include "util/csv.h"

#include <cstdio>
#include <stdexcept>

namespace swarmfuzz::util {

CsvWriter::CsvWriter(const std::filesystem::path& path, char separator)
    : owned_stream_(path), stream_(&owned_stream_), separator_(separator) {
  if (!owned_stream_) {
    throw std::runtime_error("CsvWriter: cannot open " + path.string());
  }
}

CsvWriter::CsvWriter(std::ostream& stream, char separator)
    : stream_(&stream), separator_(separator) {}

std::string CsvWriter::escape(std::string_view field, char separator) {
  const bool needs_quotes =
      field.find(separator) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      field.find('\r') != std::string_view::npos;
  if (!needs_quotes) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_fields(std::span<const std::string> fields) {
  bool first = true;
  for (const std::string& field : fields) {
    if (!first) *stream_ << separator_;
    first = false;
    *stream_ << escape(field, separator_);
  }
  *stream_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(std::span<const std::string> fields) {
  write_fields(fields);
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  std::vector<std::string> owned;
  owned.reserve(fields.size());
  for (const std::string_view f : fields) owned.emplace_back(f);
  write_fields(owned);
}

void CsvWriter::write_numeric_row(std::span<const double> values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  char buf[32];
  for (const double v : values) {
    std::snprintf(buf, sizeof buf, "%.9g", v);
    fields.emplace_back(buf);
  }
  write_fields(fields);
}

}  // namespace swarmfuzz::util
