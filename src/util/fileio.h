// Durable file output: write-temp-then-rename so a crash (or a concurrent
// reader) never observes a half-written campaign summary or report file —
// either the old content exists or the new content exists, never a torn mix.
#pragma once

#include <string>
#include <string_view>

namespace swarmfuzz::util {

// Writes `content` to `path` atomically: the bytes go to `<path>.tmp` in the
// same directory (so the rename cannot cross filesystems), are flushed, and
// the temp file is renamed over `path`. Transient failures are retried with
// backoff through util::io_retrier() (the whole temp-write-rename sequence
// is idempotent); throws util::IoError — carrying the errno — once retries
// are exhausted or the error is permanent, after removing the temp file.
void write_file_atomic(const std::string& path, std::string_view content);

}  // namespace swarmfuzz::util
