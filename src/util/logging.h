// Minimal leveled logging for the SwarmFuzz library.
//
// The library is used both interactively (examples) and in tight fuzzing
// loops (benchmarks), so logging must be cheap when disabled: the macro form
// skips message formatting entirely when the level is filtered out.
//
// Thread-safety: the sink pointer and level are plain globals set once at
// startup; the default sink serializes writes with an internal mutex.
#pragma once

#include <string>
#include <string_view>

#include "util/format.h"

namespace swarmfuzz::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Human-readable tag ("TRACE".."ERROR") for a level.
std::string_view log_level_name(LogLevel level) noexcept;

// Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
// Returns kInfo for unrecognized input.
LogLevel parse_log_level(std::string_view text) noexcept;

// Abstract sink; implement to redirect library logs (e.g. into a test).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(LogLevel level, std::string_view message) = 0;
};

// Global logger configuration.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

// Replaces the active sink; passing nullptr restores the default stderr sink.
// The caller keeps ownership of the sink and must keep it alive while active.
void set_log_sink(LogSink* sink) noexcept;

// True when `level` would currently be emitted.
bool log_enabled(LogLevel level) noexcept;

// Core emission routine used by the SWARMFUZZ_LOG macro.
void log_message(LogLevel level, std::string_view message);

// Initialise the level from the SWARMFUZZ_LOG_LEVEL environment variable.
// Called lazily on first use; safe to call again.
void init_logging_from_env();

}  // namespace swarmfuzz::util

// Formats lazily: arguments are not evaluated when the level is filtered.
#define SWARMFUZZ_LOG(level, ...)                                                \
  do {                                                                           \
    if (::swarmfuzz::util::log_enabled(level)) {                                 \
      ::swarmfuzz::util::log_message(level, ::swarmfuzz::util::format(__VA_ARGS__)); \
    }                                                                            \
  } while (false)

#define SWARMFUZZ_TRACE(...) \
  SWARMFUZZ_LOG(::swarmfuzz::util::LogLevel::kTrace, __VA_ARGS__)
#define SWARMFUZZ_DEBUG(...) \
  SWARMFUZZ_LOG(::swarmfuzz::util::LogLevel::kDebug, __VA_ARGS__)
#define SWARMFUZZ_INFO(...) \
  SWARMFUZZ_LOG(::swarmfuzz::util::LogLevel::kInfo, __VA_ARGS__)
#define SWARMFUZZ_WARN(...) \
  SWARMFUZZ_LOG(::swarmfuzz::util::LogLevel::kWarn, __VA_ARGS__)
#define SWARMFUZZ_ERROR(...) \
  SWARMFUZZ_LOG(::swarmfuzz::util::LogLevel::kError, __VA_ARGS__)
