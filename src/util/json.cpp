#include "util/json.h"

#include <cstdio>
#include <stdexcept>

namespace swarmfuzz::util {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::prepare_for_value() {
  if (!stack_.empty() && stack_.back() == Scope::kObject && !expecting_value_) {
    throw std::logic_error("JsonWriter: value in object requires a key");
  }
  if (!expecting_value_ && !stack_.empty() && has_items_.back()) {
    out_.push_back(',');
  }
  if (expecting_value_) {
    expecting_value_ = false;
  } else if (!stack_.empty()) {
    has_items_.back() = true;
  }
}

void JsonWriter::begin_object() {
  prepare_for_value();
  out_.push_back('{');
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || expecting_value_) {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  out_.push_back('}');
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::begin_array() {
  prepare_for_value();
  out_.push_back('[');
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  out_.push_back(']');
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Scope::kObject || expecting_value_) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (has_items_.back()) out_.push_back(',');
  has_items_.back() = true;
  out_.push_back('"');
  out_ += escape(name);
  out_ += "\":";
  expecting_value_ = true;
}

void JsonWriter::value(std::string_view text) {
  prepare_for_value();
  out_.push_back('"');
  out_ += escape(text);
  out_.push_back('"');
}

void JsonWriter::value(double number) {
  prepare_for_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", number);
  out_ += buf;
}

void JsonWriter::value(int number) {
  prepare_for_value();
  out_ += std::to_string(number);
}

void JsonWriter::value(bool boolean) {
  prepare_for_value();
  out_ += boolean ? "true" : "false";
}

void JsonWriter::null() {
  prepare_for_value();
  out_ += "null";
}

std::string JsonWriter::str() const {
  if (!stack_.empty() || expecting_value_) {
    throw std::logic_error("JsonWriter: document not finished");
  }
  return out_;
}

}  // namespace swarmfuzz::util
