#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace swarmfuzz::util {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::prepare_for_value() {
  if (!stack_.empty() && stack_.back() == Scope::kObject && !expecting_value_) {
    throw std::logic_error("JsonWriter: value in object requires a key");
  }
  if (!expecting_value_ && !stack_.empty() && has_items_.back()) {
    out_.push_back(',');
  }
  if (expecting_value_) {
    expecting_value_ = false;
  } else if (!stack_.empty()) {
    has_items_.back() = true;
  }
}

void JsonWriter::begin_object() {
  prepare_for_value();
  out_.push_back('{');
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || expecting_value_) {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  out_.push_back('}');
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::begin_array() {
  prepare_for_value();
  out_.push_back('[');
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  out_.push_back(']');
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Scope::kObject || expecting_value_) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (has_items_.back()) out_.push_back(',');
  has_items_.back() = true;
  out_.push_back('"');
  out_ += escape(name);
  out_ += "\":";
  expecting_value_ = true;
}

void JsonWriter::value(std::string_view text) {
  prepare_for_value();
  out_.push_back('"');
  out_ += escape(text);
  out_.push_back('"');
}

void JsonWriter::value(double number) {
  // JSON has no NaN/Infinity literals; emitting them produces a document no
  // conforming parser (including ours) accepts. Undefined numeric values —
  // averages over empty sets, non-finite VDOs — serialize as null instead,
  // and as_double() maps null back to NaN on the way in.
  if (!std::isfinite(number)) {
    null();
    return;
  }
  prepare_for_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", number);
  out_ += buf;
}

void JsonWriter::value(int number) {
  prepare_for_value();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::int64_t number) {
  prepare_for_value();
  out_ += std::to_string(number);
}

void JsonWriter::value(bool boolean) {
  prepare_for_value();
  out_ += boolean ? "true" : "false";
}

void JsonWriter::null() {
  prepare_for_value();
  out_ += "null";
}

void JsonWriter::value_exact(double number) {
  if (!std::isfinite(number)) {
    null();
    return;
  }
  prepare_for_value();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", number);
  out_ += buf;
}

std::string JsonWriter::str() const {
  if (!stack_.empty() || expecting_value_) {
    throw std::logic_error("JsonWriter: document not finished");
  }
  return out_;
}

// ---------------------------------------------------------------------------
// JsonValue

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw std::invalid_argument(std::string{"JsonValue: not a "} + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_error("bool");
  return bool_;
}

double JsonValue::as_double() const {
  // null is how the writer spells a non-finite double (see
  // JsonWriter::value); reading it back as NaN makes the round-trip total.
  if (is_null()) return std::numeric_limits<double>::quiet_NaN();
  if (!is_number()) kind_error("number");
  return number_;
}

int JsonValue::as_int() const {
  if (!is_number()) kind_error("number");
  if (number_ != std::floor(number_) || number_ < -2147483648.0 ||
      number_ > 2147483647.0) {
    throw std::invalid_argument("JsonValue: number is not a 32-bit integer");
  }
  return static_cast<int>(number_);
}

std::int64_t JsonValue::as_int64() const {
  if (!is_number()) kind_error("number");
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text_.c_str(), &end, 10);
  if (errno != 0 || end == text_.c_str() || *end != '\0') {
    throw std::invalid_argument("JsonValue: number is not an int64: " + text_);
  }
  return static_cast<std::int64_t>(parsed);
}

std::uint64_t JsonValue::as_uint64() const {
  if (!is_number()) kind_error("number");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text_.c_str(), &end, 10);
  if (errno != 0 || end == text_.c_str() || *end != '\0') {
    throw std::invalid_argument("JsonValue: number is not a uint64: " + text_);
  }
  return static_cast<std::uint64_t>(parsed);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_error("string");
  return text_;
}

const std::string& JsonValue::number_text() const {
  if (!is_number()) kind_error("number");
  return text_;
}

std::size_t JsonValue::size() const {
  if (is_array()) return items_.size();
  if (is_object()) return members_.size();
  kind_error("container");
}

const JsonValue& JsonValue::at(std::size_t index) const {
  if (!is_array()) kind_error("array");
  if (index >= items_.size()) {
    throw std::invalid_argument("JsonValue: array index out of range");
  }
  return items_[index];
}

bool JsonValue::has(std::string_view key) const { return find(key) != nullptr; }

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* found = find(key);
  if (found == nullptr) {
    throw std::invalid_argument("JsonValue: missing key: " + std::string{key});
  }
  return *found;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::make_number(double value, std::string text) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  v.text_ = std::move(text);
  return v;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.text_ = std::move(value);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

// ---------------------------------------------------------------------------
// Parser: straightforward recursive descent over the input span.

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("parse_json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue::make_array(std::move(items));
  }

  void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out.push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (code_point >> 6)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
    } else if (code_point < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (code_point >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (code_point >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          unsigned code_point = parse_hex4();
          if (code_point >= 0xd800 && code_point <= 0xdbff) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired UTF-16 surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) fail("bad low surrogate");
            code_point = 0x10000 + ((code_point - 0xd800) << 10) + (low - 0xdc00);
          } else if (code_point >= 0xdc00 && code_point <= 0xdfff) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, code_point);
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail("malformed number");
    }
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() && text_[pos_ + 1] >= '0' &&
        text_[pos_ + 1] <= '9') {
      fail("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("malformed number fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("malformed number exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    std::string raw{text_.substr(start, pos_ - start)};
    const double parsed = std::strtod(raw.c_str(), nullptr);
    return JsonValue::make_number(parsed, std::move(raw));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser{text}.parse_document();
}

}  // namespace swarmfuzz::util
