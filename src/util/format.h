// Minimal {}-style string formatting (subset of std::format, which is not
// available on every toolchain we target).
//
// Supported placeholder forms:
//   {}        default formatting via operator<<
//   {:.Nf}    fixed precision for arithmetic types
//   {:Nd}/{:N} minimum width (right-aligned) for arithmetic types
//   {{ and }} literal braces
// Excess placeholders render as-is; excess arguments are ignored. This keeps
// logging formatting errors from ever throwing in production paths.
#pragma once

#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>

namespace swarmfuzz::util {
namespace detail {

template <typename T>
void append_value(std::ostringstream& out, std::string_view spec, const T& value) {
  if constexpr (std::is_arithmetic_v<T>) {
    if (!spec.empty()) {
      // Parse "[width][.precision][f]".
      size_t pos = 0;
      int width = 0;
      while (pos < spec.size() && spec[pos] >= '0' && spec[pos] <= '9') {
        width = width * 10 + (spec[pos] - '0');
        ++pos;
      }
      if (width > 0) out << std::setw(width);
      if (pos < spec.size() && spec[pos] == '.') {
        ++pos;
        int precision = 0;
        while (pos < spec.size() && spec[pos] >= '0' && spec[pos] <= '9') {
          precision = precision * 10 + (spec[pos] - '0');
          ++pos;
        }
        out << std::fixed << std::setprecision(precision);
      }
    }
  }
  out << value;
  // Reset stateful flags for the next placeholder.
  out.unsetf(std::ios::fixed);
  out << std::setprecision(6) << std::setw(0);
}

inline void format_step(std::ostringstream& out, std::string_view& fmt) {
  // No arguments left: emit the remainder verbatim.
  out << fmt;
  fmt = {};
}

template <typename T, typename... Rest>
void format_step(std::ostringstream& out, std::string_view& fmt, const T& value,
                 const Rest&... rest) {
  while (!fmt.empty()) {
    const char c = fmt.front();
    if (c == '{' && fmt.size() >= 2 && fmt[1] == '{') {
      out << '{';
      fmt.remove_prefix(2);
      continue;
    }
    if (c == '}' && fmt.size() >= 2 && fmt[1] == '}') {
      out << '}';
      fmt.remove_prefix(2);
      continue;
    }
    if (c == '{') {
      const size_t close = fmt.find('}');
      if (close == std::string_view::npos) {
        out << fmt;  // malformed: emit as-is
        fmt = {};
        return;
      }
      std::string_view spec = fmt.substr(1, close - 1);
      if (!spec.empty() && spec.front() == ':') spec.remove_prefix(1);
      fmt.remove_prefix(close + 1);
      append_value(out, spec, value);
      format_step(out, fmt, rest...);
      return;
    }
    out << c;
    fmt.remove_prefix(1);
  }
}

}  // namespace detail

template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, const Args&... args) {
  std::ostringstream out;
  std::string_view remaining = fmt;
  detail::format_step(out, remaining, args...);
  return out.str();
}

}  // namespace swarmfuzz::util
