#include "util/fileio.h"

#include <cerrno>
#include <cstdio>

#include "util/retry.h"

namespace swarmfuzz::util {
namespace {

// One attempt: temp write + flush + close + rename. Restarting from the
// temp-create makes the whole sequence idempotent, so the retrier can rerun
// it wholesale after a transient failure.
void write_file_atomic_once(const std::string& path, std::string_view content) {
  const std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    throw IoError("write_file_atomic: cannot open " + temp, errno);
  }
  const bool written =
      std::fwrite(content.data(), 1, content.size(), file) == content.size() &&
      std::fflush(file) == 0;
  const int write_errno = errno;
  const bool closed = std::fclose(file) == 0;
  if (!written) {
    std::remove(temp.c_str());
    throw IoError("write_file_atomic: short write to " + temp, write_errno);
  }
  if (!closed) {
    std::remove(temp.c_str());
    throw IoError("write_file_atomic: cannot close " + temp, errno);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    const int rename_errno = errno;
    std::remove(temp.c_str());
    throw IoError(
        "write_file_atomic: cannot rename " + temp + " to " + path,
        rename_errno);
  }
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  io_retrier().run("write_file_atomic",
                   [&] { write_file_atomic_once(path, content); });
}

}  // namespace swarmfuzz::util
