#include "util/fileio.h"

#include <cstdio>
#include <stdexcept>

namespace swarmfuzz::util {

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("write_file_atomic: cannot open " + temp);
  }
  const bool written =
      std::fwrite(content.data(), 1, content.size(), file) == content.size() &&
      std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!written || !closed) {
    std::remove(temp.c_str());
    throw std::runtime_error("write_file_atomic: short write to " + temp);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw std::runtime_error("write_file_atomic: cannot rename " + temp + " to " +
                             path);
  }
}

}  // namespace swarmfuzz::util
