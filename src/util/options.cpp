#include "util/options.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace swarmfuzz::util {
namespace {

std::string env_key(std::string_view name) {
  std::string key = "SWARMFUZZ_";
  for (const char c : name) {
    key.push_back(c == '-' ? '_'
                           : static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return key;
}

bool parse_bool(const std::string& text, bool fallback) {
  if (text == "1" || text == "true" || text == "yes" || text == "on") return true;
  if (text == "0" || text == "false" || text == "no" || text == "off") return false;
  return fallback;
}

}  // namespace

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  if (argc > 0) opts.program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      opts.positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    if (body.empty()) throw std::invalid_argument("Options: bare '--'");
    if (const size_t eq = body.find('='); eq != std::string_view::npos) {
      opts.values_[std::string{body.substr(0, eq)}] = std::string{body.substr(eq + 1)};
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      opts.values_[std::string{body}] = argv[++i];
    } else {
      opts.values_[std::string{body}] = "true";
    }
  }
  return opts;
}

std::optional<std::string> Options::from_env(std::string_view name) {
  if (const char* value = std::getenv(env_key(name).c_str())) {
    return std::string{value};
  }
  return std::nullopt;
}

bool Options::has(std::string_view name) const {
  return values_.find(name) != values_.end() || from_env(name).has_value();
}

std::string Options::get(std::string_view name, std::string_view fallback) const {
  if (const auto it = values_.find(name); it != values_.end()) return it->second;
  if (auto env = from_env(name)) return *env;
  return std::string{fallback};
}

int Options::get_int(std::string_view name, int fallback) const {
  const std::string text = get(name, "");
  if (text.empty()) return fallback;
  try {
    return std::stoi(text);
  } catch (const std::exception&) {
    return fallback;
  }
}

double Options::get_double(std::string_view name, double fallback) const {
  const std::string text = get(name, "");
  if (text.empty()) return fallback;
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    return fallback;
  }
}

bool Options::get_bool(std::string_view name, bool fallback) const {
  const std::string text = get(name, "");
  if (text.empty()) return fallback;
  return parse_bool(text, fallback);
}

}  // namespace swarmfuzz::util
