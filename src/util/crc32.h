// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) for checkpoint-record
// framing: each telemetry/checkpoint JSONL line carries the checksum of its
// own payload so a torn or bit-rotted record is detected on load instead of
// being half-parsed into a resumed campaign.
#pragma once

#include <cstdint>
#include <string_view>

namespace swarmfuzz::util {

// One-shot checksum of `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

// Streaming form: feed chunks in order, starting from crc32_init();
// finalize with crc32_final(). crc32(x) == crc32_final(crc32_update(crc32_init(), x)).
[[nodiscard]] std::uint32_t crc32_init() noexcept;
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         std::string_view data) noexcept;
[[nodiscard]] std::uint32_t crc32_final(std::uint32_t state) noexcept;

}  // namespace swarmfuzz::util
