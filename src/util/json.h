// Minimal JSON writer and reader for exporting fuzzing results as
// machine-readable artifacts and reading them back (campaign checkpoints).
// Writes UTF-8 with proper string escaping; numbers use %.10g by default
// (round-trips doubles we care about) or %.17g via value_exact() when
// bit-exact round-trips are required.
//
// Usage:
//   JsonWriter json;
//   json.begin_object();
//   json.key("found");    json.value(true);
//   json.key("victims");  json.begin_array();
//   json.value(3); json.value(4);
//   json.end_array();
//   json.end_object();
//   std::string text = json.str();
//
// The writer validates nesting: mismatched begin/end or a value where a key
// is required throws std::logic_error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swarmfuzz::util {

class JsonWriter {
 public:
  JsonWriter() = default;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Object key; must be followed by exactly one value/container.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view{text}); }
  // Non-finite doubles (NaN/inf have no JSON spelling) are written as null;
  // as_double() reads null back as NaN.
  void value(double number);
  void value(int number);
  void value(std::int64_t number);
  void value(bool boolean);
  void null();

  // Writes a double with %.17g so that parsing it back (strtod) recovers the
  // exact same bit pattern. Used by checkpoint records, where resumed
  // campaigns must reproduce results bit-for-bit.
  void value_exact(double number);

  // Finished document text. Throws std::logic_error if containers are open.
  [[nodiscard]] std::string str() const;

  // Escapes a string per RFC 8259 (quotes, backslash, control characters).
  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  enum class Scope { kObject, kArray };
  void prepare_for_value();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // per scope: need a comma before next item
  bool expecting_value_ = false; // a key was just written
};

// Parsed JSON document node. Object member order is preserved; duplicate
// keys keep the first occurrence on lookup. Numbers are stored both as a
// double and as their raw source text so 64-bit integers (mission seeds)
// survive a round-trip unmangled.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  // Typed accessors; throw std::invalid_argument on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;  // null reads back as quiet NaN
  [[nodiscard]] int as_int() const;                 // rejects non-integral values
  [[nodiscard]] std::int64_t as_int64() const;      // from the raw number text
  [[nodiscard]] std::uint64_t as_uint64() const;    // from the raw number text
  [[nodiscard]] const std::string& as_string() const;

  // Raw source text of a number ("1e-3", "18446744073709551615", ...).
  [[nodiscard]] const std::string& number_text() const;

  // Containers.
  [[nodiscard]] std::size_t size() const;           // array/object element count
  [[nodiscard]] const JsonValue& at(std::size_t index) const;  // array element
  [[nodiscard]] bool has(std::string_view key) const;
  // Object member; throws std::invalid_argument when the key is absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  // Object member or nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  [[nodiscard]] static JsonValue make_null();
  [[nodiscard]] static JsonValue make_bool(bool value);
  [[nodiscard]] static JsonValue make_number(double value, std::string text);
  [[nodiscard]] static JsonValue make_string(std::string value);
  [[nodiscard]] static JsonValue make_array(std::vector<JsonValue> items);
  [[nodiscard]] static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string text_;  // string value, or raw number text
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses one complete JSON document (RFC 8259 subset: no comments, strict
// literals, \uXXXX escapes decoded to UTF-8 including surrogate pairs).
// Trailing whitespace is allowed; any other trailing content, or malformed
// input, throws std::invalid_argument with an offset-bearing message.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace swarmfuzz::util
