// Minimal JSON writer (no parsing) for exporting fuzzing results as
// machine-readable artifacts. Writes UTF-8 with proper string escaping and
// uses %.10g for numbers (round-trips doubles we care about).
//
// Usage:
//   JsonWriter json;
//   json.begin_object();
//   json.key("found");    json.value(true);
//   json.key("victims");  json.begin_array();
//   json.value(3); json.value(4);
//   json.end_array();
//   json.end_object();
//   std::string text = json.str();
//
// The writer validates nesting: mismatched begin/end or a value where a key
// is required throws std::logic_error.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace swarmfuzz::util {

class JsonWriter {
 public:
  JsonWriter() = default;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Object key; must be followed by exactly one value/container.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view{text}); }
  void value(double number);
  void value(int number);
  void value(bool boolean);
  void null();

  // Finished document text. Throws std::logic_error if containers are open.
  [[nodiscard]] std::string str() const;

  // Escapes a string per RFC 8259 (quotes, backslash, control characters).
  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  enum class Scope { kObject, kArray };
  void prepare_for_value();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // per scope: need a comma before next item
  bool expecting_value_ = false; // a key was just written
};

}  // namespace swarmfuzz::util
