#include "math/rng.h"

#include <cmath>
#include <numbers>

namespace swarmfuzz::math {
namespace {

constexpr std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

// splitmix64: used only for seeding / stream derivation.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t salt) const {
  // Mix the full current state with the salt through splitmix64 so different
  // salts give decorrelated streams even for adjacent integers.
  std::uint64_t sm = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                     rotl(state_[3], 47) ^ (salt * 0x9e3779b97f4a7c15ull + 1);
  std::array<std::uint64_t, 4> child;
  for (auto& word : child) word = splitmix64(sm);
  return Rng{child};
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is < 2^-50 for any span we use; acceptable for simulation.
  return lo + static_cast<int>(next() % span);
}

double Rng::normal() {
  // Box-Muller; uniform() can return 0, so nudge away from log(0).
  const double u1 = std::max(uniform(), 0x1.0p-60);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

Vec3 Rng::uniform_in_box(const Vec3& lo, const Vec3& hi) {
  return {uniform(lo.x, hi.x), uniform(lo.y, hi.y), uniform(lo.z, hi.z)};
}

Vec3 Rng::unit_vector_xy() {
  const double angle = uniform(0.0, 2.0 * std::numbers::pi);
  return {std::cos(angle), std::sin(angle), 0.0};
}

}  // namespace swarmfuzz::math
