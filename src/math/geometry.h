// Planar geometry helpers shared by obstacle handling, collision detection
// and SVG weight computation. All distances are horizontal (XY plane):
// obstacles are vertical cylinders, and both the attack and the controller's
// obstacle avoidance act horizontally.
#pragma once

#include "math/vec3.h"

namespace swarmfuzz::math {

// Signed distance from `point` to the surface of the vertical cylinder of
// radius `radius` centred at `center` (negative = inside).
[[nodiscard]] double distance_to_cylinder(const Vec3& point, const Vec3& center,
                                          double radius);

// Closest point on the cylinder surface to `point`, at the height of `point`.
// When `point` is at the axis the +x direction is chosen deterministically.
[[nodiscard]] Vec3 closest_point_on_cylinder(const Vec3& point, const Vec3& center,
                                             double radius);

// Unit outward normal of the cylinder at the closest point to `point`.
[[nodiscard]] Vec3 cylinder_outward_normal(const Vec3& point, const Vec3& center);

// Left-hand lateral unit vector for a horizontal heading: rotate `heading`'s
// XY projection by +90 degrees. Returns zero for a vertical heading.
// "Right" in the paper's spoofing-direction sense is -lateral_left.
[[nodiscard]] Vec3 lateral_left(const Vec3& heading);

// Cosine of the angle between (a - b) and `axis`, using XY projections; this
// is the SVG weight cos(alpha) from the paper (Fig. 4). Returns 0 when either
// projection is degenerate. Result is the absolute cosine, in [0, 1].
[[nodiscard]] double cos_angle_xy(const Vec3& a, const Vec3& b, const Vec3& axis);

// Minimum XY distance between the segment [a, b] and point `p`.
// Used to conservatively check sweep collisions between timesteps.
[[nodiscard]] double segment_point_distance_xy(const Vec3& a, const Vec3& b,
                                               const Vec3& p);

// Rate of change of |x - c|_xy for a point moving with velocity v:
// d/dt |x - c| = ((x - c) . v)_xy / |x - c|_xy. Returns 0 at the centre.
// Negative = approaching. Used by the SVG malicious-influence probe.
[[nodiscard]] double radial_speed_xy(const Vec3& x, const Vec3& c, const Vec3& v);

}  // namespace swarmfuzz::math
