#include "math/geometry.h"

#include <algorithm>
#include <cmath>

namespace swarmfuzz::math {

double distance_to_cylinder(const Vec3& point, const Vec3& center, double radius) {
  return distance_xy(point, center) - radius;
}

Vec3 closest_point_on_cylinder(const Vec3& point, const Vec3& center, double radius) {
  Vec3 radial = (point - center).horizontal();
  if (radial.norm_sq() < 1e-18) radial = {1.0, 0.0, 0.0};
  const Vec3 dir = radial.normalized();
  return Vec3{center.x, center.y, point.z} + dir * radius;
}

Vec3 cylinder_outward_normal(const Vec3& point, const Vec3& center) {
  Vec3 radial = (point - center).horizontal();
  if (radial.norm_sq() < 1e-18) radial = {1.0, 0.0, 0.0};
  return radial.normalized();
}

Vec3 lateral_left(const Vec3& heading) {
  const Vec3 h = heading.horizontal();
  if (h.norm_sq() < 1e-18) return {};
  const Vec3 left{-h.y, h.x, 0.0};
  return left.normalized();
}

double cos_angle_xy(const Vec3& a, const Vec3& b, const Vec3& axis) {
  const Vec3 diff = (a - b).horizontal();
  const Vec3 ax = axis.horizontal();
  const double denom = diff.norm() * ax.norm();
  if (denom < 1e-12) return 0.0;
  return std::abs(diff.dot(ax)) / denom;
}

double segment_point_distance_xy(const Vec3& a, const Vec3& b, const Vec3& p) {
  const Vec3 ab = (b - a).horizontal();
  const Vec3 ap = (p - a).horizontal();
  const double len_sq = ab.norm_sq();
  if (len_sq < 1e-18) return ap.norm();
  const double t = std::clamp(ap.dot(ab) / len_sq, 0.0, 1.0);
  return (ap - ab * t).norm();
}

double radial_speed_xy(const Vec3& x, const Vec3& c, const Vec3& v) {
  const Vec3 radial = (x - c).horizontal();
  const double dist = radial.norm();
  if (dist < 1e-12) return 0.0;
  return radial.dot(v.horizontal()) / dist;
}

}  // namespace swarmfuzz::math
