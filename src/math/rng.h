// Deterministic random number generation.
//
// Fuzzing campaigns must be exactly reproducible from a single seed: every
// mission, fuzzer and noise source derives its own stream via split(), so
// adding a consumer never perturbs the draws seen by existing consumers.
//
// Engine: xoshiro256++ seeded through splitmix64 (public-domain algorithms by
// Blackman & Vigna), implemented here to avoid depending on unspecified
// std::mt19937 distribution behaviour across standard libraries.
#pragma once

#include <array>
#include <cstdint>

#include "math/vec3.h"

namespace swarmfuzz::math {

class Rng {
 public:
  // The full xoshiro256++ engine state. Capturing it with state() and later
  // feeding it back through set_state() resumes the stream bit-identically
  // (simulation checkpoints depend on this; see sim/checkpoint.h).
  using State = std::array<std::uint64_t, 4>;

  // Streams seeded with the same value are identical.
  explicit Rng(std::uint64_t seed = 0x5eedu);

  // Satisfies std::uniform_random_bit_generator.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  // Raw 64 uniform bits.
  std::uint64_t next();

  // Derives an independent stream; deterministic in (parent state, salt).
  // Does not advance this generator, so split() calls are order-insensitive.
  [[nodiscard]] Rng split(std::uint64_t salt) const;

  // Engine state snapshot/restore. set_state() does not validate: the
  // all-zero state is a fixed point of xoshiro256++, so only feed back
  // states previously obtained from state().
  [[nodiscard]] const State& state() const noexcept { return state_; }
  void set_state(const State& state) noexcept { state_ = state; }

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  int uniform_int(int lo, int hi);
  // Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal();
  double normal(double mean, double stddev);
  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // Uniform point in an axis-aligned box [lo, hi] per component.
  Vec3 uniform_in_box(const Vec3& lo, const Vec3& hi);
  // Uniform unit vector in the XY plane (z = 0).
  Vec3 unit_vector_xy();

 private:
  explicit Rng(const std::array<std::uint64_t, 4>& state) : state_(state) {}

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace swarmfuzz::math
