// 3-D vector used throughout the simulator.
//
// Drone positions/velocities live in a local ENU-like frame: x east (mission
// axis), y north (lateral), z up. Most swarm-control math is horizontal, so
// helpers for the XY projection are provided.
#pragma once

#include <cmath>
#include <ostream>

namespace swarmfuzz::math {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3&) const = default;

  [[nodiscard]] constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] constexpr double norm_sq() const { return dot(*this); }
  [[nodiscard]] double norm() const { return std::sqrt(norm_sq()); }

  // Horizontal (XY-plane) helpers.
  [[nodiscard]] constexpr double norm_xy_sq() const { return x * x + y * y; }
  [[nodiscard]] double norm_xy() const { return std::sqrt(norm_xy_sq()); }
  [[nodiscard]] constexpr Vec3 horizontal() const { return {x, y, 0.0}; }

  // Unit vector; returns the zero vector when the norm underflows.
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 1e-12 ? *this / n : Vec3{};
  }

  // Returns this vector scaled so its norm does not exceed `max_norm`.
  [[nodiscard]] Vec3 clamped(double max_norm) const {
    const double n = norm();
    return (n > max_norm && n > 0.0) ? *this * (max_norm / n) : *this;
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }
inline double distance_xy(const Vec3& a, const Vec3& b) { return (a - b).norm_xy(); }

// Linear interpolation a + t*(b-a); t is not clamped.
constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) {
  return a + (b - a) * t;
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace swarmfuzz::math
