#include "math/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace swarmfuzz::math {
namespace {

std::vector<double> sorted_copy(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double mean(std::span<const double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum_sq = 0.0;
  for (const double v : values) sum_sq += (v - m) * (v - m);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double min_value(std::span<const double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double q) {
  const std::vector<double> sorted = sorted_copy(values);
  return percentile_sorted(sorted, q);
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

BoxStats box_stats(std::span<const double> values) {
  BoxStats stats;
  stats.count = static_cast<int>(values.size());
  if (values.empty()) return stats;
  const std::vector<double> sorted = sorted_copy(values);
  stats.min = sorted.front();
  stats.max = sorted.back();
  stats.q1 = percentile_sorted(sorted, 25.0);
  stats.median = percentile_sorted(sorted, 50.0);
  stats.q3 = percentile_sorted(sorted, 75.0);
  stats.mean = mean(values);
  return stats;
}

double ecdf(std::span<const double> values, double x) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  int count = 0;
  for (const double v : values) {
    if (v <= x) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

std::vector<std::pair<double, double>> ecdf_curve(std::span<const double> values,
                                                  int num_points) {
  std::vector<std::pair<double, double>> curve;
  if (values.empty() || num_points <= 0) return curve;
  const double lo = min_value(values);
  const double hi = max_value(values);
  curve.reserve(static_cast<size_t>(num_points));
  for (int i = 0; i < num_points; ++i) {
    const double x = num_points == 1
        ? hi
        : lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(num_points - 1);
    curve.emplace_back(x, ecdf(values, x));
  }
  return curve;
}

std::vector<int> histogram(std::span<const double> values, double lo, double hi,
                           int bins) {
  std::vector<int> counts(static_cast<size_t>(std::max(bins, 1)), 0);
  if (values.empty() || bins <= 0 || hi <= lo) return counts;
  const double width = (hi - lo) / bins;
  for (const double v : values) {
    int bin = static_cast<int>((v - lo) / width);
    bin = std::clamp(bin, 0, bins - 1);
    ++counts[static_cast<size_t>(bin)];
  }
  return counts;
}

ProportionInterval wilson_interval(int successes, int trials, double z) {
  if (trials <= 0) return {};
  const double n = trials;
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

}  // namespace swarmfuzz::math
