// Descriptive statistics used by the evaluation harness (Tables I-III,
// Figs. 6-7): means, percentiles, empirical CDFs and box-plot summaries.
#pragma once

#include <span>
#include <vector>

namespace swarmfuzz::math {

// All functions taking std::span<const double> accept unsorted data.

[[nodiscard]] double mean(std::span<const double> values);

// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
[[nodiscard]] double stddev(std::span<const double> values);

[[nodiscard]] double min_value(std::span<const double> values);
[[nodiscard]] double max_value(std::span<const double> values);

// Linear-interpolated percentile, q in [0, 100]. Empty input returns NaN.
[[nodiscard]] double percentile(std::span<const double> values, double q);

[[nodiscard]] double median(std::span<const double> values);

// Five-number box-plot summary (matches the whisker convention of Fig. 7:
// min / q1 / median / q3 / max).
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  int count = 0;
};
[[nodiscard]] BoxStats box_stats(std::span<const double> values);

// Empirical CDF evaluated at x: fraction of samples <= x.
[[nodiscard]] double ecdf(std::span<const double> values, double x);

// Samples the ECDF at `num_points` evenly spaced x values covering
// [min, max] of the data; returns (x, F(x)) pairs. Used for Fig. 6d.
[[nodiscard]] std::vector<std::pair<double, double>> ecdf_curve(
    std::span<const double> values, int num_points);

// Histogram with equal-width bins over [lo, hi]; values outside are clamped
// into the boundary bins. Returns per-bin counts.
[[nodiscard]] std::vector<int> histogram(std::span<const double> values,
                                         double lo, double hi, int bins);

// Wilson score interval for a binomial proportion (successes/trials) at the
// given z (1.96 = 95%). Success rates in the paper's tables come from 100
// missions; the interval quantifies how much of any difference to the paper
// is sampling noise. Returns {0, 1} when trials == 0.
struct ProportionInterval {
  double low = 0.0;
  double high = 1.0;
};
[[nodiscard]] ProportionInterval wilson_interval(int successes, int trials,
                                                 double z = 1.96);

}  // namespace swarmfuzz::math
