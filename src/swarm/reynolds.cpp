#include "swarm/reynolds.h"

#include <stdexcept>

#include "math/geometry.h"
#include "swarm/batch_eval.h"

namespace swarmfuzz::swarm {

ReynoldsController::ReynoldsController(const ReynoldsParams& params)
    : params_(params) {
  if (params.v_cruise <= 0.0 || params.v_max <= 0.0 ||
      params.separation_radius <= 0.0 || params.neighbour_radius <= 0.0 ||
      params.avoid_radius <= 0.0) {
    throw std::invalid_argument("ReynoldsController: invalid parameter");
  }
}

Vec3 ReynoldsController::desired_velocity(const NeighborView& view,
                                          const MissionSpec& mission) const {
  const Vec3& self_pos = view.self_position();
  const Vec3& self_vel = view.self_velocity();

  // Migration urge.
  Vec3 desired = (mission.destination - self_pos).horizontal().normalized() *
                 params_.v_cruise;

  // Boids rules over the neighbourhood.
  Vec3 separation, velocity_sum, centroid;
  int neighbours = 0;
  for (int k = 0; k < view.size(); ++k) {
    if (k == view.self_index()) continue;
    const Vec3 diff = (self_pos - view.position(k)).horizontal();
    const double dist = diff.norm();
    if (dist < 1e-9 || dist > params_.neighbour_radius) continue;
    ++neighbours;
    velocity_sum += view.velocity(k).horizontal();
    centroid += view.position(k);
    if (dist < params_.separation_radius) {
      separation +=
          diff * (params_.separation_gain * (params_.separation_radius - dist) / dist);
    }
  }
  if (neighbours > 0) {
    const double inv = 1.0 / static_cast<double>(neighbours);
    desired += separation;
    desired += (velocity_sum * inv - self_vel.horizontal()) *
               params_.alignment_gain;
    const Vec3 to_centroid =
        (centroid * inv - self_pos).horizontal();
    if (to_centroid.norm() > params_.cohesion_deadzone) {
      desired += to_centroid * params_.cohesion_gain;
    }
  }

  // Obstacle avoidance: push radially outward, linear in proximity.
  for (const sim::CylinderObstacle& obstacle : mission.obstacles.obstacles()) {
    const double dist = math::distance_to_cylinder(self_pos,
                                                   obstacle.center, obstacle.radius);
    if (dist < params_.avoid_radius) {
      const double strength =
          params_.avoid_gain * (params_.avoid_radius - dist) / params_.avoid_radius;
      desired += math::cylinder_outward_normal(self_pos, obstacle.center) *
                 strength;
    }
  }

  desired.z = params_.altitude_gain * (mission.cruise_altitude - self_pos.z);
  return desired.clamped(params_.v_max);
}

void ReynoldsController::desired_velocity_all(const WorldSnapshot& snapshot,
                                              const MissionSpec& mission,
                                              std::span<Vec3> desired,
                                              const TickExecutor& exec) const {
  evaluate_all_with_cutoff(
      snapshot, params_.neighbour_radius, desired,
      [&](const NeighborView& view) { return desired_velocity(view, mission); },
      exec);
}

double ReynoldsController::probe_influence_radius(
    const WorldSnapshot& snapshot, const MissionSpec& mission) const {
  (void)snapshot;
  (void)mission;
  return params_.neighbour_radius;
}

}  // namespace swarmfuzz::swarm
