#include "swarm/spatial_grid.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace swarmfuzz::swarm {

namespace {

// Padding applied to query radii and coverage bounds. Relative 1e-9 plus an
// absolute 1e-9 m dwarfs double rounding (~1e-16 relative) by seven orders
// of magnitude while still pruning essentially nothing: candidates an extra
// nanometre out are re-rejected by the caller's exact test.
constexpr double kRelPad = 1e-9;
constexpr double kAbsPad = 1e-9;

[[nodiscard]] double padded(double radius) noexcept {
  return radius + radius * kRelPad + kAbsPad;
}

}  // namespace

SpatialGridPolicy& spatial_grid_policy() noexcept {
  static SpatialGridPolicy policy;
  return policy;
}

bool spatial_grid_wanted(int n) noexcept {
  const SpatialGridPolicy& policy = spatial_grid_policy();
  return policy.enabled && n >= policy.min_drones;
}

int SpatialGrid::cell_x(double x) const noexcept {
  const int c = static_cast<int>(std::floor((x - min_x_) * inv_cell_));
  return std::clamp(c, 0, nx_ - 1);
}

int SpatialGrid::cell_y(double y) const noexcept {
  const int c = static_cast<int>(std::floor((y - min_y_) * inv_cell_));
  return std::clamp(c, 0, ny_ - 1);
}

void SpatialGrid::build(std::span<const math::Vec3> positions, double cell_size) {
  if (cell_size <= 0.0 || !std::isfinite(cell_size)) {
    throw std::invalid_argument("SpatialGrid: cell_size must be positive");
  }
  n_ = static_cast<int>(positions.size());
  valid_ = false;
  if (n_ == 0) return;

  xs_.resize(static_cast<size_t>(n_));
  ys_.resize(static_cast<size_t>(n_));
  double min_x = positions[0].x, max_x = positions[0].x;
  double min_y = positions[0].y, max_y = positions[0].y;
  bool finite = true;
  for (int i = 0; i < n_; ++i) {
    const double x = positions[static_cast<size_t>(i)].x;
    const double y = positions[static_cast<size_t>(i)].y;
    xs_[static_cast<size_t>(i)] = x;
    ys_[static_cast<size_t>(i)] = y;
    // Checked per coordinate: std::min/max KEEP the finite operand when the
    // other is NaN, so relying on min/max propagation would let a NaN drone
    // slip into a bogus cell and break the superset guarantee.
    finite = finite && std::isfinite(x) && std::isfinite(y);
    min_x = std::min(min_x, x);
    max_x = std::max(max_x, x);
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
  }
  // A non-finite coordinate (diverged or faulted run) leaves the grid
  // invalid; callers fall back to the brute-force scan so NaN propagation
  // semantics are untouched.
  if (!finite) return;

  // Cap the cell count at ~4 per drone: a degenerate spread (one straggler
  // kilometres away) must not allocate an unbounded lattice. Queries stay
  // conservative with any cell size; only pruning efficiency varies.
  const double extent_x = max_x - min_x;
  const double extent_y = max_y - min_y;
  cell_ = cell_size;
  const double max_cells = std::max(16.0, 4.0 * static_cast<double>(n_));
  const double want =
      (extent_x / cell_ + 1.0) * (extent_y / cell_ + 1.0);
  if (want > max_cells) {
    cell_ = std::sqrt((extent_x + cell_) * (extent_y + cell_) / max_cells) + cell_;
  }
  inv_cell_ = 1.0 / cell_;
  min_x_ = min_x;
  min_y_ = min_y;
  nx_ = static_cast<int>(extent_x * inv_cell_) + 1;
  ny_ = static_cast<int>(extent_y * inv_cell_) + 1;

  // Counting sort into CSR. Filling in ascending drone order keeps each
  // cell's entry list ascending, which is what lets queries return
  // candidates in the exact order the brute-force loops visited them.
  const size_t cells = static_cast<size_t>(nx_) * static_cast<size_t>(ny_);
  cell_of_.resize(static_cast<size_t>(n_));
  cell_start_.assign(cells + 1, 0);
  for (int i = 0; i < n_; ++i) {
    const int c = cell_y(ys_[static_cast<size_t>(i)]) * nx_ +
                  cell_x(xs_[static_cast<size_t>(i)]);
    cell_of_[static_cast<size_t>(i)] = c;
    ++cell_start_[static_cast<size_t>(c) + 1];
  }
  for (size_t c = 1; c <= cells; ++c) cell_start_[c] += cell_start_[c - 1];
  entries_.resize(static_cast<size_t>(n_));
  slot_x_.resize(static_cast<size_t>(n_));
  slot_y_.resize(static_cast<size_t>(n_));
  // cell_start_ is consumed as a running cursor, then restored by shifting.
  // Coordinates are duplicated in slot order so queries scan each cell's
  // span contiguously instead of chasing scattered drone indices.
  for (int i = 0; i < n_; ++i) {
    const auto c = static_cast<size_t>(cell_of_[static_cast<size_t>(i)]);
    const auto slot = static_cast<size_t>(cell_start_[c]++);
    entries_[slot] = i;
    slot_x_[slot] = xs_[static_cast<size_t>(i)];
    slot_y_[slot] = ys_[static_cast<size_t>(i)];
  }
  for (size_t c = cells; c > 0; --c) cell_start_[c] = cell_start_[c - 1];
  cell_start_[0] = 0;
  valid_ = true;
}

void SpatialGrid::gather(const math::Vec3& center, double radius,
                         std::vector<int>& out) const {
  if (!valid_) throw std::logic_error("SpatialGrid: gather on invalid grid");
  const double r = padded(radius);
  // Cell range overlapping [center - r, center + r]. The padding inside r
  // (>= 1e-9 m absolute) is what keeps this conservative under floor()
  // rounding: with cell_ >= 1e-3 m that margin is >= 1e-6 cell units, five
  // orders of magnitude above the ~1e-11 cell-unit error of this index
  // arithmetic, so the computed lower cell can never land above a cell
  // holding an in-range drone (and symmetrically for the upper bound).
  const int cx0 = std::max(
      static_cast<int>(std::floor((center.x - r - min_x_) * inv_cell_)), 0);
  const int cx1 = std::min(
      static_cast<int>(std::floor((center.x + r - min_x_) * inv_cell_)), nx_ - 1);
  const int cy0 = std::max(
      static_cast<int>(std::floor((center.y - r - min_y_) * inv_cell_)), 0);
  const int cy1 = std::min(
      static_cast<int>(std::floor((center.y + r - min_y_) * inv_cell_)), ny_ - 1);
  // A query rectangle entirely off-grid leaves an inverted range; bail
  // before it can index past the CSR table (cx0/cy0 are only clamped from
  // below, cx1/cy1 only from above).
  if (cx0 > cx1 || cy0 > cy1) return;

  // Contiguous scan of each cell span with the squared-distance pre-reject
  // (padded radius, no sqrt) inlined: far corners of the cell rectangle
  // never materialize. Survivors get the caller's exact accept test, so
  // this cut only has to be conservative.
  //
  // Accepted candidates are marked in a drone-index bitmap and extracted
  // afterwards: walking the set bits low-to-high yields ascending index
  // order directly, replacing the push-per-hit plus sort a naive collect
  // needs (the sort of ~16 ints cost more than the whole cell scan). The
  // bitmap is kept all-zero between calls — extraction clears every word it
  // reads — so per-query upkeep is O(words), not O(n).
  thread_local std::vector<std::uint64_t> bitmap;
  const size_t words = (static_cast<size_t>(n_) + 63) / 64;
  if (bitmap.size() < words) bitmap.assign(words, 0);

  // Cell ids are row-major, so the cells [cx0, cx1] of one row occupy one
  // contiguous CSR span: each row is scanned as a single run rather than
  // cell by cell, which drops the per-cell loop overhead (cells hold ~1
  // drone at typical densities) and gives the distance filter longer
  // uninterrupted iterations.
  const double r2 = r * r;
  for (int cy = cy0; cy <= cy1; ++cy) {
    const size_t row = static_cast<size_t>(cy) * static_cast<size_t>(nx_);
    const int begin = cell_start_[row + static_cast<size_t>(cx0)];
    const int end = cell_start_[row + static_cast<size_t>(cx1) + 1];
    for (int e = begin; e < end; ++e) {
      const auto slot = static_cast<size_t>(e);
      const double dx = slot_x_[slot] - center.x;
      const double dy = slot_y_[slot] - center.y;
      if (dx * dx + dy * dy <= r2) {
        const auto j = static_cast<std::uint64_t>(entries_[slot]);
        bitmap[j >> 6] |= std::uint64_t{1} << (j & 63);
      }
    }
  }
  for (size_t w = 0; w < words; ++w) {
    std::uint64_t word = bitmap[w];
    if (word == 0) continue;
    bitmap[w] = 0;
    const int base = static_cast<int>(w << 6);
    while (word != 0) {
      out.push_back(base + std::countr_zero(word));
      word &= word - 1;
    }
  }
}

void SpatialGrid::gather_nearest(const math::Vec3& center, int k, double min_dist,
                                 std::vector<int>& out) const {
  if (!valid_) throw std::logic_error("SpatialGrid: gather_nearest on invalid grid");
  const size_t start = out.size();
  if (k <= 0) return;
  const int cx = cell_x(center.x);
  const int cy = cell_y(center.y);
  // Candidates at distance below ~4*min_dist are not counted toward k: the
  // caller's own qualifying test (dist >= min_dist, computed with its own
  // rounding) may disagree with ours inside the boundary band, and
  // undercounting only expands the search — overcounting could stop it
  // before the true k-th qualifying neighbour is covered.
  const double qualify_d2 = (4.0 * min_dist) * (4.0 * min_dist);
  // Squared distances parallel to out[start..] for the per-shell recounts,
  // computed once at push time from the contiguous slot coordinates.
  thread_local std::vector<double> d2s;
  d2s.clear();

  for (int s = 0;; ++s) {
    // Shell s: cells at Chebyshev distance exactly s from the centre cell
    // (clamping by skip, so nothing is visited twice).
    for (int dy = -s; dy <= s; ++dy) {
      const int ucy = cy + dy;
      if (ucy < 0 || ucy >= ny_) continue;
      const size_t row = static_cast<size_t>(ucy) * static_cast<size_t>(nx_);
      const bool edge_row = (dy == -s || dy == s);
      const int step = edge_row ? 1 : 2 * s;
      for (int dx = -s; dx <= s; dx += std::max(step, 1)) {
        const int ucx = cx + dx;
        if (ucx < 0 || ucx >= nx_) continue;
        const size_t c = row + static_cast<size_t>(ucx);
        const int begin = cell_start_[c];
        const int end = cell_start_[c + 1];
        for (int e = begin; e < end; ++e) {
          const auto slot = static_cast<size_t>(e);
          const double ddx = slot_x_[slot] - center.x;
          const double ddy = slot_y_[slot] - center.y;
          out.push_back(entries_[slot]);
          d2s.push_back(ddx * ddx + ddy * ddy);
        }
      }
    }

    // Every point within `covered` of the centre lives in shells 0..s
    // (cell-index offset <= floor(d/cell)+1), minus a generous fp margin.
    // covered <= 0 still certifies exact-coincident candidates (d2 == 0).
    // Candidates are recounted from scratch each shell — the covered radius
    // grows, so earlier candidates can newly qualify; shells and candidate
    // counts are both small, so the rescan is cheap.
    const double covered = static_cast<double>(s) * cell_ * (1.0 - kRelPad) - kAbsPad;
    const double covered2 = covered > 0.0 ? covered * covered : 0.0;
    int qualifying_covered = 0;
    for (const double d2 : d2s) {
      if (d2 <= covered2 && d2 >= qualify_d2) ++qualifying_covered;
    }
    if (qualifying_covered >= k) break;

    // All cells visited: the candidate set is the whole swarm.
    if (s >= std::max(cx, nx_ - 1 - cx) && s >= std::max(cy, ny_ - 1 - cy)) break;
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
}

}  // namespace swarmfuzz::swarm
