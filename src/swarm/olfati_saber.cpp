#include "swarm/olfati_saber.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <span>
#include <stdexcept>
#include <vector>

#include "math/geometry.h"
#include "swarm/batch_eval.h"

namespace swarmfuzz::swarm {
namespace {

// sigma_1(z) = z / sqrt(1 + z^2), the uneven sigmoid from the paper.
double sigma1(double z) { return z / std::sqrt(1.0 + z * z); }

Vec3 sigma1_vec(const Vec3& z) {
  return z / std::sqrt(1.0 + z.norm_sq());
}

}  // namespace

double sigma_norm(double distance, double epsilon) {
  return (std::sqrt(1.0 + epsilon * distance * distance) - 1.0) / epsilon;
}

double bump(double z, double h) {
  if (z < 0.0) return 0.0;
  if (z < h) return 1.0;
  if (z > 1.0) return 0.0;
  return 0.5 * (1.0 + std::cos(std::numbers::pi * (z - h) / (1.0 - h)));
}

OlfatiSaberController::OlfatiSaberController(const OlfatiSaberParams& params)
    : params_(params) {
  if (params.d <= 0.0 || params.r_factor <= 1.0 || params.epsilon <= 0.0 ||
      params.a <= 0.0 || params.b < params.a || params.tau <= 0.0) {
    throw std::invalid_argument("OlfatiSaberController: invalid parameter");
  }
  r_alpha_ = sigma_norm(params.r_factor * params.d, params.epsilon);
  d_alpha_ = sigma_norm(params.d, params.epsilon);
}

double OlfatiSaberController::phi_alpha(double z) const {
  const double c =
      std::abs(params_.a - params_.b) / std::sqrt(4.0 * params_.a * params_.b);
  const double phi =
      0.5 * ((params_.a + params_.b) * sigma1(z - d_alpha_ + c) +
             (params_.a - params_.b));
  return bump(z / r_alpha_, params_.h_alpha) * phi;
}

Vec3 OlfatiSaberController::desired_velocity(const NeighborView& view,
                                             const MissionSpec& mission) const {
  const Vec3 xi = view.self_position();
  const Vec3 vi = view.self_velocity();

  Vec3 u_alpha;
  for (int k = 0; k < view.size(); ++k) {
    if (k == view.self_index()) continue;
    const Vec3 diff = (view.position(k) - xi).horizontal();
    const double dist = diff.norm();
    if (dist < 1e-9 || dist > params_.r_factor * params_.d) continue;
    const double z = sigma_norm(dist, params_.epsilon);
    // n_ij: gradient direction of the sigma-norm.
    const Vec3 n_ij = diff / std::sqrt(1.0 + params_.epsilon * dist * dist);
    u_alpha += n_ij * (params_.c1_alpha * phi_alpha(z));
    const double a_ij = bump(z / r_alpha_, params_.h_alpha);
    u_alpha += (view.velocity(k) - vi).horizontal() * (params_.c2_alpha * a_ij);
  }

  // Beta-agents: project self onto each obstacle (the cylinder analogue of
  // the sphere projection in the paper) and repel/damp within d_beta.
  Vec3 u_beta;
  const double d_beta_sigma = sigma_norm(params_.d_beta, params_.epsilon);
  for (const sim::CylinderObstacle& obstacle : mission.obstacles.obstacles()) {
    const Vec3 beta_pos =
        math::closest_point_on_cylinder(xi, obstacle.center, obstacle.radius);
    const Vec3 diff = (beta_pos - xi).horizontal();
    const double dist = diff.norm();
    if (dist < 1e-9 || dist > params_.d_beta) continue;
    const double z = sigma_norm(dist, params_.epsilon);
    const double b_ik = bump(z / d_beta_sigma, params_.h_beta);
    // Repulsive-only potential toward the surface.
    const double phi_b = b_ik * (sigma1(z - d_beta_sigma) - 1.0);
    const Vec3 n_ik = diff / std::sqrt(1.0 + params_.epsilon * dist * dist);
    u_beta += n_ik * (params_.c1_beta * phi_b);
    // Damp the velocity component toward the obstacle (beta-agent velocity is
    // the tangential projection of v_i; the normal component is removed).
    const Vec3 normal = math::cylinder_outward_normal(xi, obstacle.center);
    const Vec3 v_beta = (vi - normal * vi.dot(normal)).horizontal();
    u_beta += (v_beta - vi).horizontal() * (params_.c2_beta * b_ik);
  }

  // Gamma-agent: moving waypoint toward the destination at cruise speed.
  const Vec3 to_dest = (mission.destination - xi).horizontal();
  const Vec3 vr = to_dest.normalized() * params_.v_mission;
  const Vec3 u_gamma =
      -sigma1_vec(to_dest * -1.0) * params_.c1_gamma - (vi - vr) * params_.c2_gamma;

  const Vec3 u = u_alpha + u_beta + u_gamma;
  Vec3 v_des = vi + u * params_.tau;
  v_des.z = params_.altitude_gain * (mission.cruise_altitude - xi.z);
  return v_des.clamped(params_.v_max);
}

void OlfatiSaberController::desired_velocity_all(const WorldSnapshot& snapshot,
                                                 const MissionSpec& mission,
                                                 std::span<Vec3> desired,
                                                 const TickExecutor& exec) const {
  evaluate_all_with_cutoff(
      snapshot, params_.r_factor * params_.d, desired,
      [&](const NeighborView& view) { return desired_velocity(view, mission); },
      exec);
}

double OlfatiSaberController::probe_influence_radius(
    const WorldSnapshot& snapshot, const MissionSpec& mission) const {
  (void)snapshot;
  (void)mission;
  return params_.r_factor * params_.d;
}

}  // namespace swarmfuzz::swarm
