// Flocking-quality metrics, following the evaluation vocabulary of
// Vasarhelyi et al. (2018): how ordered, cohesive and safe a swarm state is.
// Used by the examples to characterise missions and by tests to assert that
// the controllers actually flock (not merely avoid collisions).
#pragma once

#include <span>

#include "sim/mission.h"
#include "sim/types.h"

namespace swarmfuzz::swarm {

struct FlockMetrics {
  // Velocity order parameter: mean pairwise cosine similarity of horizontal
  // velocities, in [-1, 1]; 1 = perfectly aligned flock.
  double order = 0.0;
  // Mean distance of members from the swarm centroid, m.
  double cohesion_radius = 0.0;
  // Minimum pairwise inter-drone distance, m (infinity for < 2 drones).
  double min_separation = 0.0;
  // Mean horizontal speed, m/s.
  double mean_speed = 0.0;
};

// Computes the metrics for one instantaneous swarm state.
[[nodiscard]] FlockMetrics flock_metrics(std::span<const sim::DroneState> states);

// Velocity order parameter only (cheap); returns 1.0 for < 2 drones.
[[nodiscard]] double order_parameter(std::span<const sim::DroneState> states);

}  // namespace swarmfuzz::swarm
