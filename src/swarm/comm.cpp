#include "swarm/comm.h"

#include <stdexcept>

namespace swarmfuzz::swarm {

CommModel::CommModel(const CommConfig& config) : config_(config), rng_(0) {
  if (config.range <= 0.0) throw std::invalid_argument("CommModel: range <= 0");
  if (config.drop_probability < 0.0 || config.drop_probability >= 1.0) {
    throw std::invalid_argument("CommModel: drop_probability outside [0, 1)");
  }
}

void CommModel::reset(std::uint64_t seed) { rng_ = math::Rng(seed); }

sim::WorldSnapshot CommModel::filter(const sim::WorldSnapshot& broadcast,
                                     int self_id) {
  sim::WorldSnapshot view;
  view.time = broadcast.time;
  view.drones.reserve(broadcast.drones.size());

  const sim::DroneObservation* self = nullptr;
  for (const sim::DroneObservation& obs : broadcast.drones) {
    if (obs.id == self_id) {
      self = &obs;
      break;
    }
  }
  if (self == nullptr) throw std::invalid_argument("CommModel: unknown self_id");
  view.drones.push_back(*self);

  for (const sim::DroneObservation& obs : broadcast.drones) {
    if (obs.id == self_id) continue;
    // Range is measured between broadcast GPS fixes: a spoofed target also
    // distorts who appears in range, exactly as in a real swarm where links
    // are pruned on reported positions.
    if (math::distance(obs.gps_position, self->gps_position) > config_.range) {
      continue;
    }
    if (config_.drop_probability > 0.0 && rng_.bernoulli(config_.drop_probability)) {
      continue;
    }
    view.drones.push_back(obs);
  }
  return view;
}

}  // namespace swarmfuzz::swarm
