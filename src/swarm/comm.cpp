#include "swarm/comm.h"

#include <cmath>
#include <stdexcept>

namespace swarmfuzz::swarm {

CommModel::CommModel(const CommConfig& config) : config_(config), rng_(0) {
  if (config.range <= 0.0) throw std::invalid_argument("CommModel: range <= 0");
  if (config.drop_probability < 0.0 || config.drop_probability >= 1.0) {
    throw std::invalid_argument("CommModel: drop_probability outside [0, 1)");
  }
}

void CommModel::reset(std::uint64_t seed) { rng_ = math::Rng(seed); }

NeighborView CommModel::filter_into(const sim::WorldSnapshot& broadcast,
                                    int self_id, std::vector<int>& members,
                                    const SpatialGrid* grid) {
  members.clear();

  const int n = broadcast.size();
  int self_slot = -1;
  for (int i = 0; i < n; ++i) {
    if (broadcast.id[static_cast<size_t>(i)] == self_id) {
      self_slot = i;
      break;
    }
  }
  if (self_slot < 0) throw std::invalid_argument("CommModel: unknown self_id");
  members.push_back(self_slot);
  const math::Vec3& self_pos =
      broadcast.gps_position[static_cast<size_t>(self_slot)];

  // Accept test shared by both scan strategies. Range is measured between
  // broadcast GPS fixes: a spoofed target also distorts who appears in
  // range, exactly as in a real swarm where links are pruned on reported
  // positions. The packet-loss draw happens only for in-range neighbours,
  // so a culled scan consumes the exact same bernoulli sequence as the
  // full one (out-of-range drones never touched the RNG).
  const auto accept = [&](int i) {
    if (broadcast.id[static_cast<size_t>(i)] == self_id) return false;
    if (math::distance(broadcast.gps_position[static_cast<size_t>(i)],
                       self_pos) > config_.range) {
      return false;
    }
    return !(config_.drop_probability > 0.0 &&
             rng_.bernoulli(config_.drop_probability));
  };

  if (grid != nullptr && grid->valid() && grid->size() == n &&
      std::isfinite(config_.range)) {
    // Grid-culled scan: candidates are a conservative superset of the
    // in-range drones, in ascending slot order — the same order the full
    // scan visits them — and each still gets the exact accept test above.
    gather_scratch_.clear();
    grid->gather(self_pos, config_.range, gather_scratch_);
    for (const int i : gather_scratch_) {
      if (accept(i)) members.push_back(i);
    }
  } else {
    for (int i = 0; i < n; ++i) {
      if (accept(i)) members.push_back(i);
    }
  }
  return NeighborView(broadcast, members, /*self_index=*/0);
}

NeighborView CommModel::filter_at(const sim::WorldSnapshot& broadcast,
                                  int self_slot, std::vector<int>& members,
                                  std::vector<int>& gather_scratch,
                                  const SpatialGrid* grid) const {
  if (config_.drop_probability > 0.0) {
    throw std::logic_error(
        "CommModel::filter_at requires drop_probability == 0");
  }
  const int n = broadcast.size();
  if (self_slot < 0 || self_slot >= n) {
    throw std::invalid_argument("CommModel: self_slot out of range");
  }
  members.clear();
  members.push_back(self_slot);
  const int self_id = broadcast.id[static_cast<size_t>(self_slot)];
  const math::Vec3& self_pos =
      broadcast.gps_position[static_cast<size_t>(self_slot)];

  // Same accept test as filter_into() minus the (never-taken) loss draw:
  // self is skipped by id equality so duplicate-id broadcasts filter the
  // same way on both paths.
  const auto accept = [&](int i) {
    if (broadcast.id[static_cast<size_t>(i)] == self_id) return false;
    // Negated > test, not <=: a NaN distance accepts on both paths.
    return !(math::distance(broadcast.gps_position[static_cast<size_t>(i)],
                            self_pos) > config_.range);
  };

  if (grid != nullptr && grid->valid() && grid->size() == n &&
      std::isfinite(config_.range)) {
    gather_scratch.clear();
    grid->gather(self_pos, config_.range, gather_scratch);
    for (const int i : gather_scratch) {
      if (accept(i)) members.push_back(i);
    }
  } else {
    for (int i = 0; i < n; ++i) {
      if (accept(i)) members.push_back(i);
    }
  }
  return NeighborView(broadcast, members, /*self_index=*/0);
}

sim::WorldSnapshot CommModel::filter(const sim::WorldSnapshot& broadcast,
                                     int self_id) {
  std::vector<int> members;
  const NeighborView view = filter_into(broadcast, self_id, members);

  sim::WorldSnapshot result;
  result.time = broadcast.time;
  result.reserve(view.size());
  for (int k = 0; k < view.size(); ++k) result.push_back(view.observation(k));
  return result;
}

}  // namespace swarmfuzz::swarm
