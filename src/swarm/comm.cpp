#include "swarm/comm.h"

#include <stdexcept>

namespace swarmfuzz::swarm {

CommModel::CommModel(const CommConfig& config) : config_(config), rng_(0) {
  if (config.range <= 0.0) throw std::invalid_argument("CommModel: range <= 0");
  if (config.drop_probability < 0.0 || config.drop_probability >= 1.0) {
    throw std::invalid_argument("CommModel: drop_probability outside [0, 1)");
  }
}

void CommModel::reset(std::uint64_t seed) { rng_ = math::Rng(seed); }

NeighborView CommModel::filter_into(const sim::WorldSnapshot& broadcast,
                                    int self_id, std::vector<int>& members) {
  members.clear();

  const sim::DroneObservation* self = nullptr;
  int self_broadcast_index = -1;
  for (int i = 0; i < static_cast<int>(broadcast.drones.size()); ++i) {
    if (broadcast.drones[static_cast<size_t>(i)].id == self_id) {
      self = &broadcast.drones[static_cast<size_t>(i)];
      self_broadcast_index = i;
      break;
    }
  }
  if (self == nullptr) throw std::invalid_argument("CommModel: unknown self_id");
  members.push_back(self_broadcast_index);

  for (int i = 0; i < static_cast<int>(broadcast.drones.size()); ++i) {
    const sim::DroneObservation& obs = broadcast.drones[static_cast<size_t>(i)];
    if (obs.id == self_id) continue;
    // Range is measured between broadcast GPS fixes: a spoofed target also
    // distorts who appears in range, exactly as in a real swarm where links
    // are pruned on reported positions.
    if (math::distance(obs.gps_position, self->gps_position) > config_.range) {
      continue;
    }
    if (config_.drop_probability > 0.0 && rng_.bernoulli(config_.drop_probability)) {
      continue;
    }
    members.push_back(i);
  }
  return NeighborView(broadcast, members, /*self_index=*/0);
}

sim::WorldSnapshot CommModel::filter(const sim::WorldSnapshot& broadcast,
                                     int self_id) {
  std::vector<int> members;
  const NeighborView view = filter_into(broadcast, self_id, members);

  sim::WorldSnapshot result;
  result.time = broadcast.time;
  result.drones.reserve(static_cast<size_t>(view.size()));
  for (int k = 0; k < view.size(); ++k) result.drones.push_back(view[k]);
  return result;
}

}  // namespace swarmfuzz::swarm
