// Per-tick shared evaluation context for the parallel hot loops.
//
// Before the tick pool, every pair-scan kernel (the controller batch paths,
// comm filtering, collision detection, metrics) kept its own copy-pasted
// `thread_local SpatialGrid` + candidate-buffer block. Those blocks served
// two very different roles that thread_local conflated:
//   * the spatial grid — TICK-SHARED state, built once from the broadcast
//     and only ever *read* by the per-drone scans (all SpatialGrid queries
//     are const and touch no mutable state), and
//   * the gather/selection buffers — LANE-PRIVATE mutable scratch.
// TickContext makes the split explicit: one grid built by the calling
// thread before the workers start, plus one PairScanScratch lane per pool
// thread. Workers index their lane by the chunk id TickPool hands them, so
// no two lanes ever share a buffer and nothing is thread_local.
//
// Scratch contents never influence results (every buffer is cleared or
// overwritten before use); they exist purely so the steady-state tick loop
// performs no heap allocation. thread_tick_context() keeps a one-lane
// fallback for serial callers (per-view kernels, probes, metrics, tests),
// deduplicating the old thread_local blocks into this single shared type.
#pragma once

#include <utility>
#include <vector>

#include "math/vec3.h"
#include "sim/tick_pool.h"
#include "swarm/spatial_grid.h"

namespace swarmfuzz::swarm {

// First-event slots of one collision-scan lane (sim/collision.cpp): the
// lane's earliest obstacle hit and earliest drone-drone hit, as
// (drone, other) index pairs; -1 = this lane found none.
struct FirstEventSlots {
  int obstacle_drone = -1;
  int obstacle_other = -1;
  int pair_drone = -1;
  int pair_other = -1;
};

// Reusable mutable scratch for one evaluation lane of a pair-scan kernel.
// Kept generic (indices, distances, Vec3 accumulators) so one type serves
// every kernel; each kernel documents which fields it uses.
struct PairScanScratch {
  std::vector<std::pair<double, math::Vec3>> neighbours;  // (dist, self-other)
  std::vector<int> top;           // select_nearest output
  std::vector<int> sel;           // per-drone candidate subset (broadcast idx)
  std::vector<int> cand;          // grid gather output
  std::vector<int> cand_near;     // gather_nearest output
  std::vector<int> members;       // comm-filter member slots
  std::vector<int> contributors;  // per-drone counters (dense batch path)
  std::vector<double> dist;       // pairwise distance cache (dense batch path)
  std::vector<math::Vec3> vec_a;  // per-drone Vec3 accumulator (dense path)
  std::vector<math::Vec3> vec_b;  // second per-drone Vec3 accumulator
  std::vector<math::Vec3> pos;    // position staging (collision, metrics)
  FirstEventSlots first_event;    // parallel collision reduction slot
};

class TickContext {
 public:
  explicit TickContext(int lanes = 1) { resize_lanes(lanes); }

  // Grows/shrinks the lane set; existing lanes keep their capacity.
  void resize_lanes(int lanes) {
    lanes_.resize(static_cast<std::size_t>(lanes < 1 ? 1 : lanes));
  }

  [[nodiscard]] int lanes() const noexcept {
    return static_cast<int>(lanes_.size());
  }

  // The tick-shared grid: built by the calling thread before any worker
  // reads it; all queries are const and safe to run concurrently.
  [[nodiscard]] SpatialGrid& grid() noexcept { return grid_; }
  [[nodiscard]] const SpatialGrid& grid() const noexcept { return grid_; }

  [[nodiscard]] PairScanScratch& lane(int lane) noexcept {
    return lanes_[static_cast<std::size_t>(lane)];
  }

 private:
  SpatialGrid grid_;
  std::vector<PairScanScratch> lanes_;
};

// Borrowed pool + context handed down the batch entry points. Default
// (both null) = serial with the thread-local fallback context. parallel()
// is the single gate every kernel checks: a pool with real workers AND a
// context with a scratch lane for each of them.
struct TickExecutor {
  sim::TickPool* pool = nullptr;
  TickContext* context = nullptr;

  [[nodiscard]] bool parallel() const noexcept {
    return pool != nullptr && pool->threads() > 1 && context != nullptr &&
           context->lanes() >= pool->threads();
  }
};

// One-lane fallback context for callers outside a parallel tick (per-view
// kernels, counterfactual probes, metrics, direct test calls). Thread-local
// so concurrent EvalPool/TickPool workers each reuse their own — persistent
// worker threads keep their buffers across ticks, so steady state stays
// allocation-free on every thread.
[[nodiscard]] TickContext& thread_tick_context() noexcept;

}  // namespace swarmfuzz::swarm
