// Reynolds' classic boids rules (separation / alignment / cohesion), plus a
// migration urge and obstacle-avoidance steering. Included as a third swarm
// controller: historically the baseline flocking model, and a further
// demonstration that SwarmFuzz needs nothing beyond the SwarmController
// interface (paper section VI, limitation 1).
#pragma once

#include "swarm/controller.h"

namespace swarmfuzz::swarm {

struct ReynoldsParams {
  double v_cruise = 2.5;        // preferred speed toward the destination, m/s
  double v_max = 4.5;           // desired-velocity clamp, m/s

  double separation_radius = 8.0;   // m
  double separation_gain = 1.0;     // 1/s

  double neighbour_radius = 25.0;   // m, alignment + cohesion neighbourhood
  double alignment_gain = 0.3;
  double cohesion_gain = 0.06;      // 1/s toward the local centroid
  double cohesion_deadzone = 6.0;   // m, no cohesion when already this close

  double avoid_radius = 12.0;       // m from the obstacle surface
  double avoid_gain = 5.0;          // m/s at the surface, linear falloff

  double altitude_gain = 0.8;
};

class ReynoldsController final : public SwarmController {
 public:
  explicit ReynoldsController(const ReynoldsParams& params = {});

  using SwarmController::desired_velocity;
  [[nodiscard]] Vec3 desired_velocity(const NeighborView& view,
                                      const MissionSpec& mission) const override;
  // Bit-identical batch fast path: all boids rules cut off at
  // neighbour_radius, so each drone is evaluated on a grid-culled view
  // whose candidate superset provably contains every interacting neighbour.
  // The per-view kernel is pure, so a parallel `exec` chunks the drone loop.
  using SwarmController::desired_velocity_all;
  void desired_velocity_all(const WorldSnapshot& snapshot,
                            const MissionSpec& mission, std::span<Vec3> desired,
                            const TickExecutor& exec) const override;
  // Spoof-probe culling radius: the boids neighbourhood cutoff.
  [[nodiscard]] double probe_influence_radius(
      const WorldSnapshot& snapshot, const MissionSpec& mission) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "reynolds"; }

  [[nodiscard]] const ReynoldsParams& params() const noexcept { return params_; }

 private:
  ReynoldsParams params_;
};

}  // namespace swarmfuzz::swarm
