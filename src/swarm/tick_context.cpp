#include "swarm/tick_context.h"

namespace swarmfuzz::swarm {

TickContext& thread_tick_context() noexcept {
  thread_local TickContext context;
  return context;
}

}  // namespace swarmfuzz::swarm
