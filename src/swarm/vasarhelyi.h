// The Vasarhelyi et al. flocking algorithm (Science Robotics 2018) - the
// "Vicsek algorithm" the paper evaluates, as implemented by SwarmLab.
//
// Each drone's desired velocity is the sum of sub-velocities, one per
// high-level goal (paper section II):
//   goal (1) mission-driven      -> v_spp   : self-propulsion toward the
//                                             destination at v_flock
//   goal (2) collision-free      -> v_rep   : linear pairwise repulsion
//                                             below r0_rep, plus shill-agent
//                                             obstacle avoidance
//   goal (3) cohesive formation  -> v_frict : velocity alignment whose slack
//                                             shrinks with distance via the
//                                             braking curve D(r, a, p)
// The braking curve (eq. 7 of Vasarhelyi et al.):
//   D(r, a, p) = 0                      for r <= 0
//              = r * p                  for 0 < r*p <= a/p
//              = sqrt(2*a*r - a^2/p^2)  otherwise
// Altitude is held at the mission's cruise height with a proportional term.
#pragma once

#include "swarm/controller.h"

namespace swarmfuzz::swarm {

struct VasarhelyiParams {
  double v_flock = 2.5;    // preferred speed toward the destination, m/s
  double v_max = 4.5;      // clamp on the final desired velocity, m/s

  // Pairwise repulsion (goal 2, inter-drone).
  double r0_rep = 8.0;    // repulsion onset distance, m
  double p_rep = 0.8;     // repulsion gain, 1/s

  // Pairwise attraction (goal 3, cohesive formation): beyond r0_att the
  // drone is pulled toward the distant member so the formation does not
  // fragment. This is the sub-velocity the paper's motivating example
  // exploits (Fig. 2-(c): spoofing increases the perceived inter-distance,
  // generating attraction that drags the victim toward the obstacle).
  double r0_att = 24.0;    // attraction onset distance, m
  double p_att = 0.5;     // attraction gain, 1/s
  double v_att_max = 3.0;  // cap on the total attraction sub-velocity, m/s
  int k_att = 3;           // attract only toward the k nearest members

  // Velocity alignment / friction (goal 3).
  double r0_frict = 22.0;  // alignment slack onset, m
  double c_frict = 0.3;   // alignment gain
  double v_frict = 0.25;   // velocity-slack floor, m/s
  double p_frict = 2.2;    // braking-curve linear gain
  double a_frict = 2.0;    // braking-curve max deceleration, m/s^2

  // Shill-agent obstacle avoidance (goal 2, obstacle).
  double r0_shill = 0.5;   // distance of the shill from the surface, m
  double v_shill = 4.6;    // shill agent speed, m/s
  double p_shill = 1.2;    // braking-curve gain toward the shill velocity
  double a_shill = 1.4;    // braking-curve max deceleration, m/s^2

  double altitude_gain = 0.8;  // 1/s, proportional height hold
};

// The braking curve D(r, a, p); exposed for tests (monotone, continuous).
[[nodiscard]] double braking_curve(double r, double a, double p);

class VasarhelyiController final : public SwarmController {
 public:
  explicit VasarhelyiController(const VasarhelyiParams& params = {});

  using SwarmController::desired_velocity;
  [[nodiscard]] Vec3 desired_velocity(const NeighborView& view,
                                      const MissionSpec& mission) const override;
  // Bit-identical batch fast path: spatial-grid candidate culling for large
  // swarms (repulsion/friction cutoff radius plus a k-nearest superset for
  // the topological attraction), falling back to the symmetric dense pass
  // that computes each pair's distance and velocity gap once. The grid path
  // chunks the per-drone loop over a parallel `exec` (each drone's kernel
  // reads only the shared grid and snapshot, writes only its own slot).
  using SwarmController::desired_velocity_all;
  void desired_velocity_all(const WorldSnapshot& snapshot,
                            const MissionSpec& mission, std::span<Vec3> desired,
                            const TickExecutor& exec) const override;
  // Finite spoof-probe culling radius: max of the repulsion onset, the
  // friction cutoff for the swarm's worst-case velocity gap, and the
  // largest k_att-th-nearest-neighbour distance (beyond which a member can
  // never enter anyone's topological attraction set). Infinity when some
  // member has fewer than k_att neighbours (then every member is always
  // attended to, so no probe may be skipped).
  [[nodiscard]] double probe_influence_radius(
      const WorldSnapshot& snapshot, const MissionSpec& mission) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "vasarhelyi";
  }

  [[nodiscard]] const VasarhelyiParams& params() const noexcept { return params_; }

  // Individual sub-velocities, exposed for tests and for the motivating
  // example (Fig. 2 of the paper shows exactly this decomposition).
  struct Terms {
    Vec3 migration;   // v_spp, goal (1)
    Vec3 repulsion;   // v_rep, goal (2) inter-drone
    Vec3 attraction;  // v_att, goal (3) cohesion
    Vec3 friction;    // v_frict, goal (3) alignment
    Vec3 shill;       // obstacle avoidance, goal (2) obstacle
    Vec3 altitude;    // height hold (simulation plumbing, not a paper goal)
    [[nodiscard]] Vec3 total() const {
      return migration + repulsion + attraction + friction + shill + altitude;
    }
  };
  [[nodiscard]] Terms compute_terms(const NeighborView& view,
                                    const MissionSpec& mission) const;
  // Snapshot adapter mirroring SwarmController::desired_velocity's.
  [[nodiscard]] Terms compute_terms(int self_index, const WorldSnapshot& snapshot,
                                    const MissionSpec& mission) const;

 private:
  VasarhelyiParams params_;
};

}  // namespace swarmfuzz::swarm
