// Olfati-Saber flocking (IEEE TAC 2006) - the second algorithm shipped by
// SwarmLab. Included to demonstrate that SwarmFuzz is controller-agnostic
// (paper section VI, limitation 1).
//
// The control law is an acceleration u = u_alpha + u_beta + u_gamma:
//   u_alpha: gradient of a smooth pairwise potential (attractive beyond the
//            desired spacing d, repulsive below it) plus velocity consensus
//            -> goals (2) inter-drone and (3) cohesion
//   u_beta : interaction with a projected "beta-agent" on each obstacle
//            -> goal (2) obstacle
//   u_gamma: navigation feedback toward the destination -> goal (1)
// Our vehicle interface consumes desired velocities, so the acceleration is
// integrated over a nominal horizon tau: v_des = v + u * tau.
#pragma once

#include "swarm/controller.h"

namespace swarmfuzz::swarm {

struct OlfatiSaberParams {
  double d = 10.0;        // desired inter-agent spacing, m
  double r_factor = 1.6;  // interaction range r = r_factor * d
  double epsilon = 0.1;   // sigma-norm parameter
  double h_alpha = 0.2;   // bump-function plateau for alpha interactions
  double h_beta = 0.9;    // bump-function plateau for beta interactions
  double a = 4.0;         // potential parameter (a <= b)
  double b = 8.0;         // potential parameter
  double c1_alpha = 1.4;  // alpha gradient gain
  double c2_alpha = 0.6;  // alpha consensus gain
  double c1_beta = 3.5;   // obstacle gradient gain
  double c2_beta = 1.4;   // obstacle damping gain
  double d_beta = 6.0;    // desired clearance from obstacle surface, m
  double c1_gamma = 0.18; // navigation position gain
  double c2_gamma = 0.55; // navigation velocity gain
  double v_mission = 2.5; // cruise speed toward destination, m/s
  double v_max = 4.5;     // desired-velocity clamp, m/s
  double tau = 0.6;       // s, acceleration-to-velocity horizon
  double altitude_gain = 0.8;
};

// sigma-norm and its helpers, exposed for unit tests.
[[nodiscard]] double sigma_norm(double distance, double epsilon);
[[nodiscard]] double bump(double z, double h);

class OlfatiSaberController final : public SwarmController {
 public:
  explicit OlfatiSaberController(const OlfatiSaberParams& params = {});

  using SwarmController::desired_velocity;
  [[nodiscard]] Vec3 desired_velocity(const NeighborView& view,
                                      const MissionSpec& mission) const override;
  // Bit-identical batch fast path: alpha interactions have a hard cutoff at
  // r_factor * d, so each drone is evaluated on a grid-culled view whose
  // candidate superset provably contains every interacting neighbour. The
  // per-view kernel is pure, so a parallel `exec` chunks the drone loop.
  using SwarmController::desired_velocity_all;
  void desired_velocity_all(const WorldSnapshot& snapshot,
                            const MissionSpec& mission, std::span<Vec3> desired,
                            const TickExecutor& exec) const override;
  // Spoof-probe culling radius: the alpha-interaction cutoff. Beyond it a
  // neighbour contributes nothing regardless of velocity.
  [[nodiscard]] double probe_influence_radius(
      const WorldSnapshot& snapshot, const MissionSpec& mission) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "olfati_saber";
  }

  [[nodiscard]] const OlfatiSaberParams& params() const noexcept { return params_; }

 private:
  [[nodiscard]] double phi_alpha(double z) const;

  OlfatiSaberParams params_;
  double r_alpha_ = 0.0;  // sigma-norm of the interaction range (cached)
  double d_alpha_ = 0.0;  // sigma-norm of the desired spacing (cached)
};

}  // namespace swarmfuzz::swarm
