// FlockingControlSystem: the concrete sim::ControlSystem used everywhere.
//
// Composes a (memoryless) SwarmController with a CommModel: per control tick
// it builds each drone's perceived snapshot from the shared broadcast and
// asks the controller for a desired velocity.
//
// It also exposes probe_desired_velocity(), the pure counterfactual
// evaluation used by SVG construction (perfect communication assumed, no
// packet-loss randomness), so fuzzing probes never disturb mission state.
#pragma once

#include <memory>
#include <vector>

#include "sim/control.h"
#include "swarm/comm.h"
#include "swarm/controller.h"

namespace swarmfuzz::swarm {

class FlockingControlSystem final : public sim::ControlSystem {
 public:
  // `controller` must not be null.
  FlockingControlSystem(std::shared_ptr<const SwarmController> controller,
                        const CommConfig& comm = {});

  void reset(const sim::MissionSpec& mission, std::uint64_t seed) override;
  void compute(const sim::WorldSnapshot& snapshot, const sim::MissionSpec& mission,
               std::span<Vec3> desired) override;

  // Borrowed per-run tick pool: compute() hands it to the controller batch
  // path and (for lossless range-limited comm) chunks the per-receiver
  // filter loop across it. Results stay bit-identical for any pool size.
  void set_tick_pool(sim::TickPool* pool) override;

  // Checkpoint hooks: the only mutable per-mission state is the comm
  // packet-loss RNG, saved as its four xoshiro256++ words.
  void save_state(std::vector<std::uint64_t>& out) const override;
  void restore_state(std::span<const std::uint64_t> state) override;

  [[nodiscard]] const SwarmController& controller() const noexcept {
    return *controller_;
  }

  // Counterfactual probe: desired velocity of `drone_id` given the full
  // broadcast `snapshot`, with perfect communication. const and
  // deterministic - does not touch the packet-loss stream. Resolves the id
  // in O(1) for the canonical layout (drone i at index i, as the simulator
  // broadcasts); callers that already hold the index should prefer
  // probe_desired_velocity_at and skip resolution entirely.
  [[nodiscard]] Vec3 probe_desired_velocity(int drone_id,
                                            const sim::WorldSnapshot& snapshot,
                                            const sim::MissionSpec& mission) const;

  // Index-based probe: same counterfactual for the drone at broadcast slot
  // `self_index`, with no id lookup. The per-snapshot batch probes of SVG
  // construction use this.
  [[nodiscard]] Vec3 probe_desired_velocity_at(int self_index,
                                               const sim::WorldSnapshot& snapshot,
                                               const sim::MissionSpec& mission) const;

 private:
  std::shared_ptr<const SwarmController> controller_;
  CommModel comm_;
  std::vector<int> members_;  // filter_into scratch, reused across ticks
  SpatialGrid comm_grid_;     // per-tick range-culling grid, buffers reused
  sim::TickPool* tick_pool_ = nullptr;  // borrowed, bound per run
  TickContext tick_context_;            // one scratch lane per pool thread
};

// Convenience factory for the common case.
[[nodiscard]] std::unique_ptr<FlockingControlSystem> make_vasarhelyi_system(
    const CommConfig& comm = {});

}  // namespace swarmfuzz::swarm
