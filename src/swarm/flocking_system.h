// FlockingControlSystem: the concrete sim::ControlSystem used everywhere.
//
// Composes a (memoryless) SwarmController with a CommModel: per control tick
// it builds each drone's perceived snapshot from the shared broadcast and
// asks the controller for a desired velocity.
//
// It also exposes probe_desired_velocity(), the pure counterfactual
// evaluation used by SVG construction (perfect communication assumed, no
// packet-loss randomness), so fuzzing probes never disturb mission state.
#pragma once

#include <memory>

#include "sim/control.h"
#include "swarm/comm.h"
#include "swarm/controller.h"

namespace swarmfuzz::swarm {

class FlockingControlSystem final : public sim::ControlSystem {
 public:
  // `controller` must not be null.
  FlockingControlSystem(std::shared_ptr<const SwarmController> controller,
                        const CommConfig& comm = {});

  void reset(const sim::MissionSpec& mission, std::uint64_t seed) override;
  void compute(const sim::WorldSnapshot& snapshot, const sim::MissionSpec& mission,
               std::span<Vec3> desired) override;

  [[nodiscard]] const SwarmController& controller() const noexcept {
    return *controller_;
  }

  // Counterfactual probe: desired velocity of `drone_id` given the full
  // broadcast `snapshot`, with perfect communication. const and
  // deterministic - does not touch the packet-loss stream.
  [[nodiscard]] Vec3 probe_desired_velocity(int drone_id,
                                            const sim::WorldSnapshot& snapshot,
                                            const sim::MissionSpec& mission) const;

 private:
  std::shared_ptr<const SwarmController> controller_;
  CommModel comm_;
};

// Convenience factory for the common case.
[[nodiscard]] std::unique_ptr<FlockingControlSystem> make_vasarhelyi_system(
    const CommConfig& comm = {});

}  // namespace swarmfuzz::swarm
