// Uniform spatial hash grid over the horizontal (XY) plane.
//
// Built once per control tick from the broadcast positions (or ground-truth
// states) and shared by every pair scan in the hot path: communication
// range culling, the Vásárhelyi/Olfati-Saber/Reynolds pair-term kernels,
// swarm metrics, collision detection and SVG construction. It turns each
// O(N) neighbour scan into a cells-within-radius query.
//
// Exactness contract — the grid NEVER decides anything by itself:
//  * gather() returns a conservative *superset* of the drones within the
//    query radius (the query radius carries a relative-plus-absolute
//    padding far above any floating-point rounding in the cell-index
//    arithmetic). Callers re-apply the exact original accept test per
//    candidate, so accepted sets — and therefore results — are
//    bit-identical to the brute-force pair scan.
//  * Candidates are returned in ascending index order, which is exactly
//    the order the original broadcast-order loops visited them. Sums
//    accumulate in the same order and RNG streams consume draws
//    identically.
//  * build() validates every coordinate; a non-finite position marks the
//    grid invalid and callers fall back to the brute-force scan, so NaN
//    propagation semantics are untouched.
// Determinism rules are documented in DESIGN.md §14.
#pragma once

#include <span>
#include <vector>

#include "math/vec3.h"

namespace swarmfuzz::swarm {

// Process-wide switch for the grid fast paths, exposed so tests and the CLI
// can force the brute-force scans (results are bit-identical either way;
// only wall time differs). `min_drones` is the break-even swarm size below
// which brute force wins and the grid is skipped.
struct SpatialGridPolicy {
  bool enabled = true;
  int min_drones = 32;
};
[[nodiscard]] SpatialGridPolicy& spatial_grid_policy() noexcept;

// True when the policy enables grid acceleration for a swarm of `n` drones.
[[nodiscard]] bool spatial_grid_wanted(int n) noexcept;

class SpatialGrid {
 public:
  SpatialGrid() = default;

  // Indexes `positions` (their XY projections) into cells of roughly
  // `cell_size` metres. The effective cell size may be larger: the cell
  // count is capped at ~4 per drone so degenerate spreads cannot explode
  // memory (queries stay conservative either way). Buffers are reused
  // across builds, so steady-state rebuilds perform no heap allocation.
  // A non-finite coordinate invalidates the grid (valid() == false).
  void build(std::span<const math::Vec3> positions, double cell_size);

  [[nodiscard]] bool valid() const noexcept { return valid_; }
  [[nodiscard]] int size() const noexcept { return n_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_; }

  // Drone index stored in scan slot `slot` (0 <= slot < size()). Visiting
  // drones in slot order makes consecutive queries spatially adjacent, so
  // their neighbourhoods stay cache-hot. Every drone appears in exactly one
  // slot; per-drone results are order-independent, so batch evaluations may
  // iterate in slot order and remain bit-identical.
  [[nodiscard]] int ordered(int slot) const noexcept {
    return entries_[static_cast<size_t>(slot)];
  }

  // Appends to `out` (which is NOT cleared) every index whose XY distance
  // to `center` could be <= radius — a conservative superset, in ascending
  // index order. Candidates whose XY distance provably exceeds the padded
  // radius are pre-rejected on squared distance (no sqrt).
  void gather(const math::Vec3& center, double radius, std::vector<int>& out) const;

  // Appends to `out` a superset of the k nearest indices to `center` by XY
  // distance, counting only candidates at XY distance >= min_dist toward k
  // (pass the caller's coincidence threshold, or 0 to count every drone —
  // note the query point itself, if indexed, is then a distance-0
  // candidate). Guarantee: if the returned set is smaller than the whole
  // grid, it contains EVERY index whose XY distance is <= the k-th smallest
  // qualifying distance, so any selection of the k nearest (with any tie
  // rule) over the returned candidates equals the selection over all
  // drones. Ascending index order, `out` not cleared.
  void gather_nearest(const math::Vec3& center, int k, double min_dist,
                      std::vector<int>& out) const;

 private:
  [[nodiscard]] int cell_x(double x) const noexcept;
  [[nodiscard]] int cell_y(double y) const noexcept;

  double cell_ = 1.0;
  double inv_cell_ = 1.0;
  double min_x_ = 0.0, min_y_ = 0.0;
  int nx_ = 0, ny_ = 0;
  int n_ = 0;
  bool valid_ = false;
  std::vector<int> cell_start_;  // CSR offsets, nx_*ny_ + 1 entries
  std::vector<int> entries_;     // drone indices, ascending within each cell
  std::vector<int> cell_of_;     // scratch: cell id per drone
  std::vector<double> xs_, ys_;  // coordinates by drone index
  // Coordinates duplicated in slot (cell-scan) order: queries walk each
  // cell's span contiguously instead of gathering through entries_.
  std::vector<double> slot_x_, slot_y_;
};

}  // namespace swarmfuzz::swarm
