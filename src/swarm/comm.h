// Inter-drone communication model.
//
// Swarm members exchange physical states by broadcast (paper Fig. 1 step 2).
// The model optionally limits the radio range and drops packets i.i.d.;
// the defaults (infinite range, no loss) match the paper's evaluation.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "math/rng.h"
#include "sim/types.h"

namespace swarmfuzz::swarm {

struct CommConfig {
  double range = std::numeric_limits<double>::infinity();  // m
  double drop_probability = 0.0;  // per-link, per-tick
};

class CommModel {
 public:
  explicit CommModel(const CommConfig& config = {});

  // Re-seeds the packet-loss stream for a new mission.
  void reset(std::uint64_t seed);

  // Builds receiver `self_id`'s view of the broadcast: the drone itself plus
  // every neighbour whose packet arrived (within range, not dropped). The
  // drone's own entry is always present and is first in the result.
  [[nodiscard]] sim::WorldSnapshot filter(const sim::WorldSnapshot& broadcast,
                                          int self_id);

  [[nodiscard]] const CommConfig& config() const noexcept { return config_; }

 private:
  CommConfig config_;
  math::Rng rng_;
};

}  // namespace swarmfuzz::swarm
