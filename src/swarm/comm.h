// Inter-drone communication model.
//
// Swarm members exchange physical states by broadcast (paper Fig. 1 step 2).
// The model optionally limits the radio range and drops packets i.i.d.;
// the defaults (infinite range, no loss) match the paper's evaluation.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "math/rng.h"
#include "sim/types.h"
#include "swarm/spatial_grid.h"

namespace swarmfuzz::swarm {

struct CommConfig {
  double range = std::numeric_limits<double>::infinity();  // m
  double drop_probability = 0.0;  // per-link, per-tick
};

// A drone's perceived picture of the swarm: a non-owning index view over the
// shared broadcast snapshot's SoA arrays. Two flavours share one type:
//   - whole-broadcast view: every drone visible, self at `self_index`
//     (counterfactual probes, tests);
//   - filtered view: `members` lists the visible drones as indices into
//     the broadcast arrays, in broadcast order with the receiver first
//     (the hot path; see CommModel::filter_into).
// The view borrows both the snapshot and the member-index buffer: neither
// may be mutated or destroyed while the view is alive. Controllers consume
// the view within one call, so in practice lifetimes are a single control
// tick.
class NeighborView {
 public:
  // Whole-broadcast view over `broadcast` with self at `self_index`
  // (caller must guarantee 0 <= self_index < broadcast.size()).
  NeighborView(const sim::WorldSnapshot& broadcast, int self_index) noexcept
      : broadcast_(&broadcast),
        members_(nullptr),
        count_(broadcast.size()),
        self_index_(self_index) {}

  // Filtered view: position k maps to broadcast slot members[k]; self is
  // at view position `self_index`. `members` must stay alive with the view.
  NeighborView(const sim::WorldSnapshot& broadcast, std::span<const int> members,
               int self_index) noexcept
      : broadcast_(&broadcast),
        members_(members.data()),
        count_(static_cast<int>(members.size())),
        self_index_(self_index) {}

  [[nodiscard]] double time() const noexcept { return broadcast_->time; }
  [[nodiscard]] int size() const noexcept { return count_; }
  [[nodiscard]] int self_index() const noexcept { return self_index_; }

  // Broadcast slot of view position k (identity for whole-broadcast views).
  [[nodiscard]] int slot(int k) const noexcept {
    return members_ ? members_[k] : k;
  }

  [[nodiscard]] int id(int k) const noexcept {
    return broadcast_->id[static_cast<size_t>(slot(k))];
  }
  [[nodiscard]] const math::Vec3& position(int k) const noexcept {
    return broadcast_->gps_position[static_cast<size_t>(slot(k))];
  }
  [[nodiscard]] const math::Vec3& velocity(int k) const noexcept {
    return broadcast_->velocity[static_cast<size_t>(slot(k))];
  }

  [[nodiscard]] int self_id() const noexcept { return id(self_index_); }
  [[nodiscard]] const math::Vec3& self_position() const noexcept {
    return position(self_index_);
  }
  [[nodiscard]] const math::Vec3& self_velocity() const noexcept {
    return velocity(self_index_);
  }

  // AoS adapters for tests and cold paths.
  [[nodiscard]] sim::DroneObservation observation(int k) const {
    return broadcast_->observation(slot(k));
  }
  [[nodiscard]] sim::DroneObservation self() const {
    return observation(self_index_);
  }

 private:
  const sim::WorldSnapshot* broadcast_;
  const int* members_;  // nullptr = identity mapping (whole broadcast)
  int count_;
  int self_index_;  // position within the view, not within the broadcast
};

class CommModel {
 public:
  explicit CommModel(const CommConfig& config = {});

  // Re-seeds the packet-loss stream for a new mission.
  void reset(std::uint64_t seed);

  // Builds receiver `self_id`'s view of the broadcast: the drone itself plus
  // every neighbour whose packet arrived (within range, not dropped). The
  // drone's own entry is always present and is first in the result.
  [[nodiscard]] sim::WorldSnapshot filter(const sim::WorldSnapshot& broadcast,
                                          int self_id);

  // Allocation-free equivalent of filter(): writes the broadcast slots of
  // the visible drones into the caller-owned scratch `members` — self
  // first, then surviving neighbours in broadcast order — and returns a
  // view with self at position 0. Consumes packet-loss randomness in
  // exactly the same order as filter(), so the two are interchangeable
  // mid-stream. `members` is clear()ed and refilled; its capacity is
  // reused across calls, so steady state performs no heap allocation.
  //
  // `grid`, when non-null and valid, must be built over
  // `broadcast.gps_position`; it culls the candidate scan to the cells
  // within the comm range. The grid returns a conservative superset in
  // broadcast order and every candidate still gets the exact range test,
  // so the member set AND the packet-loss draw sequence are bit-identical
  // to the unculled scan (out-of-range drones never consumed a draw).
  [[nodiscard]] NeighborView filter_into(const sim::WorldSnapshot& broadcast,
                                         int self_id, std::vector<int>& members,
                                         const SpatialGrid* grid = nullptr);

  // Pure (const, RNG-free) twin of filter_into() for the parallel comm path.
  // Only legal when drop_probability == 0 (throws std::logic_error
  // otherwise): with no loss, neither path consumes a bernoulli draw, so a
  // const receiver-by-slot filter is bit-identical to filter_into() AND
  // leaves the packet-loss stream untouched — which is what lets the tick
  // pool filter many receivers concurrently against one shared grid. The
  // receiver is addressed by broadcast slot (the hot loop already iterates
  // slots); both scratch buffers are caller-owned so each lane brings its
  // own and steady state stays allocation-free.
  [[nodiscard]] NeighborView filter_at(const sim::WorldSnapshot& broadcast,
                                       int self_slot, std::vector<int>& members,
                                       std::vector<int>& gather_scratch,
                                       const SpatialGrid* grid = nullptr) const;

  [[nodiscard]] const CommConfig& config() const noexcept { return config_; }

  // Packet-loss RNG snapshot/restore, for simulation checkpoints: restoring
  // a state captured mid-mission makes subsequent filter()/filter_into()
  // calls consume the exact same bernoulli draws as the original run.
  [[nodiscard]] const math::Rng::State& rng_state() const noexcept {
    return rng_.state();
  }
  void set_rng_state(const math::Rng::State& state) noexcept {
    rng_.set_state(state);
  }

 private:
  CommConfig config_;
  math::Rng rng_;
  std::vector<int> gather_scratch_;  // grid candidate buffer, reused per call
};

}  // namespace swarmfuzz::swarm
