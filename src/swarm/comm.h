// Inter-drone communication model.
//
// Swarm members exchange physical states by broadcast (paper Fig. 1 step 2).
// The model optionally limits the radio range and drops packets i.i.d.;
// the defaults (infinite range, no loss) match the paper's evaluation.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "math/rng.h"
#include "sim/types.h"

namespace swarmfuzz::swarm {

struct CommConfig {
  double range = std::numeric_limits<double>::infinity();  // m
  double drop_probability = 0.0;  // per-link, per-tick
};

// A drone's perceived picture of the swarm: a non-owning view over the
// shared broadcast snapshot. Two flavours share one type:
//   - whole-broadcast view: every drone visible, self at `self_index`
//     (counterfactual probes, tests);
//   - filtered view: `members` lists the visible drones as indices into
//     `broadcast.drones`, in broadcast order with the receiver first
//     (the hot path; see CommModel::filter_into).
// The view borrows both the snapshot and the member-index buffer: neither
// may be mutated or destroyed while the view is alive. Controllers consume
// the view within one call, so in practice lifetimes are a single control
// tick.
class NeighborView {
 public:
  // Whole-broadcast view over `broadcast` with self at `self_index`
  // (caller must guarantee 0 <= self_index < broadcast.drones.size()).
  NeighborView(const sim::WorldSnapshot& broadcast, int self_index) noexcept
      : broadcast_(&broadcast),
        members_(nullptr),
        count_(static_cast<int>(broadcast.drones.size())),
        self_index_(self_index) {}

  // Filtered view: position k maps to broadcast.drones[members[k]]; self is
  // at view position `self_index`. `members` must stay alive with the view.
  NeighborView(const sim::WorldSnapshot& broadcast, std::span<const int> members,
               int self_index) noexcept
      : broadcast_(&broadcast),
        members_(members.data()),
        count_(static_cast<int>(members.size())),
        self_index_(self_index) {}

  [[nodiscard]] double time() const noexcept { return broadcast_->time; }
  [[nodiscard]] int size() const noexcept { return count_; }
  [[nodiscard]] int self_index() const noexcept { return self_index_; }

  [[nodiscard]] const sim::DroneObservation& operator[](int k) const noexcept {
    const size_t i =
        members_ ? static_cast<size_t>(members_[k]) : static_cast<size_t>(k);
    return broadcast_->drones[i];
  }
  [[nodiscard]] const sim::DroneObservation& self() const noexcept {
    return (*this)[self_index_];
  }

 private:
  const sim::WorldSnapshot* broadcast_;
  const int* members_;  // nullptr = identity mapping (whole broadcast)
  int count_;
  int self_index_;  // position within the view, not within the broadcast
};

class CommModel {
 public:
  explicit CommModel(const CommConfig& config = {});

  // Re-seeds the packet-loss stream for a new mission.
  void reset(std::uint64_t seed);

  // Builds receiver `self_id`'s view of the broadcast: the drone itself plus
  // every neighbour whose packet arrived (within range, not dropped). The
  // drone's own entry is always present and is first in the result.
  [[nodiscard]] sim::WorldSnapshot filter(const sim::WorldSnapshot& broadcast,
                                          int self_id);

  // Allocation-free equivalent of filter(): writes the indices (into
  // `broadcast.drones`) of the visible drones into the caller-owned scratch
  // `members` — self first, then surviving neighbours in broadcast order —
  // and returns a view with self at position 0. Consumes packet-loss
  // randomness in exactly the same order as filter(), so the two are
  // interchangeable mid-stream. `members` is clear()ed and refilled; its
  // capacity is reused across calls, so steady state performs no heap
  // allocation.
  [[nodiscard]] NeighborView filter_into(const sim::WorldSnapshot& broadcast,
                                         int self_id, std::vector<int>& members);

  [[nodiscard]] const CommConfig& config() const noexcept { return config_; }

  // Packet-loss RNG snapshot/restore, for simulation checkpoints: restoring
  // a state captured mid-mission makes subsequent filter()/filter_into()
  // calls consume the exact same bernoulli draws as the original run.
  [[nodiscard]] const math::Rng::State& rng_state() const noexcept {
    return rng_.state();
  }
  void set_rng_state(const math::Rng::State& state) noexcept {
    rng_.set_state(state);
  }

 private:
  CommConfig config_;
  math::Rng rng_;
};

}  // namespace swarmfuzz::swarm
