#include "swarm/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "swarm/spatial_grid.h"
#include "swarm/tick_context.h"

namespace swarmfuzz::swarm {

namespace {

// Grid-accelerated smallest pairwise 3D distance. Exact, not approximate:
// pass 1 finds an ACHIEVED distance M (each drone against a superset of its
// nearest XY neighbours), pass 2 gathers every pair whose XY distance can be
// <= M — and since 3D distance >= XY distance, every pair at 3D distance
// <= M is among them. min() over doubles is order-independent and each
// candidate's distance comes from the same math::distance(i, j) call the
// brute-force scan makes, so the result is bit-identical. Returns infinity
// if the grid cannot be built (non-finite coordinates), signalling the
// caller to fall back.
double grid_min_separation(std::span<const sim::DroneState> states) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const int n = static_cast<int>(states.size());
  TickContext& ctx = thread_tick_context();
  SpatialGrid& grid = ctx.grid();
  std::vector<math::Vec3>& pos = ctx.lane(0).pos;
  std::vector<int>& cand = ctx.lane(0).cand;
  pos.clear();
  pos.reserve(static_cast<size_t>(n));
  double min_x = kInf, max_x = -kInf, min_y = kInf, max_y = -kInf;
  for (const sim::DroneState& state : states) {
    pos.push_back(state.position);
    min_x = std::min(min_x, state.position.x);
    max_x = std::max(max_x, state.position.x);
    min_y = std::min(min_y, state.position.y);
    max_y = std::max(max_y, state.position.y);
  }
  // ~1 drone per cell on average keeps both passes near-linear.
  const double area = (max_x - min_x) * (max_y - min_y);
  const double cell =
      std::max(std::sqrt(std::max(area, 0.0) / static_cast<double>(n)), 1e-3);
  if (!std::isfinite(cell)) return kInf;
  grid.build(std::span<const math::Vec3>(pos), cell);
  if (!grid.valid()) return kInf;

  double bound = kInf;
  for (int i = 0; i < n; ++i) {
    cand.clear();
    // min_dist 0 counts drone i itself (distance 0) toward k, hence k=2 to
    // guarantee coverage of at least one other drone.
    grid.gather_nearest(pos[static_cast<size_t>(i)], 2, 0.0, cand);
    for (const int j : cand) {
      if (j == i) continue;
      bound = std::min(bound, math::distance(pos[static_cast<size_t>(i)],
                                             pos[static_cast<size_t>(j)]));
    }
  }
  if (!std::isfinite(bound)) return kInf;

  double min_separation = kInf;
  for (int i = 0; i < n; ++i) {
    cand.clear();
    grid.gather(pos[static_cast<size_t>(i)], bound, cand);
    for (const int j : cand) {
      if (j <= i) continue;
      min_separation =
          std::min(min_separation, math::distance(pos[static_cast<size_t>(i)],
                                                  pos[static_cast<size_t>(j)]));
    }
  }
  return min_separation;
}

}  // namespace

double order_parameter(std::span<const sim::DroneState> states) {
  const int n = static_cast<int>(states.size());
  if (n < 2) return 1.0;
  double sum = 0.0;
  int pairs = 0;
  for (int i = 0; i < n; ++i) {
    const math::Vec3 vi = states[static_cast<size_t>(i)].velocity.horizontal();
    const double ni = vi.norm();
    if (ni < 1e-9) continue;
    for (int j = i + 1; j < n; ++j) {
      const math::Vec3 vj = states[static_cast<size_t>(j)].velocity.horizontal();
      const double nj = vj.norm();
      if (nj < 1e-9) continue;
      sum += vi.dot(vj) / (ni * nj);
      ++pairs;
    }
  }
  return pairs > 0 ? sum / pairs : 1.0;
}

FlockMetrics flock_metrics(std::span<const sim::DroneState> states) {
  FlockMetrics metrics;
  const int n = static_cast<int>(states.size());
  metrics.order = order_parameter(states);
  metrics.min_separation = std::numeric_limits<double>::infinity();
  if (n == 0) return metrics;

  math::Vec3 centroid;
  double speed_sum = 0.0;
  for (const sim::DroneState& state : states) {
    centroid += state.position;
    speed_sum += state.velocity.norm_xy();
  }
  centroid = centroid / static_cast<double>(n);
  metrics.mean_speed = speed_sum / static_cast<double>(n);

  double radius_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    radius_sum += math::distance(states[static_cast<size_t>(i)].position, centroid);
  }
  metrics.cohesion_radius = radius_sum / static_cast<double>(n);

  if (n >= 2 && spatial_grid_wanted(n)) {
    metrics.min_separation = grid_min_separation(states);
  }
  if (!std::isfinite(metrics.min_separation)) {
    metrics.min_separation = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        metrics.min_separation =
            std::min(metrics.min_separation,
                     math::distance(states[static_cast<size_t>(i)].position,
                                    states[static_cast<size_t>(j)].position));
      }
    }
  }
  return metrics;
}

}  // namespace swarmfuzz::swarm
