#include "swarm/metrics.h"

#include <limits>

namespace swarmfuzz::swarm {

double order_parameter(std::span<const sim::DroneState> states) {
  const int n = static_cast<int>(states.size());
  if (n < 2) return 1.0;
  double sum = 0.0;
  int pairs = 0;
  for (int i = 0; i < n; ++i) {
    const math::Vec3 vi = states[static_cast<size_t>(i)].velocity.horizontal();
    const double ni = vi.norm();
    if (ni < 1e-9) continue;
    for (int j = i + 1; j < n; ++j) {
      const math::Vec3 vj = states[static_cast<size_t>(j)].velocity.horizontal();
      const double nj = vj.norm();
      if (nj < 1e-9) continue;
      sum += vi.dot(vj) / (ni * nj);
      ++pairs;
    }
  }
  return pairs > 0 ? sum / pairs : 1.0;
}

FlockMetrics flock_metrics(std::span<const sim::DroneState> states) {
  FlockMetrics metrics;
  const int n = static_cast<int>(states.size());
  metrics.order = order_parameter(states);
  metrics.min_separation = std::numeric_limits<double>::infinity();
  if (n == 0) return metrics;

  math::Vec3 centroid;
  double speed_sum = 0.0;
  for (const sim::DroneState& state : states) {
    centroid += state.position;
    speed_sum += state.velocity.norm_xy();
  }
  centroid = centroid / static_cast<double>(n);
  metrics.mean_speed = speed_sum / static_cast<double>(n);

  double radius_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    radius_sum += math::distance(states[static_cast<size_t>(i)].position, centroid);
    for (int j = i + 1; j < n; ++j) {
      metrics.min_separation =
          std::min(metrics.min_separation,
                   math::distance(states[static_cast<size_t>(i)].position,
                                  states[static_cast<size_t>(j)].position));
    }
  }
  metrics.cohesion_radius = radius_sum / static_cast<double>(n);
  return metrics;
}

}  // namespace swarmfuzz::swarm
