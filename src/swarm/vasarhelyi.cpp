#include "swarm/vasarhelyi.h"

#include <algorithm>
#include <cmath>
#include <vector>
#include <stdexcept>

#include "math/geometry.h"

namespace swarmfuzz::swarm {

double braking_curve(double r, double a, double p) {
  if (r <= 0.0) return 0.0;
  if (r * p <= a / p) return r * p;
  return std::sqrt(2.0 * a * r - a * a / (p * p));
}

VasarhelyiController::VasarhelyiController(const VasarhelyiParams& params)
    : params_(params) {
  if (params.v_flock <= 0.0 || params.v_max <= 0.0 || params.r0_rep <= 0.0 ||
      params.a_frict <= 0.0 || params.p_frict <= 0.0 || params.a_shill <= 0.0 ||
      params.p_shill <= 0.0) {
    throw std::invalid_argument("VasarhelyiController: invalid parameter");
  }
}

VasarhelyiController::Terms VasarhelyiController::compute_terms(
    int self_index, const WorldSnapshot& snapshot, const MissionSpec& mission) const {
  if (self_index < 0 || self_index >= static_cast<int>(snapshot.drones.size())) {
    throw std::out_of_range("VasarhelyiController: self_index out of range");
  }
  const sim::DroneObservation& self =
      snapshot.drones[static_cast<size_t>(self_index)];
  Terms terms;

  // Goal (1): self-propulsion toward the destination at the preferred speed.
  terms.migration =
      (mission.destination - self.gps_position).horizontal().normalized() *
      params_.v_flock;

  // Goals (2) and (3): pairwise terms over every heard neighbour.
  std::vector<std::pair<double, Vec3>> neighbours;  // (distance, self - other)
  neighbours.reserve(snapshot.drones.size());
  int friction_contributors = 0;
  for (int k = 0; k < static_cast<int>(snapshot.drones.size()); ++k) {
    if (k == self_index) continue;
    const sim::DroneObservation& other = snapshot.drones[static_cast<size_t>(k)];
    const Vec3 diff = (self.gps_position - other.gps_position).horizontal();
    const double dist = diff.norm();
    if (dist < 1e-9) continue;  // coincident fixes: no defined direction
    neighbours.emplace_back(dist, diff);

    if (dist < params_.r0_rep) {
      terms.repulsion += diff * (params_.p_rep * (params_.r0_rep - dist) / dist);
    }

    const Vec3 vel_diff = other.velocity - self.velocity;
    const double vel_diff_norm = vel_diff.norm();
    const double slack =
        std::max(params_.v_frict,
                 braking_curve(dist - params_.r0_frict, params_.a_frict,
                               params_.p_frict));
    if (vel_diff_norm > slack) {
      terms.friction +=
          vel_diff * (params_.c_frict * (vel_diff_norm - slack) / vel_diff_norm);
      ++friction_contributors;
    }
  }
  // Alignment is averaged, not summed: a drone surrounded by many
  // like-moving neighbours should feel one consensus pull, not an O(N) force
  // that can bulldoze it through an obstacle in large swarms.
  if (friction_contributors > 1) {
    terms.friction = terms.friction / static_cast<double>(friction_contributors);
  }

  // Goal (3) cohesion: topological attraction toward the k_att *nearest*
  // members that have drifted beyond r0_att. Topological interaction is
  // standard in flocking (it keeps the formation from fragmenting) and,
  // unlike metric all-pairs attraction, produces no centripetal squeeze in
  // dense swarms: there the nearest members are well inside r0_att.
  std::sort(neighbours.begin(), neighbours.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const int k_att = std::min<int>(params_.k_att, static_cast<int>(neighbours.size()));
  for (int k = 0; k < k_att; ++k) {
    const auto& [dist, diff] = neighbours[static_cast<size_t>(k)];
    if (dist > params_.r0_att) {
      terms.attraction += diff * (-params_.p_att * (dist - params_.r0_att) / dist);
    }
  }
  // Capped in total: one distant buddy pulls as hard as several.
  terms.attraction = terms.attraction.clamped(params_.v_att_max);

  // Goal (2), obstacle part: align with a shill agent sitting just outside
  // the nearest obstacle surface, moving outward at v_shill. The braking
  // curve makes the term negligible far away and dominant near the surface.
  for (const sim::CylinderObstacle& obstacle : mission.obstacles.obstacles()) {
    const double dist = math::distance_to_cylinder(self.gps_position,
                                                   obstacle.center, obstacle.radius);
    const Vec3 outward =
        math::cylinder_outward_normal(self.gps_position, obstacle.center);
    const Vec3 shill_velocity = outward * params_.v_shill;
    const Vec3 vel_diff = shill_velocity - self.velocity;
    const double vel_diff_norm = vel_diff.norm();
    const double slack = braking_curve(dist - params_.r0_shill, params_.a_shill,
                                       params_.p_shill);
    if (vel_diff_norm > slack) {
      terms.shill += vel_diff * ((vel_diff_norm - slack) / vel_diff_norm);
    }
  }

  terms.altitude = Vec3{0.0, 0.0,
                        params_.altitude_gain *
                            (mission.cruise_altitude - self.gps_position.z)};
  return terms;
}

Vec3 VasarhelyiController::desired_velocity(int self_index,
                                            const WorldSnapshot& snapshot,
                                            const MissionSpec& mission) const {
  return compute_terms(self_index, snapshot, mission).total().clamped(params_.v_max);
}

}  // namespace swarmfuzz::swarm
