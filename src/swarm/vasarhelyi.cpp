#include "swarm/vasarhelyi.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "math/geometry.h"
#include "swarm/spatial_grid.h"

namespace swarmfuzz::swarm {

double braking_curve(double r, double a, double p) {
  if (r <= 0.0) return 0.0;
  if (r * p <= a / p) return r * p;
  return std::sqrt(2.0 * a * r - a * a / (p * p));
}

VasarhelyiController::VasarhelyiController(const VasarhelyiParams& params)
    : params_(params) {
  if (params.v_flock <= 0.0 || params.v_max <= 0.0 || params.r0_rep <= 0.0 ||
      params.a_frict <= 0.0 || params.p_frict <= 0.0 || params.a_shill <= 0.0 ||
      params.p_shill <= 0.0) {
    throw std::invalid_argument("VasarhelyiController: invalid parameter");
  }
}

namespace {

using Terms = VasarhelyiController::Terms;

// The pairwise sub-velocity terms, factored out so the per-view path and the
// batch paths below share bit-identical arithmetic. `diff` is
// (self - other) GPS fixes, horizontal; `dist` its norm.

// Goal (2) inter-drone: linear repulsion below r0_rep.
inline bool repulsion_term(const VasarhelyiParams& prm, const math::Vec3& diff,
                           double dist, math::Vec3& out) {
  if (!(dist < prm.r0_rep)) return false;
  out = diff * (prm.p_rep * (prm.r0_rep - dist) / dist);
  return true;
}

// Goal (3) alignment: velocity slack from the braking curve. `vel_diff` is
// (other - self) velocity. The norm's sqrt is skipped when the squared norm
// is safely below the slack (0.9^2 margin: rounding error is ~1e-16
// relative, so the original `vel_diff_norm > slack` test could not have
// passed); when the guard is inconclusive the original expressions run
// unchanged, so accepted pairs produce the exact same bits.
inline bool friction_term(const VasarhelyiParams& prm, const math::Vec3& vel_diff,
                          double dist, math::Vec3& out) {
  const double norm_sq = vel_diff.norm_sq();
  // slack >= v_frict always, so a well-aligned pair skips the braking-curve
  // sqrt too, not just the norm's.
  if (norm_sq <= 0.81 * prm.v_frict * prm.v_frict) return false;
  const double slack =
      std::max(prm.v_frict,
               braking_curve(dist - prm.r0_frict, prm.a_frict, prm.p_frict));
  if (norm_sq <= 0.81 * slack * slack) return false;
  const double vel_diff_norm = std::sqrt(norm_sq);
  if (!(vel_diff_norm > slack)) return false;
  out = vel_diff * (prm.c_frict * (vel_diff_norm - slack) / vel_diff_norm);
  return true;
}

// Distance beyond which friction_term above is GUARANTEED to return false
// for every pair whose velocity-gap norm is at most `vel_gap_max`: the
// braking-curve slack at that separation satisfies
// vel_gap_max^2 <= 0.81 * slack^2, so the first guard rejects the pair.
// Inverting both pieces of the monotone braking curve conservatively (the
// +1.0 m dwarfs any rounding in the curve evaluation).
inline double friction_cutoff_distance(const VasarhelyiParams& prm,
                                       double vel_gap_max) {
  const double slack_needed = vel_gap_max / 0.9 + 1e-6;
  const double a = prm.a_frict;
  const double p = prm.p_frict;
  const double r_needed = std::max(slack_needed / p,
                                   (slack_needed * slack_needed + a * a / (p * p)) /
                                       (2.0 * a)) +
                          1.0;
  return prm.r0_frict + r_needed;
}

// Goal (3) cohesion: topological attraction toward the k_att *nearest*
// members that have drifted beyond r0_att. Topological interaction is
// standard in flocking (it keeps the formation from fragmenting) and,
// unlike metric all-pairs attraction, produces no centripetal squeeze in
// dense swarms: there the nearest members are well inside r0_att.
//
// Only the k nearest are needed, ascending: an O(count*k) insertion
// selection beats heap-based partial_sort at flocking sizes and, being
// shared by the per-view and batch paths (comparisons depend only on the
// distance values, first-seen wins ties), keeps their selections
// identical. `dist_at(j)` returns candidate j's distance; `top` receives
// the selected candidate indices in ascending distance order.
//
// Because comparisons are strict and ties go to the first-seen candidate,
// the selected set is the k smallest by (distance, arrival order)
// lexicographic rank. Hence feeding any *subset* of the candidates that
// still contains every candidate at distance <= the k-th smallest, in the
// same arrival order, selects the exact same members in the same order —
// which is what lets the spatial grid cull the candidate list.
template <typename DistAt>
inline void select_nearest(int count, int k, DistAt dist_at, std::vector<int>& top) {
  top.clear();
  if (k <= 0) return;
  for (int j = 0; j < count; ++j) {
    const double d = dist_at(j);
    if (static_cast<int>(top.size()) < k) {
      top.push_back(j);
    } else if (d < dist_at(top.back())) {
      top.back() = j;
    } else {
      continue;
    }
    for (size_t q = top.size() - 1;
         q > 0 && d < dist_at(top[q - 1]); --q) {
      std::swap(top[q], top[q - 1]);
    }
  }
}

inline math::Vec3 attraction_sum(const VasarhelyiParams& prm,
                                 const std::vector<std::pair<double, math::Vec3>>& nbrs,
                                 std::vector<int>& top) {
  const int k_att = std::min<int>(prm.k_att, static_cast<int>(nbrs.size()));
  select_nearest(
      static_cast<int>(nbrs.size()), k_att,
      [&](int j) { return nbrs[static_cast<size_t>(j)].first; }, top);
  math::Vec3 attraction;
  for (const int idx : top) {
    const auto& [dist, diff] = nbrs[static_cast<size_t>(idx)];
    if (dist > prm.r0_att) {
      attraction += diff * (-prm.p_att * (dist - prm.r0_att) / dist);
    }
  }
  // Capped in total: one distant buddy pulls as hard as several.
  return attraction.clamped(prm.v_att_max);
}

// Goal (2), obstacle part: align with a shill agent sitting just outside
// the nearest obstacle surface, moving outward at v_shill. The braking
// curve makes the term negligible far away and dominant near the surface.
inline math::Vec3 shill_sum(const VasarhelyiParams& prm,
                            const math::Vec3& self_pos, const math::Vec3& self_vel,
                            const sim::MissionSpec& mission) {
  math::Vec3 shill;
  for (const sim::CylinderObstacle& obstacle : mission.obstacles.obstacles()) {
    const double dist = math::distance_to_cylinder(self_pos, obstacle.center,
                                                   obstacle.radius);
    const double slack =
        braking_curve(dist - prm.r0_shill, prm.a_shill, prm.p_shill);
    // Far from the surface the slack is huge; skip the normal/velocity
    // sqrts when even the triangle-inequality bound on |vel_diff|
    // ((a+b)^2 <= 2a^2 + 2b^2, |shill_velocity| <= v_shill) sits safely
    // below it. The 0.81 margin dwarfs rounding, so whenever the original
    // `vel_diff_norm > slack` could pass we fall through unchanged.
    if (2.0 * (prm.v_shill * prm.v_shill + self_vel.norm_sq()) <=
        0.81 * slack * slack) {
      continue;
    }
    const math::Vec3 outward =
        math::cylinder_outward_normal(self_pos, obstacle.center);
    const math::Vec3 shill_velocity = outward * prm.v_shill;
    const math::Vec3 vel_diff = shill_velocity - self_vel;
    const double vel_diff_norm = vel_diff.norm();
    if (vel_diff_norm > slack) {
      shill += vel_diff * ((vel_diff_norm - slack) / vel_diff_norm);
    }
  }
  return shill;
}

// Goal (1): self-propulsion toward the destination at the preferred speed.
inline math::Vec3 migration_term(const VasarhelyiParams& prm,
                                 const math::Vec3& self_pos,
                                 const sim::MissionSpec& mission) {
  return (mission.destination - self_pos).horizontal().normalized() *
         prm.v_flock;
}

// Alignment is averaged, not summed: a drone surrounded by many
// like-moving neighbours should feel one consensus pull, not an O(N) force
// that can bulldoze it through an obstacle in large swarms.
inline void average_friction(Terms& terms, int contributors) {
  if (contributors > 1) {
    terms.friction = terms.friction / static_cast<double>(contributors);
  }
}

// Scratch comes from the shared per-tick context (swarm/tick_context.h):
// PairScanScratch fields used here are `neighbours` (dist, self-other),
// `top` (select_nearest output), `cand`/`cand_near` (grid gathers), and on
// the dense batch path `dist` (row-major n*n pairwise cache), `vec_a`
// (repulsion accumulators), `vec_b` (friction accumulators),
// `contributors`, and `sel`. Serial callers borrow thread_tick_context();
// the batch path takes lanes from the executor's context.

// Largest velocity norm in the broadcast; bounds every pair's velocity gap
// by 2 * result (triangle inequality). NaN-propagating: a non-finite
// velocity yields a non-finite bound and callers fall back to the exact
// dense path.
inline double max_speed(const sim::WorldSnapshot& snapshot) {
  double norm_sq = 0.0;
  for (const math::Vec3& v : snapshot.velocity) {
    norm_sq = std::max(norm_sq, v.norm_sq());
    if (std::isnan(v.norm_sq())) return std::numeric_limits<double>::quiet_NaN();
  }
  return std::sqrt(norm_sq);
}

// Upper bound on the largest pairwise velocity gap |v_i - v_j|: the
// diagonal of the component-wise bounding box of the velocity set
// (|v_i,c - v_j,c| <= max_c - min_c per component). Much tighter than the
// 2 * max_speed triangle bound for a flock, whose whole point is velocity
// alignment — a converged swarm has a near-zero diagonal even at cruise
// speed, which shrinks the friction cutoff (and with it every grid
// candidate set) to little more than r0_frict. Non-finite velocities yield
// a non-finite bound (checked explicitly: std::min/max would keep the
// finite operand) and callers fall back to the exact dense path.
inline double velocity_gap_bound(const sim::WorldSnapshot& snapshot) {
  if (snapshot.velocity.empty()) return 0.0;
  double lo_x = snapshot.velocity[0].x, hi_x = lo_x;
  double lo_y = snapshot.velocity[0].y, hi_y = lo_y;
  double lo_z = snapshot.velocity[0].z, hi_z = lo_z;
  bool finite = true;
  for (const math::Vec3& v : snapshot.velocity) {
    finite = finite && std::isfinite(v.x) && std::isfinite(v.y) &&
             std::isfinite(v.z);
    lo_x = std::min(lo_x, v.x);
    hi_x = std::max(hi_x, v.x);
    lo_y = std::min(lo_y, v.y);
    hi_y = std::max(hi_y, v.y);
    lo_z = std::min(lo_z, v.z);
    hi_z = std::max(hi_z, v.z);
  }
  if (!finite) return std::numeric_limits<double>::quiet_NaN();
  const double dx = hi_x - lo_x;
  const double dy = hi_y - lo_y;
  const double dz = hi_z - lo_z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

}  // namespace

VasarhelyiController::Terms VasarhelyiController::compute_terms(
    const NeighborView& view, const MissionSpec& mission) const {
  const Vec3& self_pos = view.self_position();
  const Vec3& self_vel = view.self_velocity();
  Terms terms;
  terms.migration = migration_term(params_, self_pos, mission);

  // Goals (2) and (3): pairwise terms over every heard neighbour.
  PairScanScratch& s = thread_tick_context().lane(0);
  std::vector<std::pair<double, Vec3>>& neighbours = s.neighbours;
  neighbours.clear();
  neighbours.reserve(static_cast<size_t>(view.size()));
  int friction_contributors = 0;
  for (int k = 0; k < view.size(); ++k) {
    if (k == view.self_index()) continue;
    const Vec3 diff = (self_pos - view.position(k)).horizontal();
    const double dist = diff.norm();
    if (dist < 1e-9) continue;  // coincident fixes: no defined direction
    neighbours.emplace_back(dist, diff);

    Vec3 term;
    if (repulsion_term(params_, diff, dist, term)) terms.repulsion += term;
    if (friction_term(params_, view.velocity(k) - self_vel, dist, term)) {
      terms.friction += term;
      ++friction_contributors;
    }
  }
  average_friction(terms, friction_contributors);
  terms.attraction = attraction_sum(params_, neighbours, s.top);
  terms.shill = shill_sum(params_, self_pos, self_vel, mission);
  terms.altitude = Vec3{0.0, 0.0,
                        params_.altitude_gain *
                            (mission.cruise_altitude - self_pos.z)};
  return terms;
}

VasarhelyiController::Terms VasarhelyiController::compute_terms(
    int self_index, const WorldSnapshot& snapshot, const MissionSpec& mission) const {
  if (self_index < 0 || self_index >= snapshot.size()) {
    throw std::out_of_range("VasarhelyiController: self_index out of range");
  }
  return compute_terms(NeighborView(snapshot, self_index), mission);
}

Vec3 VasarhelyiController::desired_velocity(const NeighborView& view,
                                            const MissionSpec& mission) const {
  return compute_terms(view, mission).total().clamped(params_.v_max);
}

void VasarhelyiController::desired_velocity_all(const WorldSnapshot& snapshot,
                                                const MissionSpec& mission,
                                                std::span<Vec3> desired,
                                                const TickExecutor& exec) const {
  const int n = snapshot.size();
  TickContext& ctx =
      exec.context != nullptr ? *exec.context : thread_tick_context();
  const std::vector<Vec3>& pos = snapshot.gps_position;
  const std::vector<Vec3>& vel = snapshot.velocity;

  // Grid fast path for large swarms. Candidate culling is conservative:
  //  * repulsion fires only below r0_rep;
  //  * friction is guaranteed false beyond friction_cutoff_distance for the
  //    swarm's worst-case velocity gap (the velocity bounding-box diagonal),
  //    so skipped pairs contribute neither a term nor a contributor count;
  //  * attraction needs the true k_att nearest. One fused gather(r_pair)
  //    covers that too whenever at least k_att candidates sit at exact
  //    distance <= r_pair: the k-th smallest qualifying distance dk is then
  //    <= r_pair, every drone at distance <= dk is among the candidates,
  //    and select_nearest over a subset that (a) contains everything at
  //    distance <= dk and (b) preserves arrival order picks exactly the
  //    members the full scan picks (see the select_nearest comment). Drones
  //    with sparse surroundings re-gather at doubled radii until the same
  //    certificate holds.
  // Every candidate still runs the exact per-view arithmetic in ascending
  // broadcast order, so results are bit-identical to the paths below — and
  // because each drone's kernel reads only the immutable grid/snapshot and
  // writes only desired[i] through lane-private scratch, chunking the loop
  // over the tick pool reproduces the serial bits for any thread count.
  if (spatial_grid_wanted(n)) {
    const double r_pair = std::max(
        params_.r0_rep,
        friction_cutoff_distance(params_, velocity_gap_bound(snapshot)));
    if (std::isfinite(r_pair)) {
      SpatialGrid& grid = ctx.grid();
      grid.build(std::span<const Vec3>(pos), std::max(r_pair, 1e-3));
      if (grid.valid()) {
        auto run_range = [&](int begin, int end, int lane) {
          PairScanScratch& s = ctx.lane(lane);
          for (int i = begin; i < end; ++i) {
            const Vec3& self_pos = pos[static_cast<size_t>(i)];
            const Vec3& self_vel = vel[static_cast<size_t>(i)];
            Terms terms;
            terms.migration = migration_term(params_, self_pos, mission);

            // Fused candidate pass: diff and dist are computed once per
            // candidate and feed repulsion, friction AND the attraction
            // neighbour list.
            s.cand.clear();
            grid.gather(self_pos, r_pair, s.cand);
            s.neighbours.clear();
            int friction_contributors = 0;
            int within_r_pair = 0;
            for (const int j : s.cand) {
              if (j == i) continue;
              const Vec3 diff =
                  (self_pos - pos[static_cast<size_t>(j)]).horizontal();
              const double dist = diff.norm();
              if (dist < 1e-9) continue;  // coincident fixes
              s.neighbours.emplace_back(dist, diff);
              if (dist <= r_pair) ++within_r_pair;
              Vec3 term;
              if (repulsion_term(params_, diff, dist, term)) {
                terms.repulsion += term;
              }
              if (friction_term(params_, vel[static_cast<size_t>(j)] - self_vel,
                                dist, term)) {
                terms.friction += term;
                ++friction_contributors;
              }
            }
            average_friction(terms, friction_contributors);

            // s.neighbours covers the k_att nearest when enough candidates
            // sit within the exact (unpadded) r_pair, or when the candidate
            // set is the whole swarm. A drone with sparser surroundings (the
            // Poisson tail of the neighbour count) re-gathers at
            // geometrically doubled radii until the same certificate holds —
            // each retry is one cheap rectangle query, and the doubling
            // terminates because a radius covering the grid extent returns
            // every drone.
            double r_att = r_pair;
            while (within_r_pair < params_.k_att &&
                   static_cast<int>(s.cand.size()) < n) {
              r_att *= 2.0;
              s.cand.clear();
              grid.gather(self_pos, r_att, s.cand);
              s.neighbours.clear();
              within_r_pair = 0;
              for (const int j : s.cand) {
                if (j == i) continue;
                const Vec3 diff =
                    (self_pos - pos[static_cast<size_t>(j)]).horizontal();
                const double dist = diff.norm();
                if (dist < 1e-9) continue;
                s.neighbours.emplace_back(dist, diff);
                if (dist <= r_att) ++within_r_pair;
              }
            }
            terms.attraction = attraction_sum(params_, s.neighbours, s.top);

            terms.shill = shill_sum(params_, self_pos, self_vel, mission);
            terms.altitude = Vec3{0.0, 0.0,
                                  params_.altitude_gain *
                                      (mission.cruise_altitude - self_pos.z)};
            desired[static_cast<size_t>(i)] =
                terms.total().clamped(params_.v_max);
          }
        };
        if (exec.parallel()) {
          exec.pool->parallel_for(n, run_range);
        } else {
          run_range(0, n, 0);
        }
        return;
      }
    }
  }

  // Symmetric dense batch path: with trivial communication every drone sees
  // the same broadcast, so each unordered pair's distance and velocity-gap
  // norm are computed once and scattered to both members. This is
  // bit-identical to the per-view path: diff_ji = -diff_ij and the squared
  // norms agree exactly (IEEE negation and multiplication), subtraction of
  // a term equals addition of its exact negation, and the scatter order
  // (outer i ascending, inner j ascending) accumulates into each drone's
  // sums in exactly the neighbour order the per-view loop uses. Stays
  // serial: the half-pair scatter writes rows i and j from one iteration.
  PairScanScratch& s = ctx.lane(0);
  s.dist.resize(static_cast<size_t>(n) * static_cast<size_t>(n));
  // vec_a accumulates repulsion, vec_b friction; the remaining Terms fields
  // are assembled per drone in the second loop with identical accumulation
  // order, so the bits match the old per-drone Terms array.
  s.vec_a.assign(static_cast<size_t>(n), Vec3{});
  s.vec_b.assign(static_cast<size_t>(n), Vec3{});
  s.contributors.assign(static_cast<size_t>(n), 0);

  for (int i = 0; i < n; ++i) {
    const Vec3& pi = pos[static_cast<size_t>(i)];
    const Vec3& vi = vel[static_cast<size_t>(i)];
    for (int j = i + 1; j < n; ++j) {
      const Vec3 diff = (pi - pos[static_cast<size_t>(j)]).horizontal();
      const double dist = diff.norm();
      s.dist[static_cast<size_t>(i) * static_cast<size_t>(n) +
             static_cast<size_t>(j)] = dist;
      s.dist[static_cast<size_t>(j) * static_cast<size_t>(n) +
             static_cast<size_t>(i)] = dist;
      if (dist < 1e-9) continue;  // coincident fixes: no defined direction

      Vec3 term;
      if (repulsion_term(params_, diff, dist, term)) {
        s.vec_a[static_cast<size_t>(i)] += term;
        s.vec_a[static_cast<size_t>(j)] -= term;
      }
      if (friction_term(params_, vel[static_cast<size_t>(j)] - vi, dist, term)) {
        s.vec_b[static_cast<size_t>(i)] += term;
        s.vec_b[static_cast<size_t>(j)] -= term;
        ++s.contributors[static_cast<size_t>(i)];
        ++s.contributors[static_cast<size_t>(j)];
      }
    }
  }

  for (int i = 0; i < n; ++i) {
    const Vec3& self_pos = pos[static_cast<size_t>(i)];
    Terms terms;
    terms.repulsion = s.vec_a[static_cast<size_t>(i)];
    terms.friction = s.vec_b[static_cast<size_t>(i)];
    terms.migration = migration_term(params_, self_pos, mission);
    average_friction(terms, s.contributors[static_cast<size_t>(i)]);

    // Attraction from the cached distance row; the (self - other) diff is
    // recomputed for just the selected few. fl(b - a) = -fl(a - b)
    // componentwise, so recomputing in self's orientation matches the
    // per-view bits regardless of which triangle the pair loop walked.
    const size_t row = static_cast<size_t>(i) * static_cast<size_t>(n);
    s.sel.clear();
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      if (s.dist[row + static_cast<size_t>(j)] < 1e-9) continue;
      s.sel.push_back(j);
    }
    const int k_att = std::min<int>(params_.k_att, static_cast<int>(s.sel.size()));
    select_nearest(
        static_cast<int>(s.sel.size()), k_att,
        [&](int q) {
          return s.dist[row + static_cast<size_t>(s.sel[static_cast<size_t>(q)])];
        },
        s.top);
    Vec3 attraction;
    for (const int q : s.top) {
      const int j = s.sel[static_cast<size_t>(q)];
      const double dist = s.dist[row + static_cast<size_t>(j)];
      if (dist > params_.r0_att) {
        const Vec3 diff =
            (self_pos - pos[static_cast<size_t>(j)]).horizontal();
        attraction += diff * (-params_.p_att * (dist - params_.r0_att) / dist);
      }
    }
    terms.attraction = attraction.clamped(params_.v_att_max);

    terms.shill = shill_sum(params_, self_pos, vel[static_cast<size_t>(i)], mission);
    terms.altitude = Vec3{0.0, 0.0,
                          params_.altitude_gain *
                              (mission.cruise_altitude - self_pos.z)};
    desired[static_cast<size_t>(i)] = terms.total().clamped(params_.v_max);
  }
}

double VasarhelyiController::probe_influence_radius(
    const WorldSnapshot& snapshot, const MissionSpec& mission) const {
  (void)mission;  // obstacle (shill) terms do not depend on other drones
  const int n = snapshot.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Moving drone j beyond this radius from drone i (before AND after the
  // spoof — the caller adds the spoof displacement) cannot change i's
  // desired velocity:
  //  * repulsion is zero beyond r0_rep;
  //  * friction is guaranteed zero beyond the cutoff for the swarm's
  //    worst-case velocity gap;
  //  * attraction only reacts to the k_att nearest members, so a drone
  //    farther than every member's k_att-th nearest distance (Dk_max) is
  //    never selected — and with strict comparisons, never displaces a
  //    selection or changes a tie.
  // If some member has fewer than k_att non-coincident neighbours, every
  // neighbour is selected no matter how far: no finite radius is safe.
  const double vmax = max_speed(snapshot);
  const double r_frict = friction_cutoff_distance(params_, 2.0 * vmax);
  if (!std::isfinite(r_frict)) return kInf;

  double dk_max = 0.0;
  if (params_.k_att > 0) {
    TickContext& ctx = thread_tick_context();
    SpatialGrid& grid = ctx.grid();
    PairScanScratch& s = ctx.lane(0);
    const std::vector<Vec3>& pos = snapshot.gps_position;
    const bool use_grid = spatial_grid_wanted(n);
    if (use_grid) {
      grid.build(std::span<const Vec3>(pos), std::max(params_.r0_att, 1e-3));
    }
    const bool grid_ok = use_grid && grid.valid();
    for (int i = 0; i < n; ++i) {
      const Vec3& self_pos = pos[static_cast<size_t>(i)];
      // Qualifying distances from i, via the grid's k-nearest superset when
      // available (it provably contains the true k_att nearest) or the full
      // scan otherwise.
      s.neighbours.clear();
      const auto consider = [&](int j) {
        if (j == i) return;
        const Vec3 diff = (self_pos - pos[static_cast<size_t>(j)]).horizontal();
        const double dist = diff.norm();
        if (dist < 1e-9) return;
        s.neighbours.emplace_back(dist, diff);
      };
      if (grid_ok) {
        s.cand_near.clear();
        grid.gather_nearest(self_pos, params_.k_att, 1e-9, s.cand_near);
        for (const int j : s.cand_near) consider(j);
      } else {
        for (int j = 0; j < n; ++j) consider(j);
      }
      if (static_cast<int>(s.neighbours.size()) < params_.k_att) return kInf;
      select_nearest(
          static_cast<int>(s.neighbours.size()), params_.k_att,
          [&](int q) { return s.neighbours[static_cast<size_t>(q)].first; },
          s.top);
      const double dk = s.neighbours[static_cast<size_t>(s.top.back())].first;
      if (!std::isfinite(dk)) return kInf;
      dk_max = std::max(dk_max, dk);
    }
  }
  return std::max({params_.r0_rep, r_frict, dk_max});
}

}  // namespace swarmfuzz::swarm
