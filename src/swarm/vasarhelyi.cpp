#include "swarm/vasarhelyi.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "math/geometry.h"

namespace swarmfuzz::swarm {

double braking_curve(double r, double a, double p) {
  if (r <= 0.0) return 0.0;
  if (r * p <= a / p) return r * p;
  return std::sqrt(2.0 * a * r - a * a / (p * p));
}

VasarhelyiController::VasarhelyiController(const VasarhelyiParams& params)
    : params_(params) {
  if (params.v_flock <= 0.0 || params.v_max <= 0.0 || params.r0_rep <= 0.0 ||
      params.a_frict <= 0.0 || params.p_frict <= 0.0 || params.a_shill <= 0.0 ||
      params.p_shill <= 0.0) {
    throw std::invalid_argument("VasarhelyiController: invalid parameter");
  }
}

namespace {

using Terms = VasarhelyiController::Terms;

// The pairwise sub-velocity terms, factored out so the per-view path and the
// symmetric batch path below share bit-identical arithmetic. `diff` is
// (self - other) GPS fixes, horizontal; `dist` its norm.

// Goal (2) inter-drone: linear repulsion below r0_rep.
inline bool repulsion_term(const VasarhelyiParams& prm, const math::Vec3& diff,
                           double dist, math::Vec3& out) {
  if (!(dist < prm.r0_rep)) return false;
  out = diff * (prm.p_rep * (prm.r0_rep - dist) / dist);
  return true;
}

// Goal (3) alignment: velocity slack from the braking curve. `vel_diff` is
// (other - self) velocity. The norm's sqrt is skipped when the squared norm
// is safely below the slack (0.9^2 margin: rounding error is ~1e-16
// relative, so the original `vel_diff_norm > slack` test could not have
// passed); when the guard is inconclusive the original expressions run
// unchanged, so accepted pairs produce the exact same bits.
inline bool friction_term(const VasarhelyiParams& prm, const math::Vec3& vel_diff,
                          double dist, math::Vec3& out) {
  const double norm_sq = vel_diff.norm_sq();
  // slack >= v_frict always, so a well-aligned pair skips the braking-curve
  // sqrt too, not just the norm's.
  if (norm_sq <= 0.81 * prm.v_frict * prm.v_frict) return false;
  const double slack =
      std::max(prm.v_frict,
               braking_curve(dist - prm.r0_frict, prm.a_frict, prm.p_frict));
  if (norm_sq <= 0.81 * slack * slack) return false;
  const double vel_diff_norm = std::sqrt(norm_sq);
  if (!(vel_diff_norm > slack)) return false;
  out = vel_diff * (prm.c_frict * (vel_diff_norm - slack) / vel_diff_norm);
  return true;
}

// Goal (3) cohesion: topological attraction toward the k_att *nearest*
// members that have drifted beyond r0_att. Topological interaction is
// standard in flocking (it keeps the formation from fragmenting) and,
// unlike metric all-pairs attraction, produces no centripetal squeeze in
// dense swarms: there the nearest members are well inside r0_att.
//
// Only the k nearest are needed, ascending: an O(count*k) insertion
// selection beats heap-based partial_sort at flocking sizes and, being
// shared by the per-view and batch paths (comparisons depend only on the
// distance values, first-seen wins ties), keeps their selections
// identical. `dist_at(j)` returns candidate j's distance; `top` receives
// the selected candidate indices in ascending distance order.
template <typename DistAt>
inline void select_nearest(int count, int k, DistAt dist_at, std::vector<int>& top) {
  top.clear();
  if (k <= 0) return;
  for (int j = 0; j < count; ++j) {
    const double d = dist_at(j);
    if (static_cast<int>(top.size()) < k) {
      top.push_back(j);
    } else if (d < dist_at(top.back())) {
      top.back() = j;
    } else {
      continue;
    }
    for (size_t q = top.size() - 1;
         q > 0 && d < dist_at(top[q - 1]); --q) {
      std::swap(top[q], top[q - 1]);
    }
  }
}

inline math::Vec3 attraction_sum(const VasarhelyiParams& prm,
                                 const std::vector<std::pair<double, math::Vec3>>& nbrs,
                                 std::vector<int>& top) {
  const int k_att = std::min<int>(prm.k_att, static_cast<int>(nbrs.size()));
  select_nearest(
      static_cast<int>(nbrs.size()), k_att,
      [&](int j) { return nbrs[static_cast<size_t>(j)].first; }, top);
  math::Vec3 attraction;
  for (const int idx : top) {
    const auto& [dist, diff] = nbrs[static_cast<size_t>(idx)];
    if (dist > prm.r0_att) {
      attraction += diff * (-prm.p_att * (dist - prm.r0_att) / dist);
    }
  }
  // Capped in total: one distant buddy pulls as hard as several.
  return attraction.clamped(prm.v_att_max);
}

// Goal (2), obstacle part: align with a shill agent sitting just outside
// the nearest obstacle surface, moving outward at v_shill. The braking
// curve makes the term negligible far away and dominant near the surface.
inline math::Vec3 shill_sum(const VasarhelyiParams& prm,
                            const sim::DroneObservation& self,
                            const sim::MissionSpec& mission) {
  math::Vec3 shill;
  for (const sim::CylinderObstacle& obstacle : mission.obstacles.obstacles()) {
    const double dist = math::distance_to_cylinder(self.gps_position,
                                                   obstacle.center, obstacle.radius);
    const double slack =
        braking_curve(dist - prm.r0_shill, prm.a_shill, prm.p_shill);
    // Far from the surface the slack is huge; skip the normal/velocity
    // sqrts when even the triangle-inequality bound on |vel_diff|
    // ((a+b)^2 <= 2a^2 + 2b^2, |shill_velocity| <= v_shill) sits safely
    // below it. The 0.81 margin dwarfs rounding, so whenever the original
    // `vel_diff_norm > slack` could pass we fall through unchanged.
    if (2.0 * (prm.v_shill * prm.v_shill + self.velocity.norm_sq()) <=
        0.81 * slack * slack) {
      continue;
    }
    const math::Vec3 outward =
        math::cylinder_outward_normal(self.gps_position, obstacle.center);
    const math::Vec3 shill_velocity = outward * prm.v_shill;
    const math::Vec3 vel_diff = shill_velocity - self.velocity;
    const double vel_diff_norm = vel_diff.norm();
    if (vel_diff_norm > slack) {
      shill += vel_diff * ((vel_diff_norm - slack) / vel_diff_norm);
    }
  }
  return shill;
}

// Goal (1): self-propulsion toward the destination at the preferred speed.
inline math::Vec3 migration_term(const VasarhelyiParams& prm,
                                 const sim::DroneObservation& self,
                                 const sim::MissionSpec& mission) {
  return (mission.destination - self.gps_position).horizontal().normalized() *
         prm.v_flock;
}

// Alignment is averaged, not summed: a drone surrounded by many
// like-moving neighbours should feel one consensus pull, not an O(N) force
// that can bulldoze it through an obstacle in large swarms.
inline void average_friction(Terms& terms, int contributors) {
  if (contributors > 1) {
    terms.friction = terms.friction / static_cast<double>(contributors);
  }
}

// Per-thread scratch buffers, reused across calls so the hot path performs
// no heap allocation in steady state; thread_local (not mutable members)
// because campaign workers may share one controller instance.
struct Scratch {
  std::vector<std::pair<double, math::Vec3>> neighbours;  // (dist, self-other)
  std::vector<int> top;  // select_nearest output
  // Batch path: pairwise distance cache (row-major n*n, diagonal unused)
  // and per-drone accumulators.
  std::vector<double> dist;
  std::vector<Terms> terms;
  std::vector<int> contributors;
  std::vector<int> sel;  // attraction candidates of one drone (broadcast idx)
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

}  // namespace

VasarhelyiController::Terms VasarhelyiController::compute_terms(
    const NeighborView& view, const MissionSpec& mission) const {
  const sim::DroneObservation& self = view.self();
  Terms terms;
  terms.migration = migration_term(params_, self, mission);

  // Goals (2) and (3): pairwise terms over every heard neighbour.
  std::vector<std::pair<double, Vec3>>& neighbours = scratch().neighbours;
  neighbours.clear();
  neighbours.reserve(static_cast<size_t>(view.size()));
  int friction_contributors = 0;
  for (int k = 0; k < view.size(); ++k) {
    if (k == view.self_index()) continue;
    const sim::DroneObservation& other = view[k];
    const Vec3 diff = (self.gps_position - other.gps_position).horizontal();
    const double dist = diff.norm();
    if (dist < 1e-9) continue;  // coincident fixes: no defined direction
    neighbours.emplace_back(dist, diff);

    Vec3 term;
    if (repulsion_term(params_, diff, dist, term)) terms.repulsion += term;
    if (friction_term(params_, other.velocity - self.velocity, dist, term)) {
      terms.friction += term;
      ++friction_contributors;
    }
  }
  average_friction(terms, friction_contributors);
  terms.attraction = attraction_sum(params_, neighbours, scratch().top);
  terms.shill = shill_sum(params_, self, mission);
  terms.altitude = Vec3{0.0, 0.0,
                        params_.altitude_gain *
                            (mission.cruise_altitude - self.gps_position.z)};
  return terms;
}

VasarhelyiController::Terms VasarhelyiController::compute_terms(
    int self_index, const WorldSnapshot& snapshot, const MissionSpec& mission) const {
  if (self_index < 0 || self_index >= static_cast<int>(snapshot.drones.size())) {
    throw std::out_of_range("VasarhelyiController: self_index out of range");
  }
  return compute_terms(NeighborView(snapshot, self_index), mission);
}

Vec3 VasarhelyiController::desired_velocity(const NeighborView& view,
                                            const MissionSpec& mission) const {
  return compute_terms(view, mission).total().clamped(params_.v_max);
}

void VasarhelyiController::desired_velocity_all(const WorldSnapshot& snapshot,
                                                const MissionSpec& mission,
                                                std::span<Vec3> desired) const {
  // Symmetric batch path: with trivial communication every drone sees the
  // same broadcast, so each unordered pair's distance and velocity-gap norm
  // are computed once and scattered to both members. This is bit-identical
  // to the per-view path: diff_ji = -diff_ij and the squared norms agree
  // exactly (IEEE negation and multiplication), subtraction of a term
  // equals addition of its exact negation, and the scatter order (outer
  // i ascending, inner j ascending) accumulates into each drone's sums in
  // exactly the neighbour order the per-view loop uses.
  const int n = static_cast<int>(snapshot.drones.size());
  Scratch& s = scratch();
  s.dist.resize(static_cast<size_t>(n) * static_cast<size_t>(n));
  s.terms.assign(static_cast<size_t>(n), Terms{});
  s.contributors.assign(static_cast<size_t>(n), 0);

  const auto& drones = snapshot.drones;
  for (int i = 0; i < n; ++i) {
    const sim::DroneObservation& di = drones[static_cast<size_t>(i)];
    for (int j = i + 1; j < n; ++j) {
      const sim::DroneObservation& dj = drones[static_cast<size_t>(j)];
      const Vec3 diff = (di.gps_position - dj.gps_position).horizontal();
      const double dist = diff.norm();
      s.dist[static_cast<size_t>(i) * static_cast<size_t>(n) +
             static_cast<size_t>(j)] = dist;
      s.dist[static_cast<size_t>(j) * static_cast<size_t>(n) +
             static_cast<size_t>(i)] = dist;
      if (dist < 1e-9) continue;  // coincident fixes: no defined direction

      Vec3 term;
      if (repulsion_term(params_, diff, dist, term)) {
        s.terms[static_cast<size_t>(i)].repulsion += term;
        s.terms[static_cast<size_t>(j)].repulsion -= term;
      }
      if (friction_term(params_, dj.velocity - di.velocity, dist, term)) {
        s.terms[static_cast<size_t>(i)].friction += term;
        s.terms[static_cast<size_t>(j)].friction -= term;
        ++s.contributors[static_cast<size_t>(i)];
        ++s.contributors[static_cast<size_t>(j)];
      }
    }
  }

  for (int i = 0; i < n; ++i) {
    const sim::DroneObservation& self = drones[static_cast<size_t>(i)];
    Terms& terms = s.terms[static_cast<size_t>(i)];
    terms.migration = migration_term(params_, self, mission);
    average_friction(terms, s.contributors[static_cast<size_t>(i)]);

    // Attraction from the cached distance row; the (self - other) diff is
    // recomputed for just the selected few. fl(b - a) = -fl(a - b)
    // componentwise, so recomputing in self's orientation matches the
    // per-view bits regardless of which triangle the pair loop walked.
    const size_t row = static_cast<size_t>(i) * static_cast<size_t>(n);
    s.sel.clear();
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      if (s.dist[row + static_cast<size_t>(j)] < 1e-9) continue;
      s.sel.push_back(j);
    }
    const int k_att = std::min<int>(params_.k_att, static_cast<int>(s.sel.size()));
    select_nearest(
        static_cast<int>(s.sel.size()), k_att,
        [&](int q) {
          return s.dist[row + static_cast<size_t>(s.sel[static_cast<size_t>(q)])];
        },
        s.top);
    Vec3 attraction;
    for (const int q : s.top) {
      const int j = s.sel[static_cast<size_t>(q)];
      const double dist = s.dist[row + static_cast<size_t>(j)];
      if (dist > params_.r0_att) {
        const Vec3 diff =
            (self.gps_position - drones[static_cast<size_t>(j)].gps_position)
                .horizontal();
        attraction += diff * (-params_.p_att * (dist - params_.r0_att) / dist);
      }
    }
    terms.attraction = attraction.clamped(params_.v_att_max);

    terms.shill = shill_sum(params_, self, mission);
    terms.altitude = Vec3{0.0, 0.0,
                          params_.altitude_gain *
                              (mission.cruise_altitude - self.gps_position.z)};
    desired[static_cast<size_t>(i)] = terms.total().clamped(params_.v_max);
  }
}

}  // namespace swarmfuzz::swarm
