#include "swarm/flocking_system.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "swarm/vasarhelyi.h"

namespace swarmfuzz::swarm {

FlockingControlSystem::FlockingControlSystem(
    std::shared_ptr<const SwarmController> controller, const CommConfig& comm)
    : controller_(std::move(controller)), comm_(comm) {
  if (controller_ == nullptr) {
    throw std::invalid_argument("FlockingControlSystem: null controller");
  }
}

void FlockingControlSystem::reset(const sim::MissionSpec& /*mission*/,
                                  std::uint64_t seed) {
  comm_.reset(seed);
}

void FlockingControlSystem::set_tick_pool(sim::TickPool* pool) {
  tick_pool_ = pool;
  tick_context_.resize_lanes(pool != nullptr ? pool->threads() : 1);
}

void FlockingControlSystem::save_state(std::vector<std::uint64_t>& out) const {
  const math::Rng::State& rng = comm_.rng_state();
  out.assign(rng.begin(), rng.end());
}

void FlockingControlSystem::restore_state(std::span<const std::uint64_t> state) {
  math::Rng::State rng{};
  if (state.size() != rng.size()) {
    throw std::invalid_argument(
        "FlockingControlSystem: bad checkpoint state size");
  }
  std::copy(state.begin(), state.end(), rng.begin());
  comm_.set_rng_state(rng);
}

void FlockingControlSystem::compute(const sim::WorldSnapshot& snapshot,
                                    const sim::MissionSpec& mission,
                                    std::span<Vec3> desired) {
  const int n = snapshot.size();
  if (static_cast<int>(desired.size()) != n) {
    throw std::invalid_argument("FlockingControlSystem: desired size mismatch");
  }
  // Trivial communication (the paper's evaluation default): every view is
  // the whole broadcast and the zero drop probability consumes no packet-
  // loss randomness, so dispatching to the controller's batch entry point
  // is observationally identical to the per-drone loop below — including
  // the RNG stream — while letting the controller share work across drones.
  if (std::isinf(comm_.config().range) && comm_.config().drop_probability == 0.0) {
    controller_->desired_velocity_all(snapshot, mission, desired,
                                      TickExecutor{tick_pool_, &tick_context_});
    return;
  }
  // Range-limited communication: one spatial grid for the whole tick culls
  // every receiver's candidate scan (filter_into re-applies the exact range
  // test and consumes the same packet-loss draws, so views and the RNG
  // stream are bit-identical to the unculled scan). The grid member reuses
  // its buffers, so the rebuild is allocation-free in steady state.
  const SpatialGrid* grid = nullptr;
  if (spatial_grid_wanted(n) && std::isfinite(comm_.config().range)) {
    comm_grid_.build(std::span<const Vec3>(snapshot.gps_position),
                     std::max(comm_.config().range, 1e-3));
    if (comm_grid_.valid()) grid = &comm_grid_;
  }
  // Lossless range-limited communication consumes no packet-loss draws on
  // either path, so the per-receiver filter+evaluate loop can run on the
  // tick pool via the pure filter_at(): each lane filters against the shared
  // grid into its own member scratch and writes only its own desired slots.
  // Gated on the canonical broadcast layout (drone id i at slot i, what the
  // simulator emits) so filter_at's receiver-by-slot addressing resolves
  // self exactly like filter_into's first-matching-id scan.
  const TickExecutor exec{tick_pool_, &tick_context_};
  if (comm_.config().drop_probability == 0.0 && exec.parallel()) {
    bool canonical = true;
    for (int i = 0; i < n && canonical; ++i) {
      canonical = snapshot.id[static_cast<size_t>(i)] == i;
    }
    if (canonical) {
      exec.pool->parallel_for(n, [&](int begin, int end, int lane) {
        PairScanScratch& s = tick_context_.lane(lane);
        for (int i = begin; i < end; ++i) {
          const NeighborView view =
              comm_.filter_at(snapshot, i, s.members, s.cand, grid);
          desired[static_cast<size_t>(i)] =
              controller_->desired_velocity(view, mission);
        }
      });
      return;
    }
  }
  for (int i = 0; i < n; ++i) {
    const int id = snapshot.id[static_cast<size_t>(i)];
    // filter_into() puts the receiving drone first in its own view; the
    // member-index scratch is reused, so this loop is allocation-free in
    // steady state.
    const NeighborView view = comm_.filter_into(snapshot, id, members_, grid);
    desired[static_cast<size_t>(i)] = controller_->desired_velocity(view, mission);
  }
}

Vec3 FlockingControlSystem::probe_desired_velocity(
    int drone_id, const sim::WorldSnapshot& snapshot,
    const sim::MissionSpec& mission) const {
  // Canonical broadcast layout: drone with id i sits at index i. Hit it
  // without scanning; fall back to a scan for synthetic snapshots.
  const int n = snapshot.size();
  if (drone_id >= 0 && drone_id < n &&
      snapshot.id[static_cast<size_t>(drone_id)] == drone_id) {
    return probe_desired_velocity_at(drone_id, snapshot, mission);
  }
  for (int i = 0; i < n; ++i) {
    if (snapshot.id[static_cast<size_t>(i)] == drone_id) {
      return probe_desired_velocity_at(i, snapshot, mission);
    }
  }
  throw std::invalid_argument("FlockingControlSystem: unknown drone id in probe");
}

Vec3 FlockingControlSystem::probe_desired_velocity_at(
    int self_index, const sim::WorldSnapshot& snapshot,
    const sim::MissionSpec& mission) const {
  if (self_index < 0 || self_index >= snapshot.size()) {
    throw std::out_of_range("FlockingControlSystem: probe index out of range");
  }
  return controller_->desired_velocity(NeighborView(snapshot, self_index), mission);
}

std::unique_ptr<FlockingControlSystem> make_vasarhelyi_system(const CommConfig& comm) {
  return std::make_unique<FlockingControlSystem>(
      std::make_shared<VasarhelyiController>(), comm);
}

}  // namespace swarmfuzz::swarm
