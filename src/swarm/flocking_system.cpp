#include "swarm/flocking_system.h"

#include <stdexcept>

#include "swarm/vasarhelyi.h"

namespace swarmfuzz::swarm {

FlockingControlSystem::FlockingControlSystem(
    std::shared_ptr<const SwarmController> controller, const CommConfig& comm)
    : controller_(std::move(controller)), comm_(comm) {
  if (controller_ == nullptr) {
    throw std::invalid_argument("FlockingControlSystem: null controller");
  }
}

void FlockingControlSystem::reset(const sim::MissionSpec& /*mission*/,
                                  std::uint64_t seed) {
  comm_.reset(seed);
}

void FlockingControlSystem::compute(const sim::WorldSnapshot& snapshot,
                                    const sim::MissionSpec& mission,
                                    std::span<Vec3> desired) {
  if (desired.size() != snapshot.drones.size()) {
    throw std::invalid_argument("FlockingControlSystem: desired size mismatch");
  }
  for (size_t i = 0; i < snapshot.drones.size(); ++i) {
    const int id = snapshot.drones[i].id;
    const sim::WorldSnapshot view = comm_.filter(snapshot, id);
    // filter() puts the receiving drone first in its own view.
    desired[i] = controller_->desired_velocity(0, view, mission);
  }
}

Vec3 FlockingControlSystem::probe_desired_velocity(
    int drone_id, const sim::WorldSnapshot& snapshot,
    const sim::MissionSpec& mission) const {
  for (size_t i = 0; i < snapshot.drones.size(); ++i) {
    if (snapshot.drones[i].id == drone_id) {
      return controller_->desired_velocity(static_cast<int>(i), snapshot, mission);
    }
  }
  throw std::invalid_argument("FlockingControlSystem: unknown drone id in probe");
}

std::unique_ptr<FlockingControlSystem> make_vasarhelyi_system(const CommConfig& comm) {
  return std::make_unique<FlockingControlSystem>(
      std::make_shared<VasarhelyiController>(), comm);
}

}  // namespace swarmfuzz::swarm
