// Grid-culled batch evaluation for controllers with a hard interaction
// cutoff (Olfati-Saber's alpha range, Reynolds' neighbourhood radius).
// Internal helper shared by their desired_velocity_all overrides.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "sim/types.h"
#include "swarm/comm.h"
#include "swarm/spatial_grid.h"
#include "swarm/tick_context.h"

namespace swarmfuzz::swarm {

// Evaluates `eval(view)` for every drone, culling each drone's view to the
// grid's candidate superset within `cutoff` when the swarm is large enough.
// Exact for any controller whose pairwise kernel ignores neighbours beyond
// `cutoff`: the superset contains every interacting neighbour, candidates
// arrive in ascending broadcast order (the whole-view iteration order), and
// culled drones contributed nothing to begin with — so the results are
// bit-identical to whole-broadcast views, which it falls back to when the
// grid is unwanted (small swarm, disabled policy) or invalid (non-finite
// coordinates).
//
// A parallel `exec` chunks the per-drone loop across the tick pool; `eval`
// must then be safe to call concurrently (the per-view controller kernels
// are pure). The grid is built once by the calling thread and only read by
// the lanes, and each drone's view is identical to the serial one, so the
// results stay bit-identical for any thread count.
template <typename Eval>
void evaluate_all_with_cutoff(const sim::WorldSnapshot& snapshot, double cutoff,
                              std::span<math::Vec3> desired, Eval eval,
                              const TickExecutor& exec = {}) {
  const int n = snapshot.size();
  if (spatial_grid_wanted(n) && std::isfinite(cutoff) && cutoff > 0.0) {
    TickContext& ctx =
        exec.context != nullptr ? *exec.context : thread_tick_context();
    SpatialGrid& grid = ctx.grid();
    grid.build(std::span<const math::Vec3>(snapshot.gps_position),
               std::max(cutoff, 1e-3));
    if (grid.valid()) {
      auto run_range = [&](int begin, int end, int lane) {
        std::vector<int>& cand = ctx.lane(lane).cand;
        for (int i = begin; i < end; ++i) {
          cand.clear();
          grid.gather(snapshot.gps_position[static_cast<size_t>(i)], cutoff,
                      cand);
          // Self is always gathered (distance 0); locate its view position.
          const auto it = std::lower_bound(cand.begin(), cand.end(), i);
          if (it == cand.end() || *it != i) {
            desired[static_cast<size_t>(i)] = eval(NeighborView(snapshot, i));
            continue;
          }
          const int self_index = static_cast<int>(it - cand.begin());
          desired[static_cast<size_t>(i)] =
              eval(NeighborView(snapshot, cand, self_index));
        }
      };
      if (exec.parallel()) {
        exec.pool->parallel_for(n, run_range);
      } else {
        run_range(0, n, 0);
      }
      return;
    }
  }
  for (int i = 0; i < n; ++i) {
    desired[static_cast<size_t>(i)] = eval(NeighborView(snapshot, i));
  }
}

}  // namespace swarmfuzz::swarm
