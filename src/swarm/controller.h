// Swarm-controller concept: a memoryless flocking law.
//
// A controller maps the *perceived* states of the drones a member can hear
// (GPS positions - possibly spoofed - plus velocity estimates) to that
// member's desired velocity. Statelessness is what lets SwarmFuzz probe
// counterfactuals cheaply: the SVG construction (section IV-B) evaluates
// "what would drone i do if drone j's position were spoofed right now?"
// without re-running the mission.
#pragma once

#include <string_view>

#include "sim/mission.h"
#include "sim/types.h"

namespace swarmfuzz::swarm {

using sim::MissionSpec;
using sim::Vec3;
using sim::WorldSnapshot;

class SwarmController {
 public:
  virtual ~SwarmController() = default;

  // Desired velocity for the drone at `self_index` in `snapshot.drones`.
  // The snapshot contains the drone itself plus every neighbour it can hear
  // (communication filtering happens in FlockingControlSystem).
  [[nodiscard]] virtual Vec3 desired_velocity(int self_index,
                                              const WorldSnapshot& snapshot,
                                              const MissionSpec& mission) const = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

}  // namespace swarmfuzz::swarm
