// Swarm-controller concept: a memoryless flocking law.
//
// A controller maps the *perceived* states of the drones a member can hear
// (GPS positions - possibly spoofed - plus velocity estimates) to that
// member's desired velocity. Statelessness is what lets SwarmFuzz probe
// counterfactuals cheaply: the SVG construction (section IV-B) evaluates
// "what would drone i do if drone j's position were spoofed right now?"
// without re-running the mission.
#pragma once

#include <limits>
#include <span>
#include <stdexcept>
#include <string_view>

#include "sim/mission.h"
#include "sim/types.h"
#include "swarm/comm.h"
#include "swarm/tick_context.h"

namespace swarmfuzz::swarm {

using sim::MissionSpec;
using sim::Vec3;
using sim::WorldSnapshot;

class SwarmController {
 public:
  virtual ~SwarmController() = default;

  // Desired velocity for the view's own drone. The view contains the drone
  // itself plus every neighbour it can hear (communication filtering
  // happens in FlockingControlSystem); it borrows the broadcast snapshot,
  // so implementations must not retain it past the call. This is the hot
  // path: implementations must not allocate in steady state.
  [[nodiscard]] virtual Vec3 desired_velocity(const NeighborView& view,
                                              const MissionSpec& mission) const = 0;

  // Snapshot adapter, equivalent to a whole-broadcast view with self at
  // `self_index`. Kept for tests and counterfactual probes; derived classes
  // re-export it with `using SwarmController::desired_velocity;`.
  [[nodiscard]] Vec3 desired_velocity(int self_index, const WorldSnapshot& snapshot,
                                      const MissionSpec& mission) const {
    if (self_index < 0 || self_index >= snapshot.size()) {
      throw std::out_of_range("SwarmController: self_index out of range");
    }
    return desired_velocity(NeighborView(snapshot, self_index), mission);
  }

  // Batch evaluation over the whole broadcast under *trivial* communication
  // (every drone hears every other: infinite range, no packet loss — the
  // paper's evaluation default). Fills desired[i] for broadcast slot i;
  // `desired.size()` must equal `snapshot.size()`. Semantically identical
  // to one whole-broadcast desired_velocity call per drone; controllers may
  // override it with a bit-identical faster equivalent (VasarhelyiController
  // computes each symmetric pair once and the pair kernels use the spatial
  // grid for large swarms).
  void desired_velocity_all(const WorldSnapshot& snapshot,
                            const MissionSpec& mission,
                            std::span<Vec3> desired) const {
    desired_velocity_all(snapshot, mission, desired, TickExecutor{});
  }

  // Executor-aware batch entry point. A parallel `exec` invites the
  // controller to chunk the per-drone loop over the tick pool; results must
  // stay bit-identical for any pool size (static contiguous chunking keeps
  // each drone's accumulation order unchanged — DESIGN.md §15). The default
  // stays serial: it cannot assume an arbitrary controller's
  // desired_velocity is safe to call concurrently, so only overrides that
  // guarantee it (all three in-tree controllers do) opt in.
  virtual void desired_velocity_all(const WorldSnapshot& snapshot,
                                    const MissionSpec& mission,
                                    std::span<Vec3> desired,
                                    const TickExecutor& exec) const {
    (void)exec;
    for (int i = 0; i < snapshot.size(); ++i) {
      desired[static_cast<size_t>(i)] =
          desired_velocity(NeighborView(snapshot, i), mission);
    }
  }

  // Radius of influence for counterfactual spoof probes: if drone j's
  // broadcast position (original AND spoofed) is farther than this from
  // drone i's position, moving j cannot change i's desired velocity, so the
  // SVG construction may skip the probe (svg.cpp culls with this through
  // the spatial grid). Controllers with a hard interaction cutoff override
  // it; infinity (the default) disables culling. `snapshot` lets the
  // controller bound state-dependent terms (e.g. velocity-dependent
  // friction slack, topological attraction distance).
  [[nodiscard]] virtual double probe_influence_radius(
      const WorldSnapshot& snapshot, const MissionSpec& mission) const {
    (void)snapshot;
    (void)mission;
    return std::numeric_limits<double>::infinity();
  }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

}  // namespace swarmfuzz::swarm
