#include "cli/commands.h"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "attack/spoofing.h"
#include "defense/detector.h"
#include "fuzz/campaign.h"
#include "fuzz/fuzzer.h"
#include "fuzz/serialize.h"
#include "graph/pagerank.h"
#include "math/stats.h"
#include "swarm/flocking_system.h"
#include "swarm/olfati_saber.h"
#include "swarm/reynolds.h"
#include "swarm/vasarhelyi.h"
#include "util/fileio.h"
#include "util/table.h"

namespace swarmfuzz::cli {
namespace {

sim::MissionSpec mission_from(const util::Options& options) {
  sim::MissionConfig config;
  config.num_drones = options.get_int("drones", 5);
  config.num_obstacles = options.get_int("obstacles", 1);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1013));
  return sim::generate_mission(config, seed);
}

sim::SimulationConfig sim_from(const util::Options& options) {
  sim::SimulationConfig config;
  config.dt = options.get_double("dt", 0.05);
  config.gps.rate_hz = options.get_double("gps-rate", 20.0);
  config.gps.noise_stddev = options.get_double("gps-noise", 0.0);
  config.use_navigation_filter = options.get_bool("nav-filter", false);
  return config;
}

fuzz::FuzzerKind fuzzer_kind_from(const util::Options& options) {
  const std::string name = options.get("fuzzer", "swarmfuzz");
  if (name == "swarmfuzz") return fuzz::FuzzerKind::kSwarmFuzz;
  if (name == "random" || name == "r_fuzz") return fuzz::FuzzerKind::kRandom;
  if (name == "gradient" || name == "g_fuzz") return fuzz::FuzzerKind::kGradientOnly;
  if (name == "svg" || name == "s_fuzz") return fuzz::FuzzerKind::kSvgOnly;
  throw std::invalid_argument("unknown --fuzzer: " + name);
}

}  // namespace

std::shared_ptr<const swarm::SwarmController> make_controller(std::string_view name) {
  if (name == "vasarhelyi" || name == "vicsek" || name.empty()) {
    return std::make_shared<swarm::VasarhelyiController>();
  }
  if (name == "olfati" || name == "olfati_saber") {
    return std::make_shared<swarm::OlfatiSaberController>();
  }
  if (name == "reynolds" || name == "boids") {
    return std::make_shared<swarm::ReynoldsController>();
  }
  throw std::invalid_argument("unknown --controller: " + std::string{name});
}

int cmd_run(const util::Options& options) {
  const sim::MissionSpec mission = mission_from(options);
  auto controller = make_controller(options.get("controller", "vasarhelyi"));
  swarm::FlockingControlSystem system(controller);
  const sim::Simulator simulator(sim_from(options));
  const sim::RunResult result = simulator.run(mission, system);

  std::printf("controller=%s drones=%d seed=%llu\n", controller->name().data(),
              mission.num_drones(), static_cast<unsigned long long>(mission.seed));
  std::printf("%s in %.1f s, collisions: %s\n",
              result.reached_destination ? "arrived" : "timed out", result.end_time,
              result.collided ? "YES" : "none");
  for (int i = 0; i < mission.num_drones(); ++i) {
    std::printf("  drone %2d VDO %.2f m\n", i, result.vdo(i));
  }
  return result.collided ? 1 : 0;
}

int cmd_fuzz(const util::Options& options) {
  const sim::MissionSpec mission = mission_from(options);
  fuzz::FuzzerConfig config;
  config.sim = sim_from(options);
  config.spoof_distance = options.get_double("distance", 10.0);
  config.mission_budget = options.get_int("budget", 60);
  config.prefix_reuse = !options.get_bool("no-prefix-reuse", false);
  config.checkpoint_period = options.get_double("checkpoint-period", 1.0);
  config.mission_timeout_s = options.get_double("mission-timeout", 0.0);
  config.eval_max_steps = options.get_int("eval-max-steps", 0);
  // --eval-threads=N fans the gradient search's evaluation batches out over
  // N worker threads (0 = hardware concurrency); results are bit-identical
  // to --eval-threads=1.
  config.eval_threads = options.get_int("eval-threads", 1);
  auto fuzzer = fuzz::make_fuzzer(fuzzer_kind_from(options), config,
                                  make_controller(options.get("controller", "")));
  const fuzz::FuzzResult result = fuzzer->fuzz(mission);
  if (options.get_bool("json", false)) {
    std::printf("%s\n", fuzz::to_json(result).c_str());
    return result.clean_run_failed ? 2 : 0;
  }
  if (result.clean_run_failed) {
    std::printf("clean run collided; mission not fuzzable\n");
    return 2;
  }
  std::printf("%s: %d iterations, %d simulations, mission VDO %.2f m\n",
              fuzzer->name().data(), result.iterations, result.simulations,
              result.mission_vdo);
  if (result.eval_parallelism > 1) {
    std::printf("  eval parallelism  %d threads, %d batches\n",
                result.eval_parallelism, result.eval_batches);
  }
  if (result.no_seeds) {
    std::printf("no seeds: SVG scheduling found no target-victim pairs\n");
    return 0;
  }
  if (!result.found) {
    std::printf("no SPV found: mission resilient at %.0f m spoofing\n",
                config.spoof_distance);
    return 0;
  }
  std::printf("SPV: %s -> victim %d (clean VDO %.2f m)\n",
              result.plan.to_string().c_str(), result.victim, result.victim_vdo);
  return 0;
}

int cmd_campaign(const util::Options& options) {
  fuzz::CampaignConfig config;
  config.mission.num_drones = options.get_int("drones", 5);
  config.fuzzer.sim = sim_from(options);
  config.fuzzer.spoof_distance = options.get_double("distance", 10.0);
  config.fuzzer.mission_budget = options.get_int("budget", 60);
  config.fuzzer.prefix_reuse = !options.get_bool("no-prefix-reuse", false);
  config.fuzzer.checkpoint_period = options.get_double("checkpoint-period", 1.0);
  config.num_missions = options.get_int("missions", 30);
  config.base_seed = static_cast<std::uint64_t>(options.get_int("seed", 1000));
  config.num_threads = options.get_int("threads", 0);
  // 0 = auto: run_campaign splits the hardware between mission workers and
  // per-worker eval threads (workers x eval threads <= hardware); an
  // explicit value is clamped to that budget.
  config.fuzzer.eval_threads = options.get_int("eval-threads", 0);
  config.kind = fuzzer_kind_from(options);
  // Fault containment: --mission-timeout bounds one mission's wall clock,
  // --eval-max-steps bounds each simulation's ticks; tripping either (or any
  // exception) retries the mission with a salted seed up to
  // --max-fault-retries times before it is quarantined. --fail-fast stops
  // the campaign at the first quarantined mission instead.
  config.fuzzer.mission_timeout_s = options.get_double("mission-timeout", 0.0);
  config.fuzzer.eval_max_steps = options.get_int("eval-max-steps", 0);
  config.max_fault_retries = options.get_int("max-fault-retries", 2);
  config.fail_fast = options.get_bool("fail-fast", false);
  // Deterministic fault injection (tests/CI): also honoured from the
  // SWARMFUZZ_FAULT_INJECT environment variable via the usual env fallback.
  const std::string fault_plan = options.get("fault-inject", "");
  if (!fault_plan.empty()) {
    config.fault_injections = fuzz::parse_fault_plan(fault_plan);
  }
  if (options.has("controller")) {
    const std::string name = options.get("controller", "vasarhelyi");
    config.controller_factory = [name] { return make_controller(name); };
  }

  // Durability/observability: --checkpoint=PATH appends one JSONL record per
  // completed mission; with --resume, records already at PATH satisfy their
  // missions and only the remainder runs. --telemetry=PATH streams the same
  // records to a separate file (useful when the checkpoint is per-run).
  config.checkpoint_path = options.get("checkpoint", "");
  config.resume = options.get_bool("resume", false);
  // Quarantine defaults to riding alongside the checkpoint.
  config.quarantine_path =
      options.get("quarantine", config.checkpoint_path.empty()
                                    ? ""
                                    : config.checkpoint_path + ".quarantine");
  std::unique_ptr<fuzz::JsonlTelemetrySink> telemetry;
  const std::string telemetry_path = options.get("telemetry", "");
  if (!telemetry_path.empty()) {
    telemetry = std::make_unique<fuzz::JsonlTelemetrySink>(telemetry_path,
                                                           /*append=*/true);
    config.telemetry = telemetry.get();
  }
  if (options.get_bool("progress", true)) {
    config.on_progress = [](const fuzz::CampaignProgress& p) {
      // Live status line; ETA extrapolates from missions done *this run*.
      const int fresh = p.completed - p.resumed;
      const double eta =
          fresh > 0 ? p.elapsed_s / fresh * (p.total - p.completed) : 0.0;
      if (p.faulted > 0) {
        std::fprintf(stderr,
                     "\r%d/%d missions  %d SPVs  %d faulted  %.0fs elapsed  "
                     "ETA %.0fs ",
                     p.completed, p.total, p.found, p.faulted, p.elapsed_s, eta);
      } else {
        std::fprintf(stderr,
                     "\r%d/%d missions  %d SPVs  %.0fs elapsed  ETA %.0fs ",
                     p.completed, p.total, p.found, p.elapsed_s, eta);
      }
      if (p.completed == p.total) std::fputc('\n', stderr);
      std::fflush(stderr);
    };
  }

  const fuzz::CampaignResult result = fuzz::run_campaign(config);
  // --summary=FILE persists the JSON report atomically (write-temp-then-
  // rename), so a crash mid-write can never leave a half-written report
  // where a dashboard or a later pipeline stage expects a complete one.
  const std::string summary_path = options.get("summary", "");
  if (!summary_path.empty()) {
    util::write_file_atomic(summary_path, fuzz::to_json(result) + "\n");
  }
  if (options.get_bool("json", false)) {
    std::printf("%s\n", fuzz::to_json(result).c_str());
    return 0;
  }
  const auto ci = math::wilson_interval(result.num_found(), result.num_fuzzable());
  std::printf("%s, %d drones, %.0f m spoofing, %d missions:\n",
              fuzz::fuzzer_kind_name(config.kind).data(), config.mission.num_drones,
              config.fuzzer.spoof_distance, config.num_missions);
  std::printf("  success rate      %.1f%%  (95%% CI %.1f%% - %.1f%%)\n",
              result.success_rate() * 100.0, ci.low * 100.0, ci.high * 100.0);
  std::printf("  avg iterations    %.2f (all) / %.2f (successful)\n",
              result.avg_iterations_all(), result.avg_iterations_successful());
  const auto vdos = result.mission_vdos();
  std::printf("  mission VDO       median %.2f m\n", math::median(vdos));
  const std::int64_t executed = result.total_sim_steps_executed();
  const std::int64_t reused = result.total_prefix_steps_reused();
  if (executed + reused > 0) {
    std::printf("  prefix reuse      %.1f%% of %lld sim steps skipped\n",
                100.0 * static_cast<double>(reused) /
                    static_cast<double>(executed + reused),
                static_cast<long long>(executed + reused));
  }
  if (result.num_no_seeds() > 0) {
    std::printf("  no-seed missions  %d (SVG scheduling found nothing to fuzz)\n",
                result.num_no_seeds());
  }
  if (result.num_faulted() > 0) {
    std::printf(
        "  faults            %d (%d divergence, %d timeout, %d exception, "
        "%d clean-run failed)\n",
        result.num_faulted(),
        result.fault_count(sim::FaultKind::kNumericalDivergence),
        result.fault_count(sim::FaultKind::kTimeout),
        result.fault_count(sim::FaultKind::kException),
        result.fault_count(sim::FaultKind::kCleanRunFailed));
    if (!config.quarantine_path.empty()) {
      std::printf("  quarantine        %s\n", config.quarantine_path.c_str());
    }
  }
  return 0;
}

int cmd_svg(const util::Options& options) {
  const sim::MissionSpec mission = mission_from(options);
  auto controller = make_controller(options.get("controller", "vasarhelyi"));
  swarm::FlockingControlSystem system(controller);
  const sim::Simulator simulator(sim_from(options));
  const sim::RunResult clean = simulator.run(mission, system);
  if (clean.collided) {
    std::printf("clean run collided; no SVG\n");
    return 2;
  }
  const double distance = options.get_double("distance", 10.0);
  const auto seeds = fuzz::schedule_seeds(clean, mission, system, distance);
  util::TextTable table({"#", "target", "victim", "dir", "VDO", "influence"});
  int index = 0;
  for (const fuzz::Seed& s : seeds) {
    table.add_row({std::to_string(index++), std::to_string(s.target),
                   std::to_string(s.victim),
                   std::string{attack::direction_name(s.direction)},
                   util::format_double(s.vdo), util::format_double(s.influence, 3)});
  }
  std::printf("%s", table.render("Seedpool (fuzzing order)").c_str());
  return 0;
}

int cmd_replay(const util::Options& options) {
  const sim::MissionSpec mission = mission_from(options);
  const attack::SpoofingPlan plan{
      .target = options.get_int("target", 0),
      .direction = options.get("direction", "right") == "left"
                       ? attack::SpoofDirection::kLeft
                       : attack::SpoofDirection::kRight,
      .start_time = options.get_double("start", 30.0),
      .duration = options.get_double("duration", 10.0),
      .distance = options.get_double("distance", 10.0),
  };
  auto controller = make_controller(options.get("controller", "vasarhelyi"));
  swarm::FlockingControlSystem system(controller);
  const sim::Simulator simulator(sim_from(options));
  const attack::GpsSpoofer spoofer(plan, mission);

  defense::SwarmDetectionMonitor monitor(
      mission.num_drones(),
      defense::DetectorConfig{.threshold = options.get_double("detect-threshold", 10.0)});
  const bool detect = options.get_bool("detect", false);
  const sim::RunResult result =
      simulator.run(mission, system, &spoofer, detect ? &monitor : nullptr);

  std::printf("replayed %s\n", plan.to_string().c_str());
  if (result.first_collision) {
    const auto& event = *result.first_collision;
    std::printf("collision: drone %d vs %s %d at t=%.1f s\n", event.drone,
                event.kind == sim::CollisionKind::kDroneObstacle ? "obstacle" : "drone",
                event.other, event.time);
  } else {
    std::printf("no collision (mission %s in %.1f s)\n",
                result.reached_destination ? "completed" : "ended", result.end_time);
  }
  if (detect) {
    const defense::DetectionReport report = monitor.report();
    if (report.detected) {
      std::printf("defense: spoofing DETECTED on drone %d at t=%.1f s\n",
                  report.drone, report.time);
    } else {
      std::printf("defense: not detected (peak innovation %.2f m)\n",
                  report.peak_innovation);
    }
  }
  return 0;
}

int print_usage() {
  std::printf(
      "swarmfuzz - discovering GPS-spoofing attacks in drone swarms\n\n"
      "usage: swarmfuzz <command> [options]\n\n"
      "commands:\n"
      "  run        fly one mission without attack\n"
      "  fuzz       search one mission for SPVs (--fuzzer=swarmfuzz|random|gradient|svg)\n"
      "             [--no-prefix-reuse] [--checkpoint-period=S]\n"
      "             [--mission-timeout=S] [--eval-max-steps=N]\n"
      "             [--eval-threads=N] (parallel batch evaluation, 0 = all\n"
      "             cores; bit-identical results for any N)\n"
      "  campaign   evaluate a configuration over many missions\n"
      "             [--telemetry=FILE] [--checkpoint=FILE [--resume]]\n"
      "             [--progress=false] [--no-prefix-reuse] [--checkpoint-period=S]\n"
      "             [--eval-threads=N] (per-worker eval threads; 0 = auto-split\n"
      "             so workers x eval threads <= hardware)\n"
      "             [--summary=FILE] (atomic JSON report)\n"
      "             fault containment: [--mission-timeout=S] (wall-clock budget\n"
      "             per mission) [--eval-max-steps=N] (sim-step budget per\n"
      "             evaluation) [--max-fault-retries=N] (salted re-runs before\n"
      "             quarantine, default 2) [--fail-fast] [--quarantine=FILE]\n"
      "             (default <checkpoint>.quarantine)\n"
      "             [--fault-inject=mode@idx[:t][xN],...] (nan|throw|hang; test\n"
      "             hook, also read from SWARMFUZZ_FAULT_INJECT)\n"
      "  svg        print the Swarm Vulnerability Graph seedpool\n"
      "  replay     execute an explicit spoofing plan (--target --direction\n"
      "             --start --duration --distance) [--detect]\n\n"
      "common options: --drones=N --seed=N --distance=M --controller=vasarhelyi|\n"
      "                olfati|reynolds --dt=S --gps-rate=HZ --nav-filter\n");
  return 64;
}

int dispatch(int argc, const char* const* argv) {
  const util::Options options = util::Options::parse(argc, argv);
  if (options.positional().empty()) return print_usage();
  const std::string& command = options.positional().front();
  try {
    if (command == "run") return cmd_run(options);
    if (command == "fuzz") return cmd_fuzz(options);
    if (command == "campaign") return cmd_campaign(options);
    if (command == "svg") return cmd_svg(options);
    if (command == "replay") return cmd_replay(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
  return print_usage();
}

}  // namespace swarmfuzz::cli
