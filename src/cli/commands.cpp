#include "cli/commands.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "attack/spoofing.h"
#include "defense/detector.h"
#include "fuzz/campaign.h"
#include "fuzz/coordinator.h"
#include "fuzz/fuzzer.h"
#include "fuzz/serialize.h"
#include "fuzz/service.h"
#include "fuzz/shard_merge.h"
#include "graph/pagerank.h"
#include "math/stats.h"
#include "swarm/flocking_system.h"
#include "swarm/olfati_saber.h"
#include "swarm/reynolds.h"
#include "swarm/vasarhelyi.h"
#include "util/fileio.h"
#include "util/retry.h"
#include "util/table.h"

namespace swarmfuzz::cli {
namespace {

sim::MissionSpec mission_from(const util::Options& options) {
  sim::MissionConfig config;
  config.num_drones = options.get_int("drones", 5);
  config.num_obstacles = options.get_int("obstacles", 1);
  // The default 50 m box only fits ~30 drones at the default 8 m
  // separation; large swarms need a wider box or generation throws.
  config.spawn_range = options.get_double("spawn-range", config.spawn_range);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1013));
  return sim::generate_mission(config, seed);
}

sim::SimulationConfig sim_from(const util::Options& options) {
  sim::SimulationConfig config;
  config.dt = options.get_double("dt", 0.05);
  config.gps.rate_hz = options.get_double("gps-rate", 20.0);
  config.gps.noise_stddev = options.get_double("gps-noise", 0.0);
  config.use_navigation_filter = options.get_bool("nav-filter", false);
  // Intra-tick worker threads: 1 = serial (default), 0 = auto (all
  // hardware); bit-identical results for any value.
  config.sim_threads = options.get_int("sim-threads", 1);
  const std::string vehicle = options.get("vehicle", "pointmass");
  if (vehicle == "quadrotor" || vehicle == "quad") {
    config.vehicle = sim::VehicleType::kQuadrotor;
  } else if (vehicle == "pointmass" || vehicle == "point_mass") {
    config.vehicle = sim::VehicleType::kPointMass;
  } else {
    throw std::invalid_argument("unknown --vehicle: " + vehicle);
  }
  return config;
}

fuzz::FuzzerKind fuzzer_kind_from(const util::Options& options) {
  const std::string name = options.get("fuzzer", "swarmfuzz");
  if (name == "swarmfuzz") return fuzz::FuzzerKind::kSwarmFuzz;
  if (name == "random" || name == "r_fuzz") return fuzz::FuzzerKind::kRandom;
  if (name == "gradient" || name == "g_fuzz") return fuzz::FuzzerKind::kGradientOnly;
  if (name == "svg" || name == "s_fuzz") return fuzz::FuzzerKind::kSvgOnly;
  if (name == "evolutionary" || name == "e_fuzz") {
    return fuzz::FuzzerKind::kEvolutionary;
  }
  throw std::invalid_argument("unknown --fuzzer: " + name);
}

// The --fuzzer spelling that parses back to `kind` (fuzzer_kind_name() is a
// display name, not a flag value).
std::string_view fuzzer_flag_of(fuzz::FuzzerKind kind) {
  switch (kind) {
    case fuzz::FuzzerKind::kSwarmFuzz: return "swarmfuzz";
    case fuzz::FuzzerKind::kRandom: return "r_fuzz";
    case fuzz::FuzzerKind::kGradientOnly: return "g_fuzz";
    case fuzz::FuzzerKind::kSvgOnly: return "s_fuzz";
    case fuzz::FuzzerKind::kEvolutionary: return "e_fuzz";
  }
  return "swarmfuzz";
}

// The outcome-determining campaign configuration, shared by `campaign` and
// the sharded-service commands (serve/shard/merge must all rebuild the
// *same* configuration or campaign_config_hash validation rejects them).
// Observer/durability fields (checkpoint, telemetry, progress) are not set
// here — they are per-command concerns.
fuzz::CampaignConfig campaign_config_from(const util::Options& options) {
  fuzz::CampaignConfig config;
  config.mission.num_drones = options.get_int("drones", 5);
  config.fuzzer.sim = sim_from(options);
  config.fuzzer.spoof_distance = options.get_double("distance", 10.0);
  config.fuzzer.mission_budget = options.get_int("budget", 60);
  config.fuzzer.prefix_reuse = !options.get_bool("no-prefix-reuse", false);
  config.fuzzer.checkpoint_period = options.get_double("checkpoint-period", 1.0);
  config.num_missions = options.get_int("missions", 30);
  config.base_seed = static_cast<std::uint64_t>(options.get_int("seed", 1000));
  config.num_threads = options.get_int("threads", 0);
  // 0 = auto: run_campaign splits the hardware between mission workers and
  // per-worker eval threads (workers x eval threads <= hardware); an
  // explicit value is clamped to that budget.
  config.fuzzer.eval_threads = options.get_int("eval-threads", 0);
  config.kind = fuzzer_kind_from(options);
  // Fault containment: --mission-timeout bounds one mission's wall clock,
  // --eval-max-steps bounds each simulation's ticks; tripping either (or any
  // exception) retries the mission with a salted seed up to
  // --max-fault-retries times before it is quarantined.
  config.fuzzer.mission_timeout_s = options.get_double("mission-timeout", 0.0);
  config.fuzzer.eval_max_steps = options.get_int("eval-max-steps", 0);
  // E_Fuzz knobs (outcome-affecting, so they enter the config hash and the
  // service manifest; inert for every other --fuzzer). --corpus-dir is a
  // persistence location like --checkpoint and stays a per-command concern.
  config.fuzzer.evolution.novelty.bins =
      options.get_int("novelty-bins", config.fuzzer.evolution.novelty.bins);
  config.fuzzer.evolution.batch_size =
      options.get_int("evo-batch", config.fuzzer.evolution.batch_size);
  config.fuzzer.evolution.max_corpus =
      options.get_int("max-corpus", config.fuzzer.evolution.max_corpus);
  config.max_fault_retries = options.get_int("max-fault-retries", 2);
  config.clean_failure_retries =
      options.get_int("clean-retries", config.clean_failure_retries);
  config.fail_fast = options.get_bool("fail-fast", false);
  // Deterministic fault injection (tests/CI): also honoured from the
  // SWARMFUZZ_FAULT_INJECT environment variable via the usual env fallback.
  const std::string fault_plan = options.get("fault-inject", "");
  if (!fault_plan.empty()) {
    config.fault_injections = fuzz::parse_fault_plan(fault_plan);
  }
  if (options.has("controller")) {
    const std::string name = options.get("controller", "vasarhelyi");
    config.controller_factory = [name] { return make_controller(name); };
  }
  return config;
}

// Renders the *resolved* configuration back into canonical flags that
// campaign_config_from() parses to the identical CampaignConfig — the
// manifest payload of a sharded service. Values come from the built config
// (not the raw command line) so environment-variable fallbacks resolve at
// serve time, once, and every shard sees the same campaign. Doubles render
// with %.17g for bit-exact round-trips; the config hash stored alongside
// catches anything this list would ever miss.
std::vector<std::string> campaign_args_from(const fuzz::CampaignConfig& config,
                                            const util::Options& options) {
  std::vector<std::string> args;
  const auto add = [&args](std::string_view flag, const std::string& value) {
    args.push_back("--" + std::string{flag} + "=" + value);
  };
  const auto exact = [](double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return std::string{buffer};
  };
  add("drones", std::to_string(config.mission.num_drones));
  add("dt", exact(config.fuzzer.sim.dt));
  add("gps-rate", exact(config.fuzzer.sim.gps.rate_hz));
  add("gps-noise", exact(config.fuzzer.sim.gps.noise_stddev));
  add("nav-filter", config.fuzzer.sim.use_navigation_filter ? "true" : "false");
  add("vehicle", config.fuzzer.sim.vehicle == sim::VehicleType::kQuadrotor
                     ? "quadrotor"
                     : "pointmass");
  add("distance", exact(config.fuzzer.spoof_distance));
  add("budget", std::to_string(config.fuzzer.mission_budget));
  add("no-prefix-reuse", config.fuzzer.prefix_reuse ? "false" : "true");
  add("checkpoint-period", exact(config.fuzzer.checkpoint_period));
  add("missions", std::to_string(config.num_missions));
  add("seed", std::to_string(config.base_seed));
  add("fuzzer", std::string{fuzzer_flag_of(config.kind)});
  add("eval-threads", std::to_string(config.fuzzer.eval_threads));
  add("sim-threads", std::to_string(config.fuzzer.sim.sim_threads));
  add("mission-timeout", exact(config.fuzzer.mission_timeout_s));
  add("eval-max-steps", std::to_string(config.fuzzer.eval_max_steps));
  add("novelty-bins", std::to_string(config.fuzzer.evolution.novelty.bins));
  add("evo-batch", std::to_string(config.fuzzer.evolution.batch_size));
  add("max-corpus", std::to_string(config.fuzzer.evolution.max_corpus));
  add("max-fault-retries", std::to_string(config.max_fault_retries));
  add("clean-retries", std::to_string(config.clean_failure_retries));
  // Opaque option passthrough: the factory and injection list cannot be
  // rendered from the config, so their source flags carry over verbatim.
  // Both are rendered unconditionally (defaulted when unset) because
  // Options falls back to SWARMFUZZ_* environment variables for *absent*
  // flags — a shard process's environment must never skew the campaign
  // away from what serve resolved.
  add("controller", options.get("controller", "vasarhelyi"));
  add("fault-inject", options.get("fault-inject", ""));
  return args;
}

// Re-parses manifest args through the normal option parser, so shards and
// merges rebuild the campaign exactly as serve resolved it.
fuzz::CampaignConfig campaign_config_from_manifest(
    const fuzz::ServiceManifest& manifest) {
  std::vector<const char*> argv;
  argv.push_back("swarmfuzz");
  argv.reserve(manifest.campaign_args.size() + 1);
  for (const std::string& arg : manifest.campaign_args) {
    argv.push_back(arg.c_str());
  }
  const util::Options options =
      util::Options::parse(static_cast<int>(argv.size()), argv.data());
  fuzz::CampaignConfig config = campaign_config_from(options);
  const std::string hash = fuzz::campaign_config_hash(config);
  if (hash != manifest.config_hash) {
    throw std::runtime_error(
        "service: rebuilt campaign hashes to " + hash + " but the manifest "
        "says " + manifest.config_hash +
        " (edited manifest, or a drifted binary?); refusing to shard");
  }
  return config;
}

// What `--wait` timeouts print instead of a bare exit code: every incomplete
// lease with its range, progress, owner, and last-heartbeat age.
void print_incomplete_report(const char* who, const std::string& dir,
                             const fuzz::ServiceManifest& manifest) {
  try {
    const fuzz::LeaseTable table = fuzz::load_lease_table(
        dir, manifest.num_missions, manifest.num_leases);
    const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::system_clock::now().time_since_epoch())
                            .count();
    const std::string report = fuzz::describe_incomplete_leases(
        fuzz::probe_lease_health(dir, table, manifest.lease_ttl_ms, now_ms));
    if (!report.empty()) {
      std::fprintf(stderr, "%s: incomplete leases:\n%s", who, report.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: cannot probe lease health: %s\n", who, e.what());
  }
}

fuzz::CoordinatorConfig coordinator_config_from(
    const util::Options& options, const std::string& dir,
    const fuzz::ServiceManifest& manifest) {
  fuzz::CoordinatorConfig config;
  config.dir = dir;
  config.num_missions = manifest.num_missions;
  config.num_leases = manifest.num_leases;
  config.lease_ttl_ms = manifest.lease_ttl_ms;
  config.poll_ms = static_cast<std::int64_t>(
      options.get_double("coordinate-poll", 1.0) * 1000.0);
  if (config.poll_ms < 1) {
    throw std::invalid_argument("serve: --coordinate-poll must be positive");
  }
  config.stale_heartbeat_periods =
      options.get_double("stale-heartbeat-periods", config.stale_heartbeat_periods);
  config.straggler_rate_fraction =
      options.get_double("straggler-rate-fraction", config.straggler_rate_fraction);
  config.min_observations =
      options.get_int("min-observations", config.min_observations);
  config.stall_factor = options.get_double("stall-factor", config.stall_factor);
  config.min_recarve_missions =
      options.get_int("min-recarve-missions", config.min_recarve_missions);
  config.recarve_pieces = options.get_int("recarve-pieces", config.recarve_pieces);
  return config;
}

}  // namespace

// Shared report tail of `campaign` and `merge`: --summary / --json / the
// human-readable stats block. Defined below cmd_campaign.
int emit_campaign_report(const fuzz::CampaignResult& result,
                         const util::Options& options,
                         const std::string& quarantine_path);

std::shared_ptr<const swarm::SwarmController> make_controller(std::string_view name) {
  if (name == "vasarhelyi" || name == "vicsek" || name.empty()) {
    return std::make_shared<swarm::VasarhelyiController>();
  }
  if (name == "olfati" || name == "olfati_saber") {
    return std::make_shared<swarm::OlfatiSaberController>();
  }
  if (name == "reynolds" || name == "boids") {
    return std::make_shared<swarm::ReynoldsController>();
  }
  throw std::invalid_argument("unknown --controller: " + std::string{name});
}

int cmd_run(const util::Options& options) {
  const sim::MissionSpec mission = mission_from(options);
  auto controller = make_controller(options.get("controller", "vasarhelyi"));
  swarm::FlockingControlSystem system(controller);
  const sim::Simulator simulator(sim_from(options));
  const sim::RunResult result = simulator.run(mission, system);

  std::printf("controller=%s drones=%d seed=%llu\n", controller->name().data(),
              mission.num_drones(), static_cast<unsigned long long>(mission.seed));
  std::printf("%s in %.1f s, collisions: %s\n",
              result.reached_destination ? "arrived" : "timed out", result.end_time,
              result.collided ? "YES" : "none");
  for (int i = 0; i < mission.num_drones(); ++i) {
    std::printf("  drone %2d VDO %.2f m\n", i, result.vdo(i));
  }
  return result.collided ? 1 : 0;
}

int cmd_fuzz(const util::Options& options) {
  const sim::MissionSpec mission = mission_from(options);
  fuzz::FuzzerConfig config;
  config.sim = sim_from(options);
  config.spoof_distance = options.get_double("distance", 10.0);
  config.mission_budget = options.get_int("budget", 60);
  config.prefix_reuse = !options.get_bool("no-prefix-reuse", false);
  config.checkpoint_period = options.get_double("checkpoint-period", 1.0);
  config.mission_timeout_s = options.get_double("mission-timeout", 0.0);
  config.eval_max_steps = options.get_int("eval-max-steps", 0);
  // --eval-threads=N fans the gradient search's evaluation batches out over
  // N worker threads (0 = hardware concurrency); results are bit-identical
  // to --eval-threads=1.
  config.eval_threads = options.get_int("eval-threads", 1);
  // E_Fuzz: novelty resolution, batch size, and the anytime corpus
  // directory (load before searching, save the minimized corpus after).
  config.evolution.novelty.bins =
      options.get_int("novelty-bins", config.evolution.novelty.bins);
  config.evolution.batch_size =
      options.get_int("evo-batch", config.evolution.batch_size);
  config.evolution.max_corpus =
      options.get_int("max-corpus", config.evolution.max_corpus);
  config.evolution.corpus_dir = options.get("corpus-dir", "");
  if (!config.evolution.corpus_dir.empty()) {
    std::filesystem::create_directories(config.evolution.corpus_dir);
  }
  auto fuzzer = fuzz::make_fuzzer(fuzzer_kind_from(options), config,
                                  make_controller(options.get("controller", "")));
  const fuzz::FuzzResult result = fuzzer->fuzz(mission);
  if (options.get_bool("json", false)) {
    std::printf("%s\n", fuzz::to_json(result).c_str());
    return result.clean_run_failed ? 2 : 0;
  }
  if (result.clean_run_failed) {
    std::printf("clean run collided; mission not fuzzable\n");
    return 2;
  }
  std::printf("%s: %d iterations, %d simulations, mission VDO %.2f m\n",
              fuzzer->name().data(), result.iterations, result.simulations,
              result.mission_vdo);
  if (result.corpus_admissions > 0) {
    std::printf("  corpus  %d entries, %d novelty bins, %d admissions\n",
                result.corpus_size, result.novelty_bins,
                result.corpus_admissions);
  }
  if (result.eval_parallelism > 1) {
    std::printf("  eval parallelism  %d threads, %d batches\n",
                result.eval_parallelism, result.eval_batches);
  }
  if (result.no_seeds) {
    std::printf("no seeds: SVG scheduling found no target-victim pairs\n");
    return 0;
  }
  if (!result.found) {
    std::printf("no SPV found: mission resilient at %.0f m spoofing\n",
                config.spoof_distance);
    return 0;
  }
  std::printf("SPV: %s -> victim %d (clean VDO %.2f m)\n",
              result.plan.to_string().c_str(), result.victim, result.victim_vdo);
  return 0;
}

int cmd_campaign(const util::Options& options) {
  fuzz::CampaignConfig config = campaign_config_from(options);

  // Durability/observability: --checkpoint=PATH appends one JSONL record per
  // completed mission; with --resume, records already at PATH satisfy their
  // missions and only the remainder runs. --telemetry=PATH streams the same
  // records to a separate file (useful when the checkpoint is per-run).
  config.checkpoint_path = options.get("checkpoint", "");
  config.resume = options.get_bool("resume", false);
  // Quarantine defaults to riding alongside the checkpoint.
  config.quarantine_path =
      options.get("quarantine", config.checkpoint_path.empty()
                                    ? ""
                                    : config.checkpoint_path + ".quarantine");
  std::unique_ptr<fuzz::JsonlTelemetrySink> telemetry;
  const std::string telemetry_path = options.get("telemetry", "");
  if (!telemetry_path.empty()) {
    telemetry = std::make_unique<fuzz::JsonlTelemetrySink>(telemetry_path,
                                                           /*append=*/true);
    config.telemetry = telemetry.get();
  }
  if (options.get_bool("progress", true)) {
    config.on_progress = [](const fuzz::CampaignProgress& p) {
      // Live status line. Rate and ETA come from CampaignProgress itself,
      // which bases both on missions completed *this session* — checkpoint
      // replays are free and must not inflate throughput after a resume.
      if (p.faulted > 0) {
        std::fprintf(stderr,
                     "\r%d/%d missions  %d SPVs  %d faulted  %.2f/s  "
                     "%.0fs elapsed  ETA %.0fs ",
                     p.completed, p.total, p.found, p.faulted, p.rate_per_s(),
                     p.elapsed_s, p.eta_s());
      } else {
        std::fprintf(stderr,
                     "\r%d/%d missions  %d SPVs  %.2f/s  %.0fs elapsed  "
                     "ETA %.0fs ",
                     p.completed, p.total, p.found, p.rate_per_s(), p.elapsed_s,
                     p.eta_s());
      }
      if (p.completed == p.total) std::fputc('\n', stderr);
      std::fflush(stderr);
    };
  }

  const fuzz::CampaignResult result = fuzz::run_campaign(config);
  return emit_campaign_report(result, options, config.quarantine_path);
}

int emit_campaign_report(const fuzz::CampaignResult& result,
                         const util::Options& options,
                         const std::string& quarantine_path) {
  const fuzz::CampaignConfig& config = result.config;
  // --summary=FILE persists the JSON report atomically (write-temp-then-
  // rename), so a crash mid-write can never leave a half-written report
  // where a dashboard or a later pipeline stage expects a complete one.
  const std::string summary_path = options.get("summary", "");
  if (!summary_path.empty()) {
    util::write_file_atomic(summary_path, fuzz::to_json(result) + "\n");
  }
  if (options.get_bool("json", false)) {
    std::printf("%s\n", fuzz::to_json(result).c_str());
    return 0;
  }
  const auto ci = math::wilson_interval(result.num_found(), result.num_fuzzable());
  std::printf("%s, %d drones, %.0f m spoofing, %d missions:\n",
              fuzz::fuzzer_kind_name(config.kind).data(), config.mission.num_drones,
              config.fuzzer.spoof_distance, config.num_missions);
  std::printf("  success rate      %.1f%%  (95%% CI %.1f%% - %.1f%%)\n",
              result.success_rate() * 100.0, ci.low * 100.0, ci.high * 100.0);
  std::printf("  avg iterations    %.2f (all) / %.2f (successful)\n",
              result.avg_iterations_all(), result.avg_iterations_successful());
  const auto vdos = result.mission_vdos();
  std::printf("  mission VDO       median %.2f m\n", math::median(vdos));
  const std::int64_t executed = result.total_sim_steps_executed();
  const std::int64_t reused = result.total_prefix_steps_reused();
  if (executed + reused > 0) {
    std::printf("  prefix reuse      %.1f%% of %lld sim steps skipped\n",
                100.0 * static_cast<double>(reused) /
                    static_cast<double>(executed + reused),
                static_cast<long long>(executed + reused));
  }
  if (result.num_no_seeds() > 0) {
    std::printf("  no-seed missions  %d (SVG scheduling found nothing to fuzz)\n",
                result.num_no_seeds());
  }
  if (result.num_faulted() > 0) {
    std::printf(
        "  faults            %d (%d divergence, %d timeout, %d exception, "
        "%d clean-run failed)\n",
        result.num_faulted(),
        result.fault_count(sim::FaultKind::kNumericalDivergence),
        result.fault_count(sim::FaultKind::kTimeout),
        result.fault_count(sim::FaultKind::kException),
        result.fault_count(sim::FaultKind::kCleanRunFailed));
    if (!quarantine_path.empty()) {
      std::printf("  quarantine        %s\n", quarantine_path.c_str());
    }
  }
  return 0;
}

int cmd_serve(const util::Options& options) {
  const std::string dir = options.get("dir", "");
  if (dir.empty()) {
    throw std::invalid_argument("serve: --dir=DIR is required");
  }
  const fuzz::CampaignConfig config = campaign_config_from(options);

  fuzz::ServiceManifest manifest;
  manifest.config_hash = fuzz::campaign_config_hash(config);
  manifest.num_missions = config.num_missions;
  // Default carve: a few leases per expected worker keeps tail latency low
  // (a straggler only strands one small range) without per-mission file
  // churn.
  manifest.num_leases =
      std::clamp(options.get_int("leases", 8), 1, config.num_missions);
  manifest.lease_ttl_ms = static_cast<std::int64_t>(
      options.get_double("lease-ttl", 30.0) * 1000.0);
  if (manifest.lease_ttl_ms < 1) {
    throw std::invalid_argument("serve: --lease-ttl must be positive");
  }
  manifest.campaign_args = campaign_args_from(config, options);
  fuzz::write_manifest(dir, manifest);

  std::printf("service %s: %d missions in %d leases, ttl %.1fs, config %s\n",
              dir.c_str(), manifest.num_missions, manifest.num_leases,
              static_cast<double>(manifest.lease_ttl_ms) / 1000.0,
              manifest.config_hash.c_str());
  for (const fuzz::LeaseRange& lease :
       fuzz::carve_leases(manifest.num_missions, manifest.num_leases)) {
    std::printf("  lease %-3d missions %d..%d\n", lease.lease_id, lease.begin,
                lease.end - 1);
  }
  std::printf("start workers:  swarmfuzz shard --dir=%s --owner=<unique>\n",
              dir.c_str());
  std::printf("then merge:     swarmfuzz merge --dir=%s [--wait]\n", dir.c_str());

  // --coordinate: stay resident as the adaptive coordinator — watch
  // heartbeats and completion rates, re-carve stragglers' unfinished tails
  // (fuzz/coordinator.h) — until the service completes or the timeout hits.
  if (options.get_bool("coordinate", false)) {
    fuzz::Coordinator coordinator(
        coordinator_config_from(options, dir, manifest));
    const double timeout_s = options.get_double("coordinate-timeout", 0.0);
    const bool complete =
        coordinator.run(static_cast<std::int64_t>(timeout_s * 1000.0));
    const fuzz::CoordinatorStats& stats = coordinator.stats();
    std::printf(
        "coordinator: %d polls, %d re-carves (%d sub-leases, %d heals)\n",
        stats.polls, stats.recarves, stats.subleases, stats.heals);
    if (!complete) {
      std::fprintf(stderr, "serve: coordination timed out after %.1fs\n",
                   timeout_s);
      print_incomplete_report("serve", dir, manifest);
      return 1;
    }
    return 0;
  }

  // --wait: passively block until every active lease is done (external
  // workers drive all progress), reporting the stuck leases on timeout.
  if (options.get_bool("wait", false)) {
    const double timeout_s = options.get_double("wait-timeout", 0.0);
    if (!fuzz::wait_for_service(dir, manifest.num_missions,
                                manifest.num_leases,
                                static_cast<std::int64_t>(timeout_s * 1000.0))) {
      std::fprintf(stderr, "serve: timed out waiting for service %s\n",
                   dir.c_str());
      print_incomplete_report("serve", dir, manifest);
      return 1;
    }
  }
  return 0;
}

int cmd_shard(const util::Options& options) {
  const std::string dir = options.get("dir", "");
  if (dir.empty()) {
    throw std::invalid_argument("shard: --dir=DIR is required");
  }
  const fuzz::ServiceManifest manifest = fuzz::load_manifest(dir);

  fuzz::ShardWorkerConfig worker;
  worker.campaign = campaign_config_from_manifest(manifest);
  worker.dir = dir;
  worker.num_leases = manifest.num_leases;
  worker.lease_ttl_ms = manifest.lease_ttl_ms;
  // Default owner: hostname-independent but unique per process.
  worker.owner = options.get(
      "owner", "shard-" + std::to_string(static_cast<long long>(getpid())));
  // --chaos=kill@i,torn-write@i,hang@i,eio@i[xN] (also SWARMFUZZ_CHAOS):
  // deterministic failure injection for tests and the CI chaos-smoke job.
  worker.chaos = fuzz::parse_chaos_plan(options.get("chaos", ""));
  // Transport retry jitter is seeded from the campaign seed so chaos runs
  // replay the exact same backoff schedule.
  util::io_retrier().set_jitter_seed(worker.campaign.base_seed);

  const fuzz::ShardWorkerStats stats = fuzz::run_shard_worker(worker);
  const util::RetryCounters retries = util::io_retrier().counters();
  std::printf(
      "shard %s: %d leases claimed (%d abandoned, %d on I/O), %d missions "
      "run, %d resumed; transport: %lld attempts, %lld retries\n",
      worker.owner.c_str(), stats.leases_claimed, stats.leases_abandoned,
      stats.io_aborts, stats.missions_run, stats.missions_resumed,
      static_cast<long long>(retries.attempts),
      static_cast<long long>(retries.retries));
  return 0;
}

int cmd_merge(const util::Options& options) {
  const std::string dir = options.get("dir", "");
  if (dir.empty()) {
    throw std::invalid_argument("merge: --dir=DIR is required");
  }
  const fuzz::ServiceManifest manifest = fuzz::load_manifest(dir);
  const fuzz::CampaignConfig config = campaign_config_from_manifest(manifest);

  if (options.get_bool("wait", false)) {
    const double timeout_s = options.get_double("wait-timeout", 0.0);
    if (!fuzz::wait_for_service(dir, manifest.num_missions,
                                manifest.num_leases,
                                static_cast<std::int64_t>(timeout_s * 1000.0))) {
      std::fprintf(stderr, "merge: timed out waiting for service %s\n",
                   dir.c_str());
      print_incomplete_report("merge", dir, manifest);
      return 1;
    }
  }

  const bool allow_partial = options.get_bool("allow-partial", false);
  fuzz::ShardMergeStats stats;
  const fuzz::CampaignResult result =
      fuzz::merge_shards(config, dir, allow_partial, &stats);
  std::fprintf(stderr, "merge: %d shard files, %d records, %d duplicates\n",
               stats.shard_files, stats.records, stats.duplicates);

  // --allow-partial: record what is missing machine-readably. holes.json +
  // `resume-holes` turn an abandoned campaign's gaps back into claimable
  // leases. Any complete merge — partial-tolerant or not — deletes a stale
  // manifest so nothing ever resumes holes that no longer exist.
  {
    const std::vector<fuzz::MissionHole> holes =
        fuzz::missing_mission_ranges(result);
    if (holes.empty()) {
      std::error_code ec;
      std::filesystem::remove(fuzz::holes_path(dir), ec);
    } else {
      fuzz::HolesManifest manifest_out;
      manifest_out.config_hash = manifest.config_hash;
      manifest_out.num_missions = manifest.num_missions;
      manifest_out.holes = holes;
      fuzz::write_holes(dir, manifest_out);
      int missing = 0;
      for (const fuzz::MissionHole& hole : holes) missing += hole.size();
      std::fprintf(stderr,
                   "merge: partial — %d missions in %d hole(s); wrote %s "
                   "(finish with `swarmfuzz resume-holes --dir=%s`)\n",
                   missing, static_cast<int>(holes.size()),
                   fuzz::holes_path(dir).c_str(), dir.c_str());
    }
  }

  // --golden=FILE: compare the merged result against a single-process run's
  // checkpoint/telemetry stream; exit 3 on divergence. This is the CI
  // bit-identical guarantee, executable anywhere.
  const std::string golden_path = options.get("golden", "");
  if (!golden_path.empty()) {
    fuzz::CampaignResult golden;
    golden.config = config;
    golden.outcomes.resize(static_cast<std::size_t>(config.num_missions));
    for (int i = 0; i < config.num_missions; ++i) {
      golden.outcomes[static_cast<std::size_t>(i)].mission_index = i;
    }
    for (const fuzz::TelemetryRecord& record :
         fuzz::load_telemetry(golden_path)) {
      fuzz::validate_checkpoint_record(record, config);
      fuzz::MissionOutcome& outcome =
          golden.outcomes[static_cast<std::size_t>(record.mission_index)];
      if (outcome.completed) continue;
      outcome.completed = true;
      outcome.mission_seed = record.mission_seed;
      outcome.wall_time_s = record.wall_time_s;
      outcome.result = record.result;
      outcome.fault = record.fault;
      outcome.fault_detail = record.fault_detail;
      outcome.fault_attempts = record.fault_attempts;
    }
    if (!fuzz::deterministic_equal(result, golden)) {
      std::fprintf(stderr,
                   "merge: MISMATCH against golden %s (merged report is not "
                   "bit-identical)\n",
                   golden_path.c_str());
      return 3;
    }
    std::printf("merge: bit-identical to golden %s\n", golden_path.c_str());
  }

  return emit_campaign_report(result, options, "");
}

int cmd_resume_holes(const util::Options& options) {
  const std::string dir = options.get("dir", "");
  if (dir.empty()) {
    throw std::invalid_argument("resume-holes: --dir=DIR is required");
  }
  const fuzz::ServiceManifest manifest = fuzz::load_manifest(dir);
  const fuzz::HolesManifest holes = fuzz::load_holes(dir);
  const int created = fuzz::resume_holes(dir, manifest, holes);
  int missing = 0;
  for (const fuzz::MissionHole& hole : holes.holes) missing += hole.size();
  std::printf(
      "resume-holes %s: %d missing missions in %d hole(s), %d new lease(s) "
      "created\n",
      dir.c_str(), missing, static_cast<int>(holes.holes.size()), created);
  std::printf("start workers:  swarmfuzz shard --dir=%s --owner=<unique>\n",
              dir.c_str());
  return 0;
}

int cmd_svg(const util::Options& options) {
  const sim::MissionSpec mission = mission_from(options);
  auto controller = make_controller(options.get("controller", "vasarhelyi"));
  swarm::FlockingControlSystem system(controller);
  const sim::Simulator simulator(sim_from(options));
  const sim::RunResult clean = simulator.run(mission, system);
  if (clean.collided) {
    std::printf("clean run collided; no SVG\n");
    return 2;
  }
  const double distance = options.get_double("distance", 10.0);
  const auto seeds = fuzz::schedule_seeds(clean, mission, system, distance);
  util::TextTable table({"#", "target", "victim", "dir", "VDO", "influence"});
  int index = 0;
  for (const fuzz::Seed& s : seeds) {
    table.add_row({std::to_string(index++), std::to_string(s.target),
                   std::to_string(s.victim),
                   std::string{attack::direction_name(s.direction)},
                   util::format_double(s.vdo), util::format_double(s.influence, 3)});
  }
  std::printf("%s", table.render("Seedpool (fuzzing order)").c_str());
  return 0;
}

int cmd_replay(const util::Options& options) {
  const sim::MissionSpec mission = mission_from(options);
  const attack::SpoofingPlan plan{
      .target = options.get_int("target", 0),
      .direction = options.get("direction", "right") == "left"
                       ? attack::SpoofDirection::kLeft
                       : attack::SpoofDirection::kRight,
      .start_time = options.get_double("start", 30.0),
      .duration = options.get_double("duration", 10.0),
      .distance = options.get_double("distance", 10.0),
  };
  auto controller = make_controller(options.get("controller", "vasarhelyi"));
  swarm::FlockingControlSystem system(controller);
  const sim::Simulator simulator(sim_from(options));
  const attack::GpsSpoofer spoofer(plan, mission);

  defense::SwarmDetectionMonitor monitor(
      mission.num_drones(),
      defense::DetectorConfig{.threshold = options.get_double("detect-threshold", 10.0)});
  const bool detect = options.get_bool("detect", false);
  const sim::RunResult result =
      simulator.run(mission, system, &spoofer, detect ? &monitor : nullptr);

  std::printf("replayed %s\n", plan.to_string().c_str());
  if (result.first_collision) {
    const auto& event = *result.first_collision;
    std::printf("collision: drone %d vs %s %d at t=%.1f s\n", event.drone,
                event.kind == sim::CollisionKind::kDroneObstacle ? "obstacle" : "drone",
                event.other, event.time);
  } else {
    std::printf("no collision (mission %s in %.1f s)\n",
                result.reached_destination ? "completed" : "ended", result.end_time);
  }
  if (detect) {
    const defense::DetectionReport report = monitor.report();
    if (report.detected) {
      std::printf("defense: spoofing DETECTED on drone %d at t=%.1f s\n",
                  report.drone, report.time);
    } else {
      std::printf("defense: not detected (peak innovation %.2f m)\n",
                  report.peak_innovation);
    }
  }
  return 0;
}

int print_usage() {
  std::printf(
      "swarmfuzz - discovering GPS-spoofing attacks in drone swarms\n\n"
      "usage: swarmfuzz <command> [options]\n\n"
      "commands:\n"
      "  run        fly one mission without attack\n"
      "             [--sim-threads=N] (intra-tick worker threads, 0 = all\n"
      "             cores, 1 = serial; bit-identical results for any N)\n"
      "  fuzz       search one mission for SPVs\n"
      "             (--fuzzer=swarmfuzz|random|gradient|svg|evolutionary)\n"
      "             [--no-prefix-reuse] [--checkpoint-period=S]\n"
      "             [--mission-timeout=S] [--eval-max-steps=N]\n"
      "             evolutionary (E_Fuzz): [--novelty-bins=N] (signature\n"
      "             resolution, default 16) [--evo-batch=N] [--max-corpus=N]\n"
      "             [--corpus-dir=DIR] (anytime mode: resume/save the\n"
      "             per-mission corpus)\n"
      "             [--eval-threads=N] (parallel batch evaluation, 0 = all\n"
      "             cores; bit-identical results for any N)\n"
      "             [--sim-threads=N] (intra-tick threads per simulation,\n"
      "             0 = auto from what eval threads leave free)\n"
      "  campaign   evaluate a configuration over many missions\n"
      "             [--telemetry=FILE] [--checkpoint=FILE [--resume]]\n"
      "             [--progress=false] [--no-prefix-reuse] [--checkpoint-period=S]\n"
      "             [--eval-threads=N] [--sim-threads=N] (per-worker budget;\n"
      "             0 = auto-split so workers x eval x sim <= hardware)\n"
      "             [--summary=FILE] (atomic JSON report)\n"
      "             fault containment: [--mission-timeout=S] (wall-clock budget\n"
      "             per mission) [--eval-max-steps=N] (sim-step budget per\n"
      "             evaluation) [--max-fault-retries=N] (salted re-runs before\n"
      "             quarantine, default 2) [--fail-fast] [--quarantine=FILE]\n"
      "             (default <checkpoint>.quarantine)\n"
      "             [--fault-inject=mode@idx[:t][xN],...] (nan|throw|hang; test\n"
      "             hook, also read from SWARMFUZZ_FAULT_INJECT)\n"
      "             [--novelty-bins=N] [--evo-batch=N] [--max-corpus=N]\n"
      "             (E_Fuzz knobs; enter the campaign config hash)\n"
      "  svg        print the Swarm Vulnerability Graph seedpool\n"
      "  replay     execute an explicit spoofing plan (--target --direction\n"
      "             --start --duration --distance) [--detect]\n"
      "  serve      initialize a sharded campaign service: --dir=DIR plus the\n"
      "             campaign options above; [--leases=K] (default 8)\n"
      "             [--lease-ttl=S] (worker heartbeat TTL, default 30)\n"
      "             [--coordinate [--coordinate-timeout=S]] (stay resident:\n"
      "             watch heartbeats/progress, re-carve stragglers' tails;\n"
      "             knobs: --coordinate-poll=S --stale-heartbeat-periods=X\n"
      "             --straggler-rate-fraction=X --min-observations=N\n"
      "             --stall-factor=X --min-recarve-missions=N\n"
      "             --recarve-pieces=N)\n"
      "             [--wait [--wait-timeout=S]] (block until workers finish;\n"
      "             on timeout, report each incomplete lease)\n"
      "  shard      run one worker against a service: --dir=DIR\n"
      "             [--owner=NAME] (unique per worker; default shard-<pid>)\n"
      "             claims leases, reclaims expired ones, resumes partial\n"
      "             ranges; exits when every lease is done\n"
      "             [--chaos=kill|hang|torn-write|eio@idx[xN],...] (failure\n"
      "             injection; also read from SWARMFUZZ_CHAOS)\n"
      "  merge      merge shard streams into the campaign report: --dir=DIR\n"
      "             [--wait [--wait-timeout=S]] (on timeout, report each\n"
      "             incomplete lease) [--allow-partial] (merge what exists;\n"
      "             writes machine-readable holes.json for resume-holes)\n"
      "             [--golden=FILE] (exit 3 unless bit-identical to a\n"
      "             single-process checkpoint) [--summary=FILE] [--json]\n"
      "  resume-holes  turn a partial merge's holes.json back into claimable\n"
      "             leases: --dir=DIR; then restart shard workers\n\n"
      "common options: --drones=N --seed=N --distance=M --controller=vasarhelyi|\n"
      "                olfati|reynolds --dt=S --gps-rate=HZ --nav-filter\n"
      "                --vehicle=pointmass|quadrotor --spawn-range=M (spawn box\n"
      "                edge; widen for swarms above ~30 drones)\n");
  return 64;
}

int dispatch(int argc, const char* const* argv) {
  const util::Options options = util::Options::parse(argc, argv);
  if (options.positional().empty()) return print_usage();
  const std::string& command = options.positional().front();
  try {
    if (command == "run") return cmd_run(options);
    if (command == "fuzz") return cmd_fuzz(options);
    if (command == "campaign") return cmd_campaign(options);
    if (command == "svg") return cmd_svg(options);
    if (command == "replay") return cmd_replay(options);
    if (command == "serve") return cmd_serve(options);
    if (command == "shard") return cmd_shard(options);
    if (command == "merge") return cmd_merge(options);
    if (command == "resume-holes") return cmd_resume_holes(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
  return print_usage();
}

}  // namespace swarmfuzz::cli
