// Subcommand implementations for the `swarmfuzz` command-line tool.
//
//   swarmfuzz run       - fly one mission without attack and report it
//   swarmfuzz fuzz      - run a fuzzer (SwarmFuzz/R/G/S) on one mission
//   swarmfuzz campaign  - run a many-mission campaign, print summary + CI
//   swarmfuzz svg       - print the Swarm Vulnerability Graph and seedpool
//   swarmfuzz replay    - execute an explicit spoofing plan, with optional
//                         spoofing detection (--detect)
//   swarmfuzz serve     - initialize a sharded campaign service directory
//                         (manifest + work leases; see fuzz/service.h);
//                         --coordinate keeps it resident as the adaptive
//                         straggler-re-carving coordinator (fuzz/coordinator.h)
//   swarmfuzz shard     - run one shard worker against a service directory
//                         (--chaos=... injects deterministic failures)
//   swarmfuzz merge     - merge shard streams into the campaign report;
//                         --allow-partial records gaps in holes.json
//   swarmfuzz resume-holes - turn holes.json back into claimable leases
//
// Common options: --drones, --seed, --distance, --controller
// (vasarhelyi|olfati|reynolds), --dt, --gps-rate, --nav-filter.
#pragma once

#include <memory>
#include <string_view>

#include "swarm/controller.h"
#include "util/options.h"

namespace swarmfuzz::cli {

// Builds a controller by name; throws std::invalid_argument on unknown names.
[[nodiscard]] std::shared_ptr<const swarm::SwarmController> make_controller(
    std::string_view name);

int cmd_run(const util::Options& options);
int cmd_fuzz(const util::Options& options);
int cmd_campaign(const util::Options& options);
int cmd_svg(const util::Options& options);
int cmd_replay(const util::Options& options);
int cmd_serve(const util::Options& options);
int cmd_shard(const util::Options& options);
int cmd_merge(const util::Options& options);
int cmd_resume_holes(const util::Options& options);

// Prints usage to stdout; returns the exit code to use.
int print_usage();

// Dispatches on the first positional argument.
int dispatch(int argc, const char* const* argv);

}  // namespace swarmfuzz::cli
