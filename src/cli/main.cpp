#include "cli/commands.h"

int main(int argc, char** argv) { return swarmfuzz::cli::dispatch(argc, argv); }
