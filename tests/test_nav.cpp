// IMU model and GPS/IMU complementary navigation filter.
#include <gtest/gtest.h>

#include "attack/spoofing.h"
#include "sim/imu.h"
#include "sim/nav_filter.h"
#include "sim/simulator.h"
#include "swarm/flocking_system.h"

namespace swarmfuzz::sim {
namespace {

TEST(Imu, RejectsNegativeNoise) {
  EXPECT_THROW(ImuSensor({.accel_noise_stddev = -1.0}, math::Rng(1)),
               std::invalid_argument);
}

TEST(Imu, NoiselessUnbiasedIsExact) {
  ImuSensor imu({.accel_noise_stddev = 0.0, .accel_bias_stddev = 0.0}, math::Rng(1));
  EXPECT_EQ(imu.measure({1, 2, 3}), Vec3(1, 2, 3));
  EXPECT_EQ(imu.bias(), Vec3{});
}

TEST(Imu, BiasIsConstantPerDevice) {
  ImuSensor imu({.accel_noise_stddev = 0.0, .accel_bias_stddev = 0.5}, math::Rng(7));
  const Vec3 first = imu.measure({0, 0, 0});
  EXPECT_EQ(first, imu.bias());
  EXPECT_EQ(imu.measure({0, 0, 0}), first);
  EXPECT_NE(first, Vec3{});
}

TEST(Imu, NoiseIsZeroMeanAroundBias) {
  ImuSensor imu({.accel_noise_stddev = 0.2, .accel_bias_stddev = 0.0}, math::Rng(3));
  Vec3 sum;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += imu.measure({1, 0, 0});
  EXPECT_NEAR(sum.x / n, 1.0, 0.02);
  EXPECT_NEAR(sum.y / n, 0.0, 0.02);
}

TEST(NavFilter, RejectsInvalidGains) {
  EXPECT_THROW(NavigationFilter({.position_gain = 0.0}), std::invalid_argument);
  EXPECT_THROW(NavigationFilter({.position_gain = 1.5}), std::invalid_argument);
  EXPECT_THROW(NavigationFilter({.position_gain = 0.1, .velocity_gain = -1.0}),
               std::invalid_argument);
}

TEST(NavFilter, PredictIntegratesAcceleration) {
  NavigationFilter filter;
  filter.reset({0, 0, 0}, {1, 0, 0});
  filter.predict({0, 0, 0}, 0.5);  // constant velocity
  EXPECT_EQ(filter.position(), Vec3(0.5, 0, 0));
  filter.predict({2, 0, 0}, 0.5);  // accelerate
  EXPECT_NEAR(filter.velocity().x, 2.0, 1e-12);
}

TEST(NavFilter, CorrectionPullsTowardGps) {
  NavigationFilter filter({.position_gain = 0.5, .velocity_gain = 0.0});
  filter.reset({0, 0, 0}, {});
  filter.correct({10, 0, 0});
  EXPECT_NEAR(filter.position().x, 5.0, 1e-12);
  filter.correct({10, 0, 0});
  EXPECT_NEAR(filter.position().x, 7.5, 1e-12);
}

TEST(NavFilter, RepeatedCorrectionsConvergeToFix) {
  NavigationFilter filter;
  filter.reset({0, 0, 0}, {});
  for (int i = 0; i < 200; ++i) filter.correct({3, -4, 2});
  EXPECT_NEAR((filter.position() - Vec3{3, -4, 2}).norm(), 0.0, 1e-6);
}

TEST(NavFilter, TracksTruthWhenFusedWithCleanSensors) {
  // Closed loop: dead-reckon with biased IMU, correct with exact GPS; the
  // estimate must stay near the true trajectory.
  NavigationFilter filter;
  ImuSensor imu({.accel_noise_stddev = 0.05, .accel_bias_stddev = 0.02},
                math::Rng(5));
  Vec3 position{0, 0, 0}, velocity{0, 0, 0};
  filter.reset(position, velocity);
  const double dt = 0.05;
  for (int i = 0; i < 600; ++i) {
    const Vec3 accel = i < 100 ? Vec3{0.5, 0.2, 0} : Vec3{};
    velocity += accel * dt;
    position += velocity * dt;
    filter.predict(imu.measure(accel), dt);
    filter.correct(position);  // exact GPS
    EXPECT_LT((filter.position() - position).norm(), 1.5);
  }
  EXPECT_LT((filter.position() - position).norm(), 0.5);
}

TEST(NavFilter, SimulatorMissionStillCleanWithNavigationFilter) {
  MissionConfig mission_config;
  mission_config.num_drones = 5;
  const MissionSpec mission = generate_mission(mission_config, 1013);
  auto system = swarm::make_vasarhelyi_system();
  SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  config.use_navigation_filter = true;
  const Simulator simulator(config);
  const RunResult result = simulator.run(mission, *system);
  EXPECT_FALSE(result.collided);
  EXPECT_TRUE(result.reached_destination);
}

TEST(NavFilter, SpoofingDragsEstimateGradually) {
  // With fusion enabled, a spoofing step must not teleport the broadcast
  // position: right after onset the observed offset is a fraction of d.
  class CaptureObserver final : public StepObserver {
   public:
    void on_step(double time, const WorldSnapshot& snapshot,
                 std::span<const DroneState> truth) override {
      if (time >= 20.0 && time < 20.0 + 0.06 && first_offset < 0.0) {
        first_offset =
            math::distance(snapshot.gps_position[0], truth[0].position);
      }
      if (time >= 34.0 && time < 34.0 + 0.06) {
        late_offset =
            math::distance(snapshot.gps_position[0], truth[0].position);
      }
    }
    double first_offset = -1.0;
    double late_offset = -1.0;
  };

  MissionConfig mission_config;
  mission_config.num_drones = 5;
  const MissionSpec mission = generate_mission(mission_config, 1001);
  auto system = swarm::make_vasarhelyi_system();
  SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  config.use_navigation_filter = true;
  config.stop_on_collision = false;
  const Simulator simulator(config);
  const attack::SpoofingPlan plan{.target = 0,
                                  .direction = attack::SpoofDirection::kRight,
                                  .start_time = 20.0,
                                  .duration = 15.0,
                                  .distance = 10.0};
  const attack::GpsSpoofer spoofer(plan, mission);
  CaptureObserver observer;
  (void)simulator.run(mission, *system, &spoofer, &observer);

  ASSERT_GE(observer.first_offset, 0.0);
  EXPECT_LT(observer.first_offset, 5.0);  // far from the full 10 m step
  // Well into the window the estimate has been dragged most of the way.
  EXPECT_GT(observer.late_offset, 5.0);
}

}  // namespace
}  // namespace swarmfuzz::sim
