#include "swarm/reynolds.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "swarm/flocking_system.h"

namespace swarmfuzz::swarm {
namespace {

using sim::DroneObservation;

MissionSpec basic_mission() {
  MissionSpec mission;
  mission.initial_positions = {{0, 0, 10}, {10, 0, 10}};
  mission.destination = {200, 0, 10};
  return mission;
}

WorldSnapshot snapshot_of(std::initializer_list<DroneObservation> drones) {
  WorldSnapshot snap;
  for (const DroneObservation& obs : drones) snap.push_back(obs);
  return snap;
}

TEST(Reynolds, RejectsInvalidParams) {
  ReynoldsParams params;
  params.v_cruise = 0.0;
  EXPECT_THROW(ReynoldsController{params}, std::invalid_argument);
  params = {};
  params.avoid_radius = -1.0;
  EXPECT_THROW(ReynoldsController{params}, std::invalid_argument);
}

TEST(Reynolds, LoneDroneCruisesToDestination) {
  const ReynoldsController controller;
  const auto snap = snapshot_of({{0, {0, 0, 10}, {}}});
  const Vec3 v = controller.desired_velocity(0, snap, basic_mission());
  EXPECT_NEAR(v.x, controller.params().v_cruise, 1e-9);
  EXPECT_NEAR(v.y, 0.0, 1e-9);
}

TEST(Reynolds, SeparationPushesApart) {
  const ReynoldsController controller;
  const auto snap = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {3, 0, 10}, {}},  // well inside separation radius
  });
  const auto alone = snapshot_of({{0, {0, 0, 10}, {}}});
  EXPECT_LT(controller.desired_velocity(0, snap, basic_mission()).x,
            controller.desired_velocity(0, alone, basic_mission()).x);
}

TEST(Reynolds, CohesionPullsTowardDistantNeighbours) {
  const ReynoldsController controller;
  const auto snap = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {0, 20, 10}, {}},  // within neighbourhood, beyond deadzone
  });
  const Vec3 v = controller.desired_velocity(0, snap, basic_mission());
  EXPECT_GT(v.y, 0.0);
}

TEST(Reynolds, AlignmentMatchesNeighbourVelocity) {
  const ReynoldsController controller;
  const auto moving = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {0, 15, 10}, {3, 0, 0}},
  });
  const auto still = snapshot_of({
      {0, {0, 0, 10}, {}},
      {1, {0, 15, 10}, {}},
  });
  EXPECT_GT(controller.desired_velocity(0, moving, basic_mission()).x,
            controller.desired_velocity(0, still, basic_mission()).x);
}

TEST(Reynolds, ObstacleAvoidancePushesOutward) {
  const ReynoldsController controller;
  MissionSpec mission = basic_mission();
  mission.obstacles = sim::ObstacleField({sim::CylinderObstacle{{8, 0, 0}, 3.0}});
  const auto snap = snapshot_of({{0, {2, 0, 10}, {2, 0, 0}}});
  MissionSpec no_obstacle = basic_mission();
  EXPECT_LT(controller.desired_velocity(0, snap, mission).x,
            controller.desired_velocity(0, snap, no_obstacle).x);
}

TEST(Reynolds, OutputClampedToVmax) {
  const ReynoldsController controller;
  MissionSpec mission = basic_mission();
  mission.obstacles = sim::ObstacleField({sim::CylinderObstacle{{1, 0, 0}, 0.5}});
  const auto snap = snapshot_of({
      {0, {0, 0, 5}, {}},
      {1, {0.5, 0, 5}, {}},
  });
  EXPECT_LE(controller.desired_velocity(0, snap, mission).norm(),
            controller.params().v_max + 1e-12);
}

TEST(Reynolds, FliesStandardMissionCleanly) {
  sim::MissionConfig mission_config;
  mission_config.num_drones = 5;
  const sim::MissionSpec mission = sim::generate_mission(mission_config, 1013);
  auto system = std::make_unique<FlockingControlSystem>(
      std::make_shared<ReynoldsController>());
  sim::SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  const sim::Simulator simulator(config);
  const sim::RunResult result = simulator.run(mission, *system);
  EXPECT_FALSE(result.collided);
}

TEST(Reynolds, SelfIndexOutOfRangeThrows) {
  const ReynoldsController controller;
  const auto snap = snapshot_of({{0, {0, 0, 10}, {}}});
  EXPECT_THROW((void)controller.desired_velocity(1, snap, basic_mission()),
               std::out_of_range);
}

}  // namespace
}  // namespace swarmfuzz::swarm
