#include "sim/mission.h"

#include <gtest/gtest.h>

namespace swarmfuzz::sim {
namespace {

TEST(Mission, GenerationIsDeterministic) {
  const MissionConfig config;
  const MissionSpec a = generate_mission(config, 77);
  const MissionSpec b = generate_mission(config, 77);
  ASSERT_EQ(a.num_drones(), b.num_drones());
  for (int i = 0; i < a.num_drones(); ++i) {
    EXPECT_EQ(a.initial_positions[static_cast<size_t>(i)],
              b.initial_positions[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(a.destination, b.destination);
  EXPECT_EQ(a.obstacles.at(0).center, b.obstacles.at(0).center);
}

TEST(Mission, DifferentSeedsDiffer) {
  const MissionConfig config;
  const MissionSpec a = generate_mission(config, 1);
  const MissionSpec b = generate_mission(config, 2);
  EXPECT_NE(a.initial_positions[0], b.initial_positions[0]);
}

TEST(Mission, RejectsInvalidConfig) {
  MissionConfig config;
  config.num_drones = 1;
  EXPECT_THROW(generate_mission(config, 0), std::invalid_argument);
  config = {};
  config.spawn_range = 0.0;
  EXPECT_THROW(generate_mission(config, 0), std::invalid_argument);
  config = {};
  config.mission_length = -5.0;
  EXPECT_THROW(generate_mission(config, 0), std::invalid_argument);
}

TEST(Mission, ImpossibleSeparationThrows) {
  MissionConfig config;
  config.num_drones = 50;
  config.spawn_range = 10.0;
  config.min_spawn_separation = 8.0;
  EXPECT_THROW(generate_mission(config, 0), std::runtime_error);
}

TEST(Mission, DestinationIsMissionLengthAway) {
  const MissionConfig config;
  const MissionSpec mission = generate_mission(config, 3);
  const Vec3 spawn_center{config.spawn_range / 2, config.spawn_range / 2,
                          config.cruise_altitude};
  EXPECT_NEAR(math::distance_xy(spawn_center, mission.destination),
              config.mission_length, 1e-9);
}

TEST(Mission, ObstacleNearHalfwayMark) {
  const MissionConfig config;
  const MissionSpec mission = generate_mission(config, 5);
  const CylinderObstacle& obstacle = mission.obstacles.at(0);
  const double along = obstacle.center.x - config.spawn_range / 2;
  EXPECT_GE(along, config.mission_length / 2 - config.obstacle_along_jitter - 1e-9);
  EXPECT_LE(along, config.mission_length / 2 + config.obstacle_along_jitter + 1e-9);
  EXPECT_LE(std::abs(obstacle.center.y - config.spawn_range / 2),
            config.obstacle_lateral_jitter + 1e-9);
  EXPECT_GE(obstacle.radius, config.obstacle_radius_min);
  EXPECT_LE(obstacle.radius, config.obstacle_radius_max);
}

TEST(Mission, MultipleObstaclesSupported) {
  MissionConfig config;
  config.num_obstacles = 3;
  const MissionSpec mission = generate_mission(config, 9);
  EXPECT_EQ(mission.obstacles.size(), 3);
}

TEST(Mission, MissionAxisIsUnitTowardDestination) {
  const MissionSpec mission = generate_mission(MissionConfig{}, 11);
  const Vec3 axis = mission_axis(mission);
  EXPECT_NEAR(axis.norm(), 1.0, 1e-12);
  EXPECT_GT(axis.x, 0.9);  // mission runs along +x
  EXPECT_DOUBLE_EQ(axis.z, 0.0);
}

// Property sweep: invariants hold across seeds and sizes (paper section V-A:
// spawn within 0-50 m, pairwise separation respected, obstacle on-path).
struct MissionSweepParam {
  int num_drones;
  std::uint64_t seed;
};

class MissionSweep : public ::testing::TestWithParam<MissionSweepParam> {};

TEST_P(MissionSweep, GeneratorInvariants) {
  MissionConfig config;
  config.num_drones = GetParam().num_drones;
  const MissionSpec mission = generate_mission(config, GetParam().seed);

  ASSERT_EQ(mission.num_drones(), config.num_drones);
  for (int i = 0; i < mission.num_drones(); ++i) {
    const Vec3& p = mission.initial_positions[static_cast<size_t>(i)];
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, config.spawn_range);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, config.spawn_range);
    EXPECT_DOUBLE_EQ(p.z, config.cruise_altitude);
    for (int j = i + 1; j < mission.num_drones(); ++j) {
      EXPECT_GE(math::distance_xy(p, mission.initial_positions[static_cast<size_t>(j)]),
                config.min_spawn_separation - 1e-9);
    }
    // No drone spawns inside the obstacle.
    EXPECT_GT(mission.obstacles.min_surface_distance(p), 0.0);
  }
  EXPECT_EQ(mission.seed, GetParam().seed);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, MissionSweep,
    ::testing::Values(MissionSweepParam{5, 1}, MissionSweepParam{5, 999},
                      MissionSweepParam{10, 2}, MissionSweepParam{10, 1234},
                      MissionSweepParam{15, 3}, MissionSweepParam{15, 31337},
                      MissionSweepParam{2, 4}, MissionSweepParam{25, 5}));

}  // namespace
}  // namespace swarmfuzz::sim
