#include "util/table.h"

#include <gtest/gtest.h>

namespace swarmfuzz::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.render("title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2);
  EXPECT_EQ(table.num_cols(), 2);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_EQ(table.num_rows(), 1);
  EXPECT_FALSE(table.render().empty());
}

TEST(TextTable, WideRowsThrow) {
  TextTable table({"a"});
  EXPECT_THROW(table.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable(std::vector<std::string>{}), std::invalid_argument);
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable table({"metric", "value"});
  table.add_row({"rate", "5%"});
  const std::string out = table.render();
  // "5%" is numeric-ish and shorter than "value": right-aligned in-column.
  EXPECT_NE(out.find("    5% |"), std::string::npos);
}

TEST(BarChart, ScalesToMaxValue) {
  const std::string out = render_bar_chart(
      "chart", {{"full", 10.0}, {"half", 5.0}, {"zero", 0.0}}, 10);
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
  EXPECT_NE(out.find("zero"), std::string::npos);
}

TEST(BarChart, AllZeroSeriesRendersWithoutBars) {
  const std::string out = render_bar_chart("z", {{"a", 0.0}, {"b", 0.0}});
  EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(XySeries, RendersPointsAndClampsBars) {
  const std::string out =
      render_xy_series("fig", "x", "rate", {{1.0, 0.5}, {2.0, 1.5}}, 10);
  EXPECT_NE(out.find("x -> rate"), std::string::npos);
  // y=1.5 clamps to full width for the bar, but prints exactly.
  EXPECT_NE(out.find("1.500"), std::string::npos);
}

TEST(Formatting, Percent) {
  EXPECT_EQ(format_percent(0.488), "48.8%");
  EXPECT_EQ(format_percent(0.5, 0), "50%");
}

TEST(Formatting, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace swarmfuzz::util
