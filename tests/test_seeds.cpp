#include "fuzz/seeds.h"

#include <gtest/gtest.h>

#include <cmath>
#include <iterator>
#include <limits>

#include "swarm/vasarhelyi.h"

namespace swarmfuzz::fuzz {
namespace {

struct Fixture {
  Fixture() : system(swarm::make_vasarhelyi_system()), simulator(make_config()) {}

  static sim::SimulationConfig make_config() {
    sim::SimulationConfig config;
    config.dt = 0.05;
    config.gps.rate_hz = 20.0;
    return config;
  }

  sim::RunResult clean_run(const sim::MissionSpec& mission) {
    return simulator.run(mission, *system);
  }

  std::unique_ptr<swarm::FlockingControlSystem> system;
  sim::Simulator simulator;
};

sim::MissionSpec standard_mission(int drones = 5, std::uint64_t seed = 1005) {
  sim::MissionConfig config;
  config.num_drones = drones;
  return sim::generate_mission(config, seed);
}

TEST(Seeds, EmptyForMissionWithoutObstacles) {
  Fixture f;
  sim::MissionSpec mission = standard_mission();
  mission.obstacles = sim::ObstacleField{};
  const auto clean = f.clean_run(mission);
  EXPECT_TRUE(schedule_seeds(clean, mission, *f.system, 10.0).empty());
}

TEST(Seeds, SeedsAreValidPairs) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission();
  const auto clean = f.clean_run(mission);
  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0);
  ASSERT_FALSE(seeds.empty());
  for (const Seed& seed : seeds) {
    EXPECT_GE(seed.target, 0);
    EXPECT_LT(seed.target, mission.num_drones());
    EXPECT_GE(seed.victim, 0);
    EXPECT_LT(seed.victim, mission.num_drones());
    EXPECT_NE(seed.target, seed.victim);
    EXPECT_GT(seed.influence, 0.0);
    EXPECT_DOUBLE_EQ(seed.vdo, clean.recorder.min_obstacle_distance(seed.victim));
  }
}

TEST(Seeds, VictimsOrderedByAscendingVdo) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission();
  const auto clean = f.clean_run(mission);
  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0);
  ASSERT_GE(seeds.size(), 2u);
  for (size_t i = 1; i < seeds.size(); ++i) {
    EXPECT_GE(seeds[i].vdo, seeds[i - 1].vdo - 1e-9);
  }
}

TEST(Seeds, FirstVictimIsClosestToObstacle) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission();
  const auto clean = f.clean_run(mission);
  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0);
  ASSERT_FALSE(seeds.empty());
  double min_vdo = std::numeric_limits<double>::infinity();
  for (int i = 0; i < mission.num_drones(); ++i) {
    min_vdo = std::min(min_vdo, clean.recorder.min_obstacle_distance(i));
  }
  EXPECT_DOUBLE_EQ(seeds.front().vdo, min_vdo);
}

TEST(Seeds, MaxSeedsRespected) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission(10);
  const auto clean = f.clean_run(mission);
  SeedScheduleConfig config;
  config.max_seeds = 3;
  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0, config);
  EXPECT_LE(seeds.size(), 3u);
}

TEST(Seeds, TargetsPerVictimRespected) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission(10);
  const auto clean = f.clean_run(mission);
  SeedScheduleConfig config;
  config.targets_per_victim = 1;
  config.max_seeds = 100;
  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0, config);
  // With one target per (victim, direction), a victim appears at most twice.
  std::map<int, int> victim_count;
  for (const Seed& seed : seeds) ++victim_count[seed.victim];
  for (const auto& [victim, count] : victim_count) EXPECT_LE(count, 2);
}

TEST(Seeds, SameVictimOrderedByInfluence) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission(10);
  const auto clean = f.clean_run(mission);
  SeedScheduleConfig config;
  config.max_seeds = 100;
  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0, config);
  for (size_t i = 1; i < seeds.size(); ++i) {
    if (seeds[i].victim == seeds[i - 1].victim) {
      EXPECT_LE(seeds[i].influence, seeds[i - 1].influence + 1e-12);
    }
  }
}

TEST(Seeds, VictimVdoOrderIsNaNLastStrictWeakOrder) {
  // Regression: the victim sort compared raw VDOs with `<`, which violates
  // strict weak ordering once a NaN (degenerate trajectory) or +-inf (drone
  // that never approaches an obstacle) appears — UB in std::sort. The
  // extracted comparator must be a total order: finite ascending, then
  // non-finite, ties by drone id.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

  EXPECT_TRUE(victim_vdo_before(1.0, 2.0, 0, 1));
  EXPECT_FALSE(victim_vdo_before(2.0, 1.0, 0, 1));
  EXPECT_TRUE(victim_vdo_before(1.0, kInf, 1, 0));   // finite before inf
  EXPECT_TRUE(victim_vdo_before(1.0, kNaN, 1, 0));   // finite before NaN
  EXPECT_FALSE(victim_vdo_before(kNaN, 1.0, 0, 1));  // NaN never first
  EXPECT_FALSE(victim_vdo_before(kInf, 1.0, 0, 1));
  // Non-finite pairs (inf/NaN in any combination) order by drone id.
  EXPECT_TRUE(victim_vdo_before(kInf, kNaN, 0, 1));
  EXPECT_FALSE(victim_vdo_before(kNaN, kInf, 1, 0));
  // Finite ties order by drone id too.
  EXPECT_TRUE(victim_vdo_before(3.0, 3.0, 0, 1));
  EXPECT_FALSE(victim_vdo_before(3.0, 3.0, 1, 0));

  // Strict weak ordering over a hostile sample: irreflexivity and
  // antisymmetry for every pair.
  const double values[] = {0.0, 1.0, 3.0, 3.0, kInf, -kInf, kNaN};
  const int n = static_cast<int>(std::size(values));
  for (int a = 0; a < n; ++a) {
    EXPECT_FALSE(victim_vdo_before(values[a], values[a], a, a));
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      EXPECT_FALSE(victim_vdo_before(values[a], values[b], a, b) &&
                   victim_vdo_before(values[b], values[a], b, a))
          << "antisymmetry violated for " << a << "," << b;
    }
  }
}

TEST(Seeds, NonFiniteVdoSchedulesDeterministically) {
  // End-to-end: a recorder with no obstacle telemetry reports +inf VDO for
  // every drone. Scheduling against a mission that does have obstacles must
  // not invoke UB and must order victims by the id tie-break.
  Fixture f;
  const sim::MissionSpec mission = standard_mission();
  sim::MissionSpec unobstructed = mission;
  unobstructed.obstacles = sim::ObstacleField{};
  const auto clean = f.clean_run(unobstructed);
  for (int i = 0; i < mission.num_drones(); ++i) {
    ASSERT_TRUE(std::isinf(clean.recorder.min_obstacle_distance(i)));
  }

  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0);
  const auto again = schedule_seeds(clean, mission, *f.system, 10.0);
  ASSERT_EQ(seeds.size(), again.size());
  int last_first_victim = -1;
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i].victim, again[i].victim);
    EXPECT_EQ(seeds[i].target, again[i].target);
    EXPECT_NE(seeds[i].target, seeds[i].victim);
    // All-inf VDOs: victims appear in ascending drone-id order.
    if (seeds[i].victim != last_first_victim) {
      EXPECT_GT(seeds[i].victim, last_first_victim);
      last_first_victim = seeds[i].victim;
    }
  }
}

TEST(Seeds, DeterministicScheduling) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission();
  const auto clean = f.clean_run(mission);
  const auto a = schedule_seeds(clean, mission, *f.system, 10.0);
  const auto b = schedule_seeds(clean, mission, *f.system, 10.0);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].victim, b[i].victim);
    EXPECT_EQ(a[i].direction, b[i].direction);
  }
}

}  // namespace
}  // namespace swarmfuzz::fuzz
