#include "fuzz/seeds.h"

#include <gtest/gtest.h>

#include "swarm/vasarhelyi.h"

namespace swarmfuzz::fuzz {
namespace {

struct Fixture {
  Fixture() : system(swarm::make_vasarhelyi_system()), simulator(make_config()) {}

  static sim::SimulationConfig make_config() {
    sim::SimulationConfig config;
    config.dt = 0.05;
    config.gps.rate_hz = 20.0;
    return config;
  }

  sim::RunResult clean_run(const sim::MissionSpec& mission) {
    return simulator.run(mission, *system);
  }

  std::unique_ptr<swarm::FlockingControlSystem> system;
  sim::Simulator simulator;
};

sim::MissionSpec standard_mission(int drones = 5, std::uint64_t seed = 1005) {
  sim::MissionConfig config;
  config.num_drones = drones;
  return sim::generate_mission(config, seed);
}

TEST(Seeds, EmptyForMissionWithoutObstacles) {
  Fixture f;
  sim::MissionSpec mission = standard_mission();
  mission.obstacles = sim::ObstacleField{};
  const auto clean = f.clean_run(mission);
  EXPECT_TRUE(schedule_seeds(clean, mission, *f.system, 10.0).empty());
}

TEST(Seeds, SeedsAreValidPairs) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission();
  const auto clean = f.clean_run(mission);
  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0);
  ASSERT_FALSE(seeds.empty());
  for (const Seed& seed : seeds) {
    EXPECT_GE(seed.target, 0);
    EXPECT_LT(seed.target, mission.num_drones());
    EXPECT_GE(seed.victim, 0);
    EXPECT_LT(seed.victim, mission.num_drones());
    EXPECT_NE(seed.target, seed.victim);
    EXPECT_GT(seed.influence, 0.0);
    EXPECT_DOUBLE_EQ(seed.vdo, clean.recorder.min_obstacle_distance(seed.victim));
  }
}

TEST(Seeds, VictimsOrderedByAscendingVdo) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission();
  const auto clean = f.clean_run(mission);
  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0);
  ASSERT_GE(seeds.size(), 2u);
  for (size_t i = 1; i < seeds.size(); ++i) {
    EXPECT_GE(seeds[i].vdo, seeds[i - 1].vdo - 1e-9);
  }
}

TEST(Seeds, FirstVictimIsClosestToObstacle) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission();
  const auto clean = f.clean_run(mission);
  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0);
  ASSERT_FALSE(seeds.empty());
  double min_vdo = std::numeric_limits<double>::infinity();
  for (int i = 0; i < mission.num_drones(); ++i) {
    min_vdo = std::min(min_vdo, clean.recorder.min_obstacle_distance(i));
  }
  EXPECT_DOUBLE_EQ(seeds.front().vdo, min_vdo);
}

TEST(Seeds, MaxSeedsRespected) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission(10);
  const auto clean = f.clean_run(mission);
  SeedScheduleConfig config;
  config.max_seeds = 3;
  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0, config);
  EXPECT_LE(seeds.size(), 3u);
}

TEST(Seeds, TargetsPerVictimRespected) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission(10);
  const auto clean = f.clean_run(mission);
  SeedScheduleConfig config;
  config.targets_per_victim = 1;
  config.max_seeds = 100;
  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0, config);
  // With one target per (victim, direction), a victim appears at most twice.
  std::map<int, int> victim_count;
  for (const Seed& seed : seeds) ++victim_count[seed.victim];
  for (const auto& [victim, count] : victim_count) EXPECT_LE(count, 2);
}

TEST(Seeds, SameVictimOrderedByInfluence) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission(10);
  const auto clean = f.clean_run(mission);
  SeedScheduleConfig config;
  config.max_seeds = 100;
  const auto seeds = schedule_seeds(clean, mission, *f.system, 10.0, config);
  for (size_t i = 1; i < seeds.size(); ++i) {
    if (seeds[i].victim == seeds[i - 1].victim) {
      EXPECT_LE(seeds[i].influence, seeds[i - 1].influence + 1e-12);
    }
  }
}

TEST(Seeds, DeterministicScheduling) {
  Fixture f;
  const sim::MissionSpec mission = standard_mission();
  const auto clean = f.clean_run(mission);
  const auto a = schedule_seeds(clean, mission, *f.system, 10.0);
  const auto b = schedule_seeds(clean, mission, *f.system, 10.0);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].victim, b[i].victim);
    EXPECT_EQ(a[i].direction, b[i].direction);
  }
}

}  // namespace
}  // namespace swarmfuzz::fuzz
