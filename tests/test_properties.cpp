// Cross-cutting property sweeps over the full pipeline: invariants that must
// hold for any mission seed, fuzzer kind or spoofing parameter choice.
#include <gtest/gtest.h>

#include "attack/spoofing.h"
#include "fuzz/fuzzer.h"
#include "swarm/flocking_system.h"

namespace swarmfuzz {
namespace {

sim::SimulationConfig fast_sim() {
  sim::SimulationConfig config;
  config.dt = 0.05;
  config.gps.rate_hz = 20.0;
  return config;
}

sim::MissionSpec mission_of(std::uint64_t seed, int drones = 5) {
  sim::MissionConfig config;
  config.num_drones = drones;
  return sim::generate_mission(config, seed);
}

// Property: every SPV any fuzzer reports must validate on replay - a
// victim-obstacle collision in which the spoofed target is not involved.
// (The paper manually validated all findings as true positives.)
class FoundSpvsValidate : public ::testing::TestWithParam<fuzz::FuzzerKind> {};

TEST_P(FoundSpvsValidate, ReportedPlansReproduceOnReplay) {
  fuzz::FuzzerConfig config;
  config.sim = fast_sim();
  config.spoof_distance = 10.0;
  config.mission_budget = 30;
  auto fuzzer = fuzz::make_fuzzer(GetParam(), config);

  int validated = 0;
  for (const std::uint64_t seed : {1009ull, 1013ull, 1024ull}) {
    const sim::MissionSpec mission = mission_of(seed);
    const fuzz::FuzzResult result = fuzzer->fuzz(mission);
    if (!result.found) continue;

    auto system = swarm::make_vasarhelyi_system();
    const sim::Simulator simulator(fast_sim());
    const attack::GpsSpoofer spoofer(result.plan, mission);
    const sim::RunResult replay = simulator.run(mission, *system, &spoofer);
    ASSERT_TRUE(replay.first_collision.has_value())
        << fuzz::fuzzer_kind_name(GetParam()) << " seed " << seed;
    EXPECT_EQ(replay.first_collision->kind, sim::CollisionKind::kDroneObstacle);
    EXPECT_NE(replay.first_collision->drone, result.plan.target);
    EXPECT_EQ(replay.first_collision->drone, result.victim);
    ++validated;
  }
  // SwarmFuzz must find at least one of these known-vulnerable missions;
  // the weaker fuzzers may legitimately find none within this budget.
  if (GetParam() == fuzz::FuzzerKind::kSwarmFuzz) EXPECT_GE(validated, 1);
}

INSTANTIATE_TEST_SUITE_P(AllFuzzers, FoundSpvsValidate,
                         ::testing::Values(fuzz::FuzzerKind::kSwarmFuzz,
                                           fuzz::FuzzerKind::kRandom,
                                           fuzz::FuzzerKind::kGradientOnly,
                                           fuzz::FuzzerKind::kSvgOnly,
                                           fuzz::FuzzerKind::kEvolutionary));

// Property: fuzzing is deterministic - same mission, same config, same
// outcome, for every fuzzer kind.
class FuzzerDeterminism : public ::testing::TestWithParam<fuzz::FuzzerKind> {};

TEST_P(FuzzerDeterminism, RepeatedFuzzingIsIdentical) {
  fuzz::FuzzerConfig config;
  config.sim = fast_sim();
  config.mission_budget = 15;
  const sim::MissionSpec mission = mission_of(1010);
  auto a = fuzz::make_fuzzer(GetParam(), config);
  auto b = fuzz::make_fuzzer(GetParam(), config);
  const fuzz::FuzzResult ra = a->fuzz(mission);
  const fuzz::FuzzResult rb = b->fuzz(mission);
  EXPECT_EQ(ra.found, rb.found);
  EXPECT_EQ(ra.iterations, rb.iterations);
  EXPECT_EQ(ra.simulations, rb.simulations);
  EXPECT_EQ(ra.attempts.size(), rb.attempts.size());
  if (ra.found) {
    EXPECT_EQ(ra.plan.target, rb.plan.target);
    EXPECT_DOUBLE_EQ(ra.plan.start_time, rb.plan.start_time);
    EXPECT_DOUBLE_EQ(ra.plan.duration, rb.plan.duration);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFuzzers, FuzzerDeterminism,
                         ::testing::Values(fuzz::FuzzerKind::kSwarmFuzz,
                                           fuzz::FuzzerKind::kRandom,
                                           fuzz::FuzzerKind::kGradientOnly,
                                           fuzz::FuzzerKind::kSvgOnly,
                                           fuzz::FuzzerKind::kEvolutionary));

// Property: the spoofed drone's broadcast GPS equals truth outside the
// attack window and truth + d laterally inside it, for several windows.
class SpoofWindowSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpoofWindowSweep, OffsetAppliedExactlyInWindow) {
  const double start = GetParam();
  const sim::MissionSpec mission = mission_of(1001);
  const attack::SpoofingPlan plan{.target = 2,
                                  .direction = attack::SpoofDirection::kLeft,
                                  .start_time = start,
                                  .duration = 10.0,
                                  .distance = 7.0};
  const attack::GpsSpoofer spoofer(plan, mission);

  class Check final : public sim::StepObserver {
   public:
    explicit Check(const attack::SpoofingPlan& plan) : plan_(plan) {}
    void on_step(double time, const sim::WorldSnapshot& snapshot,
                 std::span<const sim::DroneState> truth) override {
      const double offset = math::distance(
          snapshot.gps_position[static_cast<size_t>(plan_.target)],
          truth[static_cast<size_t>(plan_.target)].position);
      // GPS fixes are held between samples; allow one sample of lag at the
      // window edges (dt == GPS period here).
      if (time > plan_.start_time + 0.1 &&
          time < plan_.start_time + plan_.duration - 0.1) {
        EXPECT_NEAR(offset, plan_.distance, 1e-6) << "t=" << time;
      } else if (time < plan_.start_time - 0.1 ||
                 time > plan_.start_time + plan_.duration + 0.1) {
        EXPECT_NEAR(offset, 0.0, 1e-6) << "t=" << time;
      }
    }

   private:
    attack::SpoofingPlan plan_;
  };

  auto system = swarm::make_vasarhelyi_system();
  sim::SimulationConfig config = fast_sim();
  config.stop_on_collision = false;
  const sim::Simulator simulator(config);
  Check check(plan);
  (void)simulator.run(mission, *system, &spoofer, &check);
}

INSTANTIATE_TEST_SUITE_P(StartTimes, SpoofWindowSweep,
                         ::testing::Values(0.0, 12.3, 40.0, 77.7));

// Property: the simulator's trajectory is invariant to the recorder's
// sampling period (recording must not feed back into dynamics).
TEST(Properties, RecordPeriodDoesNotAffectDynamics) {
  const sim::MissionSpec mission = mission_of(1004);
  sim::SimulationConfig coarse = fast_sim();
  coarse.record_period = 1.0;
  sim::SimulationConfig fine = fast_sim();
  fine.record_period = 0.0;
  auto sys_a = swarm::make_vasarhelyi_system();
  auto sys_b = swarm::make_vasarhelyi_system();
  const sim::RunResult a = sim::Simulator(coarse).run(mission, *sys_a);
  const sim::RunResult b = sim::Simulator(fine).run(mission, *sys_b);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  for (int i = 0; i < mission.num_drones(); ++i) {
    EXPECT_DOUBLE_EQ(a.vdo(i), b.vdo(i));
  }
}

// Property: a zero-distance "attack" is a no-op - identical VDOs to clean.
TEST(Properties, ZeroDistanceSpoofIsNoop) {
  const sim::MissionSpec mission = mission_of(1006);
  const attack::SpoofingPlan plan{.target = 1,
                                  .direction = attack::SpoofDirection::kRight,
                                  .start_time = 20.0,
                                  .duration = 30.0,
                                  .distance = 0.0};
  const attack::GpsSpoofer spoofer(plan, mission);
  auto sys_a = swarm::make_vasarhelyi_system();
  auto sys_b = swarm::make_vasarhelyi_system();
  const sim::Simulator simulator(fast_sim());
  const sim::RunResult clean = simulator.run(mission, *sys_a);
  const sim::RunResult attacked = simulator.run(mission, *sys_b, &spoofer);
  for (int i = 0; i < mission.num_drones(); ++i) {
    EXPECT_DOUBLE_EQ(clean.vdo(i), attacked.vdo(i));
  }
}

}  // namespace
}  // namespace swarmfuzz
