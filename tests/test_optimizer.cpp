#include "fuzz/optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace swarmfuzz::fuzz {
namespace {

// Synthetic convex landscape mimicking Fig. 5 of the paper: a paraboloid in
// (t_s, dt) whose minimum value is configurable. Success when f <= 0.
class Paraboloid final : public ObjectiveFunction {
 public:
  Paraboloid(double ts_opt, double dt_opt, double min_value, double t_mission = 120.0)
      : ts_opt_(ts_opt), dt_opt_(dt_opt), min_value_(min_value),
        t_mission_(t_mission) {}

  ObjectiveEval evaluate(double t_start, double duration) override {
    ++evaluations;
    ObjectiveEval eval;
    eval.f = min_value_ + 0.01 * (t_start - ts_opt_) * (t_start - ts_opt_) +
             0.01 * (duration - dt_opt_) * (duration - dt_opt_);
    eval.success = eval.f <= 0.0;
    if (eval.success) eval.crashed_drone = 1;
    return eval;
  }

  void project(double& t_start, double& duration) const override {
    t_start = std::clamp(t_start, 0.0, t_mission_ - 0.05);
    duration = std::clamp(duration, 0.05, t_mission_ - t_start);
  }

  int evaluations = 0;

 private:
  double ts_opt_, dt_opt_, min_value_, t_mission_;
};

// A landscape that is flat everywhere (spoofing has no effect).
class Flat final : public ObjectiveFunction {
 public:
  ObjectiveEval evaluate(double, double) override {
    ++evaluations;
    return ObjectiveEval{.f = 5.0};
  }
  void project(double& t_start, double& duration) const override {
    t_start = std::max(t_start, 0.0);
    duration = std::max(duration, 0.05);
  }
  int evaluations = 0;
};

const StartPoint kStart{20.0, 20.0};

TEST(Optimizer, FindsReachableMinimum) {
  Paraboloid objective(40.0, 12.0, -0.5);
  const auto result =
      optimize(objective, std::span(&kStart, 1), 20, OptimizerConfig{});
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.crashed_drone, 1);
  EXPECT_LE(result.best_f, 0.0);
  EXPECT_LE(result.iterations, 20);
}

TEST(Optimizer, SucceedsImmediatelyAtStartPoint) {
  Paraboloid objective(20.0, 20.0, -1.0);
  const auto result =
      optimize(objective, std::span(&kStart, 1), 20, OptimizerConfig{});
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.iterations, 1);
}

TEST(Optimizer, StallsOnPositiveMinimum) {
  // Convex bowl whose floor is above zero: no collision exists; the search
  // must converge, report stalled and not claim success.
  Paraboloid objective(25.0, 18.0, 2.0);
  const auto result =
      optimize(objective, std::span(&kStart, 1), 20, OptimizerConfig{});
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.stalled);
  EXPECT_NEAR(result.best_f, 2.0, 0.5);
}

TEST(Optimizer, FlatLandscapeAbandonsQuickly) {
  Flat objective;
  const auto result =
      optimize(objective, std::span(&kStart, 1), 20, OptimizerConfig{});
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.stalled);
  EXPECT_LE(result.iterations, 5);
}

TEST(Optimizer, RespectsBudget) {
  // Distant minimum + tiny learning rate: budget is the binding constraint.
  Paraboloid objective(200.0, 100.0, -1.0, 400.0);
  OptimizerConfig config;
  config.learning_rate = 0.1;
  config.stall_tolerance = 0.0;  // never stall
  const auto result = optimize(objective, std::span(&kStart, 1), 7, config);
  EXPECT_LE(result.iterations, 7);
  EXPECT_FALSE(result.success);
}

TEST(Optimizer, MultiStartPicksBestBasin) {
  // Two starts: one near the minimum, one far. The descent must proceed from
  // the near one and succeed within a few iterations.
  Paraboloid objective(60.0, 10.0, -0.2);
  const std::vector<StartPoint> starts{{5.0, 50.0}, {58.0, 12.0}};
  const auto result = optimize(objective, starts, 20, OptimizerConfig{});
  EXPECT_TRUE(result.success);
  EXPECT_NEAR(result.t_start, 60.0, 10.0);
}

TEST(Optimizer, MultiStartEvaluationCanSucceedDirectly) {
  Paraboloid objective(60.0, 10.0, -5.0);
  const std::vector<StartPoint> starts{{200.0, 1.0}, {60.0, 10.0}};
  const auto result = optimize(objective, starts, 20, OptimizerConfig{});
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.iterations, 2);  // second start probe hit it
  EXPECT_DOUBLE_EQ(result.t_start, 60.0);
}

TEST(Optimizer, EmptyStartsReturnsFailure) {
  Paraboloid objective(10.0, 10.0, -1.0);
  const auto result = optimize(objective, {}, 20, OptimizerConfig{});
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(objective.evaluations, 0);
}

TEST(Optimizer, ZeroBudgetDoesNothing) {
  Paraboloid objective(10.0, 10.0, -1.0);
  const auto result = optimize(objective, std::span(&kStart, 1), 0, OptimizerConfig{});
  EXPECT_FALSE(result.success);
  EXPECT_EQ(objective.evaluations, 0);
}

TEST(Optimizer, ParametersStayFeasible) {
  Paraboloid objective(0.0, 0.0, 1.0);  // minimum at the boundary
  OptimizerConfig config;
  config.stall_tolerance = 0.0;
  const auto result = optimize(objective, std::span(&kStart, 1), 20, config);
  EXPECT_GE(result.t_start, 0.0);
  EXPECT_GE(result.duration, 0.0);
}

// A linear landscape with the Objective's joint projection (t_s clamped
// against t_mission, dt clamped against the remaining window) that records
// every evaluated point. Linearity makes the correctly-scaled gradient
// exactly the slope (a, b) regardless of where the stencil lands.
class RecordingLinear final : public ObjectiveFunction {
 public:
  static constexpr double kT = 40.0;      // t_mission
  static constexpr double kDtMin = 0.05;  // simulator dt
  static constexpr double kA = 0.2;       // df/dt_s
  static constexpr double kB = 0.1;       // df/ddt

  static double f(double ts, double dt) { return kA * ts + kB * dt + 50.0; }

  ObjectiveEval evaluate(double t_start, double duration) override {
    calls.emplace_back(t_start, duration);
    return ObjectiveEval{.f = f(t_start, duration)};
  }
  void project(double& t_start, double& duration) const override {
    t_start = std::clamp(t_start, 0.0, kT - kDtMin);
    duration = std::clamp(duration, kDtMin, kT - t_start);
  }

  std::vector<std::pair<double, double>> calls;
};

TEST(Optimizer, BoundaryStencilGradientUsesProjectedDenominators) {
  // Regression for the boundary-clamped gradient bug: with the attack
  // window within fd_step of the mission end, the raw t_s + h and dt + h
  // probes are pulled back by the upper clamp, so dividing their FD by the
  // nominal span (which only accounted for the lower clamp at 0) mis-scales
  // the gradient. The fixed optimizer must probe the *projected* stencil
  // and divide by the distances actually evaluated.
  RecordingLinear objective;
  const StartPoint start{39.5, 10.0};  // projects to (39.5, 0.5): dt window 0.5
  const auto result =
      optimize(objective, std::span(&start, 1), 3, OptimizerConfig{});
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.iterations, 3);
  ASSERT_GE(objective.calls.size(), 7u);

  // Multi-start eval, then the first descent iteration's centre + stencil —
  // all at analytically projected coordinates (h = 1):
  const std::pair<double, double> expected[6] = {
      {39.5, 0.5},    // start (dt clamped from 10 to the 0.5 s window)
      {39.5, 0.5},    // descent centre
      {39.95, 0.05},  // t_s + h: clamped to t_mission - dt_min, dt squeezed
      {38.5, 0.5},    // t_s - h
      {39.5, 0.5},    // dt + h: clamped back onto the centre
      {39.5, 0.05},   // dt - h: clamped up to dt_min
  };
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(objective.calls[i].first, expected[i].first, 1e-12) << "call " << i;
    EXPECT_NEAR(objective.calls[i].second, expected[i].second, 1e-12)
        << "call " << i;
  }

  // The gradient over that stencil, divided by the projected spans
  // (1.45 s and 0.45 s — the buggy code divided both by 2h = 2.0):
  const double grad_ts =
      (RecordingLinear::f(39.95, 0.05) - RecordingLinear::f(38.5, 0.5)) /
      (39.95 - 38.5);
  const double grad_dt =
      (RecordingLinear::f(39.5, 0.5) - RecordingLinear::f(39.5, 0.05)) /
      (0.5 - 0.05);
  // On a linear landscape the projected-stencil dt-gradient is exact.
  EXPECT_NEAR(grad_dt, RecordingLinear::kB, 1e-12);

  // The second descent centre (7th evaluation) sits exactly where Eq. (1)
  // lands with those gradients; the mis-scaled gradients would step to a
  // measurably different point (37.05 instead of ~36.12 in t_s).
  const OptimizerConfig config{};
  const double step_ts =
      std::clamp(config.learning_rate * grad_ts, -config.max_step, config.max_step);
  const double step_dt =
      std::clamp(config.learning_rate * grad_dt, -config.max_step, config.max_step);
  double ts2 = std::max(39.5 - step_ts, 0.0);
  double dt2 = std::max(0.5 - step_dt, 0.0);
  objective.project(ts2, dt2);
  EXPECT_NEAR(objective.calls[6].first, ts2, 1e-9);
  EXPECT_NEAR(objective.calls[6].second, dt2, 1e-9);
}

// Flat landscape that logs the interleaving of evaluate and project calls,
// to pin down *when* the optimizer stops touching the parameters.
class EventLoggingFlat final : public ObjectiveFunction {
 public:
  enum class Kind { kEvaluate, kProject };
  struct Event {
    Kind kind;
    double t_start;
    double duration;
  };

  ObjectiveEval evaluate(double t_start, double duration) override {
    events.push_back({Kind::kEvaluate, t_start, duration});
    return ObjectiveEval{.f = 5.0};
  }
  void project(double& t_start, double& duration) const override {
    t_start = std::clamp(t_start, 0.0, 120.0);
    duration = std::clamp(duration, 0.05, 120.0 - t_start);
    events.push_back({Kind::kProject, t_start, duration});
  }

  // project() is const for callers but part of the trace under test.
  mutable std::vector<Event> events;
};

TEST(Optimizer, DegenerateGradientAbandonsBeforeUpdatingParameters) {
  // Regression: the degenerate-gradient abandon used to run *after* the
  // parameter update and re-projection, leaving (t_start, duration) at a
  // fabricated point no evaluation ever visited. The fixed ordering checks
  // the gradient first, so once the last simulation has run the optimizer
  // never moves the parameters again — and the reported point is always one
  // that was actually evaluated.
  EventLoggingFlat objective;
  const auto result =
      optimize(objective, std::span(&kStart, 1), 20, OptimizerConfig{});
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.stalled);

  ASSERT_FALSE(objective.events.empty());
  // No project (= parameter motion) after the final evaluation.
  EXPECT_EQ(objective.events.back().kind, EventLoggingFlat::Kind::kEvaluate);

  // The reported point matches a center that was actually evaluated.
  bool reported_point_was_evaluated = false;
  for (const auto& event : objective.events) {
    if (event.kind == EventLoggingFlat::Kind::kEvaluate &&
        event.t_start == result.t_start && event.duration == result.duration) {
      reported_point_was_evaluated = true;
    }
  }
  EXPECT_TRUE(reported_point_was_evaluated);
}

TEST(Optimizer, BestFTracksLowestSeen) {
  Paraboloid objective(40.0, 12.0, 1.5);
  const auto result =
      optimize(objective, std::span(&kStart, 1), 20, OptimizerConfig{});
  // best_f must be <= the start evaluation.
  Paraboloid fresh(40.0, 12.0, 1.5);
  const double f0 = fresh.evaluate(kStart.t_start, kStart.duration).f;
  EXPECT_LE(result.best_f, f0 + 1e-9);
}

}  // namespace
}  // namespace swarmfuzz::fuzz
