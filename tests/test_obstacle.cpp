#include "sim/obstacle.h"

#include <gtest/gtest.h>

namespace swarmfuzz::sim {
namespace {

TEST(ObstacleField, EmptyField) {
  const ObstacleField field;
  EXPECT_TRUE(field.empty());
  EXPECT_EQ(field.size(), 0);
  EXPECT_FALSE(field.nearest({0, 0, 0}).has_value());
  EXPECT_TRUE(std::isinf(field.min_surface_distance({0, 0, 0})));
}

TEST(ObstacleField, RejectsNonPositiveRadius) {
  EXPECT_THROW(ObstacleField({CylinderObstacle{{0, 0, 0}, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(ObstacleField({CylinderObstacle{{0, 0, 0}, -1.0}}),
               std::invalid_argument);
}

TEST(ObstacleField, NearestPicksClosestBySurfaceDistance) {
  // Big obstacle farther away can still be nearest by surface distance.
  const ObstacleField field({
      CylinderObstacle{{10, 0, 0}, 1.0},   // surface at 9 from origin
      CylinderObstacle{{20, 0, 0}, 15.0},  // surface at 5 from origin
  });
  const auto hit = field.nearest({0, 0, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->index, 1);
  EXPECT_DOUBLE_EQ(hit->surface_distance, 5.0);
}

TEST(ObstacleField, HitGeometryIsConsistent) {
  const ObstacleField field({CylinderObstacle{{10, 0, 0}, 2.0}});
  const auto hit = field.nearest({0, 0, 7});
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->surface_distance, 8.0);
  EXPECT_DOUBLE_EQ(hit->closest_point.x, 8.0);
  EXPECT_DOUBLE_EQ(hit->closest_point.z, 7.0);  // at query height
  EXPECT_DOUBLE_EQ(hit->outward_normal.x, -1.0);
  EXPECT_NEAR(hit->outward_normal.norm(), 1.0, 1e-12);
}

TEST(ObstacleField, NegativeDistanceInside) {
  const ObstacleField field({CylinderObstacle{{0, 0, 0}, 5.0}});
  EXPECT_DOUBLE_EQ(field.min_surface_distance({1, 0, 3}), -4.0);
}

TEST(ObstacleField, AtAccessorBoundsChecked) {
  const ObstacleField field({CylinderObstacle{{0, 0, 0}, 1.0}});
  EXPECT_NO_THROW((void)field.at(0));
  EXPECT_THROW((void)field.at(1), std::out_of_range);
  EXPECT_THROW((void)field.at(-1), std::out_of_range);
}

TEST(ObstacleField, MultipleObstaclesEnumerable) {
  const ObstacleField field({
      CylinderObstacle{{0, 0, 0}, 1.0},
      CylinderObstacle{{50, 0, 0}, 2.0},
      CylinderObstacle{{100, 0, 0}, 3.0},
  });
  EXPECT_EQ(field.size(), 3);
  EXPECT_EQ(static_cast<int>(field.obstacles().size()), 3);
  EXPECT_DOUBLE_EQ(field.at(2).radius, 3.0);
}

}  // namespace
}  // namespace swarmfuzz::sim
