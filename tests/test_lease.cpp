// Durable work-lease tests (DESIGN.md section 13): carve geometry, claim
// record framing, and the LeaseStore claim/renew/reclaim protocol under an
// injected clock — expiry, fencing and torn-write recovery are all stepped
// through deterministically, without sleeping out real TTLs.
#include "fuzz/lease.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "fuzz/telemetry.h"

namespace swarmfuzz::fuzz {
namespace {

// Fresh per-test service directory under the gtest temp root.
std::string service_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path{::testing::TempDir()} / ("swarmfuzz_lease_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// True when `dir` holds at least one reclaimed (renamed-aside) claim file
// for `lease_id`.
bool has_dead_claim(const std::string& dir, int lease_id) {
  const std::string prefix = "lease-" + std::to_string(lease_id) + ".claim.dead.";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lease geometry.

TEST(CarveLeases, PartitionsMissionsContiguously) {
  // 10 missions over 4 leases: the first 10 % 4 = 2 ranges are one longer.
  const auto leases = carve_leases(10, 4);
  ASSERT_EQ(leases.size(), 4u);
  int expected_begin = 0;
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(leases[k].lease_id, k);
    EXPECT_EQ(leases[k].begin, expected_begin);
    EXPECT_EQ(leases[k].size(), k < 2 ? 3 : 2);
    expected_begin = leases[k].end;
  }
  EXPECT_EQ(leases.back().end, 10);  // every index covered exactly once
}

TEST(CarveLeases, ClampsLeaseCount) {
  // More leases than missions: one mission per lease, never an empty range.
  const auto over = carve_leases(3, 8);
  ASSERT_EQ(over.size(), 3u);
  for (const LeaseRange& lease : over) EXPECT_EQ(lease.size(), 1);
  // Degenerate lease counts clamp up to a single whole-campaign lease.
  const auto under = carve_leases(5, 0);
  ASSERT_EQ(under.size(), 1u);
  EXPECT_EQ(under[0].begin, 0);
  EXPECT_EQ(under[0].end, 5);
  EXPECT_EQ(carve_leases(5, -3).size(), 1u);
}

TEST(CarveLeases, RejectsEmptyCampaign) {
  EXPECT_THROW((void)carve_leases(0, 2), std::invalid_argument);
  EXPECT_THROW((void)carve_leases(-1, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Claim record framing.

TEST(LeaseClaimRecord, RoundTripsThroughJsonl) {
  LeaseClaimRecord record;
  record.lease_id = 7;
  record.owner = "shard-1234";
  record.expires_at_ms = 9007199254740993;  // above the 53-bit double bound
  const std::string line = to_jsonl(record);
  const LeaseClaimRecord parsed = lease_claim_from_json(line);
  EXPECT_EQ(parsed.schema_version, 1);
  EXPECT_EQ(parsed.lease_id, 7);
  EXPECT_EQ(parsed.owner, "shard-1234");
  EXPECT_EQ(parsed.expires_at_ms, 9007199254740993);
}

TEST(LeaseClaimRecord, CrcFramingRejectsTampering) {
  LeaseClaimRecord record;
  record.lease_id = 2;
  record.owner = "a";
  record.expires_at_ms = 1000;
  std::string line = to_jsonl(record);
  // Flip the lease id inside the framed line: the CRC must catch it.
  const auto pos = line.find("\"lease\":2");
  ASSERT_NE(pos, std::string::npos);
  line[pos + 8] = '3';
  EXPECT_THROW((void)lease_claim_from_json(line), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LeaseStore protocol, driven by a fake clock.

TEST(LeaseStore, ClaimIsReentrantForItsOwner) {
  const std::string dir = service_dir("reentry");
  std::int64_t now = 0;
  LeaseStore store(dir, 1000, "alice", [&now] { return now; });
  ASSERT_TRUE(store.try_claim(0));
  EXPECT_TRUE(store.holds(0));
  // Claiming a lease we already hold is a no-op success, not a conflict.
  EXPECT_TRUE(store.try_claim(0));
  EXPECT_TRUE(std::filesystem::exists(store.claim_path(0)));
}

TEST(LeaseStore, RejectsDuplicateClaimWhileUnexpired) {
  const std::string dir = service_dir("duplicate");
  std::int64_t now = 0;
  const auto clock = [&now] { return now; };
  LeaseStore alice(dir, 1000, "alice", clock);
  LeaseStore bob(dir, 1000, "bob", clock);
  ASSERT_TRUE(alice.try_claim(0));
  now += 500;  // within alice's TTL
  EXPECT_FALSE(bob.try_claim(0));
  EXPECT_FALSE(bob.holds(0));
  EXPECT_TRUE(alice.holds(0));
  EXPECT_FALSE(has_dead_claim(dir, 0));  // rejection never touches the file
}

TEST(LeaseStore, ExpiredClaimIsReclaimedByRename) {
  const std::string dir = service_dir("expiry");
  std::int64_t now = 0;
  const auto clock = [&now] { return now; };
  LeaseStore alice(dir, 1000, "alice", clock);
  LeaseStore bob(dir, 1000, "bob", clock);
  ASSERT_TRUE(alice.try_claim(0));
  now += 1001;  // alice's claim lapses (she was presumed dead)
  EXPECT_FALSE(alice.holds(0));
  EXPECT_TRUE(bob.try_claim(0));
  EXPECT_TRUE(bob.holds(0));
  // The dead claim was moved aside, not deleted — it stays for post-mortems.
  EXPECT_TRUE(has_dead_claim(dir, 0));
}

TEST(LeaseStore, RenewExtendsExpiry) {
  const std::string dir = service_dir("renew");
  std::int64_t now = 0;
  LeaseStore store(dir, 1000, "alice", [&now] { return now; });
  ASSERT_TRUE(store.try_claim(0));
  now += 900;
  ASSERT_TRUE(store.renew(0));
  now += 900;  // past the original expiry (1000), within the renewed one
  EXPECT_TRUE(store.holds(0));
  now += 200;  // past the renewed expiry too
  EXPECT_FALSE(store.holds(0));
}

TEST(LeaseStore, RenewIsFencedAfterReclaim) {
  const std::string dir = service_dir("fencing");
  std::int64_t now = 0;
  const auto clock = [&now] { return now; };
  LeaseStore alice(dir, 1000, "alice", clock);
  LeaseStore bob(dir, 1000, "bob", clock);
  ASSERT_TRUE(alice.try_claim(0));
  now += 1001;
  ASSERT_TRUE(bob.try_claim(0));  // reclaims the expired lease
  // Alice (stalled, now resumed) must see the fence and must not write a
  // renewal that would contest bob's legitimate claim.
  EXPECT_FALSE(alice.renew(0));
  EXPECT_FALSE(alice.holds(0));
  EXPECT_TRUE(bob.holds(0));
  EXPECT_TRUE(bob.renew(0));
}

TEST(LeaseStore, DoneMarkerBlocksAllClaims) {
  const std::string dir = service_dir("done");
  std::int64_t now = 0;
  const auto clock = [&now] { return now; };
  LeaseStore alice(dir, 1000, "alice", clock);
  LeaseStore bob(dir, 1000, "bob", clock);
  ASSERT_TRUE(alice.try_claim(0));
  alice.mark_done(0);
  EXPECT_TRUE(alice.is_done(0));
  EXPECT_TRUE(bob.is_done(0));
  // A finished lease is never claimable again, expired claim or not.
  now += 5000;
  EXPECT_FALSE(alice.try_claim(0));
  EXPECT_FALSE(bob.try_claim(0));
}

TEST(LeaseStore, TornRenewalFallsBackToLastValidRecord) {
  const std::string dir = service_dir("torn_renew");
  std::int64_t now = 0;
  const auto clock = [&now] { return now; };
  LeaseStore alice(dir, 1000, "alice", clock);
  LeaseStore bob(dir, 1000, "bob", clock);
  ASSERT_TRUE(alice.try_claim(0));
  // SIGKILL mid-renew: an unterminated fragment lands after the valid claim.
  append_jsonl_line(dir + "/lease-0.claim", R"({"v":1,"lease":0,"owner":"al)");
  // The torn line is ignored; alice's original claim still governs.
  EXPECT_TRUE(alice.holds(0));
  EXPECT_FALSE(bob.try_claim(0));
  now += 1001;  // ...and it still expires on its own schedule.
  EXPECT_TRUE(bob.try_claim(0));
}

TEST(LeaseStore, TornOnlyClaimFileIsReclaimable) {
  const std::string dir = service_dir("torn_claim");
  std::int64_t now = 0;
  // A claimant that died before its first record landed: the file exists but
  // holds no valid record — a dead claimant, immediately reclaimable.
  append_jsonl_line(dir + "/lease-0.claim", "garbage, not json");
  LeaseStore bob(dir, 1000, "bob", [&now] { return now; });
  EXPECT_TRUE(bob.try_claim(0));
  EXPECT_TRUE(bob.holds(0));
  EXPECT_TRUE(has_dead_claim(dir, 0));
}

TEST(LeaseStore, ShardTelemetryPathNamesLease) {
  EXPECT_EQ(shard_telemetry_path("/tmp/svc", 3), "/tmp/svc/shard-3.jsonl");
}

TEST(LeaseStore, RejectsDegenerateConstruction) {
  EXPECT_THROW(LeaseStore("d", 0, "alice"), std::invalid_argument);
  EXPECT_THROW(LeaseStore("d", 1000, ""), std::invalid_argument);
}

}  // namespace
}  // namespace swarmfuzz::fuzz
